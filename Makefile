# Convenience targets; `make check` mirrors CI.

GO ?= go

.PHONY: build vet test test-short race check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -timeout 30m ./internal/experiments/...

check: vet build test race

clean:
	$(GO) clean ./...
