# Convenience targets; `make check` mirrors CI.

GO ?= go

.PHONY: build vet lint fmt-check test test-short race check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism and layering invariants (see lint.policy and DESIGN.md).
lint:
	$(GO) run ./cmd/nubalint ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -timeout 30m ./internal/experiments/... ./internal/lint/...

check: vet build lint fmt-check test race

clean:
	$(GO) clean ./...
