# Convenience targets; `make check` mirrors CI.

GO ?= go
BENCH_OUT ?= BENCH_10.json

.PHONY: build vet lint fmt-check docs-check test test-short race sanitize stress bench shardmap check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism and layering invariants (see lint.policy and DESIGN.md).
lint:
	$(GO) run ./cmd/nubalint ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Docs-versus-code drift: flags mentioned in README/docs must exist in
# cmd/*, and intra-repo Markdown links must resolve (see cmd/nubadocs).
docs-check:
	$(GO) run ./cmd/nubadocs

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The full-run byte-identity test covers the parallel engine at full
# fan-out, and the wedge regression drives it through the watchdog — so
# this step is also the race-detector pass over the parallel engine's
# barrier and exchange paths (docs/PARALLEL.md).
race:
	$(GO) test -race -timeout 30m ./internal/experiments/... ./internal/lint/...
	$(GO) test -race -timeout 30m -run 'TestEnginesByteIdenticalFullRuns|TestWatchdogCatchesWedgeOnNonZeroPartitionParallel' .
	$(GO) test -race -timeout 30m -run 'TestEngines|TestSanitize|TestParseEngine|TestQuietVsWake|TestMaxCycles' ./internal/core/

# Hint-soundness smoke: a cheap three-benchmark subset to natural
# completion under the sanitizer engine (every claimed-idle window
# stepped and verified; see DESIGN.md §9), then the same subset under
# the partition-parallel engine — whose outputs the byte-identity tests
# pin to the serial engines'. The full capped suites run under
# `go test .` (TestSanitizeSuite, TestParallelEngineByteIdenticalAcrossSuite).
sanitize:
	$(GO) run ./cmd/nubasim -bench DWT2D,BH,MVT -scale 0.125 -engine sanitize
	$(GO) run ./cmd/nubasim -bench DWT2D,BH,MVT -scale 0.125 -engine parallel

# The seeded fault-injection stress matrix (docs/ROBUSTNESS.md): every
# fault class injected into a short run and caught by the layer that
# owns it — the forward-progress watchdog, the sanitize engine or the
# panic-isolating experiment pool — plus retry, partial-report and
# cancel-under-fault coverage. Deterministic: failures reproduce exactly.
stress:
	$(GO) test -timeout 20m -run 'TestStress' ./internal/experiments/

# The committed perf trajectory: run the engine-throughput benches and
# regenerate $(BENCH_OUT) (schema in docs/PERF.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineThroughput' -benchmem -count 1 . \
		| $(GO) run ./cmd/nubabench -o $(BENCH_OUT)

# Regenerate the committed partition plan (docs/SHARDING.md). CI and
# TestShardMapMatchesCommitted fail when docs/shardmap.json drifts from
# `nubalint -shardmap` output; rerun this and review the diff.
shardmap:
	$(GO) run ./cmd/nubalint -shardmap ./... > docs/shardmap.json

check: vet build lint fmt-check docs-check test race sanitize stress

clean:
	$(GO) clean ./...
