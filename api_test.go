package nuba

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestSmokeAllArchitectures runs one benchmark end-to-end on every
// architecture at reduced scale, checking completion and sane statistics.
func TestSmokeAllArchitectures(t *testing.T) {
	bench, err := BenchmarkByAbbr("BP")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{Baseline(), SMSideConfig(), NUBAConfig()} {
		cfg := cfg.Scale(0.25)
		res, err := Run(context.Background(), cfg, bench)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		st := res.Stats
		t.Logf("%s: %s", cfg.Name(), st)
		if st.Cycles <= 0 || st.Instructions <= 0 || st.Replies == 0 {
			t.Fatalf("%s: empty run: %+v", cfg.Name(), st)
		}
	}
}

func TestConfigConstructors(t *testing.T) {
	for _, cfg := range []Config{Baseline(), SMSideConfig(), NUBAConfig(),
		MCMConfig(UBAMem), MCMConfig(NUBA)} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
	}
	if Baseline().Arch != UBAMem || NUBAConfig().Arch != NUBA || SMSideConfig().Arch != UBASMSide {
		t.Fatal("constructor arch mismatch")
	}
	if NUBAConfig().Placement != LAB || NUBAConfig().Replication != MDR {
		t.Fatal("NUBA defaults wrong")
	}
}

func TestConfigDerivations(t *testing.T) {
	c := Baseline()
	if c.Scale(0.5).NumSMs != 32 || c.Scale(2).NumChannels != 64 {
		t.Fatal("Scale wrong")
	}
	narrow, wide := c.WithNoC(700), c.WithNoC(5600)
	if narrow.NoCPortBytes() != 8 || wide.NoCPortBytes() != 64 {
		t.Fatal("NoC width derivation wrong")
	}
	p := c.WithPartition(4)
	if p.NumLLCSlices != 128 || p.NumLLCSlices*p.LLCSliceBytes != c.NumLLCSlices*c.LLCSliceBytes {
		t.Fatal("WithPartition must preserve capacity")
	}
	l := c.WithLLCCapacity(2)
	if l.LLCSliceBytes != 2*c.LLCSliceBytes {
		t.Fatal("WithLLCCapacity wrong")
	}
}

func TestSuiteAccessors(t *testing.T) {
	if len(Suite()) != 29 || len(LowSharing())+len(HighSharing()) != 29 {
		t.Fatal("suite split wrong")
	}
	if _, err := BenchmarkByAbbr("nope"); err == nil {
		t.Fatal("bad abbr accepted")
	}
}

func TestParseKernelAPI(t *testing.T) {
	k, err := ParseKernel(`
.kernel t
.param .ptr A
  mov r0, %tid
  shl r1, r0, 3
  ld.global.u64 r2, [A + r1]
  exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Analyzed || !k.Buffers[0].ReadOnly {
		t.Fatal("ParseKernel must run the read-only analysis")
	}
	if _, err := ParseKernel("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRunLaunchesAPI(t *testing.T) {
	cfg := NUBAConfig().Scale(0.125)
	res, err := RunLaunches(cfg, func(sys *System) ([]*Launch, error) {
		k, err := ParseKernel(`
.kernel mini
.param .ptr A
.param .ptr B
  mov r0, %tid
  mov r1, %ctaid
  mad r2, r1, %ntid, r0
  shl r3, r2, 3
  ld.global.u64 r4, [A + r3]
  st.global.u64 [B + r3], r4
  exit
`)
		if err != nil {
			return nil, err
		}
		size := uint64(16 * 256 * 8)
		return []*Launch{{
			Kernel: k, GridDim: 16, CTAThreads: 256,
			Buffers: []Binding{
				{Base: sys.NewBuffer(size), Size: size},
				{Base: sys.NewBuffer(size), Size: size},
			},
		}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles == 0 || res.Energy.TotalNJ() <= 0 {
		t.Fatal("empty result")
	}
	if res.Sharing.Pages() == 0 {
		t.Fatal("no sharing data")
	}
}

// TestRunContextCancellation: a canceled context must abort the
// simulation instead of running it to completion.
func TestRunContextCancellation(t *testing.T) {
	bench, err := BenchmarkByAbbr("BP")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, NUBAConfig().Scale(0.125), bench); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunSuiteMatchesRun: RunSuite must return results in input order
// that match individual Run calls, for any worker count.
func TestRunSuiteMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	var benches []Benchmark
	for _, abbr := range []string{"BP", "LEU"} {
		b, err := BenchmarkByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, b)
	}
	cfg := NUBAConfig().Scale(0.125)

	var events int
	results, err := RunSuite(context.Background(), cfg, benches,
		WithWorkers(4),
		WithProgress(func(RunEvent) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(benches) || events != len(benches) {
		t.Fatalf("got %d results, %d events for %d benchmarks", len(results), events, len(benches))
	}
	for i, b := range benches {
		serial, err := Run(context.Background(), cfg, b)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Stats.Cycles != serial.Stats.Cycles {
			t.Fatalf("%s: RunSuite %d cycles, Run %d cycles",
				b.Abbr, results[i].Stats.Cycles, serial.Stats.Cycles)
		}
	}
}

// TestRunSuiteCancellation: RunSuite under a pre-canceled context
// returns ctx.Err() without simulating.
func TestRunSuiteCancellation(t *testing.T) {
	b, err := BenchmarkByAbbr("BP")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuite(ctx, NUBAConfig().Scale(0.125), []Benchmark{b, b}, WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunSuiteRejectsSingleRunOptions: WithTrace and WithLaunches make no
// sense across a concurrent batch and must be rejected up front.
func TestRunSuiteRejectsSingleRunOptions(t *testing.T) {
	b, err := BenchmarkByAbbr("BP")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := RunSuite(ctx, NUBAConfig(), []Benchmark{b}, WithTrace(&TraceOptions{})); err == nil {
		t.Fatal("RunSuite accepted WithTrace")
	}
	if _, err := RunSuite(ctx, NUBAConfig(), []Benchmark{b},
		WithLaunches(func(*System) ([]*Launch, error) { return nil, nil })); err == nil {
		t.Fatal("RunSuite accepted WithLaunches")
	}
}

// TestDeprecatedWrappersDelegate: the pre-unification entry points must
// remain thin shims over the unified Run, producing identical results.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	bench, err := BenchmarkByAbbr("BP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := NUBAConfig().Scale(0.125)
	ctx := context.Background()
	unified, err := Run(ctx, cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	viaContext, err := RunContext(ctx, cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	viaTraced, err := RunTraced(ctx, cfg, bench, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"RunContext": viaContext, "RunTraced": viaTraced} {
		if res.Stats.Cycles != unified.Stats.Cycles {
			t.Errorf("%s: %d cycles, unified Run %d", name, res.Stats.Cycles, unified.Stats.Cycles)
		}
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := &Result{Stats: &Stats{Cycles: 50}}
	b := &Result{Stats: &Stats{Cycles: 100}}
	if Speedup(a, b) != 2 {
		t.Fatal("speedup wrong")
	}
	if Speedup(&Result{Stats: &Stats{}}, b) != 0 {
		t.Fatal("zero-cycle guard missing")
	}
}

func TestConfigNames(t *testing.T) {
	cfg := NUBAConfig()
	n := cfg.Name()
	if !strings.Contains(n, "NUBA") || !strings.Contains(n, "LAB") || !strings.Contains(n, "MDR") {
		t.Fatalf("name %q", n)
	}
}
