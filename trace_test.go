package nuba

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/nuba-gpu/nuba/internal/trace"
)

// tracedBP runs BP once, traced, at reduced scale; cached across the
// tests that inspect the emitted streams.
var tracedBP = sync.OnceValues(func() (struct{ series, chrome []byte }, error) {
	var out struct{ series, chrome []byte }
	b, err := BenchmarkByAbbr("BP")
	if err != nil {
		return out, err
	}
	var series, chrome bytes.Buffer
	topts := &TraceOptions{Series: &series, Chrome: &chrome}
	if _, err := RunTraced(context.Background(), NUBAConfig().Scale(0.125), b, topts); err != nil {
		return out, err
	}
	out.series, out.chrome = series.Bytes(), chrome.Bytes()
	return out, nil
})

// The acceptance bar of the tracing subsystem: for one (Config,
// Benchmark) the trace byte streams are identical across worker counts
// and across runs, and tracing never changes the simulated result.
func TestTraceDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	var benches []Benchmark
	for _, abbr := range []string{"BP", "AN"} {
		b, err := BenchmarkByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, b)
	}
	cfg := NUBAConfig().Scale(0.125)

	type sinks struct{ series, chrome bytes.Buffer }
	capture := func(jobs int) map[string]*sinks {
		t.Helper()
		byAbbr := make(map[string]*sinks, len(benches))
		for _, b := range benches {
			byAbbr[b.Abbr] = &sinks{}
		}
		_, err := RunSuite(context.Background(), cfg, benches,
			WithWorkers(jobs),
			WithBenchTrace(func(b Benchmark) *TraceOptions {
				s := byAbbr[b.Abbr] // read-only map access: concurrency-safe
				return &TraceOptions{Series: &s.series, Chrome: &s.chrome}
			}))
		if err != nil {
			t.Fatal(err)
		}
		return byAbbr
	}

	serial, parallel, again := capture(1), capture(8), capture(8)
	for _, b := range benches {
		if !bytes.Equal(serial[b.Abbr].series.Bytes(), parallel[b.Abbr].series.Bytes()) {
			t.Errorf("%s: NDJSON trace differs between -jobs=1 and -jobs=8", b.Abbr)
		}
		if !bytes.Equal(serial[b.Abbr].chrome.Bytes(), parallel[b.Abbr].chrome.Bytes()) {
			t.Errorf("%s: Chrome trace differs between -jobs=1 and -jobs=8", b.Abbr)
		}
		if !bytes.Equal(parallel[b.Abbr].series.Bytes(), again[b.Abbr].series.Bytes()) {
			t.Errorf("%s: NDJSON trace differs between identical runs", b.Abbr)
		}
		if serial[b.Abbr].series.Len() == 0 {
			t.Errorf("%s: empty NDJSON trace", b.Abbr)
		}
	}

	// Passivity: a traced run simulates the exact same cycles.
	b := benches[0] // BP
	plain, err := RunContext(context.Background(), cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	res, err := RunTraced(context.Background(), cfg, b, &TraceOptions{Series: &sink})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cycles != plain.Stats.Cycles {
		t.Errorf("traced run took %d cycles, untraced %d", res.Stats.Cycles, plain.Stats.Cycles)
	}
}

// Every field the tracer emits — in either sink, at any nesting — must
// be documented (backticked) in docs/OBSERVABILITY.md. The harvest runs
// over a real traced run plus a synthetic emission of the record types
// (placement events, held MDR decisions) a short BP run does not hit.
func TestTraceSchemaDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}

	keys := make(map[string]bool)
	var collect func(v any)
	collect = func(v any) {
		if m, ok := v.(map[string]any); ok {
			for k, sub := range m {
				keys[k] = true
				collect(sub)
			}
		}
	}

	traced, err := tracedBP()
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(traced.series)), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("NDJSON line %d invalid: %v\n%s", i+1, err, line)
		}
		collect(v)
	}
	var events []map[string]any
	if err := json.Unmarshal(traced.chrome, &events); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	for _, ev := range events {
		collect(ev)
	}

	// Record types the BP run does not emit, driven synthetically so
	// their fields are harvested too.
	var series, chrome bytes.Buffer
	tr := trace.New(trace.Options{EpochCycles: 100, Series: &series, Chrome: &chrome}, 1)
	tr.Begin(trace.Meta{Bench: "synthetic", Config: "synthetic", Partitions: 1})
	tr.MDRDecision(trace.MDRDecision{Cycle: 100, Epoch: 1, Held: true})
	tr.PageMigration(1, 1, 0, 1)
	tr.PageReplication(2, 1, 1)
	tr.ReplicaCollapse(3, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(series.String()), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatal(err)
		}
		collect(v)
	}
	events = nil
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		collect(ev)
	}

	if len(keys) < 30 {
		t.Fatalf("harvested only %d keys — tracing broken?", len(keys))
	}
	for k := range keys {
		if !bytes.Contains(doc, []byte("`"+k+"`")) {
			t.Errorf("emitted field %q is not documented in docs/OBSERVABILITY.md", k)
		}
	}
}

// The Chrome sink of a real run must be structurally valid trace_event
// JSON: known phases, required fields per phase, named lanes, and the
// counter tracks the schema promises.
func TestTraceChromeExport(t *testing.T) {
	traced, err := tracedBP()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traced.chrome, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace is empty")
	}
	need := map[string][]string{
		"M": {"name", "ph", "pid", "args"},
		"X": {"name", "ph", "pid", "tid", "ts", "dur", "cat"},
		"i": {"name", "ph", "pid", "tid", "ts", "s"},
		"C": {"name", "ph", "pid", "ts", "args"},
	}
	seen := map[string]bool{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		fields, ok := need[ph]
		if !ok {
			t.Fatalf("unknown phase %q: %v", ph, ev)
		}
		seen[ph] = true
		for _, f := range fields {
			if _, ok := ev[f]; !ok {
				t.Fatalf("%q event missing %q: %v", ph, f, ev)
			}
		}
		if ts, ok := ev["ts"].(float64); ok && ts < 0 {
			t.Fatalf("negative timestamp: %v", ev)
		}
	}
	for _, ph := range []string{"M", "X", "C"} {
		if !seen[ph] {
			t.Errorf("no %q events in a traced BP run", ph)
		}
	}
	for _, name := range []string{"kernels", "MDR epochs", "page placement", "npb", "replies_per_cycle"} {
		found := false
		for _, ev := range events {
			if n, _ := ev["name"].(string); n == name ||
				(ev["ph"] == "M" && fmt.Sprint(ev["args"]) == fmt.Sprintf("map[name:%s]", name)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("chrome trace has no %q track", name)
		}
	}
}
