module github.com/nuba-gpu/nuba

go 1.22
