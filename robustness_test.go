package nuba

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/nuba-gpu/nuba/internal/core"
	"github.com/nuba-gpu/nuba/internal/fault"
	"github.com/nuba-gpu/nuba/internal/trace"
)

// runCappedWatchdog mirrors runCapped (engines_test.go) with the
// forward-progress watchdog armed at the given window (0 = off).
func runCappedWatchdog(t *testing.T, cfg Config, b Benchmark, window int64) cappedCapture {
	t.Helper()
	g, err := core.New(cfg)
	if err != nil {
		t.Fatalf("%s: %v", b.Abbr, err)
	}
	g.SetWatchdog(window)
	var series bytes.Buffer
	tr := trace.New(trace.Options{Series: &series, EpochCycles: 10_000}, cfg.CoreClockGHz)
	tr.Begin(trace.Meta{Bench: b.Abbr, Config: cfg.Name(), Partitions: cfg.NumPartitions()})
	g.AttachTracer(tr)
	launches, err := b.Build(g.NewBuffer)
	if err != nil {
		t.Fatalf("%s: build: %v", b.Abbr, err)
	}
	outcome := "drained"
	if err := g.RunProgramContext(context.Background(), launches); err != nil {
		if !strings.Contains(err.Error(), "exceeded MaxCycles") {
			t.Fatalf("%s: window=%d: unexpected error: %v", b.Abbr, window, err)
		}
		outcome = err.Error()
	}
	st := g.Stats()
	return cappedCapture{
		report:  fmt.Sprintf("%+v\n%s", *st, DetailTable(st)),
		series:  series.Bytes(),
		outcome: outcome,
	}
}

// TestWatchdogSuiteNoFalsePositives is the watchdog's false-positive
// proof over the whole Table 2 suite: with the watchdog armed, every
// capped benchmark run must end exactly as the unwatched run does —
// same drained/capped outcome (any *HangError fails the helper
// immediately), same counters, same trace bytes. The watchdog reads
// only pure state signatures, so byte-identity is the contract, not
// just a nice-to-have.
func TestWatchdogSuiteNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; runs every benchmark twice")
	}
	cfg := NUBAConfig().Scale(0.125)
	cfg.MaxCycles = 256 * 1024
	for _, b := range Suite() {
		off := runCappedWatchdog(t, cfg, b, 0)
		on := runCappedWatchdog(t, cfg, b, 32*1024)
		if off.outcome != on.outcome {
			t.Errorf("%s: outcomes diverge\nwatchdog off: %s\nwatchdog on:  %s", b.Abbr, off.outcome, on.outcome)
		}
		if off.report != on.report {
			t.Errorf("%s: reports diverge with the watchdog armed\noff: %s\non:  %s",
				b.Abbr, off.report, on.report)
		}
		if !bytes.Equal(off.series, on.series) {
			t.Errorf("%s: NDJSON epoch traces diverge with the watchdog armed", b.Abbr)
		}
		if len(off.series) == 0 {
			t.Errorf("%s: empty trace — comparison is vacuous", b.Abbr)
		}
	}
}

// TestRunRecoversInjectedPanic: a panic inside the simulator surfaces
// from Run as a one-line *PanicError carrying the stack, instead of
// killing the process.
func TestRunRecoversInjectedPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	b, err := BenchmarkByAbbr("MVT")
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{Faults: []fault.Fault{{Kind: fault.PanicAt, At: 2000}}}
	_, err = Run(context.Background(), NUBAConfig().Scale(0.125), b, WithArm(spec.Arm))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("recovered panic carries no usable stack")
	}
	if msg := err.Error(); strings.Contains(msg, "\n") || !strings.Contains(msg, "panic") {
		t.Fatalf("Error() must be a single line naming the panic: %q", msg)
	}
}

// TestWatchdogCyclesOption: the public WithWatchdog option catches an
// injected stall as a *HangError with a populated report.
func TestWatchdogCyclesOption(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	b, err := BenchmarkByAbbr("MVT")
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{Faults: []fault.Fault{{Kind: fault.StallNoC, Target: 0, At: 1000}}}
	cfg := NUBAConfig().Scale(0.125)
	cfg.MaxCycles = 4 << 20
	_, err = Run(context.Background(), cfg, b,
		WithWatchdog(WatchdogOptions{NoProgressCycles: 16384}), WithArm(spec.Arm))
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("want *HangError, got %v", err)
	}
	if len(he.Report.Stuck) == 0 || he.Report.Reason == "" {
		t.Fatalf("hang report incomplete: %+v", he.Report)
	}
}

// TestWatchdogCatchesWedgeOnNonZeroPartitionParallel: the partition
// audit regression for the parallel engine. Fault targets are global
// component indices resolved pre-run (before any worker goroutine
// exists), and the watchdog samples its progress signature only at
// batch boundaries while every worker is parked — so a fault injected
// into a partition owned by a background worker, not the coordinator,
// must be armed, simulated and detected exactly as under the serial
// engines. Wedging the machine's LAST SM (highest partition, always a
// background worker's block at full fan-out) would silently pass if
// either Arm or the watchdog sampled only coordinator-owned state.
func TestWatchdogCatchesWedgeOnNonZeroPartitionParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	b, err := BenchmarkByAbbr("MVT")
	if err != nil {
		t.Fatal(err)
	}
	cfg := NUBAConfig().Scale(0.125)
	cfg.MaxCycles = 4 << 20
	lastSM := cfg.NumSMs - 1
	if part := cfg.PartitionOfSM(lastSM); part == 0 {
		t.Fatalf("test needs a multi-partition config; SM %d is on partition 0", lastSM)
	}
	spec := &fault.Spec{Faults: []fault.Fault{{Kind: fault.WedgeSM, Target: lastSM, At: 2000}}}
	want := fmt.Sprintf("SM %d", lastSM)
	for _, e := range []Engine{EngineHybrid, EngineParallel} {
		_, err := Run(context.Background(), cfg, b,
			WithEngine(e), WithPartitionWorkers(0),
			WithWatchdog(WatchdogOptions{NoProgressCycles: 16384}), WithArm(spec.Arm))
		var he *HangError
		if !errors.As(err, &he) {
			t.Fatalf("%v engine: want *HangError, got %v", e, err)
		}
		found := false
		for _, c := range he.Report.Stuck {
			if c.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%v engine: hang report does not name the wedged %s: %+v", e, want, he.Report.Stuck)
		}
	}
}

// TestWatchdogWallClockBudget: the wall-clock half of WatchdogOptions
// converts a runaway run into a *HangError with a component snapshot,
// even with the cycle-based watchdog off.
func TestWatchdogWallClockBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	b, err := BenchmarkByAbbr("MVT")
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{Faults: []fault.Fault{{Kind: fault.StallNoC, Target: 0, At: 1000}}}
	cfg := NUBAConfig().Scale(0.125)
	cfg.MaxCycles = 1 << 40 // effectively uncapped: only the budget can stop it
	start := time.Now()
	_, err = Run(context.Background(), cfg, b,
		WithWatchdog(WatchdogOptions{WallClock: 300 * time.Millisecond}), WithArm(spec.Arm))
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("want *HangError, got %v", err)
	}
	if he.Report.Reason != "wall-clock-budget" {
		t.Fatalf("want wall-clock-budget report, got %q", he.Report.Reason)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("budget enforcement took %s", elapsed)
	}
}
