// Nocsweep reproduces the Figure 10 trade-off on a small benchmark set:
// sweep the NoC bandwidth for UBA and NUBA and print the performance /
// NoC-power frontier. The headline: NUBA with a 700 GB/s NoC matches (or
// beats) UBA with far more NoC bandwidth, at a fraction of the power.
//
//	go run ./examples/nocsweep
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/nuba-gpu/nuba"
)

func main() {
	benches := []string{"LBM", "SGEMM", "AN"}
	fmt.Println("arch      NoC GB/s   geomean speedup vs UBA@1400   NoC power (W)")

	// Baseline runs.
	base := map[string]int64{}
	for _, abbr := range benches {
		b, err := nuba.BenchmarkByAbbr(abbr)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nuba.Run(context.Background(), nuba.Baseline().Scale(0.5), b)
		if err != nil {
			log.Fatal(err)
		}
		base[abbr] = res.Stats.Cycles
	}

	for _, arch := range []string{"UBA", "NUBA"} {
		for _, gbs := range []float64{700, 1400, 2800} {
			cfg := nuba.Baseline()
			if arch == "NUBA" {
				cfg = nuba.NUBAConfig()
			}
			cfg = cfg.WithNoC(gbs).Scale(0.5)
			prod, power := 1.0, 0.0
			for _, abbr := range benches {
				b, _ := nuba.BenchmarkByAbbr(abbr)
				res, err := nuba.Run(context.Background(), cfg, b)
				if err != nil {
					log.Fatal(err)
				}
				prod *= float64(base[abbr]) / float64(res.Stats.Cycles)
				power += nuba.NoCPowerW(res.Energy, res.Stats.Cycles, cfg.CoreClockGHz)
			}
			speedup := math.Pow(prod, 1.0/float64(len(benches)))
			fmt.Printf("%-8s  %-8.0f   %-27.2f   %.2f\n", arch, gbs, speedup, power/float64(len(benches)))
		}
	}
}
