// Replication demonstrates Section 5: Model-Driven Replication (MDR)
// against never replicating and always replicating, on a workload where
// replication pays (SGEMM's small lockstep panel window) and one where it
// thrashes the LLC (B+tree's 12 MB random-access tree). MDR's analytical
// model should pick the right answer in both cases.
//
//	go run ./examples/replication
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/nuba-gpu/nuba"
)

func main() {
	for _, abbr := range []string{"SGEMM", "BT"} {
		bench, err := nuba.BenchmarkByAbbr(abbr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", bench.Name)
		var noRepCycles int64
		for _, rep := range []struct {
			name   string
			policy nuba.ReplicationPolicy
		}{
			{"No-Rep", nuba.NoRep},
			{"Full-Rep", nuba.FullRep},
			{"MDR", nuba.MDR},
		} {
			cfg := nuba.NUBAConfig().Scale(0.5)
			cfg.Replication = rep.policy
			res, err := nuba.Run(context.Background(), cfg, bench)
			if err != nil {
				log.Fatal(err)
			}
			if noRepCycles == 0 {
				noRepCycles = res.Stats.Cycles
			}
			st := res.Stats
			extra := ""
			if st.MDRDecisions > 0 {
				extra = fmt.Sprintf("  (MDR: %d/%d epochs replicating)",
					st.MDREpochsReplicating, st.MDRDecisions)
			}
			fmt.Printf("  %-9s cycles=%-9d llcHit=%.2f replicated=%.2f  vs No-Rep %+.1f%%%s\n",
				rep.name, st.Cycles, st.LLCHitRate(),
				float64(st.ReplicatedAccesses)/float64(max64(1, st.LocalAccesses+st.RemoteAccesses)),
				(float64(noRepCycles)/float64(st.Cycles)-1)*100, extra)
		}
		fmt.Println()
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
