// Quickstart: build the paper's NUBA GPU, run one benchmark, and print
// the headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/nuba-gpu/nuba"
)

func main() {
	// The three headline systems of the paper. Scale(0.5) gives a 32-SM
	// GPU so the example finishes in seconds; drop it for the full
	// 64-SM Table 1 configuration.
	uba := nuba.Baseline().Scale(0.5)
	nubaCfg := nuba.NUBAConfig().Scale(0.5)

	bench, err := nuba.BenchmarkByAbbr("SGEMM")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %s on %s and %s...\n\n", bench.Name, uba.Name(), nubaCfg.Name())
	base, err := nuba.Run(context.Background(), uba, bench)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nuba.Run(context.Background(), nubaCfg, bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "UBA", "NUBA")
	fmt.Printf("%-28s %12d %12d\n", "cycles", base.Stats.Cycles, res.Stats.Cycles)
	fmt.Printf("%-28s %12.2f %12.2f\n", "warp IPC", base.IPC(), res.IPC())
	fmt.Printf("%-28s %12.3f %12.3f\n", "perceived BW (replies/cyc)",
		base.Stats.RepliesPerCycle(), res.Stats.RepliesPerCycle())
	fmt.Printf("%-28s %12.2f %12.2f\n", "local access fraction",
		base.Stats.LocalFraction(), res.Stats.LocalFraction())
	fmt.Printf("\nNUBA speedup over UBA: %.2fx\n", nuba.Speedup(res, base))
}
