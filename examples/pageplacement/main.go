// Pageplacement demonstrates Section 4: the Local-And-Balanced (LAB) page
// placement policy against first-touch and round-robin, on one
// low-sharing and one high-sharing workload. First-touch wins on private
// data but collapses when shared pages pile onto few channels;
// round-robin is safe but never local; LAB tracks the better of the two.
//
//	go run ./examples/pageplacement
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/nuba-gpu/nuba"
)

func main() {
	policies := []struct {
		name string
		p    int
	}{
		{"first-touch", 0},
		{"round-robin", 1},
		{"LAB", 2},
	}
	for _, abbr := range []string{"BP", "SGEMM"} {
		bench, err := nuba.BenchmarkByAbbr(abbr)
		if err != nil {
			log.Fatal(err)
		}
		class := "low-sharing"
		if bench.High {
			class = "high-sharing"
		}
		fmt.Printf("== %s (%s) on the NUBA GPU ==\n", bench.Name, class)
		var baseCycles int64
		for _, pol := range policies {
			cfg := nuba.NUBAConfig().Scale(0.5)
			cfg.Replication = nuba.NoRep // isolate placement effects
			switch pol.p {
			case 0:
				cfg.Placement = nuba.FirstTouch
			case 1:
				cfg.Placement = nuba.RoundRobin
			case 2:
				cfg.Placement = nuba.LAB
			}
			res, err := nuba.Run(context.Background(), cfg, bench)
			if err != nil {
				log.Fatal(err)
			}
			if baseCycles == 0 {
				baseCycles = res.Stats.Cycles
			}
			fmt.Printf("  %-12s cycles=%-9d local=%.2f  vs first-touch %+.1f%%\n",
				pol.name, res.Stats.Cycles, res.Stats.LocalFraction(),
				(float64(baseCycles)/float64(res.Stats.Cycles)-1)*100)
		}
		fmt.Println()
	}
}
