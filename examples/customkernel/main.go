// Customkernel shows the low-level API: write a kernel in the PTX-like
// IR, let the compiler's data-flow analysis mark read-only buffers, and
// run it on a NUBA system with custom buffer bindings.
//
//	go run ./examples/customkernel
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/nuba-gpu/nuba"
)

// A dot-product-style kernel: every thread reads a private stripe of A
// and the whole shared vector V (read-only — the analysis will rewrite
// its loads to ld.global.ro, making them replication candidates).
const src = `
.kernel dotstripe
.param .ptr A
.param .ptr V
.param .ptr OUT
.param .u64 k
  mov r0, %tid
  mov r1, %ctaid
  mad r2, r1, %ntid, r0
  mul r3, r2, k
  mov r4, 0
  mov r5, 0
loop:
  add r6, r3, r4
  shl r6, r6, 3
  ld.global.u64 r7, [A + r6]
  shl r8, r4, 3
  ld.global.u64 r9, [V + r8]
  mad r5, r7, r9, r5
  add r4, r4, 1
  setp.lt p0, r4, k
  @p0 bra loop
  shl r10, r2, 3
  st.global.u64 [OUT + r10], r5
  exit
`

func main() {
	kernel, err := nuba.ParseKernel(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range kernel.Buffers {
		fmt.Printf("buffer %-4s read-only=%v\n", b.Name, b.ReadOnly)
	}

	cfg := nuba.NUBAConfig().Scale(0.25) // 16 SMs for a fast demo
	const (
		grid = 128
		k    = 16
	)
	res, err := nuba.Run(context.Background(), cfg, nuba.Benchmark{}, nuba.WithLaunches(func(sys *nuba.System) ([]*nuba.Launch, error) {
		n := uint64(grid * 256)
		asize := n * k * 8
		vsize := uint64(k * 8)
		l := &nuba.Launch{
			Kernel:     kernel,
			GridDim:    grid,
			CTAThreads: 256,
			Scalars:    []int64{k},
			Buffers: []nuba.Binding{
				{Base: sys.NewBuffer(asize), Size: asize},
				{Base: sys.NewBuffer(vsize), Size: vsize},
				{Base: sys.NewBuffer(n * 8), Size: n * 8},
			},
		}
		return []*nuba.Launch{l}, nil
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncycles=%d ipc=%.2f local=%.2f replies/cyc=%.3f\n",
		res.Stats.Cycles, res.IPC(), res.Stats.LocalFraction(), res.Stats.RepliesPerCycle())
}
