// Command nubareport runs every reproduction experiment and writes a
// single report (EXPERIMENTS.md-style) to stdout or a file. This is the
// long-running "regenerate the whole evaluation" entry point; expect a
// multi-hour run at full scale.
//
// Usage:
//
//	nubareport [-o report.md] [-scale 0.5] [-bench A,B,...] [-skip fig10,fig16]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/nuba-gpu/nuba/internal/experiments"
	"github.com/nuba-gpu/nuba/internal/workload"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	scale := flag.Float64("scale", 1, "GPU scale factor")
	benchList := flag.String("bench", "", "comma-separated benchmark subset")
	skip := flag.String("skip", "", "comma-separated experiments to skip")
	verbose := flag.Bool("v", false, "per-run progress on stderr")
	flag.Parse()

	opts := experiments.Options{Scale: *scale}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *benchList != "" {
		for _, abbr := range strings.Split(*benchList, ",") {
			b, err := workload.ByAbbr(strings.TrimSpace(abbr))
			if err != nil {
				fmt.Fprintln(os.Stderr, "nubareport:", err)
				os.Exit(2)
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	skipSet := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skipSet[s] = true
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nubareport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	r := experiments.NewRunner(opts)
	fmt.Fprintf(w, "# NUBA reproduction report\n\n")
	for _, e := range experiments.All() {
		if skipSet[e.Name] {
			fmt.Fprintf(w, "## %s — SKIPPED\n\n", e.Title)
			continue
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== %s ==\n", e.Name)
		report, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(w, "## %s\n\nERROR: %v\n\n", e.Title, err)
			continue
		}
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n(%.0fs)\n\n", e.Title, report, time.Since(start).Seconds())
	}
}
