// Command nubareport runs every reproduction experiment and writes a
// single report (EXPERIMENTS.md-style) to stdout or a file. This is the
// long-running "regenerate the whole evaluation" entry point; simulations
// run across a worker pool (-jobs), and Ctrl-C stops the run cleanly
// after in-flight simulations wind down.
//
// Usage:
//
//	nubareport [-o report.md] [-jobs 8] [-scale 0.5] [-bench A,B,...] [-skip fig10,fig16]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/experiments"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	scale := flag.Float64("scale", 1, "GPU scale factor")
	benchList := flag.String("bench", "", "comma-separated benchmark subset")
	skip := flag.String("skip", "", "comma-separated experiments to skip")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "simulations to run in parallel (1 = serial)")
	verbose := flag.Bool("v", false, "per-run progress on stderr")
	engineFlag := flag.String("engine", "hybrid", nuba.EngineUsage())
	partWorkers := flag.Int("partition-workers", 0, "goroutines per simulation for -engine=parallel, 0 = one per partition (multiplies with -jobs; see docs/PARALLEL.md)")
	watchdog := flag.Int64("watchdog", 0, "fail a run once no component state changes for this many cycles while work is pending (0 = off)")
	retries := flag.Int("retries", 0, "retries per job for transient failures")
	flag.Parse()

	engine, err := nuba.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubareport:", err)
		os.Exit(2)
	}
	opts := experiments.Options{Scale: *scale, Jobs: *jobs, Engine: engine,
		PartitionWorkers: *partWorkers, Watchdog: *watchdog, Retries: *retries}
	if *verbose {
		opts.OnEvent = func(ev experiments.Event) {
			line := fmt.Sprintf("  [%d/%d] %-7s on %-28s cycles=%-9d elapsed=%s",
				ev.Done, ev.Total, ev.Bench, ev.Config, ev.Cycles, ev.Elapsed.Round(1e8))
			if ev.Remaining > 0 {
				line += fmt.Sprintf(" eta=%s", ev.Remaining.Round(1e9))
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if *benchList != "" {
		for _, abbr := range strings.Split(*benchList, ",") {
			b, err := nuba.BenchmarkByAbbr(strings.TrimSpace(abbr))
			if err != nil {
				fmt.Fprintln(os.Stderr, "nubareport:", err)
				os.Exit(2)
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	skipSet := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skipSet[s] = true
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nubareport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := experiments.NewRunner(opts)
	fmt.Fprintf(w, "# NUBA reproduction report\n\n")
	failed := 0
	for _, e := range experiments.All() {
		if skipSet[e.Name] {
			fmt.Fprintf(w, "## %s — SKIPPED\n\n", e.Title)
			continue
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== %s ==\n", e.Name)
		report, err := r.Execute(ctx, e)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(w, "## %s\n\nINTERRUPTED\n\n", e.Title)
				fmt.Fprintln(os.Stderr, "nubareport: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(w, "## %s\n\nERROR: %v\n\n", e.Title, err)
			failed++
			continue
		}
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n(%.0fs)\n\n", e.Title, report.Text, time.Since(start).Seconds())
	}
	// The runner is shared across experiments, so its failure list is the
	// whole run's; count it once rather than per experiment.
	failed += len(r.Failures())
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "nubareport: %d job(s) or experiment(s) failed; the report is partial\n", failed)
		os.Exit(1)
	}
}
