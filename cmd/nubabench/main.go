// Command nubabench turns `go test -bench` output into the committed
// BENCH_<n>.json perf-trajectory record (schema in docs/PERF.md). It
// reads the benchmark output on stdin, derives simulator-throughput
// metrics (ns per simulated cycle, simulated cycles per second) from the
// custom simcycles/run metric the benches report, pairs engine runs of
// the same workload into speedup entries (hybrid vs naive, parallel vs
// hybrid), and folds the parallel engine's parallel-w<k> sub-benchmarks
// into a worker-scaling section. The record carries the converting
// host's CPU count so a scaling row measured on a small host is not
// mistaken for the engine's ceiling.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngineThroughput' -benchmem . | nubabench -o BENCH_10.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line of the record. Benchmark and Engine are
// filled for the BenchmarkEngineThroughput/<bench>/<engine> lines that
// carry the perf trajectory; other benchmarks keep only Name.
type Result struct {
	Name       string  `json:"name"`
	Benchmark  string  `json:"benchmark,omitempty"`
	Engine     string  `json:"engine,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// SimCycles and SimInstrs echo the benches' custom per-run metrics.
	SimCycles float64 `json:"sim_cycles,omitempty"`
	SimInstrs float64 `json:"sim_instrs,omitempty"`
	// NsPerSimCycle is NsPerOp / SimCycles; SimCyclesPerSec its inverse
	// in cycles per wall-clock second — the simulator's headline speed.
	NsPerSimCycle   float64 `json:"ns_per_sim_cycle,omitempty"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was set.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Workers is the pinned partition-worker count of a parallel-w<k>
	// scaling run; 0 for every other line (including the plain
	// "parallel" engine column, which runs at full fan-out).
	Workers int `json:"workers,omitempty"`
}

// Speedup pairs the engines on one workload.
type Speedup struct {
	Benchmark string `json:"benchmark"`
	// HybridVsNaive is naive ns/op over hybrid ns/op: >1 means the
	// idle-skip engine is faster on this workload.
	HybridVsNaive float64 `json:"hybrid_vs_naive"`
	// ParallelVsHybrid is hybrid ns/op over full-fan-out parallel
	// ns/op: >1 means the partition-parallel engine is faster. Needs
	// GOMAXPROCS >= NumPartitions to mean anything — check host_cpus.
	ParallelVsHybrid float64 `json:"parallel_vs_hybrid,omitempty"`
}

// ScalingPoint is one worker count of the parallel engine's scaling row.
type ScalingPoint struct {
	Benchmark string  `json:"benchmark"`
	Workers   int     `json:"workers"`
	NsPerOp   float64 `json:"ns_per_op"`
	// VsOneWorker is the speedup over the same benchmark at workers=1:
	// ns/op(w=1) / ns/op(w=k).
	VsOneWorker float64 `json:"vs_one_worker,omitempty"`
}

// Report is the whole BENCH_<n>.json document.
type Report struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// HostCPUs is runtime.NumCPU() on the converting host (the machine
	// that ran `make bench`). Parallel-engine speedups are bounded by
	// it: a scaling row flat at 1.0x on a 1-CPU host says nothing about
	// the engine, only about the host.
	HostCPUs   int            `json:"host_cpus,omitempty"`
	Package    string         `json:"pkg,omitempty"`
	Benchmarks []Result       `json:"benchmarks"`
	Speedups   []Speedup      `json:"speedups,omitempty"`
	Scaling    []ScalingPoint `json:"scaling,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubabench:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "nubabench: no benchmark lines on stdin (pipe `go test -bench` output)")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubabench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nubabench:", err)
		os.Exit(1)
	}
	fmt.Printf("nubabench: wrote %d benchmarks (%d engine pairs) to %s\n",
		len(rep.Benchmarks), len(rep.Speedups), *out)
}

// parse consumes `go test -bench` output: the goos/goarch/pkg/cpu
// header, then one "BenchmarkName-P  iters  value unit  value unit ..."
// line per completed benchmark.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, hdr := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &rep.GOOS}, {"goarch: ", &rep.GOARCH},
			{"pkg: ", &rep.Package}, {"cpu: ", &rep.CPU},
		} {
			if v, ok := strings.CutPrefix(line, hdr.prefix); ok {
				*hdr.dst = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if res != nil {
			rep.Benchmarks = append(rep.Benchmarks, *res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.HostCPUs = runtime.NumCPU()
	rep.Speedups = pairSpeedups(rep.Benchmarks)
	rep.Scaling = scalingRows(rep.Benchmarks)
	return rep, nil
}

// parseBenchLine parses one benchmark result line, returning nil for
// non-result lines that merely start with "Benchmark" (the bare name
// echoed under -v).
func parseBenchLine(line string) (*Result, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, nil
	}
	res := &Result{Name: trimProcs(f[0]), Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q in %q", f[i], line)
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = val
		case "simcycles/run":
			res.SimCycles = val
		case "siminstrs/run":
			res.SimInstrs = val
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		}
	}
	if res.SimCycles > 0 && res.NsPerOp > 0 {
		res.NsPerSimCycle = res.NsPerOp / res.SimCycles
		res.SimCyclesPerSec = res.SimCycles / (res.NsPerOp / 1e9)
	}
	// BenchmarkEngineThroughput/<bench>/<engine> carries the trajectory.
	// The parallel engine's scaling runs arrive as engine
	// "parallel-w<k>"; they keep Engine "parallel" and record the pinned
	// worker count so pairSpeedups never mixes them with the full-fan-out
	// column.
	if parts := strings.Split(res.Name, "/"); len(parts) == 3 &&
		parts[0] == "BenchmarkEngineThroughput" {
		res.Benchmark, res.Engine = parts[1], parts[2]
		if w, ok := strings.CutPrefix(res.Engine, "parallel-w"); ok {
			if n, err := strconv.Atoi(w); err == nil && n > 0 {
				res.Engine, res.Workers = "parallel", n
			}
		}
	}
	return res, nil
}

// trimProcs strips the trailing GOMAXPROCS suffix ("-8") off a
// benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// pairSpeedups derives per-workload engine speedups — hybrid vs naive,
// full-fan-out parallel vs hybrid — for every workload that ran under
// both engines of a pair, sorted by workload name. Pinned-worker
// scaling runs (Workers > 0) are excluded; they feed scalingRows.
func pairSpeedups(results []Result) []Speedup {
	byEngine := make(map[string]map[string]float64) // bench -> engine -> ns/op
	for _, r := range results {
		if r.Benchmark == "" || r.Engine == "" || r.NsPerOp <= 0 || r.Workers > 0 {
			continue
		}
		if byEngine[r.Benchmark] == nil {
			byEngine[r.Benchmark] = make(map[string]float64)
		}
		byEngine[r.Benchmark][r.Engine] = r.NsPerOp
	}
	var names []string
	for name := range byEngine {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Speedup
	for _, name := range names {
		h, n := byEngine[name]["hybrid"], byEngine[name]["naive"]
		if h > 0 && n > 0 {
			s := Speedup{Benchmark: name, HybridVsNaive: n / h}
			if p := byEngine[name]["parallel"]; p > 0 {
				s.ParallelVsHybrid = h / p
			}
			out = append(out, s)
		}
	}
	return out
}

// scalingRows collects the parallel engine's pinned-worker runs into the
// scaling section, sorted by workload then worker count, with each row's
// speedup over its own workers=1 baseline.
func scalingRows(results []Result) []ScalingPoint {
	var rows []ScalingPoint
	base := make(map[string]float64) // bench -> ns/op at workers=1
	for _, r := range results {
		if r.Engine != "parallel" || r.Workers <= 0 || r.NsPerOp <= 0 {
			continue
		}
		rows = append(rows, ScalingPoint{Benchmark: r.Benchmark, Workers: r.Workers, NsPerOp: r.NsPerOp})
		if r.Workers == 1 {
			base[r.Benchmark] = r.NsPerOp
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Benchmark != rows[j].Benchmark {
			return rows[i].Benchmark < rows[j].Benchmark
		}
		return rows[i].Workers < rows[j].Workers
	})
	for i := range rows {
		if b := base[rows[i].Benchmark]; b > 0 {
			rows[i].VsOneWorker = b / rows[i].NsPerOp
		}
	}
	return rows
}
