// Command nubasweep runs one named reproduction experiment (a paper table
// or figure) and prints its report.
//
// Usage:
//
//	nubasweep -exp fig7 [-bench SGEMM,BICG] [-scale 0.5] [-v]
//	nubasweep -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/nuba-gpu/nuba/internal/experiments"
	"github.com/nuba-gpu/nuba/internal/workload"
)

func main() {
	exp := flag.String("exp", "", "experiment name (see -list)")
	benchList := flag.String("bench", "", "comma-separated benchmark abbreviations (default: full suite)")
	scale := flag.Float64("scale", 1, "GPU scale factor (1 = 64-SM baseline)")
	verbose := flag.Bool("v", false, "print per-run progress")
	list := flag.Bool("list", false, "list experiments and benchmarks")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Title)
		}
		fmt.Println("benchmarks:")
		for _, b := range workload.Suite() {
			cls := "low"
			if b.High {
				cls = "high"
			}
			fmt.Printf("  %-8s %-28s %s-sharing\n", b.Abbr, b.Name, cls)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "nubasweep: -exp required (or -list)")
		os.Exit(2)
	}
	opts := experiments.Options{Scale: *scale}
	if *verbose {
		opts.Progress = os.Stderr
	}
	if *benchList != "" {
		for _, abbr := range strings.Split(*benchList, ",") {
			b, err := workload.ByAbbr(strings.TrimSpace(abbr))
			if err != nil {
				fmt.Fprintln(os.Stderr, "nubasweep:", err)
				os.Exit(2)
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	e, err := experiments.ByName(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubasweep:", err)
		os.Exit(2)
	}
	r := experiments.NewRunner(opts)
	fmt.Printf("== %s ==\n", e.Title)
	report, err := e.Run(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubasweep:", err)
		os.Exit(1)
	}
	fmt.Print(report)
}
