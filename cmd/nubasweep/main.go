// Command nubasweep runs one named reproduction experiment (a paper table
// or figure) and prints its report. Simulations execute across a worker
// pool (-jobs); the report is byte-identical for any worker count.
//
// Usage:
//
//	nubasweep -exp fig7 [-jobs 8] [-bench SGEMM,BICG] [-scale 0.5] [-v]
//	nubasweep -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/experiments"
)

// progressPrinter returns an event sink that prints one line per
// completed run with counts, elapsed time and the linear-extrapolation
// ETA.
func progressPrinter(w *os.File) func(experiments.Event) {
	return func(ev experiments.Event) {
		line := fmt.Sprintf("  [%d/%d] %-7s on %-28s cycles=%-9d ipc=%.2f elapsed=%s",
			ev.Done, ev.Total, ev.Bench, ev.Config, ev.Cycles, ev.IPC, ev.Elapsed.Round(1e8))
		if ev.Remaining > 0 {
			line += fmt.Sprintf(" eta=%s", ev.Remaining.Round(1e9))
		}
		fmt.Fprintln(w, line)
	}
}

func main() {
	exp := flag.String("exp", "", "experiment name (see -list)")
	benchList := flag.String("bench", "", "comma-separated benchmark abbreviations (default: full suite)")
	scale := flag.Float64("scale", 1, "GPU scale factor (1 = 64-SM baseline)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "simulations to run in parallel (1 = serial)")
	verbose := flag.Bool("v", false, "print per-run progress")
	list := flag.Bool("list", false, "list experiments and benchmarks")
	engineFlag := flag.String("engine", "hybrid", nuba.EngineUsage())
	partWorkers := flag.Int("partition-workers", 0, "goroutines per simulation for -engine=parallel, 0 = one per partition (multiplies with -jobs; see docs/PARALLEL.md)")
	watchdog := flag.Int64("watchdog", 0, "fail a run once no component state changes for this many cycles while work is pending (0 = off)")
	retries := flag.Int("retries", 0, "retries per job for transient failures")
	flag.Parse()

	engine, err := nuba.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubasweep:", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Title)
		}
		fmt.Println("benchmarks:")
		for _, b := range nuba.Suite() {
			cls := "low"
			if b.High {
				cls = "high"
			}
			fmt.Printf("  %-8s %-28s %s-sharing\n", b.Abbr, b.Name, cls)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "nubasweep: -exp required (or -list)")
		os.Exit(2)
	}
	opts := experiments.Options{Scale: *scale, Jobs: *jobs, Engine: engine,
		PartitionWorkers: *partWorkers, Watchdog: *watchdog, Retries: *retries}
	if *verbose {
		opts.OnEvent = progressPrinter(os.Stderr)
	}
	if *benchList != "" {
		for _, abbr := range strings.Split(*benchList, ",") {
			b, err := nuba.BenchmarkByAbbr(strings.TrimSpace(abbr))
			if err != nil {
				fmt.Fprintln(os.Stderr, "nubasweep:", err)
				os.Exit(2)
			}
			opts.Benchmarks = append(opts.Benchmarks, b)
		}
	}
	e, err := experiments.ByName(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubasweep:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := experiments.NewRunner(opts)
	fmt.Printf("== %s ==\n", e.Title)
	report, err := r.Execute(ctx, e)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "nubasweep: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "nubasweep:", err)
		os.Exit(1)
	}
	fmt.Print(report.Text)
	if n := len(report.Failures); n > 0 {
		// The failed jobs are already detailed in the report's failures
		// section; exit non-zero so sweeps in scripts and CI notice.
		fmt.Fprintf(os.Stderr, "nubasweep: %d job(s) failed; the report above is partial\n", n)
		os.Exit(1)
	}
}
