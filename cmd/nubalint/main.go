// Command nubalint enforces the simulator's determinism, layering,
// liveness and dimensional invariants with a pure-stdlib static
// analysis (see internal/lint). It exits 0 when the tree is clean, 1 on
// findings, 2 on usage or load errors — vet-style, so `make lint` and
// CI can gate on it.
//
// Usage:
//
//	nubalint [-policy lint.policy] [-rules r1,r2] [-json] [-ownership] [-shardmap] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Rules: nondet-map-range, no-wallclock, import-layering,
// ctx-propagation, goroutine-in-core run per package;
// config-liveness, metrics-liveness, hint-purity, engine-contract and
// partition-isolation analyze the module-wide use graph;
// unit-consistency checks //nubaunit: dimensional annotations
// (default: all). Findings are suppressed in place with
// `//nubalint:ignore <rule> <reason>`; package scopes, file
// allowlists, the import DAG, the liveness structs/readers/writers
// sets and the wake-hint funcs set live in lint.policy.
//
// -json emits a deterministic, schema-stable array sorted by
// (file, line, col, rule); each finding carries a severity field
// (currently always "error": every rule gates CI).
//
// -ownership skips the rules and instead prints the field→writers map
// of every struct audited by partition-isolation — the auditing view
// of the same use-graph data the rule enforces.
//
// -shardmap skips the rules and instead prints the partition plan as
// deterministic JSON (schema nuba-shardmap/v1): for every component in
// `structs shard-footprint`, the transitive read/write footprint of its
// tick-and-hint closure grouped by owner and classification, plus the
// declared seams and the engine phase order. The committed copy lives
// at docs/shardmap.json; CI fails when the two drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/nuba-gpu/nuba/internal/lint"
)

func main() {
	policyPath := flag.String("policy", "", "policy file (default: lint.policy at the module root)")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array")
	rulesFlag := flag.String("rules", "", "comma-separated rules to run (default: all)")
	ownership := flag.Bool("ownership", false, "print the partition-isolation field->writers map instead of running rules")
	shardmap := flag.Bool("shardmap", false, "print the shard-safety partition map as JSON instead of running rules")
	flag.Parse()

	if *ownership {
		if err := runOwnership(*policyPath, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "nubalint:", err)
			os.Exit(2)
		}
		return
	}
	if *shardmap {
		if err := runShardMap(*policyPath, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "nubalint:", err)
			os.Exit(2)
		}
		return
	}
	if err := run(*policyPath, *rulesFlag, *jsonOut, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "nubalint:", err)
		os.Exit(2)
	}
}

// runOwnership loads the module and prints the audited field->writers
// report (see lint.OwnershipReport).
func runOwnership(policyPath string, patterns []string) error {
	mod, err := lint.FindModule(".")
	if err != nil {
		return err
	}
	if policyPath == "" {
		policyPath = filepath.Join(mod.Dir, "lint.policy")
	}
	pol, err := lint.ParsePolicy(policyPath)
	if err != nil {
		return err
	}
	prog, err := lint.Load(mod, patterns)
	if err != nil {
		return err
	}
	report, err := lint.OwnershipReport(prog, pol)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

// runShardMap loads the module and prints the shard-safety partition
// map (see lint.ShardMapJSON).
func runShardMap(policyPath string, patterns []string) error {
	mod, err := lint.FindModule(".")
	if err != nil {
		return err
	}
	if policyPath == "" {
		policyPath = filepath.Join(mod.Dir, "lint.policy")
	}
	pol, err := lint.ParsePolicy(policyPath)
	if err != nil {
		return err
	}
	prog, err := lint.Load(mod, patterns)
	if err != nil {
		return err
	}
	out, err := lint.ShardMapJSON(prog, pol)
	if err != nil {
		return err
	}
	os.Stdout.Write(out)
	return nil
}

func run(policyPath, rulesFlag string, jsonOut bool, patterns []string) error {
	mod, err := lint.FindModule(".")
	if err != nil {
		return err
	}
	if policyPath == "" {
		policyPath = filepath.Join(mod.Dir, "lint.policy")
	}
	pol, err := lint.ParsePolicy(policyPath)
	if err != nil {
		return err
	}

	var rules []string
	if rulesFlag != "" {
		for _, r := range strings.Split(rulesFlag, ",") {
			rules = append(rules, strings.TrimSpace(r))
		}
	}

	prog, err := lint.Load(mod, patterns)
	if err != nil {
		return err
	}
	diags, err := lint.Run(prog, pol, rules)
	if err != nil {
		return err
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "nubalint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
	return nil
}
