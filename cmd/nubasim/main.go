// Command nubasim runs one benchmark on one GPU configuration and prints
// the measured statistics — the quickest way to poke at the simulator.
//
// Usage:
//
//	nubasim -arch nuba -bench SGEMM
//	nubasim -arch uba -bench LBM -noc 700 -placement rr -replication none
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/energy"
)

func main() {
	arch := flag.String("arch", "nuba", "architecture: uba | sm-side | nuba")
	bench := flag.String("bench", "SGEMM", "benchmark abbreviation (see nubasweep -list)")
	nocGBs := flag.Float64("noc", 1400, "NoC bandwidth in GB/s")
	placement := flag.String("placement", "", "page placement: ft | rr | lab | migration | pagerep (default: arch default)")
	replication := flag.String("replication", "", "replication: none | full | mdr (default: arch default)")
	scale := flag.Float64("scale", 1, "GPU scale factor")
	pae := flag.Bool("pae", false, "use the PAE address mapping")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	var cfg nuba.Config
	switch strings.ToLower(*arch) {
	case "uba", "uba-mem":
		cfg = nuba.Baseline()
	case "sm-side", "uba-sm":
		cfg = nuba.SMSideConfig()
	case "nuba":
		cfg = nuba.NUBAConfig()
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	cfg = cfg.WithNoC(*nocGBs).Scale(*scale)
	cfg.Seed = *seed
	if *pae {
		cfg.AddressMap = nuba.PAE
	}
	switch strings.ToLower(*placement) {
	case "":
	case "ft", "first-touch":
		cfg.Placement = nuba.FirstTouch
	case "rr", "round-robin":
		cfg.Placement = nuba.RoundRobin
	case "lab":
		cfg.Placement = nuba.LAB
	case "migration":
		cfg.Placement = nuba.Migration
	case "pagerep", "page-replication":
		cfg.Placement = nuba.PageReplication
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown placement %q\n", *placement)
		os.Exit(2)
	}
	switch strings.ToLower(*replication) {
	case "":
	case "none", "no-rep":
		cfg.Replication = nuba.NoRep
	case "full":
		cfg.Replication = nuba.FullRep
	case "mdr":
		cfg.Replication = nuba.MDR
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown replication %q\n", *replication)
		os.Exit(2)
	}

	b, err := nuba.BenchmarkByAbbr(strings.ToUpper(*bench))
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubasim:", err)
		os.Exit(2)
	}
	fmt.Printf("running %s (%s) on %s...\n", b.Abbr, b.Name, cfg.Name())
	res, err := nuba.Run(cfg, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubasim:", err)
		os.Exit(1)
	}
	st := res.Stats
	fmt.Printf("cycles:            %d\n", st.Cycles)
	fmt.Printf("warp IPC:          %.3f\n", st.IPC())
	fmt.Printf("replies/cycle:     %.3f (perceived bandwidth)\n", st.RepliesPerCycle())
	fmt.Printf("L1 miss rate:      %.3f\n", st.L1MissRate())
	fmt.Printf("LLC hit rate:      %.3f\n", st.LLCHitRate())
	fmt.Printf("local fraction:    %.3f (replicated %.3f)\n", st.LocalFraction(),
		float64(st.ReplicatedAccesses)/float64(max64(1, st.LocalAccesses+st.RemoteAccesses)))
	fmt.Printf("DRAM reads/writes: %d / %d (row hit %.2f)\n", st.DRAMReads, st.DRAMWrites,
		float64(st.DRAMRowHits)/float64(max64(1, st.DRAMRowHits+st.DRAMRowMisses)))
	fmt.Printf("page faults:       %d (walks %d)\n", st.PageFaults, st.PageWalks)
	fmt.Printf("mem latency:       %.0f cycles avg\n", st.AvgMemLatency())
	one, two, eleven, over := res.Sharing.Buckets()
	fmt.Printf("page sharing:      1SM %.2f | 2-10 %.2f | 11-25 %.2f | >25 %.2f (%d pages)\n",
		one, two, eleven, over, res.Sharing.Pages())
	fmt.Printf("energy (mJ):       NoC %.3f | DRAM %.3f | core %.3f | LLC %.3f | static %.3f\n",
		res.Energy.NoCNJ/1e6, res.Energy.DRAMNJ/1e6, res.Energy.CoreNJ/1e6,
		res.Energy.LLCNJ/1e6, res.Energy.StaticNJ/1e6)
	fmt.Printf("NoC power:         %.2f W\n", energy.NoCPowerW(res.Energy, st.Cycles, cfg.CoreClockGHz))
	if st.MDRDecisions > 0 {
		fmt.Printf("MDR epochs:        %d (%d replicating)\n", st.MDRDecisions, st.MDREpochsReplicating)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
