// Command nubasim runs one or more benchmarks on one GPU configuration
// and prints the measured statistics — the quickest way to poke at the
// simulator. With several benchmarks (comma-separated, or "all" for the
// full Table 2 suite) the runs execute across a worker pool (-jobs) and
// print a compact per-benchmark table in suite order.
//
// Usage:
//
//	nubasim -arch nuba -bench SGEMM
//	nubasim -arch uba -bench LBM -noc 700 -placement rr -replication none
//	nubasim -arch nuba -bench all -jobs 8
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"

	"github.com/nuba-gpu/nuba"
)

func main() {
	arch := flag.String("arch", "nuba", "architecture: uba | sm-side | nuba")
	bench := flag.String("bench", "SGEMM", "benchmark abbreviation(s), comma-separated, or 'all' (see nubasweep -list)")
	nocGBs := flag.Float64("noc", 1400, "NoC bandwidth in GB/s")
	placement := flag.String("placement", "", "page placement: ft | rr | lab | migration | pagerep (default: arch default)")
	replication := flag.String("replication", "", "replication: none | full | mdr (default: arch default)")
	scale := flag.Float64("scale", 1, "GPU scale factor")
	pae := flag.Bool("pae", false, "use the PAE address mapping")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "benchmarks to simulate in parallel (1 = serial)")
	verbose := flag.Bool("v", false, "per-run progress on stderr (multi-benchmark mode)")
	traceOn := flag.Bool("trace", false, "emit an NDJSON epoch trace and a Chrome trace (docs/OBSERVABILITY.md)")
	traceOut := flag.String("trace-out", "trace", "trace output path prefix; writes <prefix>.ndjson and <prefix>.trace.json (multi-benchmark runs insert the benchmark abbreviation)")
	traceEpoch := flag.Int64("trace-epoch", 0, "trace sampling interval in cycles (0 = the config's MDR epoch)")
	engineFlag := flag.String("engine", "hybrid", nuba.EngineUsage())
	partWorkers := flag.Int("partition-workers", 0, "goroutines per simulation for -engine=parallel, 0 = one per partition (results are byte-identical at every count; see docs/PARALLEL.md)")
	watchdog := flag.Int64("watchdog", 0, "fail a run once no component state changes for this many cycles while work is pending (0 = off)")
	flag.Parse()

	engine, err := nuba.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubasim:", err)
		os.Exit(2)
	}

	var cfg nuba.Config
	switch strings.ToLower(*arch) {
	case "uba", "uba-mem":
		cfg = nuba.Baseline()
	case "sm-side", "uba-sm":
		cfg = nuba.SMSideConfig()
	case "nuba":
		cfg = nuba.NUBAConfig()
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	cfg = cfg.WithNoC(*nocGBs).Scale(*scale)
	cfg.Seed = *seed
	if *pae {
		cfg.AddressMap = nuba.PAE
	}
	switch strings.ToLower(*placement) {
	case "":
	case "ft", "first-touch":
		cfg.Placement = nuba.FirstTouch
	case "rr", "round-robin":
		cfg.Placement = nuba.RoundRobin
	case "lab":
		cfg.Placement = nuba.LAB
	case "migration":
		cfg.Placement = nuba.Migration
	case "pagerep", "page-replication":
		cfg.Placement = nuba.PageReplication
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown placement %q\n", *placement)
		os.Exit(2)
	}
	switch strings.ToLower(*replication) {
	case "":
	case "none", "no-rep":
		cfg.Replication = nuba.NoRep
	case "full":
		cfg.Replication = nuba.FullRep
	case "mdr":
		cfg.Replication = nuba.MDR
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown replication %q\n", *replication)
		os.Exit(2)
	}

	var benches []nuba.Benchmark
	if strings.EqualFold(*bench, "all") {
		benches = nuba.Suite()
	} else {
		for _, abbr := range strings.Split(*bench, ",") {
			b, err := nuba.BenchmarkByAbbr(strings.ToUpper(strings.TrimSpace(abbr)))
			if err != nil {
				fmt.Fprintln(os.Stderr, "nubasim:", err)
				os.Exit(2)
			}
			benches = append(benches, b)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tr := traceArgs{on: *traceOn, out: *traceOut, epoch: *traceEpoch}
	wd := nuba.WatchdogOptions{NoProgressCycles: *watchdog}
	if len(benches) == 1 {
		err = runOne(ctx, cfg, benches[0], tr, engine, *partWorkers, wd)
	} else {
		err = runMany(ctx, cfg, benches, *jobs, *verbose, tr, engine, *partWorkers, wd)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "nubasim: interrupted")
			os.Exit(130)
		}
		// A detected hang carries a structured report naming the stuck
		// components; print it in full before the one-line error. Every
		// other failure — including a recovered simulator panic — is the
		// one-line error alone.
		var hang *nuba.HangError
		if errors.As(err, &hang) {
			fmt.Fprint(os.Stderr, hang.Report.String())
		}
		fmt.Fprintln(os.Stderr, "nubasim:", err)
		os.Exit(1)
	}
}

// traceArgs carries the -trace/-trace-out/-trace-epoch flags.
type traceArgs struct {
	on    bool
	out   string
	epoch int64
}

// sink is one buffered trace output file.
type sink struct {
	f *os.File
	w *bufio.Writer
}

func newSink(path string) (*sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &sink{f: f, w: bufio.NewWriter(f)}, nil
}

func (s *sink) Write(p []byte) (int, error) { return s.w.Write(p) }

func (s *sink) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// openTrace creates the two sink files for one run under the prefix.
func openTrace(prefix string, epoch int64) (*nuba.TraceOptions, []*sink, error) {
	nd, err := newSink(prefix + ".ndjson")
	if err != nil {
		return nil, nil, err
	}
	ch, err := newSink(prefix + ".trace.json")
	if err != nil {
		nd.Close()
		return nil, nil, err
	}
	return &nuba.TraceOptions{EpochCycles: epoch, Series: nd, Chrome: ch}, []*sink{nd, ch}, nil
}

// runOne simulates a single benchmark and prints the full statistics.
func runOne(ctx context.Context, cfg nuba.Config, b nuba.Benchmark, tr traceArgs, engine nuba.Engine, pw int, wd nuba.WatchdogOptions) error {
	fmt.Printf("running %s (%s) on %s...\n", b.Abbr, b.Name, cfg.Name())
	var topts *nuba.TraceOptions
	var sinks []*sink
	if tr.on {
		var err error
		topts, sinks, err = openTrace(tr.out, tr.epoch)
		if err != nil {
			return err
		}
	}
	res, err := nuba.Run(ctx, cfg, b, nuba.WithTrace(topts), nuba.WithEngine(engine),
		nuba.WithPartitionWorkers(pw), nuba.WithWatchdog(wd))
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("cycles:            %d\n", st.Cycles)
	fmt.Printf("warp IPC:          %.3f\n", st.IPC())
	fmt.Printf("replies/cycle:     %.3f (perceived bandwidth)\n", st.RepliesPerCycle())
	fmt.Printf("L1 miss rate:      %.3f\n", st.L1MissRate())
	fmt.Printf("LLC hit rate:      %.3f\n", st.LLCHitRate())
	fmt.Printf("local fraction:    %.3f (replicated %.3f)\n", st.LocalFraction(),
		float64(st.ReplicatedAccesses)/float64(max64(1, st.LocalAccesses+st.RemoteAccesses)))
	fmt.Printf("DRAM reads/writes: %d / %d (row hit %.2f)\n", st.DRAMReads, st.DRAMWrites,
		float64(st.DRAMRowHits)/float64(max64(1, st.DRAMRowHits+st.DRAMRowMisses)))
	fmt.Printf("page faults:       %d (walks %d)\n", st.PageFaults, st.PageWalks)
	fmt.Printf("mem latency:       %.0f cycles avg\n", st.AvgMemLatency())
	one, two, eleven, over := res.Sharing.Buckets()
	fmt.Printf("page sharing:      1SM %.2f | 2-10 %.2f | 11-25 %.2f | >25 %.2f (%d pages)\n",
		one, two, eleven, over, res.Sharing.Pages())
	fmt.Printf("energy (mJ):       NoC %.3f | DRAM %.3f | core %.3f | LLC %.3f | static %.3f\n",
		res.Energy.NoCNJ/1e6, res.Energy.DRAMNJ/1e6, res.Energy.CoreNJ/1e6,
		res.Energy.LLCNJ/1e6, res.Energy.StaticNJ/1e6)
	fmt.Printf("NoC power:         %.2f W\n", nuba.NoCPowerW(res.Energy, st.Cycles, cfg.CoreClockGHz))
	if st.MDRDecisions > 0 {
		fmt.Printf("MDR epochs:        %d (%d replicating)\n", st.MDRDecisions, st.MDREpochsReplicating)
	}
	fmt.Println()
	fmt.Print(nuba.DetailTable(st))
	if tr.on {
		fmt.Println()
		fmt.Printf("epoch trace:       %s\n", tr.out+".ndjson")
		fmt.Printf("chrome trace:      %s (load in Perfetto or chrome://tracing)\n", tr.out+".trace.json")
		chart, cerr := npbChart(tr.out + ".ndjson")
		if cerr != nil {
			return cerr
		}
		fmt.Println()
		fmt.Print(chart)
	}
	return nil
}

// npbChart re-reads an epoch trace and renders the Fig. 9-style
// NPB-over-time curve as an ASCII line chart.
func npbChart(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	chart := &nuba.LineChart{Title: "NPB over time (y: NPB, x: cycle)"}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type  string  `json:"type"`
			Cycle int64   `json:"cycle"`
			NPB   float64 `json:"npb"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return "", fmt.Errorf("parse %s: %w", path, err)
		}
		if ev.Type == "epoch" {
			chart.Add(float64(ev.Cycle), ev.NPB)
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return chart.String(), nil
}

// runMany simulates the benchmarks across a worker pool and prints a
// compact table in input order (independent of completion order).
func runMany(ctx context.Context, cfg nuba.Config, benches []nuba.Benchmark, jobs int, verbose bool, tr traceArgs, engine nuba.Engine, pw int, wd nuba.WatchdogOptions) error {
	workers := jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("running %d benchmarks on %s (%d workers)...\n", len(benches), cfg.Name(), workers)
	opts := []nuba.RunOption{nuba.WithWorkers(jobs), nuba.WithEngine(engine),
		nuba.WithPartitionWorkers(pw), nuba.WithWatchdog(wd)}
	if verbose {
		opts = append(opts, nuba.WithProgress(func(ev nuba.RunEvent) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %-7s cycles=%-9d elapsed=%s\n",
				ev.Done, ev.Total, ev.Benchmark, ev.Result.Stats.Cycles, ev.Elapsed.Round(1e8))
		}))
	}
	var (
		sinkMu sync.Mutex
		sinks  []*sink
	)
	if tr.on {
		opts = append(opts, nuba.WithBenchTrace(func(b nuba.Benchmark) *nuba.TraceOptions {
			topts, ss, err := openTrace(fmt.Sprintf("%s.%s", tr.out, b.Abbr), tr.epoch)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nubasim: %s untraced: %v\n", b.Abbr, err)
				return nil
			}
			sinkMu.Lock()
			sinks = append(sinks, ss...)
			sinkMu.Unlock()
			return topts
		}))
	}
	results, err := nuba.RunSuite(ctx, cfg, benches, opts...)
	sinkMu.Lock()
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	sinkMu.Unlock()
	if err != nil {
		return err
	}
	if tr.on {
		fmt.Printf("per-benchmark traces under %s.<bench>.{ndjson,trace.json}\n", tr.out)
	}
	fmt.Printf("%-8s %-12s %-8s %-10s %-8s %-8s\n", "Bench", "Cycles", "IPC", "Replies/c", "L1miss", "Local")
	for i, b := range benches {
		st := results[i].Stats
		fmt.Printf("%-8s %-12d %-8.3f %-10.3f %-8.3f %-8.3f\n",
			b.Abbr, st.Cycles, st.IPC(), st.RepliesPerCycle(), st.L1MissRate(), st.LocalFraction())
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
