// Command nubasim runs one or more benchmarks on one GPU configuration
// and prints the measured statistics — the quickest way to poke at the
// simulator. With several benchmarks (comma-separated, or "all" for the
// full Table 2 suite) the runs execute across a worker pool (-jobs) and
// print a compact per-benchmark table in suite order.
//
// Usage:
//
//	nubasim -arch nuba -bench SGEMM
//	nubasim -arch uba -bench LBM -noc 700 -placement rr -replication none
//	nubasim -arch nuba -bench all -jobs 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"github.com/nuba-gpu/nuba"
)

func main() {
	arch := flag.String("arch", "nuba", "architecture: uba | sm-side | nuba")
	bench := flag.String("bench", "SGEMM", "benchmark abbreviation(s), comma-separated, or 'all' (see nubasweep -list)")
	nocGBs := flag.Float64("noc", 1400, "NoC bandwidth in GB/s")
	placement := flag.String("placement", "", "page placement: ft | rr | lab | migration | pagerep (default: arch default)")
	replication := flag.String("replication", "", "replication: none | full | mdr (default: arch default)")
	scale := flag.Float64("scale", 1, "GPU scale factor")
	pae := flag.Bool("pae", false, "use the PAE address mapping")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "benchmarks to simulate in parallel (1 = serial)")
	verbose := flag.Bool("v", false, "per-run progress on stderr (multi-benchmark mode)")
	flag.Parse()

	var cfg nuba.Config
	switch strings.ToLower(*arch) {
	case "uba", "uba-mem":
		cfg = nuba.Baseline()
	case "sm-side", "uba-sm":
		cfg = nuba.SMSideConfig()
	case "nuba":
		cfg = nuba.NUBAConfig()
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown arch %q\n", *arch)
		os.Exit(2)
	}
	cfg = cfg.WithNoC(*nocGBs).Scale(*scale)
	cfg.Seed = *seed
	if *pae {
		cfg.AddressMap = nuba.PAE
	}
	switch strings.ToLower(*placement) {
	case "":
	case "ft", "first-touch":
		cfg.Placement = nuba.FirstTouch
	case "rr", "round-robin":
		cfg.Placement = nuba.RoundRobin
	case "lab":
		cfg.Placement = nuba.LAB
	case "migration":
		cfg.Placement = nuba.Migration
	case "pagerep", "page-replication":
		cfg.Placement = nuba.PageReplication
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown placement %q\n", *placement)
		os.Exit(2)
	}
	switch strings.ToLower(*replication) {
	case "":
	case "none", "no-rep":
		cfg.Replication = nuba.NoRep
	case "full":
		cfg.Replication = nuba.FullRep
	case "mdr":
		cfg.Replication = nuba.MDR
	default:
		fmt.Fprintf(os.Stderr, "nubasim: unknown replication %q\n", *replication)
		os.Exit(2)
	}

	var benches []nuba.Benchmark
	if strings.EqualFold(*bench, "all") {
		benches = nuba.Suite()
	} else {
		for _, abbr := range strings.Split(*bench, ",") {
			b, err := nuba.BenchmarkByAbbr(strings.ToUpper(strings.TrimSpace(abbr)))
			if err != nil {
				fmt.Fprintln(os.Stderr, "nubasim:", err)
				os.Exit(2)
			}
			benches = append(benches, b)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	if len(benches) == 1 {
		err = runOne(ctx, cfg, benches[0])
	} else {
		err = runMany(ctx, cfg, benches, *jobs, *verbose)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "nubasim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "nubasim:", err)
		os.Exit(1)
	}
}

// runOne simulates a single benchmark and prints the full statistics.
func runOne(ctx context.Context, cfg nuba.Config, b nuba.Benchmark) error {
	fmt.Printf("running %s (%s) on %s...\n", b.Abbr, b.Name, cfg.Name())
	res, err := nuba.RunContext(ctx, cfg, b)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("cycles:            %d\n", st.Cycles)
	fmt.Printf("warp IPC:          %.3f\n", st.IPC())
	fmt.Printf("replies/cycle:     %.3f (perceived bandwidth)\n", st.RepliesPerCycle())
	fmt.Printf("L1 miss rate:      %.3f\n", st.L1MissRate())
	fmt.Printf("LLC hit rate:      %.3f\n", st.LLCHitRate())
	fmt.Printf("local fraction:    %.3f (replicated %.3f)\n", st.LocalFraction(),
		float64(st.ReplicatedAccesses)/float64(max64(1, st.LocalAccesses+st.RemoteAccesses)))
	fmt.Printf("DRAM reads/writes: %d / %d (row hit %.2f)\n", st.DRAMReads, st.DRAMWrites,
		float64(st.DRAMRowHits)/float64(max64(1, st.DRAMRowHits+st.DRAMRowMisses)))
	fmt.Printf("page faults:       %d (walks %d)\n", st.PageFaults, st.PageWalks)
	fmt.Printf("mem latency:       %.0f cycles avg\n", st.AvgMemLatency())
	one, two, eleven, over := res.Sharing.Buckets()
	fmt.Printf("page sharing:      1SM %.2f | 2-10 %.2f | 11-25 %.2f | >25 %.2f (%d pages)\n",
		one, two, eleven, over, res.Sharing.Pages())
	fmt.Printf("energy (mJ):       NoC %.3f | DRAM %.3f | core %.3f | LLC %.3f | static %.3f\n",
		res.Energy.NoCNJ/1e6, res.Energy.DRAMNJ/1e6, res.Energy.CoreNJ/1e6,
		res.Energy.LLCNJ/1e6, res.Energy.StaticNJ/1e6)
	fmt.Printf("NoC power:         %.2f W\n", nuba.NoCPowerW(res.Energy, st.Cycles, cfg.CoreClockGHz))
	if st.MDRDecisions > 0 {
		fmt.Printf("MDR epochs:        %d (%d replicating)\n", st.MDRDecisions, st.MDREpochsReplicating)
	}
	fmt.Println()
	fmt.Print(nuba.DetailTable(st))
	return nil
}

// runMany simulates the benchmarks across a worker pool and prints a
// compact table in input order (independent of completion order).
func runMany(ctx context.Context, cfg nuba.Config, benches []nuba.Benchmark, jobs int, verbose bool) error {
	fmt.Printf("running %d benchmarks on %s (%d workers)...\n", len(benches), cfg.Name(), nuba.RunOptions{Jobs: jobs}.Workers())
	opts := nuba.RunOptions{Jobs: jobs}
	if verbose {
		opts.Progress = func(ev nuba.RunEvent) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %-7s cycles=%-9d elapsed=%s\n",
				ev.Done, ev.Total, ev.Benchmark, ev.Result.Stats.Cycles, ev.Elapsed.Round(1e8))
		}
	}
	results, err := nuba.RunSuite(ctx, cfg, benches, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-8s %-10s %-8s %-8s\n", "Bench", "Cycles", "IPC", "Replies/c", "L1miss", "Local")
	for i, b := range benches {
		st := results[i].Stats
		fmt.Printf("%-8s %-12d %-8.3f %-10.3f %-8.3f %-8.3f\n",
			b.Abbr, st.Cycles, st.IPC(), st.RepliesPerCycle(), st.L1MissRate(), st.LocalFraction())
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
