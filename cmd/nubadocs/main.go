// Command nubadocs cross-checks the Markdown documentation against the
// code, so the docs cannot silently drift from the CLIs they describe
// (`make docs-check`, wired into `make check` and CI):
//
//   - every CLI flag mentioned in a documentation code span (inline
//     backticks or fenced blocks) must exist in some cmd/* flag set,
//     parsed straight out of the sources with go/parser — or be a
//     known flag of an external tool (go test -race, gofmt -l, ...);
//   - every intra-repo Markdown link must resolve to an existing file
//     or directory.
//
// Checked files: README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md —
// the user-facing documentation. Process records (CHANGES.md, ISSUE.md,
// ROADMAP.md, PAPER*.md, SNIPPETS.md) are exempt.
//
// Stdlib only, like everything else in the repo.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// externalFlags are flags the docs legitimately mention that belong to
// external tooling, not to a cmd/* binary.
var externalFlags = map[string]bool{
	"race":      true, // go test -race
	"bench":     true, // go test -bench (also a nubasim flag)
	"benchmem":  true, // go test -benchmem
	"benchtime": true, // go test -benchtime
	"short":     true, // go test -short
	"run":       true, // go test -run
	"count":     true, // go test -count
	"timeout":   true, // go test -timeout
	"l":         true, // gofmt -l
	"r":         true, // jq -r
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	defined, err := definedFlags(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubadocs:", err)
		os.Exit(2)
	}
	if len(defined) == 0 {
		fmt.Fprintln(os.Stderr, "nubadocs: no flags found under cmd/ — wrong -root?")
		os.Exit(2)
	}

	docs, err := docFiles(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nubadocs:", err)
		os.Exit(2)
	}

	var problems []string
	flagMentions, linkChecks := 0, 0
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nubadocs:", err)
			os.Exit(2)
		}
		rel, _ := filepath.Rel(*root, doc)
		text := string(data)

		for _, f := range mentionedFlags(text) {
			flagMentions++
			if !defined[f] && !externalFlags[f] {
				problems = append(problems,
					fmt.Sprintf("%s: flag -%s is not defined by any cmd/* binary", rel, f))
			}
		}
		for _, target := range intraRepoLinks(text) {
			linkChecks++
			p := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(p); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: link target %q does not resolve", rel, target))
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "nubadocs:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("nubadocs: %d docs ok (%d flag mentions against %d defined flags, %d links)\n",
		len(docs), flagMentions, len(defined), linkChecks)
}

// docFiles returns the user-facing Markdown files to check.
func docFiles(root string) ([]string, error) {
	var docs []string
	for _, name := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
		p := filepath.Join(root, name)
		if _, err := os.Stat(p); err != nil {
			return nil, fmt.Errorf("required doc %s missing: %w", name, err)
		}
		docs = append(docs, p)
	}
	extra, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	return append(docs, extra...), nil
}

// definedFlags parses every Go file under cmd/ and collects the names
// registered through the flag package (flag.String("name", ...) etc.).
func definedFlags(root string) (map[string]bool, error) {
	files, err := filepath.Glob(filepath.Join(root, "cmd", "*", "*.go"))
	if err != nil {
		return nil, err
	}
	ctors := map[string]bool{
		"String": true, "Bool": true, "Int": true, "Int64": true,
		"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
		"StringVar": true, "BoolVar": true, "IntVar": true, "Int64Var": true,
		"UintVar": true, "Uint64Var": true, "Float64Var": true, "DurationVar": true,
	}
	defined := make(map[string]bool)
	fset := token.NewFileSet()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !ctors[sel.Sel.Name] {
				return true
			}
			if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "flag" {
				return true
			}
			// The name is the first string-literal argument ("Var"
			// variants take the pointer first).
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if name, err := strconv.Unquote(lit.Value); err == nil {
						defined[name] = true
					}
					break
				}
			}
			return true
		})
	}
	return defined, nil
}

// flagRe matches a CLI flag mention inside a code span: a dash preceded
// by a token boundary and followed by a letter (so prose hyphens,
// negative numbers, arrows and kebab-case identifiers never match).
var flagRe = regexp.MustCompile(`(?:^|[\s"'(=|])-([a-zA-Z][a-zA-Z0-9-]*)`)

// mentionedFlags extracts flag names from the document's code spans.
func mentionedFlags(text string) []string {
	var flags []string
	for _, span := range codeSpans(text) {
		for _, m := range flagRe.FindAllStringSubmatch(span, -1) {
			name := strings.TrimRight(m[1], "-")
			flags = append(flags, name)
		}
	}
	return flags
}

var inlineCodeRe = regexp.MustCompile("`([^`\n]+)`")

// codeSpans returns the document's fenced code blocks and inline code
// spans — the places where CLI flags are conventionally written.
func codeSpans(text string) []string {
	var spans []string
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			spans = append(spans, line)
			continue
		}
		for _, m := range inlineCodeRe.FindAllStringSubmatch(line, -1) {
			spans = append(spans, m[1])
		}
	}
	return spans
}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// intraRepoLinks extracts relative Markdown link targets (external URLs
// and pure anchors are skipped; a target's own #anchor is stripped).
func intraRepoLinks(text string) []string {
	var links []string
	for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
		t := m[1]
		if strings.Contains(t, "://") || strings.HasPrefix(t, "mailto:") || strings.HasPrefix(t, "#") {
			continue
		}
		if i := strings.IndexByte(t, '#'); i >= 0 {
			t = t[:i]
		}
		if t != "" {
			links = append(links, t)
		}
	}
	return links
}
