package nuba_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see DESIGN.md's experiment index). Each bench
// regenerates its artifact through the same experiment recipes the
// cmd/nubasweep tool uses and logs the resulting rows, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation in miniature. To keep the default bench
// run tractable, benches use a 16-SM (0.25x) GPU and a three-benchmark
// core subset — LBM (streaming, low-sharing), AN (compute-dense stencil)
// and BT (high-sharing irregular tree), one representative per workload
// class; run cmd/nubasweep or cmd/nubareport for the full-scale 64-SM,
// 29-benchmark numbers. Setting the environment variable NUBA_BENCH_FULL=1
// (any non-empty value) switches the benches to the full-scale 64-SM GPU
// while keeping the three-benchmark subset.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/experiments"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// benchOptions returns the Runner options used by the benches.
func benchOptions(b *testing.B) experiments.Options {
	scale := 0.25
	if os.Getenv("NUBA_BENCH_FULL") != "" {
		scale = 1
	}
	subset := []string{"LBM", "AN", "BT"}
	var benches []workload.Benchmark
	for _, abbr := range subset {
		wb, err := workload.ByAbbr(abbr)
		if err != nil {
			b.Fatal(err)
		}
		benches = append(benches, wb)
	}
	return experiments.Options{Scale: scale, Benchmarks: benches}
}

// runExperiment executes the named experiment b.N times, logging the
// last report.
func runExperiment(b *testing.B, name string) {
	e, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var report string
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions(b))
		report, err = e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + report)
}

// BenchmarkTable2Workloads regenerates Table 2 (the suite inventory).
func BenchmarkTable2Workloads(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig3SharingDegree regenerates Figure 3 (page sharing degree).
func BenchmarkFig3SharingDegree(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig7IsoResource regenerates Figure 7 (iso-resource speedups).
func BenchmarkFig7IsoResource(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8PerceivedBandwidth regenerates Figure 8 (replies/cycle).
func BenchmarkFig8PerceivedBandwidth(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9MissBreakdown regenerates Figure 9 (local/remote misses).
func BenchmarkFig9MissBreakdown(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10NoCPower regenerates Figure 10 (performance vs NoC power).
func BenchmarkFig10NoCPower(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11PageAllocation regenerates Figure 11 (FT vs RR vs LAB).
func BenchmarkFig11PageAllocation(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Replication regenerates Figure 12 (No/Full/MDR).
func BenchmarkFig12Replication(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13Energy regenerates Figure 13 (energy breakdown).
func BenchmarkFig13Energy(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14GPUSize regenerates the Figure 14 GPU-size sweep.
func BenchmarkFig14GPUSize(b *testing.B) { runExperiment(b, "fig14-size") }

// BenchmarkFig14Partition regenerates the Figure 14 partition-ratio sweep.
func BenchmarkFig14Partition(b *testing.B) { runExperiment(b, "fig14-partition") }

// BenchmarkFig14LLCCapacity regenerates the Figure 14 LLC-capacity sweep.
func BenchmarkFig14LLCCapacity(b *testing.B) { runExperiment(b, "fig14-llc") }

// BenchmarkFig14PageSize regenerates the Figure 14 page-size sweep.
func BenchmarkFig14PageSize(b *testing.B) { runExperiment(b, "fig14-page") }

// BenchmarkFig14AddressMapping regenerates the Figure 14 PAE comparison.
func BenchmarkFig14AddressMapping(b *testing.B) { runExperiment(b, "fig14-addrmap") }

// BenchmarkFig14LABThreshold regenerates the Figure 14 LAB-threshold sweep.
func BenchmarkFig14LABThreshold(b *testing.B) { runExperiment(b, "fig14-lab") }

// BenchmarkFig16MCM regenerates Figure 16 (MCM-GPU).
func BenchmarkFig16MCM(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkAltPagePlacement regenerates the §7.6 comparison (migration and
// page replication against LAB).
func BenchmarkAltPagePlacement(b *testing.B) { runExperiment(b, "alt-placement") }

// BenchmarkSingleRunNUBA measures the simulator itself: one SGEMM run on
// the scaled NUBA GPU (simulated-cycles-per-second throughput).
func BenchmarkSingleRunNUBA(b *testing.B) {
	bench, err := nuba.BenchmarkByAbbr("SGEMM")
	if err != nil {
		b.Fatal(err)
	}
	cfg := nuba.NUBAConfig().Scale(0.25)
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := nuba.Run(context.Background(), cfg, bench)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles/run")
}

// sparseSrc is the idle-heavy showcase kernel: a latency-bound chain of
// thread-invariant cold loads — one uncached line per iteration, the
// next iteration serialized behind the reply by the load-to-use
// dependency on r7 — so each warp sleeps through a full memory round
// trip per iteration. Launched as two 32-thread CTAs it leaves all but
// two SMs without work — the regime the idle-skip engine exists for (a
// small kernel on a big configured GPU, the shape of most design-space
// sweep jobs), where the naive loop still ticks every component every
// cycle.
const sparseSrc = `
.kernel sparse
.param .ptr A
.param .u64 k
.param .u64 n
  mov r1, %ctaid
  mov r4, 0
  mov r5, 0
loop:
  mad r6, r4, n, r1
  shl r6, r6, 7
  ld.global.u64 r7, [A + r6]
  add r5, r5, r7
  add r4, r4, 1
  setp.lt p0, r4, k
  @p0 bra loop
  shl r8, r1, 3
  st.global.u64 [A + r8], r5
  exit
`

// sparseLaunch builds the SPARSE workload: grid 32-thread CTAs, k
// dependent 128 B-strided cold loads per CTA.
func sparseLaunch(kernel *nuba.Kernel, grid, iters int) func(sys *nuba.System) ([]*nuba.Launch, error) {
	return func(sys *nuba.System) ([]*nuba.Launch, error) {
		size := uint64(iters) * uint64(grid) * 128
		l := &nuba.Launch{
			Kernel:     kernel,
			GridDim:    grid,
			CTAThreads: 32,
			Scalars:    []int64{int64(iters), int64(grid)},
			Buffers:    []nuba.Binding{{Base: sys.NewBuffer(size), Size: size}},
		}
		return []*nuba.Launch{l}, nil
	}
}

// BenchmarkEngineThroughput measures raw simulator throughput — the
// committed perf trajectory behind BENCH_<n>.json (see docs/PERF.md).
// One sub-benchmark per (workload, engine) pair: the three-benchmark
// core subset plus SPARSE, the synthetic low-occupancy workload above;
// cmd/nubabench turns the emitted metrics into ns/simulated-cycle and
// simulated-cycles-per-second, so the naive/hybrid ratio is the
// idle-skip engine's speedup and the parallel/hybrid ratio the
// partition-parallel engine's speedup on that workload. The dense
// multi-partition stencil (AN) additionally runs the parallel engine's
// scaling row — workers 1 up to NumPartitions, sub-benchmarks named
// parallel-w<k> — which nubabench folds into the record's scaling
// section. Parallel speedup needs GOMAXPROCS >= the worker count; the
// record's host_cpus field says what the snapshot's host could offer.
func BenchmarkEngineThroughput(b *testing.B) {
	scale := 0.25
	if os.Getenv("NUBA_BENCH_FULL") != "" {
		scale = 1
	}
	runOnce := func(b *testing.B, bench nuba.Benchmark, opts ...nuba.RunOption) {
		cfg := nuba.NUBAConfig().Scale(scale)
		var cycles, instrs int64
		for i := 0; i < b.N; i++ {
			res, err := nuba.Run(context.Background(), cfg, bench, opts...)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Stats.Cycles
			instrs = res.Stats.Instructions
		}
		b.ReportMetric(float64(cycles), "simcycles/run")
		b.ReportMetric(float64(instrs), "siminstrs/run")
	}
	engines := []nuba.Engine{nuba.EngineHybrid, nuba.EngineNaive, nuba.EngineParallel}
	for _, abbr := range []string{"LBM", "AN", "BT"} {
		bench, err := nuba.BenchmarkByAbbr(abbr)
		if err != nil {
			b.Fatal(err)
		}
		for _, engine := range engines {
			b.Run(abbr+"/"+engine.String(), func(b *testing.B) {
				runOnce(b, bench, nuba.WithEngine(engine))
			})
		}
	}
	// The scaling row: AN under the parallel engine at 1, 2, 4, ...
	// NumPartitions workers (full fan-out always included, power of two
	// or not).
	an, err := nuba.BenchmarkByAbbr("AN")
	if err != nil {
		b.Fatal(err)
	}
	scaled := nuba.NUBAConfig().Scale(scale)
	parts := scaled.NumPartitions()
	for w := 1; ; w *= 2 {
		if w > parts {
			w = parts
		}
		workers := w
		b.Run(fmt.Sprintf("AN/parallel-w%d", workers), func(b *testing.B) {
			runOnce(b, an, nuba.WithEngine(nuba.EngineParallel), nuba.WithPartitionWorkers(workers))
		})
		if w == parts {
			break
		}
	}
	sparse, err := nuba.ParseKernel(sparseSrc)
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range engines {
		b.Run("SPARSE/"+engine.String(), func(b *testing.B) {
			cfg := nuba.NUBAConfig().Scale(scale)
			var cycles, instrs int64
			for i := 0; i < b.N; i++ {
				res, err := nuba.Run(context.Background(), cfg, nuba.Benchmark{},
					nuba.WithEngine(engine), nuba.WithLaunches(sparseLaunch(sparse, 2, 512)))
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Stats.Cycles
				instrs = res.Stats.Instructions
			}
			b.ReportMetric(float64(cycles), "simcycles/run")
			b.ReportMetric(float64(instrs), "siminstrs/run")
		})
	}
}
