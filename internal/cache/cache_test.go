package cache

import (
	"testing"
	"testing/quick"

	"github.com/nuba-gpu/nuba/internal/sim"
)

func ln(i uint64) uint64 { return i * sim.LineSize }

func TestAccessHitMiss(t *testing.T) {
	c := New(4, 2, WriteBack)
	if c.Access(ln(1), false, 0) {
		t.Fatal("cold access hit")
	}
	c.Insert(ln(1), false, false, 1)
	if !c.Access(ln(1), false, 2) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 || c.Accesses != 2 {
		t.Fatalf("counter mismatch: %+v", c)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1, 2, WriteBack) // one set, two ways
	c.Insert(ln(0), false, false, 0)
	c.Insert(ln(1), false, false, 1)
	c.Access(ln(0), false, 2) // 0 is now MRU
	victim, _ := c.Insert(ln(2), false, false, 3)
	if victim != ln(1) {
		t.Fatalf("evicted %#x, want line 1 (LRU)", victim)
	}
	if !c.Probe(ln(0)) || !c.Probe(ln(2)) || c.Probe(ln(1)) {
		t.Fatal("wrong contents after eviction")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := New(1, 1, WriteBack)
	c.Insert(ln(0), true, false, 0) // dirty
	victim, wb := c.Insert(ln(1), false, false, 1)
	if !wb || victim != ln(0) {
		t.Fatalf("expected dirty writeback of line 0, got victim=%#x wb=%v", victim, wb)
	}
	// Clean eviction: no writeback.
	_, wb = c.Insert(ln(2), false, false, 2)
	if wb {
		t.Fatal("clean line produced writeback")
	}
}

func TestWriteThroughInvalidatesOnWrite(t *testing.T) {
	c := New(2, 2, WriteThrough)
	c.Insert(ln(0), false, false, 0)
	if !c.Access(ln(0), true, 1) {
		t.Fatal("write should report tag presence")
	}
	if c.Probe(ln(0)) {
		t.Fatal("write-no-allocate must drop the line")
	}
}

func TestWriteBackDirtyOnWriteHit(t *testing.T) {
	c := New(2, 2, WriteBack)
	c.Insert(ln(0), false, false, 0)
	c.Access(ln(0), true, 1) // dirties
	_, wb := c.Insert(ln(2), false, false, 2)
	_ = wb
	// Force eviction of line 0: fill its set.
	set := c.SetIndex(ln(0))
	filled := 0
	for i := uint64(1); filled < 3; i++ {
		if c.SetIndex(ln(i)) == set {
			c.Insert(ln(i), false, false, int64(3+i))
			filled++
		}
	}
	if c.Writebacks == 0 {
		t.Fatal("dirtied line never wrote back")
	}
}

func TestInvalidateAllReturnsDirtyLines(t *testing.T) {
	c := New(4, 2, WriteBack)
	c.Insert(ln(0), true, false, 0)
	c.Insert(ln(1), false, false, 1)
	c.Insert(ln(2), true, false, 2)
	dirty := c.InvalidateAll()
	if len(dirty) != 2 {
		t.Fatalf("expected 2 dirty lines, got %d", len(dirty))
	}
	if c.Occupancy() != 0 {
		t.Fatal("cache not empty after flush")
	}
}

func TestInvalidateReplicas(t *testing.T) {
	c := New(4, 2, WriteBack)
	c.Insert(ln(0), false, true, 0)
	c.Insert(ln(1), false, false, 1)
	c.Insert(ln(2), false, true, 2)
	if n := c.InvalidateReplicas(); n != 2 {
		t.Fatalf("dropped %d replicas, want 2", n)
	}
	if c.Probe(ln(0)) || !c.Probe(ln(1)) || c.Probe(ln(2)) {
		t.Fatal("wrong survivors after replica drop")
	}
}

func TestInsertRefillMergesDirty(t *testing.T) {
	c := New(2, 2, WriteBack)
	c.Insert(ln(0), true, false, 0)
	c.Insert(ln(0), false, false, 1) // refill of present line
	// Still dirty: evicting must write back.
	set := c.SetIndex(ln(0))
	filled := 0
	for i := uint64(1); filled < 2; i++ {
		if c.SetIndex(ln(i)) == set {
			c.Insert(ln(i), false, false, int64(2+i))
			filled++
		}
	}
	if c.Writebacks != 1 {
		t.Fatalf("dirty bit lost on refill: writebacks=%d", c.Writebacks)
	}
}

// TestCacheMatchesModel checks, via testing/quick, that cache contents
// always equal a reference model (map from set to LRU-ordered lines).
func TestCacheMatchesModel(t *testing.T) {
	const sets, ways = 4, 3
	f := func(refs []uint16) bool {
		c := New(sets, ways, WriteBack)
		model := make(map[int][]uint64) // set -> lines, MRU first
		now := int64(0)
		for _, r := range refs {
			now++
			addr := ln(uint64(r % 64))
			set := c.SetIndex(addr)
			la := c.LineAddr(addr)
			// Model lookup.
			lines := model[set]
			found := -1
			for i, l := range lines {
				if l == la {
					found = i
					break
				}
			}
			hit := c.Access(addr, false, now)
			if hit != (found >= 0) {
				return false
			}
			if found >= 0 {
				// Move to MRU.
				lines = append(lines[:found], lines[found+1:]...)
				model[set] = append([]uint64{la}, lines...)
				continue
			}
			now++
			c.Insert(addr, false, false, now)
			lines = append([]uint64{la}, lines...)
			if len(lines) > ways {
				lines = lines[:ways]
			}
			model[set] = lines
		}
		// Final contents must agree.
		for set, lines := range model {
			for _, l := range lines {
				if !c.Probe(l) {
					return false
				}
			}
			_ = set
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRMergeAndRelease(t *testing.T) {
	m := NewMSHRFile(2)
	r1 := &sim.MemReq{ID: 1}
	r2 := &sim.MemReq{ID: 2}
	r3 := &sim.MemReq{ID: 3}
	e, merged, ok := m.Allocate(ln(0), r1, 0)
	if !ok || merged || e.Primary != r1 {
		t.Fatal("primary allocation failed")
	}
	_, merged, ok = m.Allocate(ln(0), r2, 1)
	if !ok || !merged {
		t.Fatal("secondary miss not merged")
	}
	if !r2.MergedBehind {
		t.Fatal("merged flag not set")
	}
	m.Allocate(ln(1), r3, 2)
	if !m.Full() {
		t.Fatal("file should be full at capacity 2")
	}
	if _, _, ok := m.Allocate(ln(2), r3, 3); ok {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if m.StallsFull != 1 {
		t.Fatalf("stall counter = %d", m.StallsFull)
	}
	e, ok = m.Release(ln(0))
	if !ok || len(e.Waiters) != 1 || e.Waiters[0] != r2 {
		t.Fatal("release lost waiters")
	}
	if _, ok := m.Release(ln(0)); ok {
		t.Fatal("double release succeeded")
	}
	if m.Merges != 1 {
		t.Fatalf("merge counter = %d", m.Merges)
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero sets")
		}
	}()
	New(0, 1, WriteBack)
}
