// Package cache implements the set-associative cache model shared by the
// per-SM L1 data caches, the LLC slices and the MDR shadow-tag samplers:
// LRU replacement, configurable write policy (write-through/write-no-
// allocate for L1, write-back/write-allocate for the LLC) and a Miss
// Status Holding Register (MSHR) file for merging outstanding misses.
package cache

import (
	"github.com/nuba-gpu/nuba/internal/sim"
)

// Policy selects the write behaviour of a cache.
type Policy int

// Write policies.
const (
	// WriteThrough with write-no-allocate: stores bypass the cache
	// (invalidating a matching line) and propagate downstream. This is
	// the GPU L1 policy assumed by the paper's software coherence.
	WriteThrough Policy = iota
	// WriteBack with write-allocate: stores allocate and dirty lines;
	// evictions of dirty lines produce writebacks. The LLC policy.
	WriteBack
)

type line struct {
	tag     uint64 // line address (addr >> lineShift)
	valid   bool
	dirty   bool
	replica bool // holds a replicated copy of a remote line (NUBA/MDR)
	lastUse int64
}

// Cache is a single-ported set-associative cache. It tracks only tags and
// metadata — the simulator never models data contents.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	policy    Policy
	lines     []line

	// Accesses, Hits, Misses, Evictions and Writebacks are cumulative
	// counters maintained by Access/Insert.
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// New returns a cache with the given geometry. Sets and ways must be
// positive; the line size is the global 128 B.
func New(sets, ways int, policy Policy) *Cache {
	if sets <= 0 || ways <= 0 {
		panic("cache: sets and ways must be positive")
	}
	c := &Cache{sets: sets, ways: ways, policy: policy}
	c.lines = make([]line, sets*ways)
	for s := sim.LineSize; s > 1; s >>= 1 {
		c.lineShift++
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineAddr returns the line-aligned address of addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

// SetIndex returns the set addr maps to.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.lineShift) % uint64(c.sets))
}

func (c *Cache) set(addr uint64) []line {
	i := c.SetIndex(addr) * c.ways
	return c.lines[i : i+c.ways]
}

// Access performs a lookup for a read (write=false) or a write
// (write=true) at cycle now and reports whether it hit. On a write:
//   - WriteThrough caches invalidate a matching line (write-no-allocate)
//     and always report a miss in the sense that the store must propagate;
//     the returned hit only reflects tag presence before invalidation.
//   - WriteBack caches mark a hit line dirty.
//
// Access never allocates; use Insert when the fill returns.
func (c *Cache) Access(addr uint64, write bool, now int64) (hit bool) {
	c.Accesses++
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.Hits++
			if write {
				if c.policy == WriteThrough {
					l.valid = false // write-no-allocate: drop stale copy
				} else {
					l.dirty = true
					l.lastUse = now
				}
			} else {
				l.lastUse = now
			}
			return true
		}
	}
	c.Misses++
	return false
}

// Probe reports whether addr is present without touching LRU state or
// counters. Used by coherence checks and tests.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	for _, l := range c.set(addr) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Insert fills the line containing addr, evicting the LRU way if needed.
// dirty marks the fill as modified (write-allocate); replica marks it as a
// replicated remote line. It returns the evicted line address and whether
// that eviction requires a writeback.
func (c *Cache) Insert(addr uint64, dirty, replica bool, now int64) (victim uint64, writeback bool) {
	tag := addr >> c.lineShift
	set := c.set(addr)
	// Refill of a line that raced in already: just update.
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.dirty = l.dirty || dirty
			l.replica = replica
			l.lastUse = now
			return 0, false
		}
	}
	vi := 0
	for i := range set {
		l := &set[i]
		if !l.valid {
			vi = i
			break
		}
		if l.lastUse < set[vi].lastUse {
			vi = i
		}
	}
	v := &set[vi]
	if v.valid {
		c.Evictions++
		victim = v.tag << c.lineShift
		if v.dirty && c.policy == WriteBack {
			c.Writebacks++
			writeback = true
		}
	}
	*v = line{tag: tag, valid: true, dirty: dirty, replica: replica, lastUse: now}
	return victim, writeback
}

// Invalidate drops the line containing addr if present and reports whether
// it was found; wasDirty additionally reports whether it held dirty data.
func (c *Cache) Invalidate(addr uint64) (found, wasDirty bool) {
	tag := addr >> c.lineShift
	set := c.set(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.valid = false
			return true, l.dirty
		}
	}
	return false, false
}

// InvalidateAll flushes the whole cache (the software-coherence flush at
// synchronization and kernel boundaries) and returns the dirty line
// addresses that a write-back cache must write downstream.
func (c *Cache) InvalidateAll() (dirtyLines []uint64) {
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid {
			if l.dirty && c.policy == WriteBack {
				dirtyLines = append(dirtyLines, l.tag<<c.lineShift)
			}
			l.valid = false
		}
	}
	return dirtyLines
}

// InvalidateReplicas drops all replica lines (used when MDR turns
// replication off or at kernel boundaries) and returns how many were
// dropped. Replicas are read-only by construction so no writebacks occur.
func (c *Cache) InvalidateReplicas() int {
	n := 0
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid && l.replica {
			l.valid = false
			n++
		}
	}
	return n
}

// Occupancy returns the fraction of valid lines.
func (c *Cache) Occupancy() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// HitRate returns hits per access since construction.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// ResetStats zeroes the cumulative counters (epoch boundaries).
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Evictions, c.Writebacks = 0, 0, 0, 0, 0
}
