package cache

import "github.com/nuba-gpu/nuba/internal/sim"

// MSHRFile is a Miss Status Holding Register file: it tracks outstanding
// line fills and merges subsequent misses to the same line behind the
// first (primary) miss, bounding the number of in-flight misses a cache
// can sustain.
type MSHRFile struct {
	capacity int
	entries  map[uint64]*MSHREntry

	// Merges counts secondary misses folded into an existing entry;
	// StallsFull counts allocation attempts rejected because the file
	// was full.
	Merges     int64
	StallsFull int64
}

// MSHREntry records one outstanding line fill and the requests waiting
// for it.
type MSHREntry struct {
	// Line is the line-aligned address being filled.
	Line uint64
	// Primary is the request that triggered the fill.
	Primary *sim.MemReq
	// Waiters are secondary requests merged behind Primary.
	Waiters []*sim.MemReq
	// Allocated is the cycle the entry was created.
	Allocated sim.Cycle
}

// NewMSHRFile returns a file with the given entry capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHRFile{capacity: capacity, entries: make(map[uint64]*MSHREntry, capacity)}
}

// Len returns the number of outstanding entries.
func (m *MSHRFile) Len() int { return len(m.entries) }

// Full reports whether no new entry can be allocated.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.capacity }

// Lookup returns the outstanding entry for line, if any.
func (m *MSHRFile) Lookup(line uint64) (*MSHREntry, bool) {
	e, ok := m.entries[line]
	return e, ok
}

// Allocate registers req's miss on line at cycle now. If an entry for the
// line already exists the request is merged as a secondary miss and
// merged=true is returned. If the file is full and no entry exists,
// ok=false is returned and the cache must stall the request.
func (m *MSHRFile) Allocate(line uint64, req *sim.MemReq, now sim.Cycle) (entry *MSHREntry, merged, ok bool) {
	if e, exists := m.entries[line]; exists {
		e.Waiters = append(e.Waiters, req)
		m.Merges++
		req.MergedBehind = true
		return e, true, true
	}
	if m.Full() {
		m.StallsFull++
		return nil, false, false
	}
	e := &MSHREntry{Line: line, Primary: req, Allocated: now}
	m.entries[line] = e
	return e, false, true
}

// Release removes and returns the entry for line when its fill completes.
// ok is false if no entry was outstanding.
func (m *MSHRFile) Release(line uint64) (*MSHREntry, bool) {
	e, ok := m.entries[line]
	if ok {
		delete(m.entries, line)
	}
	return e, ok
}
