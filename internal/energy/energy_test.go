package energy

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
)

func baseStats() *metrics.Stats {
	return &metrics.Stats{
		Cycles:       100000,
		Instructions: 1000000,
		L1Accesses:   500000,
		LLCAccesses:  200000,
		DRAMReads:    50000,
		DRAMWrites:   20000,
		NoCBytes:     10 << 20,
	}
}

func TestComputeFillsStats(t *testing.T) {
	cfg := config.Baseline()
	st := baseStats()
	b := Compute(&cfg, st, 128, 16, DefaultParams())
	if b.TotalNJ() <= 0 {
		t.Fatal("no energy")
	}
	if st.NoCEnergyNJ != b.NoCNJ || st.DRAMEnergyNJ != b.DRAMNJ {
		t.Fatal("stats not filled")
	}
	if b.NoCNJ <= 0 || b.DRAMNJ <= 0 || b.CoreNJ <= 0 || b.LLCNJ <= 0 || b.StaticNJ <= 0 {
		t.Fatalf("zero component: %+v", b)
	}
}

func TestNoCPowerScalesQuadraticallyWithPorts(t *testing.T) {
	cfg := config.Baseline()
	small := Compute(&cfg, baseStats(), 64, 16, DefaultParams())
	big := Compute(&cfg, baseStats(), 128, 16, DefaultParams())
	if big.NoCNJ <= small.NoCNJ {
		t.Fatal("NoC energy did not grow with radix")
	}
	// Static part quadruples when ports double; with dynamic included
	// the ratio must still exceed 2x for this traffic mix.
	if big.NoCNJ/small.NoCNJ < 1.5 {
		t.Fatalf("ratio %v too small", big.NoCNJ/small.NoCNJ)
	}
}

func TestNoCPowerScalesWithWidth(t *testing.T) {
	cfg := config.Baseline()
	narrow := Compute(&cfg, baseStats(), 128, 8, DefaultParams())
	wide := Compute(&cfg, baseStats(), 128, 64, DefaultParams())
	if wide.NoCNJ <= narrow.NoCNJ {
		t.Fatal("NoC energy did not grow with link width")
	}
}

func TestNoCPowerW(t *testing.T) {
	b := Breakdown{NoCNJ: 1e9} // 1 J
	// 1 J over (1.4e9 cycles / 1.4 GHz = 1 s) = 1 W.
	if w := NoCPowerW(b, 1_400_000_000, 1.4); w < 0.99 || w > 1.01 {
		t.Fatalf("power %v", w)
	}
	if NoCPowerW(b, 0, 1.4) != 0 {
		t.Fatal("zero cycles should give zero power")
	}
}

func TestLocalLinkEnergyCheaperThanNoC(t *testing.T) {
	p := DefaultParams()
	if p.LocalLinkByteNJ >= p.NoCByteBaseNJ {
		t.Fatal("point-to-point links must be cheaper per byte than the crossbar")
	}
}
