// Package energy estimates GPU and NoC energy in the style of the paper's
// methodology (GPUWattch for the GPU, DSENT for the crossbar NoC, 22 nm).
//
// Absolute joules are not the goal — the reproduction targets the paper's
// relative results: the NoC's share of GPU energy, how crossbar power
// scales with radix and link width (quadratically with endpoints), and the
// energy effect of converting remote NoC traffic into local point-to-point
// traffic (Figures 10 and 13). Event energies are therefore plausible
// 22 nm constants exposed in Params and documented here rather than
// calibrated against silicon.
package energy

import (
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
)

// Params are the event-energy constants (nanojoules) and power constants
// (watts) of the model.
type Params struct {
	// PerWarpInstrNJ covers fetch, decode, register file and execution
	// of one warp instruction across 32 lanes.
	// nubaunit: nJ
	PerWarpInstrNJ float64
	// L1AccessNJ / LLCAccessNJ are per 128 B tag+data access.
	L1AccessNJ  float64 // nubaunit: nJ
	LLCAccessNJ float64 // nubaunit: nJ
	// DRAMLineNJ is one 128 B HBM burst (~7 pJ/bit).
	// nubaunit: nJ
	DRAMLineNJ float64
	// NoCByteBaseNJ is crossbar traversal energy per byte for a
	// 64-endpoint reference; the effective per-byte energy scales with
	// (1 + ports/64) to reflect wire length growth with radix.
	// nubaunit: nJ/byte
	NoCByteBaseNJ float64
	// NoCStaticWPerUnit is crossbar leakage+clock power per
	// ports^2 * widthBytes unit (DSENT-style quadratic area scaling).
	NoCStaticWPerUnit float64
	// LocalLinkByteNJ is the point-to-point SM<->LLC link energy per
	// byte — short wires, no switching fabric.
	// nubaunit: nJ/byte
	LocalLinkByteNJ float64
	// GPUStaticW is the rest-of-GPU static power.
	GPUStaticW float64
}

// DefaultParams returns the 22 nm constants used throughout the
// reproduction.
func DefaultParams() Params {
	return Params{
		PerWarpInstrNJ:    0.5,
		L1AccessNJ:        0.15,
		LLCAccessNJ:       0.3,
		DRAMLineNJ:        8.0,
		NoCByteBaseNJ:     0.02,
		NoCStaticWPerUnit: 200e-6,
		LocalLinkByteNJ:   0.004,
		GPUStaticW:        40,
	}
}

// Breakdown is the per-component energy of one run, in nanojoules.
type Breakdown struct {
	NoCNJ    float64 // nubaunit: nJ
	DRAMNJ   float64 // nubaunit: nJ
	CoreNJ   float64 // nubaunit: nJ
	LLCNJ    float64 // nubaunit: nJ
	StaticNJ float64 // nubaunit: nJ
}

// TotalNJ sums all components.
func (b Breakdown) TotalNJ() float64 {
	return b.NoCNJ + b.DRAMNJ + b.CoreNJ + b.LLCNJ + b.StaticNJ
}

// NoCPowerW returns the average NoC power over the run.
func NoCPowerW(b Breakdown, cycles int64, clockGHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / (clockGHz * 1e9)
	return b.NoCNJ * 1e-9 / seconds
}

// Compute derives the run's energy breakdown from its statistics.
// nocPorts and nocWidth describe the crossbar actually built for the
// architecture (they differ between UBA variants and NUBA); the results
// are also written into the Stats energy fields.
func Compute(cfg *config.Config, st *metrics.Stats, nocPorts, nocWidth int, p Params) Breakdown {
	seconds := float64(st.Cycles) / (cfg.CoreClockGHz * 1e9)

	radixFactor := 1 + float64(nocPorts)/64
	nocDynamic := float64(st.NoCBytes) * p.NoCByteBaseNJ * radixFactor
	nocStatic := p.NoCStaticWPerUnit * float64(nocPorts) * float64(nocPorts) * float64(nocWidth) * seconds * 1e9
	localLinks := float64(st.LocalLinkBytes) * p.LocalLinkByteNJ

	b := Breakdown{
		// The static term is watts × nanoseconds ≡ nJ, but the symbolic
		// checker cannot reduce GHz⁻¹·cycle to ns.
		//nubalint:ignore unit-consistency W*ns static term is dimensionally nJ
		NoCNJ:    nocDynamic + nocStatic + localLinks,
		DRAMNJ:   float64(st.DRAMReads+st.DRAMWrites) * p.DRAMLineNJ,
		CoreNJ:   float64(st.Instructions)*p.PerWarpInstrNJ + float64(st.L1Accesses)*p.L1AccessNJ,
		LLCNJ:    float64(st.LLCAccesses) * p.LLCAccessNJ,
		StaticNJ: p.GPUStaticW * seconds * 1e9,
	}
	st.NoCEnergyNJ = b.NoCNJ
	st.DRAMEnergyNJ = b.DRAMNJ
	st.CoreEnergyNJ = b.CoreNJ
	st.LLCEnergyNJ = b.LLCNJ
	st.StaticEnergyNJ = b.StaticNJ
	return b
}
