package workload

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/kir"
)

func countingAlloc() (Alloc, *uint64) {
	var total uint64
	n := 0
	return func(size uint64) uint64 {
		total += size
		n++
		return uint64(n) << 40
	}, &total
}

func TestSuiteComplete(t *testing.T) {
	s := Suite()
	if len(s) != 29 {
		t.Fatalf("suite has %d benchmarks, Table 2 lists 29", len(s))
	}
	if len(LowSharing()) != 16 || len(HighSharing()) != 13 {
		t.Fatalf("sharing split %d/%d, want 16/13", len(LowSharing()), len(HighSharing()))
	}
	seen := map[string]bool{}
	for _, b := range s {
		if seen[b.Abbr] {
			t.Fatalf("duplicate abbreviation %s", b.Abbr)
		}
		seen[b.Abbr] = true
		if b.PaperMB <= 0 {
			t.Fatalf("%s: missing paper footprint", b.Abbr)
		}
	}
}

func TestAllBenchmarksBuildValidLaunches(t *testing.T) {
	for _, b := range Suite() {
		alloc, total := countingAlloc()
		launches, err := b.Build(alloc)
		if err != nil {
			t.Fatalf("%s: %v", b.Abbr, err)
		}
		if len(launches) == 0 {
			t.Fatalf("%s: no launches", b.Abbr)
		}
		for i, l := range launches {
			if err := l.Validate(); err != nil {
				t.Fatalf("%s launch %d: %v", b.Abbr, i, err)
			}
			if !l.Kernel.Analyzed {
				t.Fatalf("%s launch %d: kernel not analyzed", b.Abbr, i)
			}
			if l.GridDim < 64 {
				t.Errorf("%s launch %d: grid %d underutilizes 64 SMs", b.Abbr, i, l.GridDim)
			}
		}
		// Scaled footprints stay in the simulable window.
		mb := float64(*total) / MB
		if mb < 0.1 || mb > 64 {
			t.Errorf("%s: scaled footprint %.1f MB out of range", b.Abbr, mb)
		}
	}
}

func TestByAbbr(t *testing.T) {
	b, err := ByAbbr("SGEMM")
	if err != nil || b.Name != "SGemm" {
		t.Fatalf("ByAbbr: %v %v", b, err)
	}
	if _, err := ByAbbr("NOPE"); err == nil {
		t.Fatal("unknown abbr accepted")
	}
}

func TestReadOnlyClassificationPerTemplate(t *testing.T) {
	// The compiler analysis must classify the shared inputs of the
	// high-sharing kernels as read-only (they are MDR's fuel).
	cases := []struct {
		k      *kir.Kernel
		roBufs []string
		rwBufs []string
	}{
		{kStream, []string{"A"}, []string{"B"}},
		{kGemm, []string{"A", "B"}, []string{"C"}},
		{kDNNConv, []string{"IN", "W"}, []string{"OUT"}},
		{kGather, []string{"KEYS", "TREE"}, []string{"OUT"}},
		{kCluster, []string{"PTS", "CTR"}, []string{"OUT"}},
		{kMatvec, []string{"A", "X"}, []string{"Y"}},
		{kMapReduce, []string{"IN"}, []string{"TABLE"}},
		{kWavefront, []string{"REF"}, []string{"MAT"}},
	}
	for _, c := range cases {
		for _, name := range c.roBufs {
			i := c.k.BufferIndex(name)
			if i < 0 || !c.k.Buffers[i].ReadOnly {
				t.Errorf("%s: buffer %s should be read-only", c.k.Name, name)
			}
		}
		for _, name := range c.rwBufs {
			i := c.k.BufferIndex(name)
			if i < 0 || c.k.Buffers[i].ReadOnly {
				t.Errorf("%s: buffer %s should be read-write", c.k.Name, name)
			}
		}
	}
}

func TestHashValueDeterministic(t *testing.T) {
	if hashValue(42) != hashValue(42) {
		t.Fatal("hash value not deterministic")
	}
	if hashValue(1) == hashValue(2) {
		t.Fatal("suspicious hash collision")
	}
}

// TestBenchmarkKernelsTerminate functionally executes one warp of every
// launch to guard against infinite loops in the kernel templates.
func TestBenchmarkKernelsTerminate(t *testing.T) {
	for _, b := range Suite() {
		alloc, _ := countingAlloc()
		launches, err := b.Build(alloc)
		if err != nil {
			t.Fatal(err)
		}
		for li, l := range launches {
			w := kir.NewWarp(l, 0, 0)
			var mem kir.MemInfo
			for i := 0; i < 3_000_000 && !w.Exited; i++ {
				w.Exec(&mem)
			}
			if !w.Exited {
				t.Fatalf("%s launch %d: warp did not terminate", b.Abbr, li)
			}
		}
	}
}
