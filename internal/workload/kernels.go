package workload

import "github.com/nuba-gpu/nuba/internal/kir"

// The kernel templates. All are parsed and run through the read-only
// data-flow analysis at package init; the analysis rewrites loads of
// never-written buffers into ld.global.ro exactly as the paper's compiler
// pass does, so every benchmark automatically carries the replication
// hints MDR consumes.
//
// Performance-shaping notes (what makes the NUBA comparison meaningful):
//
//   - Purely compulsory streams are DRAM-bound on every architecture, so
//     the streaming templates take a `passes` knob: repeated sweeps over
//     the CTA's tile create L1-capacity misses that the LLC services —
//     the traffic class whose bandwidth differs between a 1.4 TB/s
//     crossbar (UBA) and 2.8 TB/s local links (NUBA).
//   - The DNN template spreads each warp's lanes over a sliding window
//     larger than the L1: every SM re-reads the shared window through
//     the LLC at high rate, saturating the UBA crossbar — the paper's
//     high-sharing replication-win pattern. Window size relative to a
//     partition's slice capacity decides whether replication helps
//     (AN/SN/RN) or thrashes (GRU), which is exactly the trade-off MDR
//     arbitrates.

func compileKernel(src string) *kir.Kernel {
	k := kir.MustParse(src)
	kir.AnalyzeReadOnly(k)
	return k
}

// kStream: CTA-tiled streaming with a tunable per-element compute loop
// and `passes` repeated sweeps over the tile. Each CTA owns a contiguous
// tile of ntid*iters elements, so accesses are coalesced within warps and
// pages are private to the owning SM under contiguous CTA assignment.
var kStream = compileKernel(`
.kernel stream
.param .ptr A
.param .ptr B
.param .u64 iters
.param .u64 cwork
.param .u64 passes
  mov r0, %tid
  mov r1, %ctaid
  mov r2, %ntid
  mul r3, r1, r2
  mul r3, r3, iters
  add r3, r3, r0
  mov r9, 0
ploop:
  mov r4, 0
loop:
  mad r5, r4, r2, r3
  shl r6, r5, 3
  ld.global.u64 r7, [A + r6]
  mov r8, 0
comp:
  fma r7, r7
  add r8, r8, 1
  setp.lt p0, r8, cwork
  @p0 bra comp
  st.global.u64 [B + r6], r7
  add r4, r4, 1
  setp.lt p0, r4, iters
  @p0 bra loop
  add r9, r9, 1
  setp.lt p0, r9, passes
  @p0 bra ploop
  exit
`)

// kStencil2D: five-point stencil over a rows-per-CTA tile, swept `passes`
// times; boundary rows are shared with adjacent CTAs (mostly the same SM).
var kStencil2D = compileKernel(`
.kernel stencil2d
.param .ptr A
.param .ptr B
.param .u64 rows
.param .u64 width
.param .u64 passes
  mov r0, %tid
  mov r1, %ctaid
  mul r2, r1, rows
  mov r14, 0
ploop:
  mov r3, 0
loop:
  add r4, r2, r3
  mad r5, r4, width, r0
  shl r6, r5, 3
  ld.global.u64 r7, [A + r6]
  add r8, r6, 8
  ld.global.u64 r9, [A + r8]
  sub r8, r6, 8
  max r8, r8, 0
  ld.global.u64 r10, [A + r8]
  add r11, r5, width
  shl r11, r11, 3
  ld.global.u64 r12, [A + r11]
  sub r11, r5, width
  max r11, r11, 0
  shl r11, r11, 3
  ld.global.u64 r13, [A + r11]
  add r7, r7, r9
  add r7, r7, r10
  add r7, r7, r12
  add r7, r7, r13
  fma r7, r7
  st.global.u64 [B + r6], r7
  add r3, r3, 1
  setp.lt p0, r3, rows
  @p0 bra loop
  add r14, r14, 1
  setp.lt p0, r14, passes
  @p0 bra ploop
  exit
`)

// kMatvec: y = A*x with A stored column-major so lanes coalesce over
// rows; the x vector is a small buffer shared (read-only) by every SM.
var kMatvec = compileKernel(`
.kernel matvec
.param .ptr A
.param .ptr X
.param .ptr Y
.param .u64 k
.param .u64 n
  mov r0, %tid
  mov r1, %ctaid
  mad r2, r1, %ntid, r0
  mov r3, 0
  mov r4, 0
loop:
  mad r5, r3, n, r2
  shl r5, r5, 3
  ld.global.u64 r6, [A + r5]
  shl r7, r3, 3
  ld.global.u64 r8, [X + r7]
  mad r4, r6, r8, r4
  add r3, r3, 1
  setp.lt p0, r3, k
  @p0 bra loop
  shl r9, r2, 3
  st.global.u64 [Y + r9], r4
  exit
`)

// kMatvecRow: y = A*x with A row-major and one thread per row — the
// uncoalesced transposed sweep of BICG's second kernel, touching every
// page of A from a different SM than the column-major first kernel.
var kMatvecRow = compileKernel(`
.kernel matvecrow
.param .ptr A
.param .ptr X
.param .ptr Y
.param .u64 k
  mov r0, %tid
  mov r1, %ctaid
  mad r2, r1, %ntid, r0
  mul r3, r2, k
  mov r4, 0
  mov r5, 0
loop:
  add r6, r3, r4
  shl r6, r6, 3
  ld.global.u64 r7, [A + r6]
  shl r8, r4, 3
  ld.global.u64 r9, [X + r8]
  mad r5, r7, r9, r5
  add r4, r4, 1
  setp.lt p0, r4, k
  @p0 bra loop
  shl r10, r2, 3
  st.global.u64 [Y + r10], r5
  exit
`)

// kGemm: C = A*B; each thread computes one C element. A rows broadcast
// (warp-uniform loads), B rows are read by every CTA row — the shared
// read-only panels that make GEMM-family benchmarks high-sharing, with a
// small lockstep window (the k sweep) that replication serves locally.
var kGemm = compileKernel(`
.kernel gemm
.param .ptr A
.param .ptr B
.param .ptr C
.param .u64 k
.param .u64 n
.param .u64 gj
  mov r0, %tid
  mov r1, %ctaid
  div r2, r1, gj
  rem r3, r1, gj
  mad r4, r3, %ntid, r0
  mov r5, 0
  mov r6, 0
loop:
  mad r7, r2, k, r5
  shl r7, r7, 3
  ld.global.u64 r8, [A + r7]
  mad r9, r5, n, r4
  shl r9, r9, 3
  ld.global.u64 r10, [B + r9]
  mad r6, r8, r10, r6
  add r5, r5, 1
  setp.lt p0, r5, k
  @p0 bra loop
  mad r11, r2, n, r4
  shl r11, r11, 3
  st.global.u64 [C + r11], r6
  exit
`)

// kDNNConv: a convolution/dense-layer sweep. Every thread reads `taps`
// elements of the shared input: lane l of a warp reads around
// (tid*97 mod window) inside a window that slides by `stride` per tap, so
// lanes spread over many lines (gather-style fan-out), the live working
// set is ~window elements shared by every SM, and the whole input is
// covered after taps steps. The weight vector is read warp-uniform.
var kDNNConv = compileKernel(`
.kernel dnnconv
.param .ptr IN
.param .ptr W
.param .ptr OUT
.param .u64 taps
.param .u64 insize
.param .u64 window
.param .u64 stride
  mov r0, %tid
  mov r1, %ctaid
  mad r2, r1, %ntid, r0
  mul r10, r0, 97
  rem r10, r10, window
  mov r3, 0
  mov r4, 0
loop:
  mul r5, r3, stride
  add r5, r5, r10
  rem r5, r5, insize
  shl r5, r5, 3
  ld.global.u64 r6, [IN + r5]
  shl r7, r3, 3
  ld.global.u64 r8, [W + r7]
  mad r4, r6, r8, r4
  add r3, r3, 1
  setp.lt p0, r3, taps
  @p0 bra loop
  shl r9, r2, 3
  st.global.u64 [OUT + r9], r4
  exit
`)

// kMapReduce: the Mars-style map phase: stream private input records,
// hash, and combine into a small read-write table with atomics. Irregular
// stores, but >80% of pages (the input) stay private — the paper's
// low-sharing irregular class.
var kMapReduce = compileKernel(`
.kernel mapreduce
.param .ptr IN
.param .ptr TABLE
.param .u64 iters
.param .u64 tsize
  mov r0, %tid
  mov r1, %ctaid
  mul r2, r1, %ntid
  mul r2, r2, iters
  add r2, r2, r0
  mov r3, 0
loop:
  mad r4, r3, %ntid, r2
  shl r5, r4, 3
  ld.global.u64 r6, [IN + r5]
  hash r7, r6
  rem r7, r7, tsize
  shl r7, r7, 3
  atom.global.add.u64 r8, [TABLE + r7], r6
  add r3, r3, 1
  setp.lt p0, r3, iters
  @p0 bra loop
  exit
`)

// kGather: B+tree-style traversal: private keys drive depth hash-chained
// lookups into a large shared read-only tree. Upper levels are hot (small
// index range), deep levels cold — replication of the whole tree thrashes
// the LLC, the case MDR must detect.
var kGather = compileKernel(`
.kernel gather
.param .ptr KEYS
.param .ptr TREE
.param .ptr OUT
.param .u64 iters
.param .u64 depth
.param .u64 tsize
  mov r0, %tid
  mov r1, %ctaid
  mul r2, r1, %ntid
  mul r2, r2, iters
  add r2, r2, r0
  mov r3, 0
loop:
  mad r4, r3, %ntid, r2
  shl r5, r4, 3
  ld.global.u64 r6, [KEYS + r5]
  mov r7, r6
  mov r8, 0
walk:
  hash r7, r7
  sub r9, depth, r8
  sub r9, r9, 1
  mul r9, r9, 2
  shr r10, tsize, r9
  max r10, r10, 1
  rem r11, r7, r10
  shl r11, r11, 3
  ld.global.u64 r12, [TREE + r11]
  add r7, r7, r12
  add r8, r8, 1
  setp.lt p0, r8, depth
  @p0 bra walk
  mad r13, r3, %ntid, r2
  shl r13, r13, 3
  st.global.u64 [OUT + r13], r7
  add r3, r3, 1
  setp.lt p0, r3, iters
  @p0 bra loop
  exit
`)

// kCluster: distance computation of private streaming points against
// center windows selected per CTA group — grpdiv controls how many CTAs
// (and hence SMs and partitions) share each window, reproducing
// intermediate sharing degrees (streamcluster's 2-10 SM class); gstride
// tiles the groups across the center buffer and the per-iteration window
// advance (spread across lanes) controls the shared working-set size.
var kCluster = compileKernel(`
.kernel cluster
.param .ptr PTS
.param .ptr CTR
.param .ptr OUT
.param .u64 iters
.param .u64 ncent
.param .u64 grpdiv
.param .u64 gstride
.param .u64 csize
  mov r0, %tid
  mov r1, %ctaid
  mul r2, r1, %ntid
  mul r2, r2, iters
  add r2, r2, r0
  div r3, r1, grpdiv
  mul r3, r3, gstride
  mov r14, %laneid
  mov r4, 0
loop:
  mad r5, r4, %ntid, r2
  shl r6, r5, 3
  ld.global.u64 r7, [PTS + r6]
  mov r8, 0
  mov r9, 0
cloop:
  mad r10, r4, ncent, r8
  shl r10, r10, 5
  add r10, r10, r3
  add r10, r10, r14
  rem r10, r10, csize
  shl r10, r10, 3
  ld.global.u64 r11, [CTR + r10]
  sub r12, r7, r11
  mad r9, r12, r12, r9
  fma r9, r9
  add r8, r8, 1
  setp.lt p0, r8, ncent
  @p0 bra cloop
  mad r13, r4, %ntid, r2
  shl r13, r13, 3
  st.global.u64 [OUT + r13], r9
  add r4, r4, 1
  setp.lt p0, r4, iters
  @p0 bra loop
  exit
`)

// kStencil3D: seven-point stencil with a large plane stride: the z-dim
// neighbors live a whole plane away, so CTAs far apart in schedule order
// (different SMs) touch the same pages — 3DCONV's high-sharing pattern —
// and a compute loop makes it relatively bandwidth-insensitive.
var kStencil3D = compileKernel(`
.kernel stencil3d
.param .ptr A
.param .ptr B
.param .u64 rows
.param .u64 width
.param .u64 plane
.param .u64 cwork
  mov r0, %tid
  mov r1, %ctaid
  mul r2, r1, rows
  mov r3, 0
loop:
  add r4, r2, r3
  mad r5, r4, width, r0
  shl r6, r5, 3
  ld.global.u64 r7, [A + r6]
  add r8, r5, width
  shl r8, r8, 3
  ld.global.u64 r9, [A + r8]
  sub r8, r5, width
  max r8, r8, 0
  shl r8, r8, 3
  ld.global.u64 r10, [A + r8]
  add r11, r5, plane
  shl r11, r11, 3
  ld.global.u64 r12, [A + r11]
  sub r11, r5, plane
  max r11, r11, 0
  shl r11, r11, 3
  ld.global.u64 r13, [A + r11]
  add r7, r7, r9
  add r7, r7, r10
  add r7, r7, r12
  add r7, r7, r13
  mov r8, 0
comp:
  fma r7, r7
  add r8, r8, 1
  setp.lt p0, r8, cwork
  @p0 bra comp
  st.global.u64 [B + r6], r7
  add r3, r3, 1
  setp.lt p0, r3, rows
  @p0 bra loop
  exit
`)

// kWavefront: Needleman-Wunsch-style band update: reads the shared
// read-only reference and the previous band of the read-write score
// matrix, writes the current band. One launch per band; the reference
// window shifts with the band so its pages are shared across bands' SM
// sets.
var kWavefront = compileKernel(`
.kernel wavefront
.param .ptr REF
.param .ptr MAT
.param .u64 band
.param .u64 width
.param .u64 refsize
  mov r0, %tid
  mov r1, %ctaid
  mad r2, r1, %ntid, r0
  mad r3, band, width, r2
  shl r4, r3, 3
  sub r5, r3, width
  shl r5, r5, 3
  ld.global.u64 r6, [MAT + r5]
  sub r7, r5, 8
  max r7, r7, 0
  ld.global.u64 r8, [MAT + r7]
  mad r9, band, 12345, r2
  rem r9, r9, refsize
  shl r9, r9, 3
  ld.global.u64 r10, [REF + r9]
  mul r11, r2, 7
  mad r11, band, 54321, r11
  rem r11, r11, refsize
  shl r11, r11, 3
  ld.global.u64 r12, [REF + r11]
  add r6, r6, r8
  add r6, r6, r10
  max r6, r6, r12
  fma r6, r6
  st.global.u64 [MAT + r4], r6
  exit
`)
