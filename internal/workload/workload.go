// Package workload re-creates the paper's 29-benchmark suite (Table 2) as
// kernels in the kir intermediate representation. Each benchmark is built
// from one of ten kernel templates (streaming, 2D stencil, matrix-vector,
// tiled GEMM, DNN convolution, RNN cell, MapReduce hashing, pointer-chase
// gather, clustering and wavefront) parameterized to reproduce the
// benchmark's defining properties:
//
//   - the page-sharing degree across SMs (Figure 3's low/high classes),
//   - the ratio of memory footprint to aggregate LLC capacity,
//   - the read-only shared footprint (Table 2's right column),
//   - the compute-to-memory ratio (bandwidth sensitivity).
//
// Footprints are scaled from the paper's gigabyte-class inputs to
// megabyte-class inputs so a simulation finishes in seconds; the scaling
// preserves each benchmark's relationship to the 6 MB LLC (streaming
// benchmarks stay far larger than the LLC, the DNN working sets stay
// comparable to it), which is what NUBA's mechanisms respond to.
package workload

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// Alloc reserves a page-aligned virtual range of the given byte size and
// returns its base address (implemented by core.GPU.NewBuffer).
type Alloc func(size uint64) uint64

// Benchmark describes one suite entry.
type Benchmark struct {
	// Name and Abbr follow Table 2.
	Name string
	Abbr string
	// High marks the high-sharing class of Figure 3.
	High bool
	// PaperMB / PaperROMB are Table 2's footprints, for documentation
	// and the Table 2 report.
	PaperMB   float64
	PaperROMB float64
	// Build produces the benchmark's kernel launches.
	Build func(alloc Alloc) ([]*kir.Launch, error)
}

// MB is 2^20 bytes.
const MB = 1 << 20

// CTAThreads is the CTA size used across the suite (8 warps).
const CTAThreads = 256

// hashValue is the value model for buffers holding synthetic keys or
// irregular indices: element i reads as a well-mixed function of i, so
// data-dependent addressing is reproducible without storing data.
func hashValue(i int64) int64 { return int64(sim.Mix(uint64(i))) }

// Suite returns the full 29-benchmark suite in Table 2 order.
func Suite() []Benchmark { return suite }

// LowSharing returns the low-sharing benchmarks.
func LowSharing() []Benchmark { return filter(false) }

// HighSharing returns the high-sharing benchmarks.
func HighSharing() []Benchmark { return filter(true) }

func filter(high bool) []Benchmark {
	var out []Benchmark
	for _, b := range suite {
		if b.High == high {
			out = append(out, b)
		}
	}
	return out
}

// ByAbbr returns the benchmark with the given abbreviation.
func ByAbbr(abbr string) (Benchmark, error) {
	for _, b := range suite {
		if b.Abbr == abbr {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", abbr)
}

// launch builds a validated Launch.
func launch(k *kir.Kernel, grid int, scalars []int64, bufs []kir.Binding) (*kir.Launch, error) {
	l := &kir.Launch{Kernel: k, GridDim: grid, CTAThreads: CTAThreads, Scalars: scalars, Buffers: bufs}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// buf is a shorthand Binding constructor.
func buf(base, size uint64) kir.Binding { return kir.Binding{Base: base, Size: size} }

// hbuf is a Binding whose loads return hashed values.
func hbuf(base, size uint64) kir.Binding {
	return kir.Binding{Base: base, Size: size, Value: hashValue}
}
