package workload

import "github.com/nuba-gpu/nuba/internal/kir"

// The suite, in Table 2 order. Buffer sizes are the scaled footprints
// discussed in the package comment; PaperMB/PaperROMB document the paper's
// original numbers. Grids use 256-thread CTAs across 96-512 CTAs so the
// baseline 64-SM GPU runs 2-8 CTAs per SM.

// streamBench builds a streaming benchmark: phases launches over a
// ping-ponged pair of arrays, each sweeping the CTA tile `passes` times
// (pass >= 2 creates the L1-capacity / LLC-hit traffic of the real codes).
func streamBench(grid int, iters, cwork, passes int64, phases int) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		size := uint64(grid) * CTAThreads * uint64(iters) * 8
		a, b := alloc(size), alloc(size)
		var ls []*kir.Launch
		for p := 0; p < phases; p++ {
			src, dst := a, b
			if p%2 == 1 {
				src, dst = b, a
			}
			l, err := launch(kStream, grid, []int64{iters, cwork, passes},
				[]kir.Binding{buf(src, size), buf(dst, size)})
			if err != nil {
				return nil, err
			}
			ls = append(ls, l)
		}
		return ls, nil
	}
}

// stencilBench builds a 2D stencil benchmark with rowsPerCTA rows per CTA,
// `passes` sweeps per launch and the given number of launches.
func stencilBench(grid int, rowsPerCTA, passes int64, phases int) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		width := int64(CTAThreads)
		size := uint64(grid) * uint64(rowsPerCTA) * uint64(width) * 8
		a, b := alloc(size), alloc(size)
		var ls []*kir.Launch
		for p := 0; p < phases; p++ {
			src, dst := a, b
			if p%2 == 1 {
				src, dst = b, a
			}
			l, err := launch(kStencil2D, grid, []int64{rowsPerCTA, width, passes},
				[]kir.Binding{buf(src, size), buf(dst, size)})
			if err != nil {
				return nil, err
			}
			ls = append(ls, l)
		}
		return ls, nil
	}
}

// matvecBench builds a column-major matrix-vector benchmark: one launch
// per matrix, all sharing the small x vector. Matrices are distinct
// buffers (the transposed-copy formulation the paper's low-sharing
// classification implies for MVT/ATAX/GESUMMV).
func matvecBench(grid int, k int64, matrices int) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		n := int64(grid) * CTAThreads
		asize := uint64(n) * uint64(k) * 8
		xsize := uint64(k) * 8
		ysize := uint64(n) * 8
		x := alloc(xsize)
		var ls []*kir.Launch
		for m := 0; m < matrices; m++ {
			a, y := alloc(asize), alloc(ysize)
			l, err := launch(kMatvec, grid, []int64{k, n},
				[]kir.Binding{buf(a, asize), buf(x, xsize), buf(y, ysize)})
			if err != nil {
				return nil, err
			}
			ls = append(ls, l)
		}
		return ls, nil
	}
}

// mapReduceBench builds a Mars-style benchmark: a private input stream
// hashed into a small read-write table with atomics (one in eight records
// escapes the local combiner, as in real MapReduce map phases).
func mapReduceBench(grid int, iters, tableElems int64) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		in := uint64(grid) * CTAThreads * uint64(iters) * 8
		tbl := uint64(tableElems) * 8
		l, err := launch(kMapReduce, grid, []int64{iters, tableElems},
			[]kir.Binding{hbuf(alloc(in), in), buf(alloc(tbl), tbl)})
		if err != nil {
			return nil, err
		}
		return []*kir.Launch{l}, nil
	}
}

// clusterBench builds a clustering benchmark (points vs. shared center
// windows). See kCluster for the meaning of the knobs.
func clusterBench(grid int, iters, ncent, grpdiv, gstride, csize int64) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		pts := uint64(grid) * CTAThreads * uint64(iters) * 8
		ctr := uint64(csize) * 8
		l, err := launch(kCluster, grid, []int64{iters, ncent, grpdiv, gstride, csize},
			[]kir.Binding{buf(alloc(pts), pts), buf(alloc(ctr), ctr), buf(alloc(pts), pts)})
		if err != nil {
			return nil, err
		}
		return []*kir.Launch{l}, nil
	}
}

// gemmBench builds `phases` chained GEMMs: the output of one feeds the
// next (the 2MM structure); with phases=1 it is plain SGEMM/MM.
func gemmBench(grid int, k, n, gj int64, phases int) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		m := int64(grid) / gj
		asize := uint64(m) * uint64(k) * 8
		bsize := uint64(k) * uint64(n) * 8
		csize := uint64(m) * uint64(n) * 8
		a := alloc(asize)
		var ls []*kir.Launch
		for p := 0; p < phases; p++ {
			b, c := alloc(bsize), alloc(csize)
			l, err := launch(kGemm, grid, []int64{k, n, gj},
				[]kir.Binding{buf(a, asize), buf(b, bsize), buf(c, csize)})
			if err != nil {
				return nil, err
			}
			ls = append(ls, l)
			// The next phase multiplies the previous result against a
			// fresh panel: the read-write output of one kernel becomes
			// read-only input of the next, as the paper notes for
			// inter-kernel data.
			a, asize = c, csize
		}
		return ls, nil
	}
}

// dnnBench builds a DNN benchmark: `layers` window-sweep launches, each
// reading the shared input through a sliding window of `window` elements
// (sized against the L1 and a partition's LLC slices; see kernels.go) and
// a warp-uniform weight vector. The output of one layer is the read-only
// input of the next.
func dnnBench(grid, layers int, taps, inElems, window, wElems int64) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		outElems := int64(grid) * CTAThreads
		in, insz := alloc(uint64(inElems)*8), inElems
		var ls []*kir.Launch
		for layer := 0; layer < layers; layer++ {
			win := window
			if win > insz {
				win = insz
			}
			stride := (insz - win) / taps
			if stride < 1 {
				stride = 1
			}
			w := alloc(uint64(wElems) * 8)
			out := alloc(uint64(outElems) * 8)
			l, err := launch(kDNNConv, grid, []int64{taps, insz, win, stride},
				[]kir.Binding{buf(in, uint64(insz)*8), buf(w, uint64(wElems)*8), buf(out, uint64(outElems)*8)})
			if err != nil {
				return nil, err
			}
			ls = append(ls, l)
			in, insz = out, outElems
		}
		return ls, nil
	}
}

// rnnBench builds the GRU benchmark: `steps` timesteps over ping-ponged
// hidden-state buffers (read-only within a step, rewritten by the next),
// swept through a window larger than a partition's LLC slices — the
// replication-thrashing case MDR must turn off, re-evaluated after every
// kernel-boundary flush.
func rnnBench(grid, steps int, taps, hElems, window, wElems int64) func(Alloc) ([]*kir.Launch, error) {
	return func(alloc Alloc) ([]*kir.Launch, error) {
		outElems := int64(grid) * CTAThreads
		h0 := alloc(uint64(hElems) * 8)
		h1 := alloc(uint64(outElems) * 8)
		w := alloc(uint64(wElems) * 8)
		var ls []*kir.Launch
		in, insz := h0, hElems
		out := h1
		for t := 0; t < steps; t++ {
			win := window
			if win > insz {
				win = insz
			}
			stride := (insz - win) / taps
			if stride < 1 {
				stride = 1
			}
			l, err := launch(kDNNConv, grid, []int64{taps, insz, win, stride},
				[]kir.Binding{buf(in, uint64(insz)*8), buf(w, uint64(wElems)*8), buf(out, uint64(outElems)*8)})
			if err != nil {
				return nil, err
			}
			ls = append(ls, l)
			in, out = out, in
			insz = outElems
		}
		return ls, nil
	}
}

var suite = []Benchmark{
	// ------------------------- low-sharing -------------------------
	{
		Name: "LavaMD", Abbr: "LAVAMD", PaperMB: 7, PaperROMB: 0.9,
		// Particle cells vs. neighbor-cell windows shared by 4-CTA
		// groups (one SM): 0.9 MB of centers, 4 MB of points.
		Build: clusterBench(512, 4, 24, 8, 1792, 114688),
	},
	{
		Name: "Lattice-Boltzmann", Abbr: "LBM", PaperMB: 389, PaperROMB: 33,
		// Streaming with neighbor-distribution re-reads: 2x8 MB tiles
		// swept twice, bandwidth-bound.
		Build: streamBench(512, 8, 1, 2, 1),
	},
	{
		Name: "DWT2D", Abbr: "DWT2D", PaperMB: 302, PaperROMB: 0.01,
		// Two transform levels over 2x4 MB.
		Build: streamBench(512, 4, 1, 2, 1),
	},
	{
		Name: "Kmeans", Abbr: "KMEANS", PaperMB: 136, PaperROMB: 0.1,
		// Streaming points vs. a tiny all-shared centroid table.
		Build: clusterBench(320, 12, 16, 1<<20, 0, 16384),
	},
	{
		Name: "Page View Count", Abbr: "PVC", PaperMB: 1081, PaperROMB: 0.6,
		Build: mapReduceBench(384, 16, 131072),
	},
	{
		Name: "Black-Scholes", Abbr: "BH", PaperMB: 48, PaperROMB: 5.3,
		// Compute-heavy streaming.
		Build: streamBench(512, 4, 8, 2, 1),
	},
	{
		Name: "Wordcount", Abbr: "WC", PaperMB: 542, PaperROMB: 0.9,
		Build: mapReduceBench(512, 12, 65536),
	},
	{
		Name: "Stringmatch", Abbr: "SM", PaperMB: 146, PaperROMB: 1.2,
		Build: mapReduceBench(384, 8, 131072),
	},
	{
		Name: "2DConvolution", Abbr: "2DCONV", PaperMB: 1074, PaperROMB: 17,
		Build: stencilBench(512, 8, 2, 1),
	},
	{
		Name: "Mvt", Abbr: "MVT", PaperMB: 6443, PaperROMB: 0.1,
		// Two passes over separate (pre-transposed) 12 MB matrices.
		Build: matvecBench(512, 12, 2),
	},
	{
		Name: "FastWalshTransform", Abbr: "FWT", PaperMB: 269, PaperROMB: 0.01,
		Build: streamBench(512, 4, 1, 2, 2),
	},
	{
		Name: "Backprop", Abbr: "BP", PaperMB: 75, PaperROMB: 0.4,
		Build: streamBench(512, 4, 2, 2, 2),
	},
	{
		Name: "Fdtd2D", Abbr: "FTD2D", PaperMB: 51, PaperROMB: 0.07,
		Build: stencilBench(512, 4, 2, 3),
	},
	{
		Name: "Convolution Separable", Abbr: "CONVS", PaperMB: 151, PaperROMB: 20,
		Build: stencilBench(512, 6, 2, 2),
	},
	{
		Name: "ATAX", Abbr: "ATAX", PaperMB: 1342, PaperROMB: 0.08,
		Build: matvecBench(512, 8, 2),
	},
	{
		Name: "Gesummv", Abbr: "GESUMM", PaperMB: 1073, PaperROMB: 0.1,
		Build: matvecBench(512, 8, 2),
	},

	// ------------------------- high-sharing ------------------------
	{
		Name: "Streamcluster", Abbr: "SC", High: true, PaperMB: 302, PaperROMB: 8,
		// Center windows shared by 24-CTA groups (4 SMs, 2 partitions);
		// the shared working set exceeds a partition's slice capacity,
		// so full replication pressures the LLC.
		Build: clusterBench(384, 8, 96, 24, 24576, 786432),
	},
	{
		Name: "2MM", Abbr: "2MM", High: true, PaperMB: 84, PaperROMB: 6,
		// Two chained GEMMs; the lockstep k-sweep keeps the shared
		// panel window small — the big full-replication winner.
		Build: gemmBench(512, 256, 512, 2, 2),
	},
	{
		Name: "Leukocyte", Abbr: "LEU", High: true, PaperMB: 2, PaperROMB: 1,
		// A small image swept by every CTA with heavy reuse.
		Build: dnnBench(256, 1, 6, 98304, 8192, 4096),
	},
	{
		Name: "B+tree", Abbr: "BT", High: true, PaperMB: 39, PaperROMB: 36,
		// Random traversals of a 12 MB shared read-only tree: the
		// replication-thrashing case.
		Build: func(alloc Alloc) ([]*kir.Launch, error) {
			grid, iters, depth := 256, int64(2), int64(4)
			keys := uint64(grid) * CTAThreads * uint64(iters) * 8
			tsize := int64(1536 * 1024) // 12 MB
			l, err := launch(kGather, grid, []int64{iters, depth, tsize},
				[]kir.Binding{hbuf(alloc(keys), keys), hbuf(alloc(uint64(tsize)*8), uint64(tsize)*8), buf(alloc(keys), keys)})
			if err != nil {
				return nil, err
			}
			return []*kir.Launch{l}, nil
		},
	},
	{
		Name: "SGemm", Abbr: "SGEMM", High: true, PaperMB: 9, PaperROMB: 8,
		Build: gemmBench(512, 256, 1024, 4, 1),
	},
	{
		Name: "Matrixmul", Abbr: "MM", High: true, PaperMB: 8, PaperROMB: 7,
		Build: gemmBench(512, 256, 512, 2, 1),
	},
	{
		Name: "3DConvolution", Abbr: "3DCONV", High: true, PaperMB: 1074, PaperROMB: 68,
		// Plane-stride neighbors land on pages owned by distant CTAs;
		// a compute loop keeps it relatively bandwidth-insensitive.
		Build: func(alloc Alloc) ([]*kir.Launch, error) {
			grid, rows := 256, int64(12)
			width := int64(CTAThreads)
			plane := int64(16) * width * rows // 16 CTAs away: other SMs
			size := uint64(grid) * uint64(rows) * uint64(width) * 8
			l, err := launch(kStencil3D, grid, []int64{rows, width, plane, 6},
				[]kir.Binding{buf(alloc(size), size), buf(alloc(size), size)})
			if err != nil {
				return nil, err
			}
			return []*kir.Launch{l}, nil
		},
	},
	{
		Name: "AlexNet", Abbr: "AN", High: true, PaperMB: 1, PaperROMB: 0.4,
		// All-shared feature maps with a 96 KB live window: larger than
		// the L1, smaller than a partition's slices — replication turns
		// the crossbar-saturating re-reads into local hits.
		Build: dnnBench(256, 2, 4, 49152, 12288, 4096),
	},
	{
		Name: "SqueezeNet", Abbr: "SN", High: true, PaperMB: 1, PaperROMB: 0.9,
		Build: dnnBench(256, 2, 4, 65536, 16384, 16384),
	},
	{
		Name: "ResNet", Abbr: "RN", High: true, PaperMB: 4, PaperROMB: 0.7,
		Build: dnnBench(256, 2, 4, 131072, 12288, 8192),
	},
	{
		Name: "Gated Recurrent Unit", Abbr: "GRU", High: true, PaperMB: 2, PaperROMB: 0.4,
		// Timesteps over ping-ponged hidden state swept through a
		// 384 KB window: replicas exceed a partition's slices and are
		// rebuilt after every kernel-boundary flush, so full
		// replication loses.
		Build: rnnBench(256, 4, 2, 65536, 49152, 4096),
	},
	{
		Name: "Needleman-Wunsch", Abbr: "NW", High: true, PaperMB: 16, PaperROMB: 10,
		// Sixteen diagonal-band launches over a shared reference.
		Build: func(alloc Alloc) ([]*kir.Launch, error) {
			grid, bands := 256, 16
			width := int64(grid) * CTAThreads
			matSize := uint64(bands+1) * uint64(width) * 8
			refElems := int64(1048576) // 8 MB reference
			mat := alloc(matSize)
			ref := alloc(uint64(refElems) * 8)
			var ls []*kir.Launch
			for b := 1; b <= bands; b++ {
				l, err := launch(kWavefront, grid, []int64{int64(b), width, refElems},
					[]kir.Binding{buf(ref, uint64(refElems)*8), buf(mat, matSize)})
				if err != nil {
					return nil, err
				}
				ls = append(ls, l)
			}
			return ls, nil
		},
	},
	{
		Name: "BICG", Abbr: "BICG", High: true, PaperMB: 2013, PaperROMB: 472,
		// Column-major then row-major sweeps of the SAME matrix: every
		// page is shared across the two kernels' SM sets, and the large
		// read-only matrix makes full replication thrash.
		Build: func(alloc Alloc) ([]*kir.Launch, error) {
			grid := 256
			n := int64(grid) * CTAThreads // 65536 rows
			k := int64(8)
			asize := uint64(n) * uint64(k) * 8 // 8 MB
			a := alloc(asize)
			x := alloc(uint64(k) * 8)
			y1 := alloc(uint64(n) * 8)
			l1, err := launch(kMatvec, grid, []int64{k, n},
				[]kir.Binding{buf(a, asize), buf(x, uint64(k)*8), buf(y1, uint64(n)*8)})
			if err != nil {
				return nil, err
			}
			x2 := alloc(uint64(k) * 8)
			y2 := alloc(uint64(n) * 8)
			l2, err := launch(kMatvecRow, grid, []int64{k},
				[]kir.Binding{buf(a, asize), buf(x2, uint64(k)*8), buf(y2, uint64(n)*8)})
			if err != nil {
				return nil, err
			}
			return []*kir.Launch{l1, l2}, nil
		},
	},
}
