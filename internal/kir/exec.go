package kir

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/sim"
)

// Launch binds a kernel to a grid and its memory: the simulator's
// equivalent of a CUDA kernel launch.
type Launch struct {
	Kernel *Kernel
	// GridDim is the number of CTAs; CTAThreads the threads per CTA
	// (a multiple of WarpSize).
	GridDim    int
	CTAThreads int
	// Scalars are the values of the scalar parameters, in order.
	Scalars []int64
	// Buffers bind the pointer parameters, in order.
	Buffers []Binding
}

// Binding places one buffer parameter in the virtual address space.
type Binding struct {
	// Base is the virtual base address (page aligned by convention).
	Base uint64
	// Size is the buffer extent in bytes. Per-lane offsets wrap modulo
	// Size so a kernel bug cannot touch unrelated address space.
	Size uint64
	// Value is the functional value model: loads of element i return
	// Value(i). A nil Value reads as zero. The simulator stores no data;
	// value models make data-dependent (irregular) addressing
	// reproducible without a backing store.
	Value func(elem int64) int64
}

// WarpsPerCTA returns the number of warps each CTA occupies.
func (l *Launch) WarpsPerCTA() int { return (l.CTAThreads + WarpSize - 1) / WarpSize }

// Validate checks the launch against its kernel.
func (l *Launch) Validate() error {
	k := l.Kernel
	switch {
	case k == nil:
		return fmt.Errorf("kir: launch without kernel")
	case !k.Analyzed:
		return fmt.Errorf("kir: kernel %s not analyzed (run AnalyzeReadOnly)", k.Name)
	case l.GridDim <= 0:
		return fmt.Errorf("kir: %s: grid must be positive", k.Name)
	case l.CTAThreads <= 0 || l.CTAThreads%WarpSize != 0:
		return fmt.Errorf("kir: %s: CTA threads %d not a positive multiple of %d", k.Name, l.CTAThreads, WarpSize)
	case len(l.Scalars) != len(k.ScalarParams):
		return fmt.Errorf("kir: %s: %d scalars bound, kernel wants %d", k.Name, len(l.Scalars), len(k.ScalarParams))
	case len(l.Buffers) != len(k.Buffers):
		return fmt.Errorf("kir: %s: %d buffers bound, kernel wants %d", k.Name, len(l.Buffers), len(k.Buffers))
	}
	for i, b := range l.Buffers {
		if b.Size == 0 {
			return fmt.Errorf("kir: %s: buffer %s has zero size", k.Name, k.Buffers[i].Name)
		}
	}
	return nil
}

// Value is a warp-wide 64-bit value: uniform (one scalar for all lanes) or
// per-lane. The zero Value is uniform zero, so fresh register files are
// valid.
type Value struct {
	lanes  *[WarpSize]int64
	scalar int64
}

// Uniform reports whether all lanes share one scalar.
func (v *Value) Uniform() bool { return v.lanes == nil }

// Lane returns the value of the given lane.
func (v *Value) Lane(l int) int64 {
	if v.lanes == nil {
		return v.scalar
	}
	return v.lanes[l]
}

// setUniform makes v uniform with the given scalar.
func (v *Value) setUniform(x int64) { v.lanes, v.scalar = nil, x }

// spread converts v to per-lane form.
func (v *Value) spread() *[WarpSize]int64 {
	if v.lanes == nil {
		var a [WarpSize]int64
		for i := range a {
			a[i] = v.scalar
		}
		v.lanes = &a
	}
	return v.lanes
}

// MemInfo describes the memory access produced by executing a load, store
// or atomic: the per-lane virtual addresses before coalescing.
type MemInfo struct {
	Buf       int
	Store     bool
	Atomic    bool
	RO        bool
	ElemBytes int
	// Mask has a bit per lane that performs the access.
	Mask uint32
	// Addrs are the per-lane virtual byte addresses (valid where Mask).
	Addrs [WarpSize]uint64
}

// StepKind classifies what an executed instruction asks of the SM.
type StepKind uint8

// Step kinds.
const (
	// StepCompute finished an arithmetic instruction; the destination
	// register becomes ready after the op latency.
	StepCompute StepKind = iota
	// StepMem produced a memory access (details in the MemInfo the SM
	// supplied).
	StepMem
	// StepBarrier arrived at a CTA barrier.
	StepBarrier
	// StepExit retired the warp.
	StepExit
)

// StepInfo summarizes one executed instruction for the SM's timing model.
type StepInfo struct {
	Kind StepKind
	// Op is the executed opcode.
	Op Op
	// DstReg is the general register written, or -1. The SM's
	// scoreboard marks it pending until the result is available.
	DstReg int8
	// Latency is the compute latency for StepCompute.
	Latency int64
}

// Warp is the architectural state of one warp.
type Warp struct {
	L *Launch
	// CTA is the linear CTA index; WarpInCTA the warp index within it.
	CTA       int
	WarpInCTA int
	PC        int
	// ActiveMask has a bit per lane that exists (CTAThreads may leave a
	// tail warp partially populated).
	ActiveMask uint32
	Regs       []Value
	Preds      []uint32
	Exited     bool
	// tidLanes caches the per-lane %tid values.
	tidLanes [WarpSize]int64
}

// laneIndex holds the per-lane %laneid values, shared by all warps.
var laneIndex = func() (a [WarpSize]int64) {
	for i := range a {
		a[i] = int64(i)
	}
	return
}()

// laneRef is a resolved operand: either a scalar or a pointer to per-lane
// values. It lets the interpreter's inner loops avoid per-lane switch
// dispatch.
type laneRef struct {
	lanes  *[WarpSize]int64
	scalar int64
}

func (r laneRef) at(l int) int64 {
	if r.lanes != nil {
		return r.lanes[l]
	}
	return r.scalar
}

// resolve evaluates an operand into a laneRef.
func (w *Warp) resolve(o Operand) laneRef {
	switch o.Kind {
	case OpdReg:
		v := &w.Regs[o.Val]
		if v.lanes != nil {
			return laneRef{lanes: v.lanes}
		}
		return laneRef{scalar: v.scalar}
	case OpdImm:
		return laneRef{scalar: o.Val}
	case OpdParam:
		return laneRef{scalar: w.L.Scalars[o.Val]}
	case OpdSpecial:
		switch Special(o.Val) {
		case SpecTid:
			return laneRef{lanes: &w.tidLanes}
		case SpecCtaid:
			return laneRef{scalar: int64(w.CTA)}
		case SpecNtid:
			return laneRef{scalar: int64(w.L.CTAThreads)}
		case SpecNctaid:
			return laneRef{scalar: int64(w.L.GridDim)}
		case SpecWarpid:
			return laneRef{scalar: int64(w.WarpInCTA)}
		case SpecLaneid:
			return laneRef{lanes: &laneIndex}
		}
	}
	return laneRef{}
}

// NewWarp returns warp warpInCTA of CTA cta, ready at PC 0.
func NewWarp(l *Launch, cta, warpInCTA int) *Warp {
	threads := l.CTAThreads - warpInCTA*WarpSize
	if threads > WarpSize {
		threads = WarpSize
	}
	var mask uint32
	if threads >= 32 {
		mask = ^uint32(0)
	} else {
		mask = (1 << uint(threads)) - 1
	}
	w := &Warp{
		L:          l,
		CTA:        cta,
		WarpInCTA:  warpInCTA,
		ActiveMask: mask,
		Regs:       make([]Value, l.Kernel.NumRegs),
		Preds:      make([]uint32, l.Kernel.NumPreds),
	}
	for i := range w.tidLanes {
		w.tidLanes[i] = int64(warpInCTA*WarpSize + i)
	}
	return w
}

// Current returns the instruction at PC, or nil if the warp has exited.
func (w *Warp) Current() *Instr {
	if w.Exited {
		return nil
	}
	return &w.L.Kernel.Code[w.PC]
}

// guardMask returns the lanes that execute the current instruction.
func (w *Warp) guardMask(in *Instr) uint32 {
	m := w.ActiveMask
	if in.Pred >= 0 {
		p := w.Preds[in.Pred]
		if in.PredNeg {
			p = ^p
		}
		m &= p
	}
	return m
}

// operand evaluates o for one lane.
func (w *Warp) operand(o Operand, lane int) int64 {
	switch o.Kind {
	case OpdReg:
		return w.Regs[o.Val].Lane(lane)
	case OpdImm:
		return o.Val
	case OpdParam:
		return w.L.Scalars[o.Val]
	case OpdSpecial:
		switch Special(o.Val) {
		case SpecTid:
			return int64(w.WarpInCTA*WarpSize + lane)
		case SpecCtaid:
			return int64(w.CTA)
		case SpecNtid:
			return int64(w.L.CTAThreads)
		case SpecNctaid:
			return int64(w.L.GridDim)
		case SpecWarpid:
			return int64(w.WarpInCTA)
		case SpecLaneid:
			return int64(lane)
		}
	}
	return 0
}

// operandUniform evaluates o if it is warp-uniform.
func (w *Warp) operandUniform(o Operand) (int64, bool) {
	switch o.Kind {
	case OpdReg:
		v := &w.Regs[o.Val]
		if v.Uniform() {
			return v.scalar, true
		}
		return 0, false
	case OpdImm:
		return o.Val, true
	case OpdParam:
		return w.L.Scalars[o.Val], true
	case OpdSpecial:
		switch Special(o.Val) {
		case SpecCtaid:
			return int64(w.CTA), true
		case SpecNtid:
			return int64(w.L.CTAThreads), true
		case SpecNctaid:
			return int64(w.L.GridDim), true
		case SpecWarpid:
			return int64(w.WarpInCTA), true
		default:
			return 0, false
		}
	}
	return 0, false
}

func alu(op Op, a, b, c int64) int64 {
	switch op {
	case OpMov, OpFma:
		return a
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpMad:
		return a*b + c
	case OpShl:
		return a << uint64(b&63)
	case OpShr:
		return int64(uint64(a) >> uint64(b&63))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpRem:
		if b == 0 {
			return 0
		}
		return a % b
	case OpHash:
		return int64(sim.Mix(uint64(a)))
	default:
		panic("kir: alu on non-alu op " + op.String())
	}
}

func compare(c Cmp, a, b int64) bool {
	switch c {
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpEQ:
		return a == b
	default:
		return a != b
	}
}

// writeReg writes per-lane results into register d under mask, keeping the
// uniform fast path when the whole warp writes the same scalar.
func (w *Warp) writeReg(d int8, mask uint32, full bool, uniformVal int64, uniformOK bool, f func(lane int) int64) {
	r := &w.Regs[d]
	if full && uniformOK {
		r.setUniform(uniformVal)
		return
	}
	lanes := r.spread()
	for l := 0; l < WarpSize; l++ {
		if mask&(1<<uint(l)) != 0 {
			if uniformOK {
				lanes[l] = uniformVal
			} else {
				lanes[l] = f(l)
			}
		}
	}
}

// Exec executes the instruction at PC, applies its architectural effects
// (register/predicate writes, PC update) and returns timing information.
// For memory operations the per-lane addresses and dest-value writes are
// produced immediately (the value model is functional); the SM is
// responsible for charging latency via its scoreboard. mem must be
// non-nil; it is overwritten when the result kind is StepMem.
func (w *Warp) Exec(mem *MemInfo) StepInfo {
	in := w.Current()
	if in == nil {
		return StepInfo{Kind: StepExit, DstReg: -1}
	}
	mask := w.guardMask(in)
	full := mask == w.ActiveMask

	switch in.Op {
	case OpExit:
		w.Exited = true
		w.PC++
		return StepInfo{Kind: StepExit, Op: in.Op, DstReg: -1}

	case OpBar:
		w.PC++
		return StepInfo{Kind: StepBarrier, Op: in.Op, DstReg: -1}

	case OpBra:
		taken := mask != 0
		if taken && mask != w.ActiveMask {
			panic(fmt.Sprintf("kir: %s: divergent branch at line %d (mask %08x of %08x)",
				w.L.Kernel.Name, in.Line, mask, w.ActiveMask))
		}
		if taken {
			w.PC = int(in.Target)
		} else {
			w.PC++
		}
		return StepInfo{Kind: StepCompute, Op: in.Op, DstReg: -1, Latency: in.Op.Latency()}

	case OpSetp:
		var m uint32
		ra, rb := w.resolve(in.Src[0]), w.resolve(in.Src[1])
		if ra.lanes == nil && rb.lanes == nil {
			if compare(in.Cmp, ra.scalar, rb.scalar) {
				m = ^uint32(0)
			}
		} else {
			for l := 0; l < WarpSize; l++ {
				if compare(in.Cmp, ra.at(l), rb.at(l)) {
					m |= 1 << uint(l)
				}
			}
		}
		w.Preds[in.Dst] = (w.Preds[in.Dst] &^ mask) | (m & mask)
		w.PC++
		return StepInfo{Kind: StepCompute, Op: in.Op, DstReg: -1, Latency: in.Op.Latency()}

	case OpSel:
		pm := w.Preds[in.PredSrc]
		ra, rb := w.resolve(in.Src[0]), w.resolve(in.Src[1])
		dst := w.Regs[in.Dst].spread()
		for l := 0; l < WarpSize; l++ {
			if mask&(1<<uint(l)) == 0 {
				continue
			}
			if pm&(1<<uint(l)) != 0 {
				dst[l] = ra.at(l)
			} else {
				dst[l] = rb.at(l)
			}
		}
		w.PC++
		return StepInfo{Kind: StepCompute, Op: in.Op, DstReg: in.Dst, Latency: in.Op.Latency()}

	case OpLd, OpLdRO, OpSt, OpAtom:
		w.execMem(in, mask, mem)
		w.PC++
		dst := int8(-1)
		if in.Op != OpSt {
			dst = in.Dst
		}
		kind := StepMem
		if mask == 0 {
			kind = StepCompute // fully predicated off: no access
		}
		return StepInfo{Kind: kind, Op: in.Op, DstReg: dst, Latency: 1}

	default: // ALU
		ra := w.resolve(in.Src[0])
		rb := w.resolve(in.Src[1])
		rc := w.resolve(in.Src[2])
		if ra.lanes == nil && rb.lanes == nil && rc.lanes == nil {
			v := alu(in.Op, ra.scalar, rb.scalar, rc.scalar)
			if full {
				w.Regs[in.Dst].setUniform(v)
			} else {
				dst := w.Regs[in.Dst].spread()
				for l := 0; l < WarpSize; l++ {
					if mask&(1<<uint(l)) != 0 {
						dst[l] = v
					}
				}
			}
		} else {
			dst := w.Regs[in.Dst].spread()
			switch op := in.Op; op {
			// Specialized loops for the hottest opcodes avoid the alu()
			// switch per lane.
			case OpAdd:
				for l := 0; l < WarpSize; l++ {
					if mask&(1<<uint(l)) != 0 {
						dst[l] = ra.at(l) + rb.at(l)
					}
				}
			case OpMul:
				for l := 0; l < WarpSize; l++ {
					if mask&(1<<uint(l)) != 0 {
						dst[l] = ra.at(l) * rb.at(l)
					}
				}
			case OpMad:
				for l := 0; l < WarpSize; l++ {
					if mask&(1<<uint(l)) != 0 {
						dst[l] = ra.at(l)*rb.at(l) + rc.at(l)
					}
				}
			case OpShl:
				for l := 0; l < WarpSize; l++ {
					if mask&(1<<uint(l)) != 0 {
						dst[l] = ra.at(l) << uint64(rb.at(l)&63)
					}
				}
			default:
				for l := 0; l < WarpSize; l++ {
					if mask&(1<<uint(l)) != 0 {
						dst[l] = alu(op, ra.at(l), rb.at(l), rc.at(l))
					}
				}
			}
		}
		w.PC++
		return StepInfo{Kind: StepCompute, Op: in.Op, DstReg: in.Dst, Latency: in.Op.Latency()}
	}
}

// execMem fills mem with the access produced by a ld/st/atom instruction
// and applies the load's register write from the buffer's value model.
func (w *Warp) execMem(in *Instr, mask uint32, mem *MemInfo) {
	b := &w.L.Buffers[in.Buf]
	elem := int64(in.ElemBytes)
	mem.Buf = int(in.Buf)
	mem.Store = in.Op == OpSt
	mem.Atomic = in.Op == OpAtom
	mem.RO = in.Op == OpLdRO
	mem.ElemBytes = int(in.ElemBytes)
	mem.Mask = mask
	if mask == 0 {
		return
	}
	size := b.Size
	ro := w.resolve(in.Src[0])
	isLoad := in.Op == OpLd || in.Op == OpLdRO || in.Op == OpAtom
	var dst *[WarpSize]int64
	if isLoad {
		dst = w.Regs[in.Dst].spread()
	}
	for l := 0; l < WarpSize; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		off := uint64(ro.at(l))
		if off+uint64(elem) > size {
			off %= size // wrap rather than escape the buffer
			off -= off % uint64(elem)
		}
		mem.Addrs[l] = b.Base + off
		if isLoad {
			if b.Value != nil {
				dst[l] = b.Value(int64(off) / elem)
			} else {
				dst[l] = 0
			}
		}
	}
}

// InstrRegs returns the general registers an instruction reads (for the
// SM scoreboard); dst is its written register or -1.
func InstrRegs(in *Instr) (srcs [4]int8, n int, dst int8) {
	dst = -1
	add := func(o Operand) {
		if o.Kind == OpdReg {
			srcs[n] = int8(o.Val)
			n++
		}
	}
	add(in.Src[0])
	add(in.Src[1])
	add(in.Src[2])
	switch in.Op {
	case OpSetp, OpBra, OpBar, OpExit, OpSt:
		// no general dest
	default:
		dst = in.Dst
	}
	return srcs, n, dst
}
