package kir

import (
	"strings"
	"testing"
	"testing/quick"
)

// execAll runs a warp to completion and returns per-op counts plus all
// memory accesses.
func execAll(t *testing.T, w *Warp, limit int) (map[Op]int, []MemInfo) {
	t.Helper()
	counts := map[Op]int{}
	var mems []MemInfo
	var mem MemInfo
	for i := 0; i < limit && !w.Exited; i++ {
		in := w.Current()
		res := w.Exec(&mem)
		counts[in.Op]++
		if res.Kind == StepMem {
			mems = append(mems, mem)
		}
	}
	if !w.Exited {
		t.Fatalf("warp did not exit within %d steps", limit)
	}
	return counts, mems
}

func simpleLaunch(t *testing.T, src string, scalars []int64, bufs []Binding) *Launch {
	t.Helper()
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	AnalyzeReadOnly(k)
	l := &Launch{Kernel: k, GridDim: 4, CTAThreads: 64, Scalars: scalars, Buffers: bufs}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"", "missing .kernel"},
		{".kernel k\n  mov r0, 1\n", "must end with exit"},
		{".kernel k\n  bra nowhere\n  exit\n", "undefined label"},
		{".kernel k\n  frobnicate r0, r1\n  exit\n", "unknown instruction"},
		{".kernel k\n  mov r99, 1\n  exit\n", "out of range"},
		{".kernel k\n  ld.global.u64 r0, [NOPE + r1]\n  exit\n", "unknown buffer"},
		{".kernel k\n.param .ptr A\n.param .ptr A\n  exit\n", "duplicate parameter"},
		{".kernel k\nfoo:\nfoo:\n  exit\n", "duplicate label"},
		{".kernel k\n  setp.zz p0, r0, r1\n  exit\n", "unknown setp"},
		{".kernel k\n  mov r0, %bogus\n  exit\n", "unknown special"},
	}
	for i, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("case %d: err=%v, want substring %q", i, err, c.wantErr)
		}
	}
}

func TestParseComments(t *testing.T) {
	k, err := Parse(`
// leading comment
.kernel demo   // trailing
.param .ptr A  # hash comment
  mov r0, 1
  exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "demo" || len(k.Code) != 2 {
		t.Fatalf("parsed %v with %d instrs", k.Name, len(k.Code))
	}
}

func TestALUSemantics(t *testing.T) {
	// Each thread computes a chain of ALU ops; check the final register
	// via a store address (the only observable).
	src := `
.kernel alu
.param .ptr OUT
.param .u64 p
  mov r0, %tid
  add r1, r0, 10
  sub r1, r1, 2
  mul r2, r1, 3
  shl r3, r2, 1
  shr r3, r3, 1
  and r4, r3, 255
  or  r4, r4, 256
  xor r4, r4, 256
  min r5, r4, p
  max r5, r5, 0
  div r6, r5, 2
  rem r7, r5, 7
  mad r8, r6, 8, r7
  shl r9, r8, 3
  st.global.u64 [OUT + r9], r8
  exit
`
	l := simpleLaunch(t, src, []int64{1 << 20}, []Binding{{Base: 0x10000, Size: 1 << 20}})
	w := NewWarp(l, 0, 0)
	_, mems := execAll(t, w, 100)
	if len(mems) != 1 {
		t.Fatalf("expected 1 store, got %d", len(mems))
	}
	// Reference for lane 9: tid=9 -> r1=17, r2=51, r3=51, r4=51,
	// r5=51, r6=25, r7=2, r8=202.
	want := uint64(0x10000 + 202*8)
	if mems[0].Addrs[9] != want {
		t.Fatalf("lane 9 addr %#x want %#x", mems[0].Addrs[9], want)
	}
}

func TestLoopAndPredication(t *testing.T) {
	src := `
.kernel loop
.param .ptr OUT
.param .u64 n
  mov r0, 0
  mov r1, 0
loop:
  add r1, r1, 2
  add r0, r0, 1
  setp.lt p0, r0, n
  @p0 bra loop
  mov r2, %tid
  setp.lt p1, r2, 16
  @p1 mov r1, 999
  shl r3, r2, 3
  st.global.u64 [OUT + r3], r1
  exit
`
	l := simpleLaunch(t, src, []int64{5}, []Binding{{Base: 0, Size: 1 << 20}})
	w := NewWarp(l, 0, 0)
	execAll(t, w, 200)
	// r1 should be 999 for lanes <16, 10 for lanes >=16.
	if w.Regs[1].Lane(3) != 999 {
		t.Fatalf("lane 3 r1 = %d, want 999", w.Regs[1].Lane(3))
	}
	if w.Regs[1].Lane(20) != 10 {
		t.Fatalf("lane 20 r1 = %d, want 10", w.Regs[1].Lane(20))
	}
}

func TestSelAndNegatedGuard(t *testing.T) {
	src := `
.kernel sel
.param .ptr OUT
  mov r0, %laneid
  setp.ge p0, r0, 16
  sel r1, p0, 7, 3
  @!p0 add r1, r1, 100
  shl r2, r0, 3
  st.global.u64 [OUT + r2], r1
  exit
`
	l := simpleLaunch(t, src, nil, []Binding{{Base: 0, Size: 4096}})
	w := NewWarp(l, 0, 0)
	execAll(t, w, 50)
	if w.Regs[1].Lane(20) != 7 {
		t.Fatalf("lane 20: %d want 7", w.Regs[1].Lane(20))
	}
	if w.Regs[1].Lane(2) != 103 {
		t.Fatalf("lane 2: %d want 103", w.Regs[1].Lane(2))
	}
}

func TestSpecialRegisters(t *testing.T) {
	src := `
.kernel special
.param .ptr OUT
  mov r0, %tid
  mov r1, %ctaid
  mov r2, %ntid
  mov r3, %nctaid
  mov r4, %warpid
  mov r5, %laneid
  exit
`
	l := simpleLaunch(t, src, nil, []Binding{{Base: 0, Size: 4096}})
	w := NewWarp(l, 2, 1) // CTA 2, warp 1
	execAll(t, w, 20)
	if w.Regs[0].Lane(5) != 32+5 {
		t.Fatalf("tid lane5 = %d", w.Regs[0].Lane(5))
	}
	if w.Regs[1].Lane(0) != 2 || w.Regs[2].Lane(0) != 64 || w.Regs[3].Lane(0) != 4 {
		t.Fatal("ctaid/ntid/nctaid wrong")
	}
	if w.Regs[4].Lane(0) != 1 || w.Regs[5].Lane(7) != 7 {
		t.Fatal("warpid/laneid wrong")
	}
}

func TestLoadValueModel(t *testing.T) {
	src := `
.kernel vload
.param .ptr IDX
.param .ptr OUT
  mov r0, %laneid
  shl r1, r0, 3
  ld.global.u64 r2, [IDX + r1]
  shl r3, r2, 3
  st.global.u64 [OUT + r3], r2
  exit
`
	l := simpleLaunch(t, src, nil, []Binding{
		{Base: 0x1000, Size: 4096, Value: func(i int64) int64 { return i * 2 }},
		{Base: 0x100000, Size: 1 << 20},
	})
	w := NewWarp(l, 0, 0)
	_, mems := execAll(t, w, 50)
	if len(mems) != 2 {
		t.Fatalf("want load+store, got %d accesses", len(mems))
	}
	st := mems[1]
	// Lane 5 loaded 10, so stores to OUT+80.
	if st.Addrs[5] != 0x100000+80 {
		t.Fatalf("store addr lane5 = %#x", st.Addrs[5])
	}
}

func TestBarrierAndExitSteps(t *testing.T) {
	src := `
.kernel barrier
.param .ptr A
  bar.sync
  mov r0, 1
  exit
`
	l := simpleLaunch(t, src, nil, []Binding{{Base: 0, Size: 4096}})
	w := NewWarp(l, 0, 0)
	var mem MemInfo
	res := w.Exec(&mem)
	if res.Kind != StepBarrier {
		t.Fatalf("first step %v, want barrier", res.Kind)
	}
	w.Exec(&mem)
	res = w.Exec(&mem)
	if res.Kind != StepExit || !w.Exited {
		t.Fatal("exit not reported")
	}
	if w.Current() != nil {
		t.Fatal("Current() after exit should be nil")
	}
}

func TestDivergentBranchPanics(t *testing.T) {
	src := `
.kernel div
.param .ptr A
  mov r0, %laneid
  setp.lt p0, r0, 16
  @p0 bra skip
  mov r1, 1
skip:
  exit
`
	l := simpleLaunch(t, src, nil, []Binding{{Base: 0, Size: 4096}})
	w := NewWarp(l, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("divergent branch did not panic")
		}
	}()
	var mem MemInfo
	for i := 0; i < 10; i++ {
		w.Exec(&mem)
	}
}

func TestOffsetWrapsInsteadOfEscaping(t *testing.T) {
	src := `
.kernel wrap
.param .ptr A
  mov r0, 999999
  shl r0, r0, 3
  ld.global.u64 r1, [A + r0]
  exit
`
	l := simpleLaunch(t, src, nil, []Binding{{Base: 0x4000, Size: 1024}})
	w := NewWarp(l, 0, 0)
	_, mems := execAll(t, w, 20)
	for lane := 0; lane < 32; lane++ {
		a := mems[0].Addrs[lane]
		if a < 0x4000 || a >= 0x4000+1024 {
			t.Fatalf("lane %d escaped buffer: %#x", lane, a)
		}
	}
}

func TestAnalyzeReadOnly(t *testing.T) {
	src := `
.kernel rw
.param .ptr RO
.param .ptr WR
.param .ptr AT
  mov r0, %tid
  shl r1, r0, 3
  ld.global.u64 r2, [RO + r1]
  ld.global.u64 r3, [WR + r1]
  st.global.u64 [WR + r1], r2
  atom.global.add.u64 r4, [AT + r1], r2
  exit
`
	k := MustParse(src)
	AnalyzeReadOnly(k)
	if !k.Buffers[0].ReadOnly || k.Buffers[1].ReadOnly || k.Buffers[2].ReadOnly {
		t.Fatalf("RO classification wrong: %+v", k.Buffers)
	}
	// Loads from RO rewritten; loads from WR untouched.
	var roLoads, plainLoads int
	for _, in := range k.Code {
		switch in.Op {
		case OpLdRO:
			roLoads++
		case OpLd:
			plainLoads++
		}
	}
	if roLoads != 1 || plainLoads != 1 {
		t.Fatalf("rewrites wrong: ro=%d plain=%d", roLoads, plainLoads)
	}
	if ro := ReadOnlyBuffers(k); len(ro) != 1 || ro[0] != "RO" {
		t.Fatalf("ReadOnlyBuffers = %v", ro)
	}
}

func TestAnalyzeDemotesUnsoundRO(t *testing.T) {
	src := `
.kernel demote
.param .ptr A
  mov r0, %tid
  shl r1, r0, 3
  ld.global.ro.u64 r2, [A + r1]
  st.global.u64 [A + r1], r2
  exit
`
	k := MustParse(src)
	AnalyzeReadOnly(k)
	for _, in := range k.Code {
		if in.Op == OpLdRO {
			t.Fatal("unsound .ro load survived analysis")
		}
	}
}

func TestPartialTailWarp(t *testing.T) {
	// CTAThreads 40: warp 1 has only 8 active lanes.
	k := MustParse(`
.kernel tail
.param .ptr OUT
  mov r0, %tid
  shl r1, r0, 3
  st.global.u64 [OUT + r1], r0
  exit
`)
	AnalyzeReadOnly(k)
	l := &Launch{Kernel: k, GridDim: 1, CTAThreads: 64, Scalars: nil,
		Buffers: []Binding{{Base: 0, Size: 4096}}}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	w := NewWarp(l, 0, 1)
	if w.ActiveMask != ^uint32(0) {
		t.Fatalf("full warp mask %x", w.ActiveMask)
	}
	// 40-thread CTA is invalid (not a multiple of 32); check validation.
	bad := &Launch{Kernel: k, GridDim: 1, CTAThreads: 40,
		Buffers: []Binding{{Base: 0, Size: 4096}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("CTAThreads=40 accepted")
	}
}

func TestLaunchValidate(t *testing.T) {
	k := MustParse(".kernel v\n.param .ptr A\n.param .u64 n\n  exit\n")
	AnalyzeReadOnly(k)
	good := &Launch{Kernel: k, GridDim: 1, CTAThreads: 32,
		Scalars: []int64{1}, Buffers: []Binding{{Base: 0, Size: 64}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Launch{
		{Kernel: k, GridDim: 0, CTAThreads: 32, Scalars: []int64{1}, Buffers: []Binding{{Size: 64}}},
		{Kernel: k, GridDim: 1, CTAThreads: 32, Scalars: nil, Buffers: []Binding{{Size: 64}}},
		{Kernel: k, GridDim: 1, CTAThreads: 32, Scalars: []int64{1}, Buffers: nil},
		{Kernel: k, GridDim: 1, CTAThreads: 32, Scalars: []int64{1}, Buffers: []Binding{{Size: 0}}},
	}
	for i, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: invalid launch accepted", i)
		}
	}
	unanalyzed := MustParse(".kernel u\n  exit\n")
	if err := (&Launch{Kernel: unanalyzed, GridDim: 1, CTAThreads: 32}).Validate(); err == nil {
		t.Error("unanalyzed kernel accepted")
	}
}

func TestUniformFastPathMatchesLaneful(t *testing.T) {
	// Property: uniform-operand ALU results equal per-lane evaluation.
	ops := []struct {
		op  Op
		str string
	}{{OpAdd, "add"}, {OpSub, "sub"}, {OpMul, "mul"}, {OpAnd, "and"},
		{OpOr, "or"}, {OpXor, "xor"}, {OpMin, "min"}, {OpMax, "max"},
		{OpDiv, "div"}, {OpRem, "rem"}}
	f := func(a, b int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		// alu() is the single implementation; verify symmetry of the
		// uniform path by executing a kernel both ways.
		src := `
.kernel p
.param .ptr OUT
.param .u64 a
.param .u64 b
  ` + op.str + ` r0, a, b
  mov r1, %laneid
  ` + op.str + ` r2, a, b
  exit
`
		k := MustParse(src)
		AnalyzeReadOnly(k)
		l := &Launch{Kernel: k, GridDim: 1, CTAThreads: 32,
			Scalars: []int64{a, b}, Buffers: []Binding{{Base: 0, Size: 64}}}
		w := NewWarp(l, 0, 0)
		var mem MemInfo
		for !w.Exited {
			w.Exec(&mem)
		}
		// r0 computed before any laneful value existed (uniform path);
		// r2 after (same). Both must equal alu reference.
		want := alu(op.op, a, b, 0)
		return w.Regs[0].Lane(3) == want && w.Regs[2].Lane(17) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrRegsAndNeedMask(t *testing.T) {
	k := MustParse(`
.kernel masks
.param .ptr A
  mad r3, r1, r2, r0
  exit
`)
	in := &k.Code[0]
	if in.NeedMask != 0b1111 {
		t.Fatalf("NeedMask %b", in.NeedMask)
	}
	srcs, n, dst := InstrRegs(in)
	if n != 3 || dst != 3 {
		t.Fatalf("srcs=%v n=%d dst=%d", srcs, n, dst)
	}
}

func TestMemInfoCoalescingInputs(t *testing.T) {
	// 32 lanes at stride 8 bytes cover exactly 2 lines; the SM coalescer
	// consumes Addrs — verify the per-lane addresses are right.
	src := `
.kernel co
.param .ptr A
  mov r0, %laneid
  shl r1, r0, 3
  ld.global.u64 r2, [A + r1]
  exit
`
	l := simpleLaunch(t, src, nil, []Binding{{Base: 0x8000, Size: 4096}})
	w := NewWarp(l, 0, 0)
	_, mems := execAll(t, w, 20)
	for lane := 0; lane < 32; lane++ {
		if mems[0].Addrs[lane] != uint64(0x8000+lane*8) {
			t.Fatalf("lane %d addr %#x", lane, mems[0].Addrs[lane])
		}
	}
	if mems[0].ElemBytes != 8 || mems[0].Store {
		t.Fatal("meminfo metadata wrong")
	}
}

func TestOpLatencies(t *testing.T) {
	if OpDiv.Latency() <= OpAdd.Latency() {
		t.Fatal("div should be slower than add")
	}
	if !OpLd.IsMem() || !OpSt.IsMem() || !OpAtom.IsMem() || OpAdd.IsMem() {
		t.Fatal("IsMem classification wrong")
	}
}

func TestKernelStringAndIndex(t *testing.T) {
	k := MustParse(".kernel s\n.param .ptr A\n.param .u64 n\n  exit\n")
	if k.BufferIndex("A") != 0 || k.BufferIndex("B") != -1 {
		t.Fatal("BufferIndex wrong")
	}
	if k.ScalarIndex("n") != 0 || k.ScalarIndex("m") != -1 {
		t.Fatal("ScalarIndex wrong")
	}
	if !strings.Contains(k.String(), "s") {
		t.Fatal("String() empty")
	}
}
