// Package kir defines the kernel intermediate representation the simulator
// executes: a small PTX-like, warp-level ISA with virtual registers,
// per-lane predication, global loads/stores and CTA barriers.
//
// Kernels are written in a textual assembly (see Parse) closely modeled on
// PTX. The package also provides the compiler support the NUBA paper
// requires: a data-flow analysis that classifies each buffer parameter as
// read-only or read-write within a kernel and rewrites loads from
// read-only buffers into ld.global.ro (AnalyzeReadOnly), mirroring the
// PTX-level analysis of Section 5.2.
package kir

import "fmt"

// WarpSize is the number of lanes per warp (fixed at 32, as in Table 1).
const WarpSize = 32

// Limits of the register files.
const (
	MaxRegs  = 32 // general-purpose 64-bit registers r0..r31
	MaxPreds = 8  // predicate registers p0..p7
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes.
const (
	OpNop  Op = iota
	OpMov     // mov  rd, a
	OpAdd     // add  rd, a, b
	OpSub     // sub  rd, a, b
	OpMul     // mul  rd, a, b
	OpMad     // mad  rd, a, b, c   (rd = a*b + c)
	OpShl     // shl  rd, a, b
	OpShr     // shr  rd, a, b (logical)
	OpAnd     // and  rd, a, b
	OpOr      // or   rd, a, b
	OpXor     // xor  rd, a, b
	OpMin     // min  rd, a, b
	OpMax     // max  rd, a, b
	OpDiv     // div  rd, a, b (b==0 yields 0)
	OpRem     // rem  rd, a, b (b==0 yields 0)
	OpHash    // hash rd, a      (splitmix64 finalizer; synthetic indirection)
	OpFma     // fma  rd, a      (floating-point work placeholder, long latency)
	OpSetp    // setp.cc pd, a, b
	OpSel     // sel  rd, pq, a, b (per-lane pq ? a : b)
	OpBra     // bra  label       (warp-uniform; may be predicated)
	OpLd      // ld.global.uN  rd, [buf + a]
	OpLdRO    // ld.global.ro.uN rd, [buf + a]  (compiler-generated)
	OpSt      // st.global.uN  [buf + a], v
	OpAtom    // atom.global.add.uN rd, [buf + a], v
	OpBar     // bar.sync
	OpExit    // exit
)

// Cmp enumerates setp comparison conditions.
type Cmp uint8

// Comparison conditions.
const (
	CmpLT Cmp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

// OperandKind classifies instruction operands.
type OperandKind uint8

// Operand kinds.
const (
	// OpdNone marks an unused operand slot.
	OpdNone OperandKind = iota
	// OpdReg reads general register Val.
	OpdReg
	// OpdImm is the immediate Val.
	OpdImm
	// OpdSpecial reads special register Special(Val).
	OpdSpecial
	// OpdParam reads scalar kernel parameter Val (bound at launch).
	OpdParam
)

// Special enumerates the PTX-style special registers.
type Special uint8

// Special registers.
const (
	SpecTid    Special = iota // %tid: thread index within the CTA
	SpecCtaid                 // %ctaid: CTA index within the grid
	SpecNtid                  // %ntid: threads per CTA
	SpecNctaid                // %nctaid: CTAs in the grid
	SpecWarpid                // %warpid: warp index within the CTA
	SpecLaneid                // %laneid: lane index within the warp
)

// Operand is one instruction source.
type Operand struct {
	Kind OperandKind
	Val  int64
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Cmp Cmp
	// Dst is the destination register (general for most ops, predicate
	// index for setp); -1 when unused.
	Dst int8
	// PredSrc is the predicate operand of sel; -1 otherwise.
	PredSrc int8
	// Src are the source operands.
	Src [3]Operand
	// Pred/PredNeg guard the instruction: executes for lanes where
	// p<Pred> (negated if PredNeg) holds; Pred is -1 when unguarded.
	Pred    int8
	PredNeg bool
	// Buf is the buffer parameter index for memory ops.
	Buf int16
	// ElemBytes is the per-lane access size for memory ops (4 or 8).
	ElemBytes int8
	// Target is the branch destination instruction index.
	Target int32
	// Line is the 1-based source line, for diagnostics.
	Line int
	// NeedMask has a bit per general register the instruction reads or
	// writes; precomputed at parse time for the SM scoreboard.
	NeedMask uint32
}

// BufferParam describes a pointer parameter of a kernel.
type BufferParam struct {
	Name string
	// ReadOnly is set by AnalyzeReadOnly when no store or atomic in the
	// kernel targets the buffer.
	ReadOnly bool
}

// Kernel is a parsed, verified kernel.
type Kernel struct {
	Name string
	// Buffers are the pointer parameters in declaration order.
	Buffers []BufferParam
	// ScalarParams are the names of scalar (.u64) parameters in
	// declaration order; values are bound at launch.
	ScalarParams []string
	// Code is the instruction stream.
	Code []Instr
	// NumRegs and NumPreds are the highest used counts, for allocation.
	NumRegs  int
	NumPreds int
	// Analyzed records that AnalyzeReadOnly ran.
	Analyzed bool
}

// BufferIndex returns the index of the named buffer parameter, or -1.
func (k *Kernel) BufferIndex(name string) int {
	for i, b := range k.Buffers {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// ScalarIndex returns the index of the named scalar parameter, or -1.
func (k *Kernel) ScalarIndex(name string) int {
	for i, s := range k.ScalarParams {
		if s == name {
			return i
		}
	}
	return -1
}

// String returns a compact disassembly, used in tests and debugging.
func (k *Kernel) String() string {
	s := fmt.Sprintf(".kernel %s (%d buffers, %d scalars, %d instrs)",
		k.Name, len(k.Buffers), len(k.ScalarParams), len(k.Code))
	return s
}

// opName maps opcodes to mnemonics for diagnostics.
var opName = map[Op]string{
	OpNop: "nop", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpMad: "mad", OpShl: "shl", OpShr: "shr", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpMin: "min", OpMax: "max", OpDiv: "div", OpRem: "rem",
	OpHash: "hash", OpFma: "fma", OpSetp: "setp", OpSel: "sel", OpBra: "bra",
	OpLd: "ld.global", OpLdRO: "ld.global.ro", OpSt: "st.global",
	OpAtom: "atom.global.add", OpBar: "bar.sync", OpExit: "exit",
}

// Name returns the mnemonic of op.
func (o Op) String() string {
	if n, ok := opName[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether op accesses global memory.
func (o Op) IsMem() bool { return o == OpLd || o == OpLdRO || o == OpSt || o == OpAtom }

// Latency returns the issue-to-result latency in cycles of a non-memory
// op. Memory latency is determined by the memory system.
func (o Op) Latency() int64 {
	switch o {
	case OpDiv, OpRem:
		return 20
	case OpFma:
		return 4
	case OpMul, OpMad:
		return 5
	default:
		return 2
	}
}
