package kir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles the textual kernel assembly into a verified Kernel.
//
// Grammar (one statement per line; '//' or '#' start a comment):
//
//	.kernel <name>
//	.param .ptr <name>          pointer parameter (global buffer)
//	.param .u64 <name>          scalar parameter (bound at launch)
//	<label>:                    branch target
//	[@p0|@!p0] <op> <operands>  instruction, optionally predicated
//
// Memory operands have the form [Buf + r3], [Buf + 128] or [Buf], with the
// offset in bytes. ld/st/atom carry a .u32 or .u64 suffix selecting the
// per-lane access size.
func Parse(src string) (*Kernel, error) {
	p := &parser{labels: make(map[string]int)}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.k, nil
}

// MustParse is Parse that panics on error; used for the built-in workload
// kernels, which are compiled at package init and covered by tests.
func MustParse(src string) *Kernel {
	k, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return k
}

type parser struct {
	k      *Kernel
	labels map[string]int
	// fixups are (instruction index, label, line) triples resolved after
	// the full body is parsed.
	fixups []fixup
}

type fixup struct {
	instr int
	label string
	line  int
}

func (p *parser) run(src string) error {
	p.k = &Kernel{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.statement(line, lineNo+1); err != nil {
			return fmt.Errorf("kir: line %d: %w", lineNo+1, err)
		}
	}
	if p.k.Name == "" {
		return fmt.Errorf("kir: missing .kernel directive")
	}
	for _, f := range p.fixups {
		t, ok := p.labels[f.label]
		if !ok {
			return fmt.Errorf("kir: line %d: undefined label %q", f.line, f.label)
		}
		p.k.Code[f.instr].Target = int32(t)
	}
	if len(p.k.Code) == 0 || p.k.Code[len(p.k.Code)-1].Op != OpExit {
		return fmt.Errorf("kir: kernel %s must end with exit", p.k.Name)
	}
	for i := range p.k.Code {
		in := &p.k.Code[i]
		srcs, n, dst := InstrRegs(in)
		for j := 0; j < n; j++ {
			in.NeedMask |= 1 << uint(srcs[j])
		}
		if dst >= 0 {
			in.NeedMask |= 1 << uint(dst)
		}
	}
	return nil
}

func (p *parser) statement(line string, lineNo int) error {
	switch {
	case strings.HasPrefix(line, ".kernel"):
		f := strings.Fields(line)
		if len(f) != 2 {
			return fmt.Errorf(".kernel wants a name")
		}
		p.k.Name = f[1]
		return nil
	case strings.HasPrefix(line, ".param"):
		f := strings.Fields(line)
		if len(f) != 3 {
			return fmt.Errorf(".param wants a type and a name")
		}
		switch f[1] {
		case ".ptr":
			if p.k.BufferIndex(f[2]) >= 0 || p.k.ScalarIndex(f[2]) >= 0 {
				return fmt.Errorf("duplicate parameter %q", f[2])
			}
			p.k.Buffers = append(p.k.Buffers, BufferParam{Name: f[2]})
		case ".u64", ".u32":
			if p.k.BufferIndex(f[2]) >= 0 || p.k.ScalarIndex(f[2]) >= 0 {
				return fmt.Errorf("duplicate parameter %q", f[2])
			}
			p.k.ScalarParams = append(p.k.ScalarParams, f[2])
		default:
			return fmt.Errorf("unknown parameter type %q", f[1])
		}
		return nil
	case strings.HasSuffix(line, ":"):
		name := strings.TrimSuffix(line, ":")
		if !isIdent(name) {
			return fmt.Errorf("bad label %q", name)
		}
		if _, dup := p.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		p.labels[name] = len(p.k.Code)
		return nil
	default:
		return p.instruction(line, lineNo)
	}
}

func (p *parser) instruction(line string, lineNo int) error {
	in := Instr{Dst: -1, Pred: -1, PredSrc: -1, Buf: -1, Line: lineNo}

	// Optional guard: @p0 or @!p0.
	if strings.HasPrefix(line, "@") {
		rest := line[1:]
		if strings.HasPrefix(rest, "!") {
			in.PredNeg = true
			rest = rest[1:]
		}
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return fmt.Errorf("guard without instruction")
		}
		pi, err := p.predIndex(rest[:sp])
		if err != nil {
			return err
		}
		in.Pred = int8(pi)
		line = strings.TrimSpace(rest[sp:])
	}

	sp := strings.IndexAny(line, " \t")
	mnemonic := line
	args := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		args = strings.TrimSpace(line[sp:])
	}
	ops := splitOperands(args)

	switch {
	case mnemonic == "exit":
		in.Op = OpExit
	case mnemonic == "bar.sync" || mnemonic == "bar":
		in.Op = OpBar
	case mnemonic == "bra":
		in.Op = OpBra
		if len(ops) != 1 || !isIdent(ops[0]) {
			return fmt.Errorf("bra wants one label")
		}
		p.fixups = append(p.fixups, fixup{instr: len(p.k.Code), label: ops[0], line: lineNo})
	case strings.HasPrefix(mnemonic, "setp."):
		in.Op = OpSetp
		cc, err := parseCmp(strings.TrimPrefix(mnemonic, "setp."))
		if err != nil {
			return err
		}
		in.Cmp = cc
		if len(ops) != 3 {
			return fmt.Errorf("setp wants pd, a, b")
		}
		pd, err := p.predIndex(ops[0])
		if err != nil {
			return err
		}
		in.Dst = int8(pd)
		if err := p.sources(&in, ops[1:]); err != nil {
			return err
		}
	case mnemonic == "sel":
		in.Op = OpSel
		if len(ops) != 4 {
			return fmt.Errorf("sel wants rd, p, a, b")
		}
		rd, err := p.regIndex(ops[0])
		if err != nil {
			return err
		}
		in.Dst = int8(rd)
		ps, err := p.predIndex(ops[1])
		if err != nil {
			return err
		}
		in.PredSrc = int8(ps)
		if err := p.sources(&in, ops[2:]); err != nil {
			return err
		}
	case strings.HasPrefix(mnemonic, "ld.global") || strings.HasPrefix(mnemonic, "st.global") ||
		strings.HasPrefix(mnemonic, "atom.global"):
		if err := p.memInstr(&in, mnemonic, ops); err != nil {
			return err
		}
	default:
		op, nsrc, err := aluOp(mnemonic)
		if err != nil {
			return err
		}
		in.Op = op
		if len(ops) != nsrc+1 {
			return fmt.Errorf("%s wants %d operands", mnemonic, nsrc+1)
		}
		rd, err := p.regIndex(ops[0])
		if err != nil {
			return err
		}
		in.Dst = int8(rd)
		if err := p.sources(&in, ops[1:]); err != nil {
			return err
		}
	}
	p.k.Code = append(p.k.Code, in)
	return nil
}

func (p *parser) memInstr(in *Instr, mnemonic string, ops []string) error {
	elem := int8(4)
	base := mnemonic
	if strings.HasSuffix(base, ".u64") {
		elem = 8
		base = strings.TrimSuffix(base, ".u64")
	} else if strings.HasSuffix(base, ".u32") {
		base = strings.TrimSuffix(base, ".u32")
	}
	in.ElemBytes = elem
	switch base {
	case "ld.global":
		in.Op = OpLd
		if len(ops) != 2 {
			return fmt.Errorf("ld wants rd, [Buf + off]")
		}
		rd, err := p.regIndex(ops[0])
		if err != nil {
			return err
		}
		in.Dst = int8(rd)
		return p.memOperand(in, ops[1])
	case "ld.global.ro":
		// Accepted for completeness but normally compiler-generated.
		in.Op = OpLdRO
		if len(ops) != 2 {
			return fmt.Errorf("ld.ro wants rd, [Buf + off]")
		}
		rd, err := p.regIndex(ops[0])
		if err != nil {
			return err
		}
		in.Dst = int8(rd)
		return p.memOperand(in, ops[1])
	case "st.global":
		in.Op = OpSt
		if len(ops) != 2 {
			return fmt.Errorf("st wants [Buf + off], v")
		}
		if err := p.memOperand(in, ops[0]); err != nil {
			return err
		}
		v, err := p.operand(ops[1])
		if err != nil {
			return err
		}
		in.Src[1] = v
		return nil
	case "atom.global.add":
		in.Op = OpAtom
		if len(ops) != 3 {
			return fmt.Errorf("atom wants rd, [Buf + off], v")
		}
		rd, err := p.regIndex(ops[0])
		if err != nil {
			return err
		}
		in.Dst = int8(rd)
		if err := p.memOperand(in, ops[1]); err != nil {
			return err
		}
		v, err := p.operand(ops[2])
		if err != nil {
			return err
		}
		in.Src[1] = v
		return nil
	default:
		return fmt.Errorf("unknown memory op %q", mnemonic)
	}
}

// memOperand parses "[Buf + off]" into in.Buf and in.Src[0].
func (p *parser) memOperand(in *Instr, s string) error {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.ReplaceAll(s[1:len(s)-1], " ", "")
	name := inner
	off := ""
	if i := strings.IndexByte(inner, '+'); i >= 0 {
		name, off = inner[:i], inner[i+1:]
	}
	bi := p.k.BufferIndex(name)
	if bi < 0 {
		return fmt.Errorf("unknown buffer %q", name)
	}
	in.Buf = int16(bi)
	if off == "" {
		in.Src[0] = Operand{Kind: OpdImm, Val: 0}
		return nil
	}
	o, err := p.operand(off)
	if err != nil {
		return err
	}
	in.Src[0] = o
	return nil
}

func (p *parser) sources(in *Instr, ops []string) error {
	if len(ops) > 3 {
		return fmt.Errorf("too many operands")
	}
	for i, s := range ops {
		o, err := p.operand(s)
		if err != nil {
			return err
		}
		in.Src[i] = o
	}
	return nil
}

func (p *parser) operand(s string) (Operand, error) {
	switch {
	case s == "":
		return Operand{}, fmt.Errorf("empty operand")
	case strings.HasPrefix(s, "%"):
		sp, err := parseSpecial(s)
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpdSpecial, Val: int64(sp)}, nil
	case s[0] == 'r' && isNumeric(s[1:]):
		ri, err := p.regIndex(s)
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpdReg, Val: int64(ri)}, nil
	case s[0] == '-' || isNumeric(s) || strings.HasPrefix(s, "0x"):
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad immediate %q", s)
		}
		return Operand{Kind: OpdImm, Val: v}, nil
	case isIdent(s):
		si := p.k.ScalarIndex(s)
		if si < 0 {
			return Operand{}, fmt.Errorf("unknown scalar parameter %q", s)
		}
		return Operand{Kind: OpdParam, Val: int64(si)}, nil
	default:
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
}

func (p *parser) regIndex(s string) (int, error) {
	if len(s) < 2 || s[0] != 'r' || !isNumeric(s[1:]) {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, _ := strconv.Atoi(s[1:])
	if n < 0 || n >= MaxRegs {
		return 0, fmt.Errorf("register %q out of range (max r%d)", s, MaxRegs-1)
	}
	if n+1 > p.k.NumRegs {
		p.k.NumRegs = n + 1
	}
	return n, nil
}

func (p *parser) predIndex(s string) (int, error) {
	if len(s) < 2 || s[0] != 'p' || !isNumeric(s[1:]) {
		return 0, fmt.Errorf("bad predicate %q", s)
	}
	n, _ := strconv.Atoi(s[1:])
	if n < 0 || n >= MaxPreds {
		return 0, fmt.Errorf("predicate %q out of range (max p%d)", s, MaxPreds-1)
	}
	if n+1 > p.k.NumPreds {
		p.k.NumPreds = n + 1
	}
	return n, nil
}

func aluOp(m string) (Op, int, error) {
	switch m {
	case "mov":
		return OpMov, 1, nil
	case "add":
		return OpAdd, 2, nil
	case "sub":
		return OpSub, 2, nil
	case "mul":
		return OpMul, 2, nil
	case "mad":
		return OpMad, 3, nil
	case "shl":
		return OpShl, 2, nil
	case "shr":
		return OpShr, 2, nil
	case "and":
		return OpAnd, 2, nil
	case "or":
		return OpOr, 2, nil
	case "xor":
		return OpXor, 2, nil
	case "min":
		return OpMin, 2, nil
	case "max":
		return OpMax, 2, nil
	case "div":
		return OpDiv, 2, nil
	case "rem":
		return OpRem, 2, nil
	case "hash":
		return OpHash, 1, nil
	case "fma":
		return OpFma, 1, nil
	default:
		return OpNop, 0, fmt.Errorf("unknown instruction %q", m)
	}
}

func parseCmp(s string) (Cmp, error) {
	switch s {
	case "lt":
		return CmpLT, nil
	case "le":
		return CmpLE, nil
	case "gt":
		return CmpGT, nil
	case "ge":
		return CmpGE, nil
	case "eq":
		return CmpEQ, nil
	case "ne":
		return CmpNE, nil
	default:
		return 0, fmt.Errorf("unknown setp condition %q", s)
	}
}

func parseSpecial(s string) (Special, error) {
	switch s {
	case "%tid", "%tid.x":
		return SpecTid, nil
	case "%ctaid", "%ctaid.x":
		return SpecCtaid, nil
	case "%ntid", "%ntid.x":
		return SpecNtid, nil
	case "%nctaid", "%nctaid.x":
		return SpecNctaid, nil
	case "%warpid":
		return SpecWarpid, nil
	case "%laneid":
		return SpecLaneid, nil
	default:
		return 0, fmt.Errorf("unknown special register %q", s)
	}
}

// splitOperands splits an operand list on commas that are outside
// brackets, trimming whitespace.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
