package kir

// AnalyzeReadOnly is the compiler pass of Section 5.2: a data-flow
// analysis over the kernel body that classifies every buffer parameter as
// read-only or read-write within the kernel boundary, then rewrites loads
// from read-only buffers (ld.global -> ld.global.ro) so the hardware can
// identify replication candidates.
//
// The IR names the buffer of every memory operation statically (pointer
// arithmetic happens in the byte-offset operand, never across buffers), so
// the may-write set is exact: a buffer is read-write iff some st.global or
// atom.global in the kernel targets it — including instructions that are
// predicated off dynamically, which a static analysis must conservatively
// assume may execute. A buffer that is read-only in this kernel may be
// read-write in the next one; the runtime flushes replicas at kernel
// boundaries for exactly that reason (Section 5.3).
func AnalyzeReadOnly(k *Kernel) {
	written := make([]bool, len(k.Buffers))
	for i := range k.Code {
		in := &k.Code[i]
		if in.Op == OpSt || in.Op == OpAtom {
			written[in.Buf] = true
		}
	}
	for b := range k.Buffers {
		k.Buffers[b].ReadOnly = !written[b]
	}
	for i := range k.Code {
		in := &k.Code[i]
		switch in.Op {
		case OpLd:
			if k.Buffers[in.Buf].ReadOnly {
				in.Op = OpLdRO
			}
		case OpLdRO:
			// A hand-written .ro load on a buffer the analysis proves
			// read-write would be unsound: demote it.
			if !k.Buffers[in.Buf].ReadOnly {
				in.Op = OpLd
			}
		}
	}
	k.Analyzed = true
}

// ReadOnlyBuffers returns the names of buffers classified read-only; it
// panics if AnalyzeReadOnly has not run.
func ReadOnlyBuffers(k *Kernel) []string {
	if !k.Analyzed {
		panic("kir: kernel not analyzed")
	}
	var out []string
	for _, b := range k.Buffers {
		if b.ReadOnly {
			out = append(out, b.Name)
		}
	}
	return out
}
