package dram

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/sim"
)

func newChan(t *testing.T) (*Channel, *addrmap.Mapper, *config.Config) {
	t.Helper()
	cfg := config.Baseline()
	m := addrmap.New(&cfg)
	return NewChannel(0, &cfg, m), m, &cfg
}

// addrForBankRow scans addresses until one maps to the wanted bank.
func addrInBank(m *addrmap.Mapper, bank int, start uint64) uint64 {
	for a := start; ; a += addrmap.RowBytes {
		if m.Bank(a) == bank {
			return a
		}
	}
}

func runUntil(ch *Channel, from, to int64) {
	for now := from; now <= to; now++ {
		ch.Tick(now)
	}
}

func TestReadCompletes(t *testing.T) {
	ch, _, _ := newChan(t)
	var got *sim.MemReq
	ch.Respond = func(r *sim.MemReq) { got = r }
	req := &sim.MemReq{Kind: sim.Load, Addr: 0x1000}
	if !ch.Enqueue(req) {
		t.Fatal("enqueue rejected")
	}
	runUntil(ch, 0, 200)
	if got != req {
		t.Fatal("read never completed")
	}
	if ch.Reads != 1 || ch.RowMisses != 1 || ch.RowHits != 0 {
		t.Fatalf("counters: reads=%d hits=%d misses=%d", ch.Reads, ch.RowHits, ch.RowMisses)
	}
	if ch.Pending() {
		t.Fatal("channel still pending after drain")
	}
}

func TestWriteCompletesSilently(t *testing.T) {
	ch, _, _ := newChan(t)
	called := false
	ch.Respond = func(*sim.MemReq) { called = true }
	ch.Enqueue(&sim.MemReq{Kind: sim.Store, Addr: 0x2000})
	runUntil(ch, 0, 200)
	if called {
		t.Fatal("store produced a response")
	}
	if ch.Writes != 1 {
		t.Fatalf("writes=%d", ch.Writes)
	}
}

func TestRowHitVsMissLatency(t *testing.T) {
	ch, m, _ := newChan(t)
	var doneAt []int64
	now := int64(0)
	ch.Respond = func(*sim.MemReq) { doneAt = append(doneAt, now) }

	base := addrInBank(m, 3, 0x10000)
	ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: base})
	ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: base + 128}) // same row
	for ; now < 300 && len(doneAt) < 2; now++ {
		ch.Tick(now)
	}
	if len(doneAt) != 2 {
		t.Fatal("reads did not finish")
	}
	firstLatency := doneAt[0]
	hitGap := doneAt[1] - doneAt[0]
	// The first read pays ACT(tRCD)+CAS(tCL)+burst; the second only the
	// bus gap (row hit).
	if firstLatency < int64(14) { // tRCD+tCL at least
		t.Fatalf("first access too fast: %d", firstLatency)
	}
	if hitGap > 6 {
		t.Fatalf("row hit gap too large: %d", hitGap)
	}
	if ch.RowHits != 1 || ch.RowMisses != 1 {
		t.Fatalf("hit/miss = %d/%d", ch.RowHits, ch.RowMisses)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	ch, m, _ := newChan(t)
	var order []uint64
	ch.Respond = func(r *sim.MemReq) { order = append(order, r.Addr) }

	bankA := addrInBank(m, 1, 0x100000)
	// Open bankA's row with request 1; then queue a conflicting row in
	// the same bank (request 2) and a row hit (request 3). FR-FCFS must
	// serve 3 before 2.
	conflict := bankA
	for {
		conflict += addrmap.RowBytes
		if m.Bank(conflict) == 1 {
			break
		}
	}
	ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: bankA})
	ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: conflict})
	ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: bankA + 256})
	runUntil(ch, 0, 500)
	if len(order) != 3 {
		t.Fatalf("finished %d", len(order))
	}
	if order[1] != bankA+256 {
		t.Fatalf("row hit not prioritized: order %#x", order)
	}
}

func TestBankLevelParallelism(t *testing.T) {
	// Requests to different banks should overlap: total time for 8
	// row-miss reads across 8 banks must be far less than 8 serial tRC.
	ch, m, cfg := newChan(t)
	n := 0
	ch.Respond = func(*sim.MemReq) { n++ }
	for b := 0; b < 8; b++ {
		ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: addrInBank(m, b, 0x200000)})
	}
	var now int64
	for now = 0; n < 8 && now < 1000; now++ {
		ch.Tick(now)
	}
	serial := int64(8 * cfg.Timing.TRC)
	if now >= serial {
		t.Fatalf("no bank parallelism: %d cycles for 8 banks (serial=%d)", now, serial)
	}
}

func TestQueueCapacity(t *testing.T) {
	ch, _, cfg := newChan(t)
	for i := 0; i < cfg.MemQueueDepth; i++ {
		if !ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: uint64(i) * 128}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if ch.CanEnqueue() {
		t.Fatal("full queue claims capacity")
	}
	if ch.Enqueue(&sim.MemReq{Kind: sim.Load}) {
		t.Fatal("overflow accepted")
	}
}

func TestThroughputBoundedByBus(t *testing.T) {
	// Stream row-hit reads: sustained throughput cannot exceed one line
	// per burst (2 mem cycles).
	ch, _, _ := newChan(t)
	n := 0
	ch.Respond = func(*sim.MemReq) { n++ }
	addr := uint64(0x400000)
	issued := 0
	var now int64
	for now = 0; now < 2000; now++ {
		for ch.CanEnqueue() && issued < 900 {
			ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: addr})
			addr += 128
			issued++
		}
		ch.Tick(now)
	}
	maxLines := int(2000 / 2)
	if n > maxLines {
		t.Fatalf("bus over-delivered: %d lines in 2000 mem cycles", n)
	}
	if n < 500 {
		t.Fatalf("throughput too low: %d lines in 2000 mem cycles", n)
	}
}

func TestUtilizationCounter(t *testing.T) {
	ch, _, _ := newChan(t)
	ch.Respond = func(*sim.MemReq) {}
	ch.Enqueue(&sim.MemReq{Kind: sim.Load, Addr: 0})
	runUntil(ch, 0, 100)
	if u := ch.Utilization(100); u <= 0 || u > 1 {
		t.Fatalf("utilization %v", u)
	}
}
