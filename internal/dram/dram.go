// Package dram models the HBM memory system: per-channel FR-FCFS
// controllers over banked DRAM with the Table 1 timing parameters
// (tRC/tRCD/tRP/tCL/tRAS/tFAW/tRRD/tRTP/tWTR/...). The memory clock is
// 350 MHz — one memory cycle per MemClockDiv core cycles — and each
// channel's data bus moves 64 B per memory cycle, so the baseline
// 32 channels supply ~720 GB/s, matching the paper.
//
// The controller is a faithful first-order model: one command per channel
// per memory cycle, open-page policy with FR-FCFS scheduling (row hits
// first, oldest otherwise), per-bank timing state machines, a shared data
// bus per channel, a four-activate window, and four HBM bank groups with
// long/short ACT-to-ACT (tRRD_L/S), CAS-to-CAS (tCCD_L/S) and
// write-to-read turnaround (tWTR_L/S) spacings.
package dram

import (
	"fmt"
	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// bank tracks the timing state of one DRAM bank in memory cycles.
type bank struct {
	rowOpen  bool
	row      uint64
	readyAct int64
	readyCAS int64
	readyPre int64
	// openedFor marks the request whose conflict opened the current row;
	// its own CAS is a row miss, not a hit.
	openedFor *sim.MemReq
}

type completion struct {
	done int64 // memory cycle at which the burst finishes
	req  *sim.MemReq
}

// Channel is one HBM channel: a bounded request queue, BanksPerChan banks,
// a command bus (one command per memory cycle) and a 64 B/cycle data bus.
type Channel struct {
	id     int
	cfg    *config.Config
	mapper *addrmap.Mapper
	t      config.HBMTiming

	queue *sim.Queue[*sim.MemReq]
	banks []bank

	busFreeAt int64 // memory cycle the data bus frees up
	burst     int64 // data-bus cycles per 128 B transaction
	lastActs  []int64

	// Bank-group timing state. HBM splits each channel's banks into
	// four bank groups; back-to-back commands inside one group pay the
	// long timings (tRRD_L, tCCD_L, tWTR_L), across groups the short
	// ones (tRRD_S, tCCD_S, tWTR_S).
	numGroups    int
	lastActAt    int64 // most recent ACT (any bank); -1 before the first
	lastActGroup int
	lastCASAt    int64 // most recent CAS (any bank); -1 before the first
	lastCASGroup int
	lastWrEndAt  int64 // end of the most recent write burst; -1 before the first
	lastWrGroup  int

	completions *sim.Queue[completion]

	// Respond is invoked for every finished read (and atomic) with the
	// originating request; writes complete silently. The core wires this
	// to the owning LLC slice's fill path.
	Respond func(*sim.MemReq)

	// Stats.
	Reads      int64
	Writes     int64
	RowHits    int64
	RowMisses  int64
	BusyCycles int64
	stallFull  int64
	// groupBusy splits BusyCycles by the bank group that sourced the
	// burst (the tracing layer's bank-group-pressure probe).
	groupBusy []int64

	// flt is the nil-gated fault-injection hook (never set outside
	// tests; see InjectReplyDrop).
	flt *chanFault
}

// chanFault holds the test-only fault-injection state; nil in
// production runs so Tick pays a single nil check.
type chanFault struct {
	dropAfter int64 // drop the (dropAfter+1)-th read reply
	delivered int64
	dropped   bool
}

// NewChannel returns channel id of the configuration.
func NewChannel(id int, cfg *config.Config, mapper *addrmap.Mapper) *Channel {
	burst := int64((sim.LineSize + cfg.MemBusBytesPerMemCycle - 1) / cfg.MemBusBytesPerMemCycle)
	if burst < 1 {
		burst = 1
	}
	groups := 4
	if cfg.BanksPerChan < groups {
		groups = 1
	}
	return &Channel{
		id:          id,
		cfg:         cfg,
		mapper:      mapper,
		t:           cfg.Timing,
		queue:       sim.NewQueue[*sim.MemReq](cfg.MemQueueDepth),
		banks:       make([]bank, cfg.BanksPerChan),
		burst:       burst,
		lastActs:    make([]int64, 0, 4),
		numGroups:   groups,
		lastActAt:   -1,
		lastCASAt:   -1,
		lastWrEndAt: -1,
		groupBusy:   make([]int64, groups),
		completions: sim.NewQueue[completion](0),
	}
}

// BankGroups returns the number of bank groups modeled.
func (c *Channel) BankGroups() int { return c.numGroups }

// GroupBusyCycles returns a copy of the per-bank-group data-bus busy
// memory-cycle counters (they sum to BusyCycles).
func (c *Channel) GroupBusyCycles() []int64 {
	out := make([]int64, len(c.groupBusy))
	copy(out, c.groupBusy)
	return out
}

// groupOf returns the bank group of a bank index (consecutive split).
func (c *Channel) groupOf(bankIdx int) int {
	return bankIdx * c.numGroups / len(c.banks)
}

// actOK reports whether an ACT targeting group g satisfies the
// ACT-to-ACT spacing: tRRD_L within a bank group, tRRD_S across.
func (c *Channel) actOK(now int64, g int) bool {
	if c.lastActAt < 0 {
		return true
	}
	gap := int64(c.t.TRRDS)
	if g == c.lastActGroup {
		gap = int64(c.t.TRRDL)
	}
	return now-c.lastActAt >= gap
}

// casOK reports whether a CAS targeting group g satisfies tCCD_L/tCCD_S
// spacing and — for reads after a write burst — the tWTR_L/tWTR_S
// write-to-read turnaround.
func (c *Channel) casOK(now int64, g int, req *sim.MemReq) bool {
	if c.lastCASAt >= 0 {
		gap := int64(c.t.TCCDS)
		if g == c.lastCASGroup {
			gap = int64(c.t.TCCDL)
		}
		if now-c.lastCASAt < gap {
			return false
		}
	}
	if req.Kind != sim.Store && c.lastWrEndAt >= 0 {
		turn := int64(c.t.TWTRS)
		if g == c.lastWrGroup {
			turn = int64(c.t.TWTRL)
		}
		if now < c.lastWrEndAt+turn {
			return false
		}
	}
	return true
}

// ID returns the channel index.
func (c *Channel) ID() int { return c.id }

// CanEnqueue reports whether the request queue has room.
func (c *Channel) CanEnqueue() bool { return !c.queue.Full() }

// Enqueue adds a request to the channel queue, reporting acceptance.
func (c *Channel) Enqueue(req *sim.MemReq) bool {
	if !c.queue.Push(req) {
		c.stallFull++
		return false
	}
	return true
}

// QueueLen returns the number of pending requests.
func (c *Channel) QueueLen() int { return c.queue.Len() }

// faw reports whether a fourth activate within the window would violate
// tFAW at memory cycle now.
func (c *Channel) fawOK(now int64) bool {
	if len(c.lastActs) < 4 {
		return true
	}
	return now-c.lastActs[len(c.lastActs)-4] >= int64(c.t.TFAW)
}

func (c *Channel) recordAct(now int64, g int) {
	c.lastActs = append(c.lastActs, now)
	if len(c.lastActs) > 8 {
		c.lastActs = c.lastActs[len(c.lastActs)-4:]
	}
	c.lastActAt = now
	c.lastActGroup = g
}

// InjectReplyDrop makes the channel silently swallow one read reply:
// the (after+1)-th finished read burst is popped but never responded,
// so the waiting MSHR entry is never released — the classic lost-reply
// deadlock. Test-only.
func (c *Channel) InjectReplyDrop(after int64) {
	c.flt = &chanFault{dropAfter: after}
}

// Tick advances the channel by one memory cycle, issuing at most one
// command and delivering finished bursts.
func (c *Channel) Tick(now int64) {
	// Deliver completed bursts.
	for {
		comp, ok := c.completions.Peek()
		if !ok || comp.done > now {
			break
		}
		c.completions.Pop()
		if comp.req.Kind != sim.Store && c.Respond != nil {
			if f := c.flt; f != nil && !f.dropped && f.delivered == f.dropAfter {
				f.dropped = true
				continue
			}
			if f := c.flt; f != nil {
				f.delivered++
			}
			c.Respond(comp.req)
		}
	}
	if c.queue.Empty() {
		return
	}

	// FR-FCFS pass 1: the first request whose row is open and whose
	// bank + data bus can take the CAS now.
	n := c.queue.Len()
	for i := 0; i < n; i++ {
		req := c.queue.At(i)
		bi := c.mapper.Bank(req.Addr)
		b := &c.banks[bi]
		if b.rowOpen && b.row == c.mapper.Row(req.Addr) && b.readyCAS <= now &&
			c.busFreeAt <= c.casDataStart(now, req) && c.casOK(now, c.groupOf(bi), req) {
			c.issueCAS(now, req, b, c.groupOf(bi), b.openedFor != req)
			b.openedFor = nil
			c.queue.RemoveAt(i)
			return
		}
	}
	// Pass 2: issue one PRE or ACT for the oldest request of some bank,
	// preserving bank-level parallelism — considering only each bank's
	// oldest request avoids thrashing rows under younger requests.
	var seen uint64
	for i := 0; i < n; i++ {
		req := c.queue.At(i)
		bi := c.mapper.Bank(req.Addr)
		if seen&(1<<uint(bi)) != 0 {
			continue
		}
		seen |= 1 << uint(bi)
		b := &c.banks[bi]
		row := c.mapper.Row(req.Addr)
		switch {
		case b.rowOpen && b.row == row:
			// Waiting on tRCD or the data bus; pass 1 issues the CAS
			// when it becomes legal. No command for this bank.
		case b.rowOpen: // row conflict: precharge
			if b.readyPre <= now {
				b.rowOpen = false
				b.readyAct = max64(b.readyAct, now+int64(c.t.TRP))
				return
			}
		default: // closed: activate
			if b.readyAct <= now && c.actOK(now, c.groupOf(bi)) && c.fawOK(now) {
				b.rowOpen = true
				b.row = row
				b.readyCAS = now + int64(c.t.TRCD)
				b.readyPre = now + int64(c.t.TRAS)
				b.readyAct = now + int64(c.t.TRC)
				b.openedFor = req
				c.recordAct(now, c.groupOf(bi))
				c.RowMisses++
				return
			}
		}
	}
}

// casDataStart returns the memory cycle the data burst would start if the
// CAS issued at now.
func (c *Channel) casDataStart(now int64, req *sim.MemReq) int64 {
	if req.Kind == sim.Store {
		return now + int64(c.t.TWL)
	}
	return now + int64(c.t.TCL)
}

func (c *Channel) issueCAS(now int64, req *sim.MemReq, b *bank, g int, rowHit bool) {
	start := c.casDataStart(now, req)
	end := start + c.burst
	c.busFreeAt = end
	c.BusyCycles += c.burst
	c.groupBusy[g] += c.burst
	c.lastCASAt = now
	c.lastCASGroup = g
	if rowHit {
		c.RowHits++
	}
	if req.Kind == sim.Store {
		c.Writes++
		c.lastWrEndAt = end
		c.lastWrGroup = g
		b.readyPre = max64(b.readyPre, end+int64(c.t.TWR))
	} else {
		c.Reads++
		b.readyPre = max64(b.readyPre, now+int64(c.t.TRTP))
	}
	c.completions.Push(completion{done: end, req: req})
}

// Pending reports whether any request or in-flight burst remains.
func (c *Channel) Pending() bool {
	return !c.queue.Empty() || !c.completions.Empty()
}

// NextEvent returns the earliest memory cycle at which the channel could
// make progress, and whether any work remains. With requests queued the
// controller may issue a command every memory cycle (0, i.e. immediately);
// otherwise only the head burst completion remains. Completions are
// pushed in data-bus order (busFreeAt serializes bursts), so the head's
// done cycle is the minimum in flight.
func (c *Channel) NextEvent() (int64, bool) {
	if !c.queue.Empty() {
		return 0, true
	}
	if comp, ok := c.completions.Peek(); ok {
		return comp.done, true
	}
	return 0, false
}

// StateSig returns a signature of the channel's observable state: queue
// depth, per-bank row and timing state, the bus and bank-group timing
// trackers and every pending burst completion. The traffic counters are
// accounting and excluded.
func (c *Channel) StateSig() uint64 {
	h := sim.MixSig(sim.SigSeed, uint64(c.queue.Len()))
	for i := range c.banks {
		b := &c.banks[i]
		h = sim.MixSigBool(h, b.rowOpen)
		h = sim.MixSig(h, b.row)
		h = sim.MixSig(h, uint64(b.readyAct))
		h = sim.MixSig(h, uint64(b.readyCAS))
		h = sim.MixSig(h, uint64(b.readyPre))
	}
	h = sim.MixSig(h, uint64(c.busFreeAt))
	h = sim.MixSig(h, uint64(c.lastActAt))
	h = sim.MixSig(h, uint64(c.lastCASAt))
	h = sim.MixSig(h, uint64(c.lastWrEndAt))
	for i := 0; i < c.completions.Len(); i++ {
		h = sim.MixSig(h, uint64(c.completions.At(i).done))
	}
	return h
}

// Utilization returns the data-bus busy fraction over elapsed memory cycles.
func (c *Channel) Utilization(elapsedMemCycles int64) float64 {
	if elapsedMemCycles <= 0 {
		return 0
	}
	return float64(c.BusyCycles) / float64(elapsedMemCycles)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// DebugState summarizes controller state for stall diagnosis.
func (c *Channel) DebugState(now int64) string {
	s := fmt.Sprintf("q=%d busFree=%+d comps=%d", c.queue.Len(), c.busFreeAt-now, c.completions.Len())
	if c.queue.Len() > 0 {
		req := c.queue.At(0)
		b := &c.banks[c.mapper.Bank(req.Addr)]
		s += fmt.Sprintf(" head={%v addr=%#x bank=%d grp=%d} bank={open=%v row=%d rdyAct=%+d rdyCAS=%+d rdyPre=%+d} lastAct=%+d",
			req.Kind, req.Addr, c.mapper.Bank(req.Addr), c.groupOf(c.mapper.Bank(req.Addr)),
			b.rowOpen, b.row, b.readyAct-now, b.readyCAS-now, b.readyPre-now, c.lastActAt-now)
	}
	return s
}
