// Package config defines the simulated GPU configurations. The Baseline
// configuration reproduces Table 1 of the NUBA paper: 64 SMs at 1.4 GHz,
// 64 LLC slices (6 MB total), 32 HBM channels (720 GB/s), a 1.4 TB/s
// hierarchical crossbar NoC and, for NUBA, 2.8 TB/s aggregate point-to-point
// links between SMs and their local LLC slices.
package config

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/sim"
)

// Arch selects the GPU system architecture being simulated (Figure 1).
type Arch int

// Architectures evaluated in the paper.
const (
	// UBAMem is the conventional memory-side Uniform Bandwidth
	// Architecture: a crossbar between all L1s and all LLC slices, each
	// slice caching a fixed slice of the physical address space.
	UBAMem Arch = iota
	// UBASMSide is the SM-side UBA (as in NVIDIA's A100): two LLC
	// partitions whose slices cache any address, kept consistent by
	// cross-partition invalidations.
	UBASMSide
	// NUBA is the proposed Non-Uniform Bandwidth Architecture:
	// partitions of SMs + LLC slices + one memory controller with wide
	// local point-to-point links and an inter-partition crossbar.
	NUBA
)

// String returns the architecture name used in result tables.
func (a Arch) String() string {
	switch a {
	case UBAMem:
		return "UBA-mem"
	case UBASMSide:
		return "UBA-SM"
	case NUBA:
		return "NUBA"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// AddressMapping selects the physical address mapping policy.
type AddressMapping int

// Address mapping policies (Section 2).
const (
	// FixedChannel keeps channel bits outside the page offset and copies
	// them verbatim so the driver controls page placement; bank bits are
	// randomized by harvesting entropy from row bits (Figure 2).
	FixedChannel AddressMapping = iota
	// PAE additionally randomizes the channel bits (Liu et al., ISCA'18).
	// PAE defeats driver-controlled placement and is evaluated only for
	// UBA in the sensitivity analysis.
	PAE
)

// String returns the mapping name.
func (m AddressMapping) String() string {
	if m == PAE {
		return "PAE"
	}
	return "fixed-channel"
}

// PlacementPolicy selects the driver's page placement policy (Section 4).
type PlacementPolicy int

// Page placement policies.
const (
	// FirstTouch places a page in the partition of the first SM to
	// touch it.
	FirstTouch PlacementPolicy = iota
	// RoundRobin distributes pages evenly across channels.
	RoundRobin
	// LAB is Local-And-Balanced: first-touch while the normalized page
	// balance is above the threshold, least-first otherwise.
	LAB
	// Migration is the §7.6 alternative: access-count-driven page
	// migration between partitions at fixed intervals.
	Migration
	// PageReplication is the §7.6 alternative: page-granularity
	// replication into reader partitions when memory is free.
	PageReplication
)

// String returns the policy name used in result tables.
func (p PlacementPolicy) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case RoundRobin:
		return "round-robin"
	case LAB:
		return "LAB"
	case Migration:
		return "migration"
	case PageReplication:
		return "page-replication"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// ReplicationPolicy selects the cache-line replication policy (Section 5).
type ReplicationPolicy int

// Replication policies.
const (
	// NoRep never replicates: remote read-only data stays remote.
	NoRep ReplicationPolicy = iota
	// FullRep always replicates read-only shared lines locally.
	FullRep
	// MDR replicates only when the analytical bandwidth model predicts
	// a net gain, re-evaluated every epoch.
	MDR
)

// String returns the policy name used in result tables.
func (r ReplicationPolicy) String() string {
	switch r {
	case NoRep:
		return "No-Rep"
	case FullRep:
		return "Full-Rep"
	case MDR:
		return "MDR"
	default:
		return fmt.Sprintf("ReplicationPolicy(%d)", int(r))
	}
}

// HBMTiming holds the DRAM timing parameters of Table 1 in memory-clock
// cycles (350 MHz). Every field carries the same dimension, so one
// annotation per field keeps the unit-consistency rule honest about
// arithmetic that mixes them with core-clock quantities.
type HBMTiming struct {
	// nubaunit: memcycles
	TRC int // ACT to ACT, same bank
	// nubaunit: memcycles
	TRCD int // ACT to CAS
	// nubaunit: memcycles
	TRP int // PRE to ACT
	// nubaunit: memcycles
	TCL int // CAS to data
	// nubaunit: memcycles
	TWL int // write CAS to data
	// nubaunit: memcycles
	TRAS int // ACT to PRE
	// nubaunit: memcycles
	TRRDL int // ACT to ACT, same bank group
	// nubaunit: memcycles
	TRRDS int // ACT to ACT, different bank group
	// nubaunit: memcycles
	TFAW int // four-activate window
	// nubaunit: memcycles
	TRTP int // READ to PRE
	// nubaunit: memcycles
	TCCDL int // CAS to CAS, same bank group
	// nubaunit: memcycles
	TCCDS int // CAS to CAS, different bank group
	// nubaunit: memcycles
	TWTRL int // write to read, same bank group
	// nubaunit: memcycles
	TWTRS int // write to read, different bank group
	// nubaunit: memcycles
	TWR int // write recovery
}

// DefaultHBMTiming returns the Table 1 HBM timing.
func DefaultHBMTiming() HBMTiming {
	return HBMTiming{
		TRC: 24, TRCD: 7, TRP: 7, TCL: 7, TWL: 2, TRAS: 17,
		TRRDL: 5, TRRDS: 4, TFAW: 20, TRTP: 7,
		TCCDL: 1, TCCDS: 1, TWTRL: 4, TWTRS: 2, TWR: 8,
	}
}

// Config is a complete description of one simulated GPU system. Zero
// values are not meaningful; start from Baseline() and adjust.
type Config struct {
	Arch Arch
	Seed uint64

	// Core clock in GHz; the memory clock is CoreClockGHz/MemClockDiv.
	// nubaunit: GHz
	CoreClockGHz float64
	MemClockDiv  int

	// SM organization.
	NumSMs          int
	WarpsPerSM      int
	WarpSize        int
	SchedulersPerSM int // dual GTO schedulers in the baseline
	MaxCTAsPerSM    int

	// L1 data cache (per SM): write-through, write-no-allocate.
	L1Bytes      int // nubaunit: bytes
	L1Ways       int
	L1MSHRs      int
	L1Latency    sim.Cycle // nubaunit: cycles
	L1TLBEntries int
	L1TLBLatency sim.Cycle // nubaunit: cycles

	// Shared L2 TLB and page walking.
	L2TLBEntries int
	L2TLBWays    int
	L2TLBLatency sim.Cycle // nubaunit: cycles
	L2TLBPorts   int
	PageWalkers  int
	// PageWalkLatency is the latency of a page table walk that hits in
	// memory.
	// nubaunit: cycles
	PageWalkLatency sim.Cycle
	// PageFaultLatency is the fixed 20 us first-touch fault penalty.
	// nubaunit: cycles
	PageFaultLatency sim.Cycle
	PageSize         uint64 // nubaunit: bytes

	// LLC organization: NumLLCSlices slices of LLCSliceBytes each.
	NumLLCSlices  int
	LLCSliceBytes int // nubaunit: bytes
	LLCWays       int
	LLCLatency    sim.Cycle // nubaunit: cycles
	LLCMSHRs      int
	// LLCQueue is the nominal LMR/RMR queue depth. The slice model uses
	// elastic queues for deadlock freedom (see internal/llc), so this is
	// retained for documentation and future credit-based modeling.
	//nubalint:ignore config-liveness documented placeholder until credit-based LLC queues land
	LLCQueue int

	// Memory system.
	NumChannels   int
	BanksPerChan  int
	MemQueueDepth int
	Timing        HBMTiming
	// MemBusBytesPerMemCycle is the per-channel data bus width per
	// memory-clock cycle: 64 B gives 32 ch × 64 B × 350 MHz ≈ 720 GB/s.
	// nubaunit: bytes/memcycle
	MemBusBytesPerMemCycle int

	// NoC: the inter-partition network.
	// nubaunit: GB/s
	NoCBandwidthGBs float64 // aggregate injection bandwidth
	// NoCLatency is the hierarchical crossbar traversal (two 4-cycle
	// stages).
	// nubaunit: cycles
	NoCLatency    sim.Cycle
	NoCPortBuffer int

	// NUBA point-to-point links between SMs and local LLC slices.
	// LocalLinkBytes is the link width (32 B ≈ 2.8 TB/s aggregate).
	// nubaunit: bytes/cycle
	LocalLinkBytes   int
	LocalLinkLatency sim.Cycle // nubaunit: cycles
	LocalLinkBuffer  int

	// Policies.
	AddressMap   AddressMapping
	Placement    PlacementPolicy
	LABThreshold float64
	Replication  ReplicationPolicy
	MDREpoch     sim.Cycle // nubaunit: cycles
	// MDREvalDelay is the 116-cycle hardware model evaluation.
	// nubaunit: cycles
	MDREvalDelay  sim.Cycle
	MDRSampleSets int // dynamic set sampling: 8 sets per slice

	// Migration/PageReplication knobs (§7.6 alternatives).
	MigrationInterval  sim.Cycle // nubaunit: cycles
	MigrationThreshold int

	// MCM configuration (Figure 15/16). When NumModules > 1, the
	// crossbar is split per module and inter-module traffic uses links of
	// InterModuleGBs bidirectional bandwidth per module.
	NumModules     int
	InterModuleGBs float64 // nubaunit: GB/s

	// ColdStart disables the placement prewarm: every first touch then
	// pays the full demand-fault penalty during the timed run. The
	// default (false) models the paper's representative mid-execution
	// window, where the working set was faulted in and placed during
	// warmup (see internal/core/prewarm.go).
	ColdStart bool

	// MaxCycles aborts a run that fails to drain (safety net).
	MaxCycles int64
}

// Baseline returns the Table 1 memory-side UBA GPU: 64 SMs, 64 LLC slices,
// 32 channels, 1.4 TB/s NoC, fixed-channel address mapping. UBA uses
// round-robin page placement: with the fixed-channel map, spreading pages
// evenly is the best a UBA driver can do (first-touch-style placement
// would concentrate each SM's traffic on one channel's slices).
func Baseline() Config {
	return Config{
		Arch:         UBAMem,
		Seed:         1,
		CoreClockGHz: 1.4,
		MemClockDiv:  4,

		NumSMs:          64,
		WarpsPerSM:      64,
		WarpSize:        32,
		SchedulersPerSM: 2,
		MaxCTAsPerSM:    32,

		L1Bytes:      48 * 1024,
		L1Ways:       6,
		L1MSHRs:      128,
		L1Latency:    1,
		L1TLBEntries: 128,
		L1TLBLatency: 1,

		L2TLBEntries:     512,
		L2TLBWays:        16,
		L2TLBLatency:     10,
		L2TLBPorts:       2,
		PageWalkers:      64,
		PageWalkLatency:  200,
		PageFaultLatency: 28000, // 20 us at 1.4 GHz
		PageSize:         4096,

		NumLLCSlices:  64,
		LLCSliceBytes: 96 * 1024, // 64 slices * 96 KB = 6 MB
		LLCWays:       16,
		LLCLatency:    120,
		LLCMSHRs:      128,
		LLCQueue:      32,

		NumChannels:            32,
		BanksPerChan:           16,
		MemQueueDepth:          64,
		Timing:                 DefaultHBMTiming(),
		MemBusBytesPerMemCycle: 64,

		NoCBandwidthGBs: 1400,
		NoCLatency:      8,
		NoCPortBuffer:   32,

		LocalLinkBytes:   32,
		LocalLinkLatency: 1,
		LocalLinkBuffer:  8,

		AddressMap:    FixedChannel,
		Placement:     RoundRobin,
		LABThreshold:  0.9,
		Replication:   NoRep,
		MDREpoch:      20000,
		MDREvalDelay:  116,
		MDRSampleSets: 8,

		MigrationInterval:  50000,
		MigrationThreshold: 64,

		NumModules:     1,
		InterModuleGBs: 0,

		MaxCycles: 80_000_000,
	}
}

// NUBABaseline returns the paper's performance-optimized NUBA GPU:
// the Baseline resources rearranged into 32 partitions of {2 SMs, 2 LLC
// slices, 1 channel} with LAB placement and MDR replication.
func NUBABaseline() Config {
	c := Baseline()
	c.Arch = NUBA
	c.Placement = LAB
	c.Replication = MDR
	return c
}

// SMSideBaseline returns the SM-side UBA configuration (two LLC
// partitions of 32 slices each, as in the A100).
func SMSideBaseline() Config {
	c := Baseline()
	c.Arch = UBASMSide
	return c
}

// WithArch returns a copy of c with the architecture (and the
// architecture-appropriate default policies) switched.
func (c Config) WithArch(a Arch) Config {
	c.Arch = a
	if a == NUBA {
		c.Placement = LAB
		c.Replication = MDR
	} else {
		c.Placement = RoundRobin
		c.Replication = NoRep
	}
	return c
}

// WithNoC returns a copy of c with the aggregate NoC bandwidth replaced
// (700, 1400, 2800 or 5600 GB/s in Figure 10).
func (c Config) WithNoC(gbs float64) Config {
	c.NoCBandwidthGBs = gbs
	return c
}

// Scale returns a copy of c with compute, LLC slice count and memory
// channels scaled by factor, keeping the 2:2:1 SM:slice:channel ratio and
// per-slice capacity constant, as in the Figure 14 GPU-size sweep. factor
// must make all counts integral (0.5, 1, 2 for the baseline).
func (c Config) Scale(factor float64) Config {
	c.NumSMs = int(float64(c.NumSMs) * factor)
	c.NumLLCSlices = int(float64(c.NumLLCSlices) * factor)
	c.NumChannels = int(float64(c.NumChannels) * factor)
	c.NoCBandwidthGBs *= factor
	return c
}

// WithPartition returns a copy of c with the number of LLC slices per
// partition changed while keeping the total LLC capacity constant (the
// Figure 14 partition-ratio sweep: 1, 2 or 4 slices per channel).
func (c Config) WithPartition(slicesPerChannel int) Config {
	total := c.NumLLCSlices * c.LLCSliceBytes
	c.NumLLCSlices = c.NumChannels * slicesPerChannel
	c.LLCSliceBytes = total / c.NumLLCSlices
	return c
}

// WithLLCCapacity returns a copy of c with total LLC capacity scaled by
// factor at a constant slice count.
func (c Config) WithLLCCapacity(factor float64) Config {
	c.LLCSliceBytes = int(float64(c.LLCSliceBytes) * factor)
	return c
}

// MCM returns the Figure 16 multi-chip-module configuration: the 2x-scaled
// GPU (128 SMs, 128 slices, 64 channels) split across four modules with
// 720 GB/s bidirectional inter-module links.
func MCM(a Arch) Config {
	c := Baseline().Scale(2).WithArch(a)
	c.NumModules = 4
	c.InterModuleGBs = 720
	if a == NUBA {
		c.Placement = LAB
		c.Replication = MDR
	}
	return c
}

// Derived topology helpers.

// NumPartitions returns the number of NUBA partitions (= memory channels).
func (c *Config) NumPartitions() int { return c.NumChannels }

// PartitionOfSM returns the partition that SM sm belongs to.
func (c *Config) PartitionOfSM(sm int) int {
	return sm / c.SMsPerPartitionActual()
}

// PartitionOfSlice returns the partition that LLC slice s belongs to.
func (c *Config) PartitionOfSlice(s int) int {
	return s / c.SlicesPerPartitionActual()
}

// SMsPerPartitionActual returns NumSMs / NumPartitions.
func (c *Config) SMsPerPartitionActual() int { return c.NumSMs / c.NumPartitions() }

// SlicesPerPartitionActual returns NumLLCSlices / NumPartitions.
func (c *Config) SlicesPerPartitionActual() int { return c.NumLLCSlices / c.NumPartitions() }

// ModuleOfSM returns the MCM module an SM belongs to (0 when monolithic).
func (c *Config) ModuleOfSM(sm int) int {
	if c.NumModules <= 1 {
		return 0
	}
	return sm / (c.NumSMs / c.NumModules)
}

// ModuleOfChannel returns the MCM module a memory channel belongs to.
func (c *Config) ModuleOfChannel(ch int) int {
	if c.NumModules <= 1 {
		return 0
	}
	return ch / (c.NumChannels / c.NumModules)
}

// ModuleOfSlice returns the MCM module an LLC slice belongs to.
func (c *Config) ModuleOfSlice(s int) int {
	return c.ModuleOfChannel(c.PartitionOfSlice(s))
}

// NoCPortBytes returns the per-port link width in bytes per cycle implied
// by the aggregate NoC bandwidth: width = BW / clock / ports, with one
// port per LLC slice (the narrow side of the crossbar). The baseline
// 1.4 TB/s over 64 ports at 1.4 GHz gives 16 B per cycle per port.
func (c *Config) NoCPortBytes() int {
	ports := c.NumLLCSlices
	if ports == 0 {
		return 1
	}
	w := c.NoCBandwidthGBs / (c.CoreClockGHz * float64(ports))
	if w < 1 {
		return 1
	}
	// The paper's nominal bandwidths (700 GB/s ... 5.6 TB/s) correspond
	// to power-of-two link widths (8 B ... 64 B) at 1.4 GHz; snap to a
	// power of two when within 15% so marketing-rounded numbers yield
	// clean hardware widths.
	for p := 1; p <= 512; p <<= 1 {
		f := w / float64(p)
		if f > 0.85 && f < 1.15 {
			return p
		}
	}
	return int(w + 0.5)
}

// InterModuleBytes returns the per-direction inter-module link width in
// bytes per cycle for MCM configurations.
func (c *Config) InterModuleBytes() int {
	if c.NumModules <= 1 || c.InterModuleGBs <= 0 {
		return 0
	}
	w := c.InterModuleGBs / (2 * c.CoreClockGHz) // bidirectional: half each way
	if w < 1 {
		return 1
	}
	return int(w + 0.5)
}

// LLCSets returns the number of sets per LLC slice.
func (c *Config) LLCSets() int { return c.LLCSliceBytes / (c.LLCWays * sim.LineSize) }

// L1Sets returns the number of sets per L1 cache.
func (c *Config) L1Sets() int { return c.L1Bytes / (c.L1Ways * sim.LineSize) }

// Validate checks structural invariants and returns a descriptive error
// for the first violation found.
func (c *Config) Validate() error {
	switch {
	case c.NumSMs <= 0 || c.NumLLCSlices <= 0 || c.NumChannels <= 0:
		return fmt.Errorf("config: SMs/slices/channels must be positive (%d/%d/%d)",
			c.NumSMs, c.NumLLCSlices, c.NumChannels)
	case c.NumSMs%c.NumChannels != 0:
		return fmt.Errorf("config: %d SMs not divisible across %d partitions", c.NumSMs, c.NumChannels)
	case c.NumLLCSlices%c.NumChannels != 0:
		return fmt.Errorf("config: %d LLC slices not divisible across %d partitions", c.NumLLCSlices, c.NumChannels)
	case c.PageSize == 0 || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("config: page size %d is not a power of two", c.PageSize)
	case c.L1Sets() <= 0 || c.LLCSets() <= 0:
		return fmt.Errorf("config: cache geometry yields no sets (L1 %d, LLC %d)", c.L1Sets(), c.LLCSets())
	case c.WarpSize <= 0 || c.WarpsPerSM <= 0:
		return fmt.Errorf("config: warp geometry invalid (%d warps of %d)", c.WarpsPerSM, c.WarpSize)
	case c.MemClockDiv <= 0:
		return fmt.Errorf("config: MemClockDiv must be positive")
	case c.Arch == UBASMSide && c.NumLLCSlices < 2:
		return fmt.Errorf("config: SM-side UBA needs at least 2 slices")
	case c.NumModules > 1 && c.NumSMs%c.NumModules != 0:
		return fmt.Errorf("config: %d SMs not divisible across %d modules", c.NumSMs, c.NumModules)
	case c.LABThreshold <= 0 || c.LABThreshold > 1:
		return fmt.Errorf("config: LAB threshold %.2f out of (0,1]", c.LABThreshold)
	}
	return nil
}

// Fingerprint returns a canonical identity string covering every
// semantic field of the configuration, including nested timing. Two
// configurations share a fingerprint iff they describe the same simulated
// system, so the string is safe as a memoization key (the experiment
// engine's run cache) and for test assertions. The %+v rendering walks
// the whole struct by reflection, so newly added fields are covered
// automatically rather than silently aliasing distinct configs the way a
// hand-picked field list would.
func (c *Config) Fingerprint() string {
	return fmt.Sprintf("%+v", *c)
}

// Name returns a short identifier for result tables, e.g.
// "NUBA/LAB/MDR/1400GBs".
func (c *Config) Name() string {
	s := c.Arch.String()
	if c.Arch == NUBA {
		s += "/" + c.Placement.String() + "/" + c.Replication.String()
	}
	return fmt.Sprintf("%s/%.0fGBs", s, c.NoCBandwidthGBs)
}
