package config

import (
	"reflect"
	"testing"
)

func TestBaselineMatchesTable1(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Table 1 headline numbers.
	if c.NumSMs != 64 || c.NumLLCSlices != 64 || c.NumChannels != 32 {
		t.Fatal("SM/slice/channel counts wrong")
	}
	if c.WarpsPerSM != 64 || c.WarpSize != 32 || c.SchedulersPerSM != 2 {
		t.Fatal("SM geometry wrong")
	}
	if c.L1Bytes != 48*1024 || c.L1Ways != 6 || c.L1Sets() != 64 || c.L1MSHRs != 128 {
		t.Fatal("L1 geometry wrong")
	}
	if c.NumLLCSlices*c.LLCSliceBytes != 6*1024*1024 || c.LLCWays != 16 || c.LLCSets() != 48 {
		t.Fatal("LLC geometry wrong")
	}
	if c.L1TLBEntries != 128 || c.L2TLBEntries != 512 || c.L2TLBWays != 16 ||
		c.L2TLBLatency != 10 || c.PageWalkers != 64 {
		t.Fatal("TLB setup wrong")
	}
	if c.PageSize != 4096 || c.PageFaultLatency != 28000 {
		t.Fatal("paging setup wrong (20us at 1.4GHz = 28000 cycles)")
	}
	if c.NoCBandwidthGBs != 1400 || c.NoCPortBytes() != 16 {
		t.Fatal("NoC setup wrong")
	}
	ht := c.Timing
	if ht.TRC != 24 || ht.TRCD != 7 || ht.TCL != 7 || ht.TFAW != 20 || ht.TRAS != 17 {
		t.Fatal("HBM timing wrong")
	}
	// 32 channels x 64 B x 350 MHz = 716.8 GB/s ~ 720 GB/s.
	gbps := float64(c.NumChannels) * float64(c.MemBusBytesPerMemCycle) * c.CoreClockGHz / float64(c.MemClockDiv)
	if gbps < 700 || gbps > 740 {
		t.Fatalf("memory bandwidth %.0f GB/s", gbps)
	}
}

func TestPartitionTopology(t *testing.T) {
	c := Baseline()
	if c.NumPartitions() != 32 || c.SMsPerPartitionActual() != 2 || c.SlicesPerPartitionActual() != 2 {
		t.Fatal("2:2:1 ratio broken")
	}
	if c.PartitionOfSM(0) != 0 || c.PartitionOfSM(63) != 31 {
		t.Fatal("SM partition map wrong")
	}
	if c.PartitionOfSlice(0) != 0 || c.PartitionOfSlice(63) != 31 {
		t.Fatal("slice partition map wrong")
	}
}

func TestNoCPortBytesVariants(t *testing.T) {
	c := Baseline()
	for _, tc := range []struct {
		gbs  float64
		want int
	}{{700, 8}, {1400, 16}, {2800, 32}, {5600, 64}} {
		v := c.WithNoC(tc.gbs)
		if got := v.NoCPortBytes(); got != tc.want {
			t.Errorf("NoC %.0f GB/s -> width %d, want %d", tc.gbs, got, tc.want)
		}
	}
}

func TestScalePreservesRatios(t *testing.T) {
	for _, f := range []float64{0.5, 2} {
		c := Baseline().Scale(f)
		if err := c.Validate(); err != nil {
			t.Fatalf("scale %v: %v", f, err)
		}
		if c.SMsPerPartitionActual() != 2 || c.SlicesPerPartitionActual() != 2 {
			t.Fatalf("scale %v broke the 2:2:1 ratio", f)
		}
		if c.NoCPortBytes() != 16 {
			t.Fatalf("scale %v changed per-port NoC width to %d", f, c.NoCPortBytes())
		}
	}
}

func TestWithPartitionPreservesCapacity(t *testing.T) {
	base := Baseline()
	total := base.NumLLCSlices * base.LLCSliceBytes
	for _, spp := range []int{1, 2, 4} {
		c := base.WithPartition(spp)
		if err := c.Validate(); err != nil {
			t.Fatalf("spp %d: %v", spp, err)
		}
		if c.NumLLCSlices*c.LLCSliceBytes != total {
			t.Fatalf("spp %d changed LLC capacity", spp)
		}
		if c.SlicesPerPartitionActual() != spp {
			t.Fatalf("spp %d not applied", spp)
		}
	}
}

func TestMCMConfig(t *testing.T) {
	c := MCM(NUBA)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumSMs != 128 || c.NumModules != 4 || c.InterModuleGBs != 720 {
		t.Fatal("MCM geometry wrong")
	}
	if c.ModuleOfSM(0) != 0 || c.ModuleOfSM(127) != 3 || c.ModuleOfChannel(63) != 3 {
		t.Fatal("module maps wrong")
	}
	if c.InterModuleBytes() <= 0 {
		t.Fatal("inter-module width zero")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		c := Baseline()
		mut(&c)
		return c
	}
	bad := []Config{
		mk(func(c *Config) { c.NumSMs = 0 }),
		mk(func(c *Config) { c.NumSMs = 63 }),
		mk(func(c *Config) { c.NumLLCSlices = 33 }),
		mk(func(c *Config) { c.PageSize = 3000 }),
		mk(func(c *Config) { c.WarpSize = 0 }),
		mk(func(c *Config) { c.MemClockDiv = 0 }),
		mk(func(c *Config) { c.LABThreshold = 0 }),
		mk(func(c *Config) { c.NumModules = 3 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestArchPolicyDefaults(t *testing.T) {
	if n := Baseline().WithArch(NUBA); n.Placement != LAB || n.Replication != MDR {
		t.Fatal("NUBA defaults")
	}
	if u := NUBABaseline().WithArch(UBAMem); u.Placement != RoundRobin || u.Replication != NoRep {
		t.Fatal("UBA defaults")
	}
}

// perturb changes one struct field in place to a different valid-typed
// value, recursing into nested structs (HBMTiming). It returns false for
// kinds it cannot alter.
func perturb(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float()*2 + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Struct:
		return perturb(v.Field(0))
	default:
		return false
	}
	return true
}

// TestFingerprintCoversEveryField guards the run-memoization key: editing
// ANY field of Config must change the fingerprint, so two configs that
// differ anywhere (LABThreshold, replication knobs, timing, ...) can never
// alias in the experiment engine's cache.
func TestFingerprintCoversEveryField(t *testing.T) {
	base := Baseline()
	ref := base.Fingerprint()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		c := base // fresh copy each field
		f := reflect.ValueOf(&c).Elem().Field(i)
		if !perturb(f) {
			t.Fatalf("field %s: unsupported kind %s in perturb helper — extend it", typ.Field(i).Name, f.Kind())
		}
		if got := c.Fingerprint(); got == ref {
			t.Errorf("fingerprint ignores field %s", typ.Field(i).Name)
		}
	}
}

func TestFingerprintStableForEqualConfigs(t *testing.T) {
	a, b := NUBABaseline(), NUBABaseline()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs must share a fingerprint")
	}
	c := NUBABaseline()
	c.LABThreshold = 0.95
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("LABThreshold edit must change the fingerprint")
	}
}

func TestStringers(t *testing.T) {
	if UBAMem.String() != "UBA-mem" || NUBA.String() != "NUBA" || UBASMSide.String() != "UBA-SM" {
		t.Fatal("arch names")
	}
	if LAB.String() != "LAB" || FirstTouch.String() != "first-touch" {
		t.Fatal("policy names")
	}
	if MDR.String() != "MDR" || NoRep.String() != "No-Rep" {
		t.Fatal("replication names")
	}
	if PAE.String() != "PAE" || FixedChannel.String() != "fixed-channel" {
		t.Fatal("mapping names")
	}
}
