package smcore

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/driver"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
	"github.com/nuba-gpu/nuba/internal/vm"
)

// testRig wires one SM to an ideal memory that answers every request
// after a fixed delay.
type testRig struct {
	sm      *SM
	stats   *metrics.Stats
	vmsys   *vm.System
	pending []*sim.MemReq
	ready   []sim.Cycle
	delay   sim.Cycle
	sent    int
}

func newRig(t *testing.T, delay sim.Cycle) *testRig {
	t.Helper()
	cfg := config.Baseline()
	cfg.WarpsPerSM = 16
	cfg.MaxCTAsPerSM = 4
	m := addrmap.New(&cfg)
	drv := driver.New(&cfg, m)
	st := &metrics.Stats{}
	vmsys := vm.NewSystem(&cfg, drv, st)
	r := &testRig{stats: st, vmsys: vmsys, delay: delay}
	r.sm = New(0, 0, &cfg, st, metrics.NewSharingHistogram())
	r.sm.VMRequest = vmsys.Request
	r.sm.PageLookup = func(vpn uint64, now sim.Cycle) (uint64, bool, bool) {
		if p, ok := drv.Lookup(vpn); ok && p.BusyUntil > now {
			return 0, true, false
		}
		ppn, ok := drv.Translate(vpn, 0)
		return ppn, false, ok
	}
	r.sm.Send = func(req *sim.MemReq, now sim.Cycle) bool {
		r.sent++
		r.pending = append(r.pending, req)
		r.ready = append(r.ready, now+r.delay)
		return true
	}
	return r
}

func (r *testRig) tick(now sim.Cycle) {
	r.vmsys.Tick(now)
	r.sm.Tick(now)
	for i := 0; i < len(r.pending); {
		if r.ready[i] <= now {
			req := r.pending[i]
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			r.ready = append(r.ready[:i], r.ready[i+1:]...)
			r.sm.AcceptReply(req, now)
			continue
		}
		i++
	}
}

func (r *testRig) runToIdle(t *testing.T, limit sim.Cycle) sim.Cycle {
	t.Helper()
	for now := sim.Cycle(1); now < limit; now++ {
		r.tick(now)
		if r.sm.Idle() && len(r.pending) == 0 {
			return now
		}
	}
	t.Fatalf("SM did not go idle within %d cycles", limit)
	return 0
}

const rigKernel = `
.kernel rig
.param .ptr A
.param .ptr B
.param .u64 iters
  mov r0, %tid
  mov r1, %ctaid
  mov r2, %ntid
  mul r3, r1, r2
  mul r3, r3, iters
  add r3, r3, r0
  mov r4, 0
loop:
  mad r5, r4, r2, r3
  shl r6, r5, 3
  ld.global.u64 r7, [A + r6]
  fma r7, r7
  st.global.u64 [B + r6], r7
  add r4, r4, 1
  setp.lt p0, r4, iters
  @p0 bra loop
  exit
`

func rigLaunch(t *testing.T, grid int, iters int64) *kir.Launch {
	t.Helper()
	k := kir.MustParse(rigKernel)
	kir.AnalyzeReadOnly(k)
	size := uint64(grid) * 64 * uint64(iters) * 8
	l := &kir.Launch{Kernel: k, GridDim: grid, CTAThreads: 64,
		Scalars: []int64{iters},
		Buffers: []kir.Binding{{Base: 1 << 20, Size: size}, {Base: 1 << 22, Size: size}}}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSMRunsKernelToCompletion(t *testing.T) {
	r := newRig(t, 50)
	l := rigLaunch(t, 4, 2)
	r.sm.StartKernel(l, 0, 4)
	r.runToIdle(t, 200000)
	// 4 CTAs x 2 warps x (7 prologue + 2*8 loop + 1 exit) instructions.
	want := int64(4 * 2 * (7 + 16 + 1))
	if r.stats.Instructions != want {
		t.Fatalf("instructions %d want %d", r.stats.Instructions, want)
	}
	if r.stats.Replies == 0 || r.sent == 0 {
		t.Fatal("no memory traffic")
	}
}

func TestSMCoalescing(t *testing.T) {
	// 64 threads/CTA, 8-byte elements: each warp's load covers exactly
	// two 128 B lines -> 2 requests per warp-load (plus stores).
	r := newRig(t, 10)
	l := rigLaunch(t, 1, 1)
	r.sm.StartKernel(l, 0, 1)
	r.runToIdle(t, 100000)
	// 2 warps x 1 iter: loads 2x2 lines, stores 2x2 lines = 8 requests.
	if r.sent != 8 {
		t.Fatalf("sent %d requests, want 8", r.sent)
	}
}

func TestSML1CapturesReuse(t *testing.T) {
	// Second kernel run over the same data with the same SM: loads hit
	// in L1 (data cached by the first run's fills).
	r := newRig(t, 10)
	l := rigLaunch(t, 1, 2)
	r.sm.StartKernel(l, 0, 1)
	r.runToIdle(t, 100000)
	missesFirst := r.stats.L1Misses
	r.sm.StartKernel(l, 0, 1)
	r.runToIdle(t, 200000)
	if r.stats.L1Misses != missesFirst {
		t.Fatalf("expected warm L1 (stores invalidated lines aside): %d -> %d",
			missesFirst, r.stats.L1Misses)
	}
}

func TestSMOccupancyLimits(t *testing.T) {
	// 16 warp slots, 2 warps per CTA, MaxCTAs 4 -> at most 4 resident
	// CTAs; 8 CTAs assigned must still all complete.
	r := newRig(t, 20)
	l := rigLaunch(t, 8, 1)
	r.sm.StartKernel(l, 0, 8)
	r.runToIdle(t, 400000)
	want := int64(8 * 2 * (7 + 8 + 1))
	if r.stats.Instructions != want {
		t.Fatalf("instructions %d want %d", r.stats.Instructions, want)
	}
}

func TestSMBarrierSynchronizesCTA(t *testing.T) {
	src := `
.kernel bar
.param .ptr A
  mov r0, %tid
  shl r1, r0, 3
  ld.global.u64 r2, [A + r1]
  bar.sync
  st.global.u64 [A + r1], r2
  exit
`
	k := kir.MustParse(src)
	kir.AnalyzeReadOnly(k)
	l := &kir.Launch{Kernel: k, GridDim: 1, CTAThreads: 128,
		Buffers: []kir.Binding{{Base: 1 << 20, Size: 4096}}}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	r := newRig(t, 400) // long memory delay: barrier must actually wait
	r.sm.StartKernel(l, 0, 1)
	r.runToIdle(t, 100000)
	if r.stats.Instructions != int64(4*6) {
		t.Fatalf("instructions %d", r.stats.Instructions)
	}
}

func TestSMScoreboardBlocksDependentUse(t *testing.T) {
	// With a huge memory delay, the dependent fma cannot issue early:
	// the run time must exceed the delay.
	r := newRig(t, 5000)
	l := rigLaunch(t, 1, 1)
	r.sm.StartKernel(l, 0, 1)
	done := r.runToIdle(t, 100000)
	if done < 5000 {
		t.Fatalf("finished at %d despite 5000-cycle memory", done)
	}
}

func TestSMDebugState(t *testing.T) {
	r := newRig(t, 10)
	if s := r.sm.DebugState(); s == "" {
		t.Fatal("empty debug state")
	}
}
