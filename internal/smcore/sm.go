// Package smcore models a Streaming Multiprocessor: hardware warp slots
// running kir kernels, dual greedy-then-oldest (GTO) warp schedulers, a
// register scoreboard, the per-warp coalescer, a per-SM L1 TLB and a
// write-through/write-no-allocate L1 data cache with MSHRs.
//
// The SM produces the exact stream of 128 B line transactions the paper's
// memory system sees; instruction semantics come from the kir interpreter
// while all timing (scoreboard, L1 port, TLB, MSHR and interconnect
// back-pressure) is modeled here.
package smcore

import (
	"fmt"
	"math/bits"

	"github.com/nuba-gpu/nuba/internal/cache"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
	"github.com/nuba-gpu/nuba/internal/vm"
)

// pendingForever marks a register whose producer load has not returned.
const pendingForever = int64(1) << 62

// lineState tracks one coalesced line of a memory access through the LSU.
type lineState uint8

const (
	lineNeedTranslate lineState = iota
	lineTranslating
	lineTranslated
	lineDone
)

// lineReq is one coalesced 128 B line of a warp memory instruction.
type lineReq struct {
	vaddr uint64 // line-aligned virtual address
	paddr uint64
	state lineState
	// readyAt parks a translated line until the L1 TLB hit latency has
	// elapsed (zero when L1TLBLatency <= 1: the hit is same-cycle).
	readyAt sim.Cycle
}

// memAccess is a warp memory instruction in flight in the LSU.
type memAccess struct {
	warp     int // warp slot
	store    bool
	atomic   bool
	ro       bool
	dstReg   int8
	lines    []lineReq
	nextLine int
	writable bool // the target buffer is read-write (for fault metadata)
}

// warpSlot is one hardware warp context.
type warpSlot struct {
	w           *kir.Warp
	valid       bool
	ctaSlot     int
	age         int64 // activation order for GTO "oldest"
	atBarrier   bool
	regReadyAt  [kir.MaxRegs]int64
	regPending  [kir.MaxRegs]int16 // outstanding line fills per register
	outstanding int                // total in-flight line requests (loads+stores)
	// nextReady caches the earliest cycle the warp could issue again;
	// pendingForever while blocked on an outstanding load.
	nextReady int64
}

// ctaState tracks a resident CTA for barrier accounting and refill.
type ctaState struct {
	id      int
	live    int // warps not yet exited
	total   int
	arrived int // warps waiting at the barrier
	slots   []int
	active  bool
}

// SM is one streaming multiprocessor.
type SM struct {
	ID   int
	Part int // NUBA partition (= memory channel group)

	cfg   *config.Config
	stats *metrics.Stats
	hist  *metrics.SharingHistogram

	l1     *cache.Cache
	l1MSHR *cache.MSHRFile
	l1TLB  *vm.TLB

	launch    *kir.Launch
	ctaQueue  *sim.Queue[int] // CTA ids assigned by the distributed scheduler
	ctas      []ctaState
	warps     []warpSlot
	freeSlots []int
	nextAge   int64
	liveWarps int

	// Schedulers: slot s belongs to scheduler s % SchedulersPerSM.
	greedy []int // per-scheduler greedy warp (-1 none)
	// sleepUntil caches, per scheduler, the earliest cycle any of its
	// warps could become issuable; the scheduler skips its scan until
	// then. Completion events reset it to zero.
	sleepUntil []int64
	// order holds, per scheduler, its live warp slots in activation
	// (age) order, so the GTO "oldest" scan can stop at the first
	// issuable warp.
	order [][]int

	lsu       *sim.Queue[*memAccess]
	sendQueue *sim.Queue[*sim.MemReq]

	// Send injects a request into the interconnect; installed by the
	// core. It returns false on back-pressure and the SM retries.
	Send func(req *sim.MemReq, now sim.Cycle) bool
	// VMRequest asks the shared VM system (L2 TLB + page walkers) to
	// resolve vpn, invoking done when the walk completes; installed by
	// the core. It returns false on L2 TLB port or walker back-pressure.
	VMRequest func(part int, vpn uint64, writable bool, now sim.Cycle, done func()) bool
	// PageLookup consults the driver's page table for a line's physical
	// frame; installed by the core. busy reports a frame mid-migration
	// (the SM stalls until the copy window passes); ok reports whether a
	// mapping exists yet.
	PageLookup func(vpn uint64, now sim.Cycle) (ppn uint64, busy, ok bool)

	// reqSeq is the SM-local request-id sequence; ids are striped by SM
	// so they stay unique across the whole GPU without a shared
	// allocator (ROADMAP item 2: no cross-partition state on the tick
	// path).
	reqSeq uint64

	scratch kir.MemInfo

	// flt is the nil-gated fault-injection hook (never set outside
	// tests; see InjectWedge).
	flt *smFault
}

// LSUOpsPerCycle is the number of line operations (TLB+L1 lookups) the
// load-store unit performs per cycle — the L1 has one 128 B port, and the
// coalescer feeds it one line per cycle.
const LSUOpsPerCycle = 1

// New returns SM id in partition part.
func New(id, part int, cfg *config.Config, stats *metrics.Stats,
	hist *metrics.SharingHistogram) *SM {
	s := &SM{
		ID:         id,
		Part:       part,
		cfg:        cfg,
		stats:      stats,
		hist:       hist,
		l1:         cache.New(cfg.L1Sets(), cfg.L1Ways, cache.WriteThrough),
		l1MSHR:     cache.NewMSHRFile(cfg.L1MSHRs),
		l1TLB:      vm.NewTLB(cfg.L1TLBEntries, 8),
		ctaQueue:   sim.NewQueue[int](0),
		warps:      make([]warpSlot, cfg.WarpsPerSM),
		greedy:     make([]int, cfg.SchedulersPerSM),
		sleepUntil: make([]int64, cfg.SchedulersPerSM),
		order:      make([][]int, cfg.SchedulersPerSM),
		lsu:        sim.NewQueue[*memAccess](16),
		sendQueue:  sim.NewQueue[*sim.MemReq](8),
	}
	for i := range s.greedy {
		s.greedy[i] = -1
	}
	return s
}

// SetStats re-points the SM's counter sinks. The partition-parallel
// engine calls it once at setup to give every partition's SMs a private
// stats shard and sharing-histogram shard (each written by a single
// goroutine, folded deterministically at end of run); the serial engines
// never call it.
func (s *SM) SetStats(stats *metrics.Stats, hist *metrics.SharingHistogram) {
	s.stats = stats
	s.hist = hist
}

// L1 exposes the data cache (for flushes and tests).
func (s *SM) L1() *cache.Cache { return s.l1 }

// L1TLB exposes the TLB (for shootdowns and tests).
func (s *SM) L1TLB() *vm.TLB { return s.l1TLB }

// StartKernel resets per-kernel state and assigns the contiguous CTA id
// block [lo, hi) (produced by the distributed CTA scheduler) to this SM.
// Taking the block as a range rather than a materialized slice keeps the
// per-launch hot path allocation-free.
func (s *SM) StartKernel(l *kir.Launch, lo, hi int) {
	s.launch = l
	for c := lo; c < hi; c++ {
		s.ctaQueue.Push(c)
	}
	s.fillCTAs()
}

// FlushL1 invalidates the L1 (software coherence at kernel boundaries).
func (s *SM) FlushL1() { s.l1.InvalidateAll() }

// fillCTAs activates CTAs from the queue while warp slots and CTA slots
// are available.
func (s *SM) fillCTAs() {
	if s.launch == nil {
		return
	}
	wpc := s.launch.WarpsPerCTA()
	for {
		if s.ctaQueue.Empty() {
			return
		}
		if s.residentCTAs() >= s.cfg.MaxCTAsPerSM {
			return
		}
		if s.cfg.WarpsPerSM-s.liveWarps < wpc {
			return
		}
		ctaID, _ := s.ctaQueue.Pop()
		cs := ctaState{id: ctaID, live: wpc, total: wpc, active: true}
		ctaSlot := -1
		for i := range s.ctas {
			if !s.ctas[i].active {
				ctaSlot = i
				break
			}
		}
		if ctaSlot < 0 {
			s.ctas = append(s.ctas, ctaState{})
			ctaSlot = len(s.ctas) - 1
		}
		for wi := 0; wi < wpc; wi++ {
			slot := s.takeSlot()
			ws := &s.warps[slot]
			*ws = warpSlot{
				w:       kir.NewWarp(s.launch, ctaID, wi),
				valid:   true,
				ctaSlot: ctaSlot,
				age:     s.nextAge,
			}
			for r := range ws.regReadyAt {
				ws.regReadyAt[r] = 0
			}
			s.nextAge++
			sched := slot % s.cfg.SchedulersPerSM
			s.order[sched] = append(s.order[sched], slot)
			cs.slots = append(cs.slots, slot)
			s.liveWarps++
		}
		s.ctas[ctaSlot] = cs
		s.wake(-1)
	}
}

func (s *SM) residentCTAs() int {
	n := 0
	for i := range s.ctas {
		if s.ctas[i].active {
			n++
		}
	}
	return n
}

func (s *SM) takeSlot() int {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return slot
	}
	for i := range s.warps {
		if !s.warps[i].valid {
			return i
		}
	}
	panic("smcore: no free warp slot")
}

// Idle reports whether the SM has finished all assigned work and drained
// all outstanding memory traffic.
func (s *SM) Idle() bool {
	return s.liveWarps == 0 && s.ctaQueue.Empty() && s.lsu.Empty() && s.sendQueue.Empty()
}

// NextWake returns a conservative earliest cycle at which ticking the SM
// could change its state: now+1 while anything can make progress, a
// future cycle when progress waits only on a known timer (scheduler
// sleep, L1 TLB hit latency), and sim.Never when progress requires an
// external event — a memory reply, a finished page walk or a kernel
// launch, all of which reset the relevant caches when they arrive.
func (s *SM) NextWake(now sim.Cycle) sim.Cycle {
	if !s.sendQueue.Empty() {
		return now + 1
	}
	wake := sim.Never
	for i := 0; i < s.lsu.Len(); i++ {
		acc := s.lsu.At(i)
		if acc.nextLine >= len(acc.lines) {
			return now + 1 // finished access awaiting removal
		}
		switch line := &acc.lines[acc.nextLine]; line.state {
		case lineTranslating:
			// Parked on the shared TLB/walker; the vm event heap holds
			// the wake-up and the callback flips the state.
		case lineTranslated:
			if line.readyAt <= now {
				return now + 1
			}
			if line.readyAt < wake {
				wake = line.readyAt
			}
		default: // lineNeedTranslate, lineDone: the LSU acts next cycle
			return now + 1
		}
	}
	for _, su := range s.sleepUntil {
		if su <= now {
			// The scheduler would scan on the next tick. With warps (or
			// CTAs to activate) that scan can issue; without, it only
			// re-parks itself, which changes nothing observable.
			if s.liveWarps > 0 || !s.ctaQueue.Empty() {
				return now + 1
			}
		} else if su < wake {
			wake = su
		}
	}
	return wake
}

// StateSig returns a signature of the SM's observable state: live-warp
// and queue occupancy, per-warp scheduling state and the LSU's in-flight
// accesses. The scheduler sleep caches are included only while work
// remains: with no live warps and no queued CTAs a tick may lazily
// re-park an expired sleep entry, which changes nothing observable — the
// exact case SM.NextWake's hint declares idle.
func (s *SM) StateSig() uint64 {
	h := sim.MixSig(sim.SigSeed, uint64(s.liveWarps))
	h = sim.MixSig(h, uint64(s.ctaQueue.Len()))
	h = sim.MixSig(h, uint64(s.sendQueue.Len()))
	h = sim.MixSig(h, uint64(s.nextAge))
	h = sim.MixSig(h, s.reqSeq)
	if s.liveWarps > 0 || !s.ctaQueue.Empty() {
		for _, su := range s.sleepUntil {
			h = sim.MixSig(h, uint64(su))
		}
	}
	for slot := range s.warps {
		ws := &s.warps[slot]
		if !ws.valid {
			continue
		}
		h = sim.MixSig(h, uint64(slot))
		h = sim.MixSig(h, uint64(ws.nextReady))
		h = sim.MixSig(h, uint64(ws.outstanding))
		h = sim.MixSigBool(h, ws.atBarrier)
	}
	for i := 0; i < s.lsu.Len(); i++ {
		acc := s.lsu.At(i)
		h = sim.MixSig(h, uint64(acc.warp))
		h = sim.MixSig(h, uint64(acc.nextLine))
		for j := acc.nextLine; j < len(acc.lines); j++ {
			h = sim.MixSig(h, uint64(acc.lines[j].state))
			h = sim.MixSig(h, uint64(acc.lines[j].readyAt))
		}
	}
	return h
}

// smFault holds the test-only fault-injection state; the pointer stays
// nil in production runs so Tick pays a single nil check (same pattern
// as the trace probes).
type smFault struct {
	wedgeAt sim.Cycle
}

// InjectWedge wedges the SM from cycle at onward: Tick becomes a no-op
// while the wake hint and Idle keep claiming pending work, modeling a
// core that stops retiring without ever quiescing. Test-only.
func (s *SM) InjectWedge(at sim.Cycle) {
	s.flt = &smFault{wedgeAt: at}
}

// Tick advances the SM by one cycle: drain the send queue, run the LSU,
// then let each scheduler issue one instruction.
func (s *SM) Tick(now sim.Cycle) {
	if s.flt != nil && now >= s.flt.wedgeAt {
		return
	}
	s.drainSendQueue(now)
	s.tickLSU(now)
	for sched := 0; sched < s.cfg.SchedulersPerSM; sched++ {
		s.issue(sched, now)
	}
}

// drainSendQueue pushes pending requests into the interconnect.
func (s *SM) drainSendQueue(now sim.Cycle) {
	for {
		req, ok := s.sendQueue.Peek()
		if !ok {
			return
		}
		if !s.Send(req, now) {
			return
		}
		s.sendQueue.Pop()
	}
}

// issue lets scheduler sched pick one ready warp (greedy, then oldest) and
// execute its next instruction. When nothing can issue, the scheduler
// records the earliest wake-up time and skips its scan until then.
func (s *SM) issue(sched int, now sim.Cycle) {
	if s.sleepUntil[sched] > now {
		return
	}
	if g := s.greedy[sched]; g >= 0 && s.issuable(g, now) {
		s.execWarp(g, now)
		return
	}
	minNext := int64(1) << 62
	for _, slot := range s.order[sched] {
		ws := &s.warps[slot]
		if !ws.valid || ws.w.Exited || ws.atBarrier {
			continue
		}
		if s.issuable(slot, now) {
			// Age order: the first issuable warp is the oldest.
			s.greedy[sched] = slot
			s.execWarp(slot, now)
			return
		}
		// Blocked: issuable refreshed nextReady when the block is a
		// scoreboard wait; structural stalls (LSU full) retry next cycle.
		nr := ws.nextReady
		if nr <= now {
			nr = now + 1
		}
		if nr < minNext {
			minNext = nr
		}
	}
	s.sleepUntil[sched] = minNext
}

// wake clears the scheduler sleep cache for the given warp slot (or all
// schedulers when slot < 0).
func (s *SM) wake(slot int) {
	if slot >= 0 {
		s.sleepUntil[slot%s.cfg.SchedulersPerSM] = 0
		return
	}
	for i := range s.sleepUntil {
		s.sleepUntil[i] = 0
	}
}

// issuable reports whether the warp in slot can issue this cycle: it must
// be live, not at a barrier, its operands ready and, for memory ops, the
// LSU must have room. The nextReady cache skips warps known to be blocked
// until a future cycle (or until an outstanding load returns).
func (s *SM) issuable(slot int, now sim.Cycle) bool {
	ws := &s.warps[slot]
	if ws.nextReady > now {
		return false
	}
	if !ws.valid || ws.w.Exited || ws.atBarrier {
		return false
	}
	in := ws.w.Current()
	if in == nil {
		return false
	}
	var blockedUntil int64
	for need := in.NeedMask; need != 0; need &= need - 1 {
		r := bits.TrailingZeros32(need)
		if t := ws.regReadyAt[r]; t > blockedUntil {
			blockedUntil = t
		}
	}
	if blockedUntil > now {
		// Cache the wake time; completeLine resets it when a pending
		// load resolves a register early.
		ws.nextReady = blockedUntil
		return false
	}
	if in.Op.IsMem() && s.lsu.Full() {
		return false
	}
	return true
}

// execWarp executes one instruction of the warp in slot.
func (s *SM) execWarp(slot int, now sim.Cycle) {
	ws := &s.warps[slot]
	res := ws.w.Exec(&s.scratch)
	s.stats.Instructions++
	s.stats.ThreadInstructions += int64(bits.OnesCount32(ws.w.ActiveMask))

	switch res.Kind {
	case kir.StepCompute:
		if res.DstReg >= 0 {
			at := now + res.Latency
			if ws.regReadyAt[res.DstReg] < at {
				ws.regReadyAt[res.DstReg] = at
			}
		}
	case kir.StepMem:
		s.enqueueMem(slot, res, now)
	case kir.StepBarrier:
		s.arriveBarrier(slot)
	case kir.StepExit:
		s.retireWarp(slot)
	}
}

// enqueueMem coalesces the scratch MemInfo into unique lines and queues
// the access in the LSU.
func (s *SM) enqueueMem(slot int, res kir.StepInfo, now sim.Cycle) {
	ws := &s.warps[slot]
	m := &s.scratch
	acc := &memAccess{
		warp:   slot,
		store:  m.Store,
		atomic: m.Atomic,
		ro:     m.RO,
		dstReg: res.DstReg,
	}
	// The target buffer's writability feeds the fault path (page
	// replication never clones writable pages).
	acc.writable = !s.launch.Kernel.Buffers[m.Buf].ReadOnly

	// Coalesce: collect distinct line addresses over active lanes.
	// Lanes usually touch few distinct lines; linear dedup is cheap.
	for l := 0; l < kir.WarpSize; l++ {
		if m.Mask&(1<<uint(l)) == 0 {
			continue
		}
		la := m.Addrs[l] &^ uint64(sim.LineSize-1)
		found := false
		for i := range acc.lines {
			if acc.lines[i].vaddr == la {
				found = true
				break
			}
		}
		if !found {
			acc.lines = append(acc.lines, lineReq{vaddr: la})
		}
	}
	if len(acc.lines) == 0 {
		return
	}
	if res.DstReg >= 0 {
		// The destination becomes ready only when every line returns.
		ws.regReadyAt[res.DstReg] = pendingForever
		ws.regPending[res.DstReg] += int16(len(acc.lines))
	}
	// Outstanding work is counted here, not at L1-access time: a warp
	// slot must not recycle while the LSU or send queue still hold its
	// accesses.
	ws.outstanding += len(acc.lines)
	s.lsu.Push(acc)
}

// tickLSU processes up to LSUOpsPerCycle line operations per cycle:
// translation, L1 lookup, MSHR allocation and request creation. Accesses
// whose next line is waiting on the shared TLB or a page fault are parked
// in place and younger accesses proceed past them — translation misses
// must not serialize independent warps (real GPU MMUs sustain many
// concurrent translations), only structural stalls (MSHR or send queue
// full) stop the pipeline.
func (s *SM) tickLSU(now sim.Cycle) {
	ops := 0
	for i := 0; ops < LSUOpsPerCycle && i < s.lsu.Len(); {
		acc := s.lsu.At(i)
		if acc.nextLine >= len(acc.lines) {
			s.lsu.RemoveAt(i)
			continue
		}
		line := &acc.lines[acc.nextLine]
		switch line.state {
		case lineTranslating:
			i++ // parked on translation: let younger accesses proceed
		case lineNeedTranslate:
			if !s.translate(acc, line, now) {
				i++ // TLB ports saturated or page mid-migration
				continue
			}
			if line.state == lineTranslating {
				i++ // walk in flight: park
				continue
			}
			// L1 TLB hit: with a 1-cycle TLB the cache access proceeds
			// this cycle; longer L1TLBLatency parks the line.
			if lat := s.cfg.L1TLBLatency; lat > 1 {
				line.readyAt = now + lat - 1
				i++
				continue
			}
			fallthrough
		case lineTranslated:
			if line.readyAt > now {
				i++ // waiting out the L1 TLB hit latency
				continue
			}
			if !s.accessL1(acc, line, now) {
				return // MSHR or send queue full: structural stall
			}
			line.state = lineDone
			acc.nextLine++
			ops++
			if acc.nextLine >= len(acc.lines) {
				s.lsu.RemoveAt(i)
			}
		case lineDone:
			acc.nextLine++
		}
	}
}

// translate resolves the line's physical address. It returns false when
// the access could make no progress this cycle.
func (s *SM) translate(acc *memAccess, line *lineReq, now sim.Cycle) bool {
	vpn := line.vaddr >> s.pageShift()
	s.stats.TLBAccesses++
	if s.l1TLB.Lookup(vpn, now) {
		if !s.finishTranslate(line, vpn, now) {
			return false // page busy (migration in flight)
		}
		return true
	}
	s.stats.TLBMisses++
	if s.hist != nil {
		s.hist.Touch(vpn, s.ID)
	}
	lineRef := line
	accepted := s.VMRequest(s.Part, vpn, acc.writable, now, func() {
		s.l1TLB.Insert(vpn, now)
		lineRef.state = lineTranslated
		// The physical frame is resolved when the LSU next processes the
		// line, so a migration that lands in between stays coherent.
	})
	if !accepted {
		return false
	}
	line.state = lineTranslating
	return true
}

// finishTranslate fills line.paddr from the driver's current mapping.
func (s *SM) finishTranslate(line *lineReq, vpn uint64, now sim.Cycle) bool {
	ppn, busy, ok := s.PageLookup(vpn, now)
	if busy {
		return false // page mid-migration: stall
	}
	if !ok {
		// Mapped concurrently via fault path; the walk callback will
		// re-mark the line. Treat as no progress.
		return false
	}
	line.paddr = ppn<<s.pageShift() | (line.vaddr & (s.cfg.PageSize - 1))
	line.state = lineTranslated
	return true
}

func (s *SM) pageShift() uint {
	sh := uint(0)
	for p := s.cfg.PageSize; p > 1; p >>= 1 {
		sh++
	}
	return sh
}

// accessL1 performs the L1 lookup for a translated line and creates the
// downstream request on a miss. It returns false if it could not complete
// this cycle (MSHR or send queue full).
func (s *SM) accessL1(acc *memAccess, line *lineReq, now sim.Cycle) bool {
	if line.paddr == 0 {
		vpn := line.vaddr >> s.pageShift()
		if !s.finishTranslate(line, vpn, now) {
			return false
		}
	}
	ws := &s.warps[acc.warp]
	if acc.store {
		// Write-through, write-no-allocate: invalidate any stale copy
		// and forward the line downstream.
		if s.sendQueue.Full() {
			return false
		}
		s.l1.Access(line.paddr, true, int64(now))
		s.stats.L1Accesses++
		s.sendQueue.Push(s.newReq(acc, line, now))
		return true
	}
	if acc.atomic {
		// Atomics bypass the L1 and execute at the home LLC slice.
		if s.sendQueue.Full() {
			return false
		}
		s.sendQueue.Push(s.newReq(acc, line, now))
		return true
	}
	// Load.
	s.stats.L1Accesses++
	if s.l1.Access(line.paddr, false, int64(now)) {
		s.stats.L1Hits++
		ws.outstanding--
		// The register becomes ready after the configured L1 hit
		// latency (completeLine credits it at now+1, so offset by
		// L1Latency-1; the 1-cycle default is the pre-existing timing).
		s.completeLine(acc.warp, acc.dstReg, now+s.cfg.L1Latency-1)
		return true
	}
	la := s.l1.LineAddr(line.paddr)
	if _, merged, ok := s.l1MSHR.Allocate(la, s.newReq(acc, line, now), now); !ok {
		s.stats.L1Accesses-- // retried next cycle: don't double count
		return false         // MSHR full
	} else if merged {
		s.stats.L1Misses++
		return true // rides behind the primary miss
	}
	if s.sendQueue.Full() {
		// Roll back: the primary must actually go out.
		s.l1MSHR.Release(la)
		s.stats.L1Accesses--
		return false
	}
	s.stats.L1Misses++
	entry, _ := s.l1MSHR.Lookup(la)
	s.sendQueue.Push(entry.Primary)
	return true
}

// newReq builds the network request for a line.
func (s *SM) newReq(acc *memAccess, line *lineReq, now sim.Cycle) *sim.MemReq {
	kind := sim.Load
	if acc.store {
		kind = sim.Store
	} else if acc.atomic {
		kind = sim.Atomic
	}
	dst := int8(-1)
	if !acc.store {
		dst = acc.dstReg
	}
	s.reqSeq++
	return &sim.MemReq{
		ID:           uint64(s.ID+1)<<40 | s.reqSeq,
		Kind:         kind,
		Addr:         s.l1.LineAddr(line.paddr),
		VAddr:        line.vaddr,
		Size:         sim.LineSize,
		ReadOnly:     acc.ro,
		SM:           s.ID,
		Warp:         acc.warp,
		DstReg:       dst,
		ReplicaSlice: -1,
		Issue:        now,
	}
}

// completeLine credits one returned (or L1-hit) line toward the warp's
// destination register.
func (s *SM) completeLine(slot int, dstReg int8, now sim.Cycle) {
	ws := &s.warps[slot]
	if dstReg >= 0 {
		ws.regPending[dstReg]--
		if ws.regPending[dstReg] <= 0 {
			ws.regPending[dstReg] = 0
			ws.regReadyAt[dstReg] = now + 1
		}
		ws.nextReady = 0 // wake the scheduler's blocked-warp cache
		s.wake(slot)
	}
	s.maybeRecycle(slot)
}

// AcceptReply handles a data reply (load/atomic) or store acknowledgement
// arriving from the interconnect.
func (s *SM) AcceptReply(req *sim.MemReq, now sim.Cycle) {
	s.stats.MemLatencySum += int64(now - req.Issue)
	s.stats.MemLatencyCount++
	if req.Kind == sim.Store {
		s.warps[req.Warp].outstanding--
		if s.warps[req.Warp].outstanding < 0 {
			panic(fmt.Sprintf("SM%d warp %d negative outstanding on store id=%d addr=%#x", s.ID, req.Warp, req.ID, req.Addr))
		}
		s.maybeRecycle(req.Warp)
		return
	}
	s.stats.Replies++
	if req.Kind == sim.Load {
		la := s.l1.LineAddr(req.Addr)
		if entry, ok := s.l1MSHR.Release(la); ok {
			s.l1.Insert(la, false, false, int64(now))
			// Complete the primary and every merged waiter.
			s.finishLoad(entry.Primary, now)
			for _, wr := range entry.Waiters {
				s.finishLoad(wr, now)
			}
			return
		}
		// No MSHR entry (e.g. replay after flush): complete just this one.
		s.finishLoad(req, now)
		return
	}
	// Atomic: completes exactly one request, no L1 fill.
	s.finishLoad(req, now)
}

func (s *SM) finishLoad(req *sim.MemReq, now sim.Cycle) {
	s.warps[req.Warp].outstanding--
	if s.warps[req.Warp].outstanding < 0 {
		panic(fmt.Sprintf("SM%d warp %d negative outstanding on load id=%d addr=%#x merged=%v", s.ID, req.Warp, req.ID, req.Addr, req.MergedBehind))
	}
	s.completeLine(req.Warp, req.DstReg, now)
}

// maybeRecycle frees an exited warp's slot once its traffic drained, and
// retires its CTA when all sibling warps are gone.
func (s *SM) maybeRecycle(slot int) {
	ws := &s.warps[slot]
	if !ws.valid || !ws.w.Exited || ws.outstanding != 0 {
		return
	}
	ws.valid = false
	sched := slot % s.cfg.SchedulersPerSM
	for i, sl := range s.order[sched] {
		if sl == slot {
			s.order[sched] = append(s.order[sched][:i], s.order[sched][i+1:]...)
			break
		}
	}
	s.freeSlots = append(s.freeSlots, slot)
	cs := &s.ctas[ws.ctaSlot]
	cs.live--
	s.liveWarps--
	if cs.live == 0 {
		cs.active = false
		s.fillCTAs()
	}
}

// arriveBarrier registers the warp at its CTA barrier and releases the
// barrier when every participating (non-exited) warp of the CTA has
// arrived.
func (s *SM) arriveBarrier(slot int) {
	ws := &s.warps[slot]
	cs := &s.ctas[ws.ctaSlot]
	ws.atBarrier = true
	cs.arrived++
	if cs.arrived >= s.liveAtBarrierDenominator(cs) {
		s.releaseBarrier(cs)
	}
}

func (s *SM) releaseBarrier(cs *ctaState) {
	for _, sl := range cs.slots {
		if s.warps[sl].valid && s.warps[sl].atBarrier {
			s.warps[sl].atBarrier = false
		}
	}
	cs.arrived = 0
	s.wake(-1)
}

// retireWarp marks the warp exited; the slot recycles when its memory
// traffic drains. An exiting warp may release a barrier its siblings wait
// on.
func (s *SM) retireWarp(slot int) {
	ws := &s.warps[slot]
	cs := &s.ctas[ws.ctaSlot]
	// A warp that exits while siblings wait at a barrier no longer
	// participates: re-check release.
	if cs.arrived > 0 && cs.arrived >= s.liveAtBarrierDenominator(cs) {
		s.releaseBarrier(cs)
	}
	s.maybeRecycle(slot)
}

// liveAtBarrierDenominator counts warps of the CTA that still participate
// in barriers (valid and not exited).
func (s *SM) liveAtBarrierDenominator(cs *ctaState) int {
	n := 0
	for _, sl := range cs.slots {
		if s.warps[sl].valid && !s.warps[sl].w.Exited {
			n++
		}
	}
	return n
}

// DebugState summarizes live warps and queues for stall diagnosis.
func (s *SM) DebugState() string {
	live, bar, out := 0, 0, 0
	pc := -1
	for i := range s.warps {
		ws := &s.warps[i]
		if !ws.valid {
			continue
		}
		live++
		out += ws.outstanding
		if ws.atBarrier {
			bar++
		}
		if !ws.w.Exited && pc < 0 {
			pc = ws.w.PC
		}
	}
	return fmt.Sprintf("live=%d bar=%d outstanding=%d lsu=%d send=%d ctaQ=%d firstPC=%d",
		live, bar, out, s.lsu.Len(), s.sendQueue.Len(), s.ctaQueue.Len(), pc)
}

// L1MSHRStalls returns how many line operations stalled on a full L1 MSHR
// file.
func (s *SM) L1MSHRStalls() int64 { return s.l1MSHR.StallsFull }
