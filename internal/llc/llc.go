// Package llc implements the NUBA LLC slice microarchitecture of Figure 5:
// a Local Memory Request (LMR) queue fed by the partition's point-to-point
// links, a Remote Memory Request (RMR) queue fed by the inter-partition
// NoC, a round-robin arbiter that issues one request per cycle into the
// tag/data pipeline, an MSHR file, and the attachment to the partition's
// memory controller. The same slice model (with different wiring) serves
// the memory-side and SM-side UBA baselines.
//
// Replication (Section 5) reuses the slice unchanged: a request for a
// remote home line that MDR chose to replicate arrives with ReplicaSlice
// set to this slice; a hit serves it locally, a miss forwards it to the
// home slice over the NoC and the returning line is installed as a
// replica.
package llc

import (
	"fmt"
	"github.com/nuba-gpu/nuba/internal/cache"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// outcomeKind classifies what happens when a request leaves the tag
// pipeline.
type outcomeKind uint8

const (
	outReply    outcomeKind = iota // data ready: reply toward the SM
	outToMem                       // LLC miss: issue to the memory controller
	outForward                     // replica miss: forward to the home slice
	outStoreAck                    // store committed at the LLC
)

type completion struct {
	ready sim.Cycle
	kind  outcomeKind
	req   *sim.MemReq
}

// Slice is one LLC slice.
type Slice struct {
	ID   int
	Part int

	cfg   *config.Config
	stats *metrics.Stats

	tags *cache.Cache
	mshr *cache.MSHRFile

	lmr *sim.Queue[*sim.MemReq]
	rmr *sim.Queue[*sim.MemReq]
	// rrNextRemote implements the Figure 5 round-robin arbiter between
	// the LMR and RMR queues.
	rrNextRemote bool

	pipe   *sim.Queue[completion]
	outbox *sim.Queue[completion] // completions awaiting downstream space

	// Wiring installed by the core.
	//
	// SendReply carries data (or a replica-path reply) toward the SM or
	// the replica slice; SendMiss issues a fill or writeback to the
	// memory controller; SendForward routes a replica miss to the home
	// slice over the NoC; StoreDone signals a committed store so the SM
	// can retire it (modeled without wire traffic, see DESIGN.md).
	SendReply   func(req *sim.MemReq, now sim.Cycle) bool
	SendMiss    func(req *sim.MemReq, now sim.Cycle) bool
	SendForward func(req *sim.MemReq, now sim.Cycle) bool
	StoreDone   func(req *sim.MemReq, now sim.Cycle)

	// Invalidations counts coherence invalidations applied (SM-side UBA).
	Invalidations int64

	// flt is the nil-gated fault-injection hook (never set outside
	// tests; see InjectStall and InjectSlow).
	flt *sliceFault
}

// sliceFault holds the test-only fault-injection state; nil in
// production runs so Tick pays a single nil check.
type sliceFault struct {
	stallFrom  sim.Cycle
	stallUntil sim.Cycle // 0 = forever
	period     sim.Cycle // >0: tick only every period-th cycle from stallFrom
}

// New returns slice id in partition part.
func New(id, part int, cfg *config.Config, stats *metrics.Stats) *Slice {
	sets := cfg.LLCSets()
	return &Slice{
		ID:    id,
		Part:  part,
		cfg:   cfg,
		stats: stats,
		tags:  cache.New(sets, cfg.LLCWays, cache.WriteBack),
		mshr:  cache.NewMSHRFile(cfg.LLCMSHRs),
		// The LMR/RMR queues are elastic: a bounded queue here would let
		// a blocked request stall replies sharing the same physical
		// network and deadlock the protocol. Real crossbars avoid that
		// with virtual channels and credits; the elastic queue models
		// the same guarantee (requests always sink at the slice) while
		// the MSHR file still bounds the misses a slice can have in
		// flight, so queueing delay under congestion is preserved.
		lmr:    sim.NewQueue[*sim.MemReq](0),
		rmr:    sim.NewQueue[*sim.MemReq](0),
		pipe:   sim.NewQueue[completion](0),
		outbox: sim.NewQueue[completion](0),
	}
}

// SetStats re-points the slice's counter sink. The partition-parallel
// engine calls it once at setup to give every partition's slices a
// private stats shard (written by a single goroutine, folded
// deterministically at end of run); the serial engines never call it.
func (s *Slice) SetStats(stats *metrics.Stats) { s.stats = stats }

// Tags exposes the tag array (flushes, tests, occupancy probes).
func (s *Slice) Tags() *cache.Cache { return s.tags }

// QueueDepths returns the instantaneous LMR and RMR queue lengths — the
// Figure 5 queue-occupancy probe the tracing layer samples at epoch
// boundaries.
func (s *Slice) QueueDepths() (lmr, rmr int) { return s.lmr.Len(), s.rmr.Len() }

// EnqueueLocal offers a request to the LMR queue.
func (s *Slice) EnqueueLocal(req *sim.MemReq) bool { return s.lmr.Push(req) }

// EnqueueRemote offers a request to the RMR queue.
func (s *Slice) EnqueueRemote(req *sim.MemReq) bool { return s.rmr.Push(req) }

// CanAcceptLocal reports whether the LMR queue has room (always true for
// the elastic queue; kept for call-site symmetry).
func (s *Slice) CanAcceptLocal() bool { return !s.lmr.Full() }

// CanAcceptRemote reports whether the RMR queue has room (always true for
// the elastic queue; kept for call-site symmetry).
func (s *Slice) CanAcceptRemote() bool { return !s.rmr.Full() }

// Pending reports whether the slice still holds work.
func (s *Slice) Pending() bool {
	return !s.lmr.Empty() || !s.rmr.Empty() || !s.pipe.Empty() ||
		!s.outbox.Empty() || s.mshr.Len() > 0
}

// NextEvent returns the earliest cycle at which the slice could make
// progress on its own: the next cycle while requests are queued or
// completions await delivery, the pipeline head's retirement otherwise.
// sim.Never means the slice is drained or only waiting on external fills
// (MSHR entries), which re-activate it through AcceptFill.
func (s *Slice) NextEvent(now sim.Cycle) sim.Cycle {
	if !s.lmr.Empty() || !s.rmr.Empty() || !s.outbox.Empty() {
		return now + 1
	}
	if c, ok := s.pipe.Peek(); ok {
		// pipe is FIFO with a fixed tag latency, so the head's ready
		// cycle is the minimum over the whole pipeline.
		if c.ready <= now {
			return now + 1
		}
		return c.ready
	}
	return sim.Never
}

// StateSig returns a signature of the slice's observable state: queue
// depths, the round-robin arbiter position, every in-flight pipeline
// and outbox completion (ready cycle and kind) and the outstanding MSHR
// count. Counters are excluded.
func (s *Slice) StateSig() uint64 {
	h := sim.MixSig(sim.SigSeed, uint64(s.lmr.Len()))
	h = sim.MixSig(h, uint64(s.rmr.Len()))
	h = sim.MixSigBool(h, s.rrNextRemote)
	for i := 0; i < s.pipe.Len(); i++ {
		c := s.pipe.At(i)
		h = sim.MixSig(h, uint64(c.ready))
		h = sim.MixSig(h, uint64(c.kind))
	}
	for i := 0; i < s.outbox.Len(); i++ {
		c := s.outbox.At(i)
		h = sim.MixSig(h, uint64(c.ready))
		h = sim.MixSig(h, uint64(c.kind))
	}
	h = sim.MixSig(h, uint64(s.mshr.Len()))
	return h
}

// Flush invalidates the whole slice (kernel-boundary software coherence),
// sending writebacks for dirty lines straight to the memory controller
// queue via SendMiss; lines that cannot be queued are retried by the
// caller draining the outbox.
func (s *Slice) Flush(now sim.Cycle) {
	for _, line := range s.tags.InvalidateAll() {
		wb := &sim.MemReq{Kind: sim.Store, Addr: line, Size: sim.LineSize, SM: -1, Slice: s.ID, ReplicaSlice: -1}
		s.outbox.Push(completion{ready: now, kind: outToMem, req: wb})
	}
}

// DropReplicas invalidates replica lines (MDR turning off, or kernel
// boundary) and returns the count.
func (s *Slice) DropReplicas() int { return s.tags.InvalidateReplicas() }

// InjectStall freezes the slice from cycle from until cycle until
// (until 0 = forever): Tick becomes a no-op while NextEvent keeps
// claiming pending work, modeling a stuck queue arbiter. Test-only.
func (s *Slice) InjectStall(from, until sim.Cycle) {
	s.flt = &sliceFault{stallFrom: from, stallUntil: until}
}

// InjectSlow degrades the slice from cycle from onward: it ticks only
// every period-th cycle, modeling a slow-but-live component. A correct
// watchdog must NOT flag this (progress still happens). Test-only.
func (s *Slice) InjectSlow(from, period sim.Cycle) {
	s.flt = &sliceFault{stallFrom: from, period: period}
}

// Tick advances the slice one cycle: deliver finished completions, then
// arbitrate one request into the tag pipeline.
func (s *Slice) Tick(now sim.Cycle) {
	if s.flt != nil && now >= s.flt.stallFrom {
		if s.flt.period > 0 {
			if (now-s.flt.stallFrom)%s.flt.period != 0 {
				return
			}
		} else if s.flt.stallUntil == 0 || now < s.flt.stallUntil {
			return
		}
	}
	s.deliver(now)
	s.retirePipe(now)
	s.arbitrate(now)
}

// deliver drains the outbox in order; a send failure blocks the head
// (back-pressure).
func (s *Slice) deliver(now sim.Cycle) {
	for {
		c, ok := s.outbox.Peek()
		if !ok || c.ready > now {
			return
		}
		var sent bool
		switch c.kind {
		case outReply:
			sent = s.SendReply(c.req, now)
		case outToMem:
			sent = s.SendMiss(c.req, now)
		case outForward:
			sent = s.SendForward(c.req, now)
		case outStoreAck:
			s.StoreDone(c.req, now)
			sent = true
		}
		if !sent {
			return
		}
		s.outbox.Pop()
	}
}

// retirePipe moves completions whose tag/data latency elapsed into the
// outbox.
func (s *Slice) retirePipe(now sim.Cycle) {
	for {
		c, ok := s.pipe.Peek()
		if !ok || c.ready > now {
			return
		}
		s.pipe.Pop()
		s.outbox.Push(c)
	}
}

// arbitrate pops one request per cycle, alternating LMR/RMR when both
// hold requests (Figure 5's round-robin selector).
func (s *Slice) arbitrate(now sim.Cycle) {
	var q *sim.Queue[*sim.MemReq]
	switch {
	case s.lmr.Empty() && s.rmr.Empty():
		return
	case s.lmr.Empty():
		q = s.rmr
	case s.rmr.Empty():
		q = s.lmr
	case s.rrNextRemote:
		q = s.rmr
	default:
		q = s.lmr
	}
	req, _ := q.Peek()
	if !s.process(req, now) {
		return // stalled (MSHR full); leave at head and retry
	}
	q.Pop()
	if q == s.lmr {
		s.rrNextRemote = true
	} else {
		s.rrNextRemote = false
	}
}

// process runs one request through the tag array. It returns false when
// the request cannot proceed this cycle.
func (s *Slice) process(req *sim.MemReq, now sim.Cycle) bool {
	// Coherence invalidation (SM-side UBA): drop the line, no reply.
	if req.Inval {
		s.tags.Invalidate(req.Addr)
		s.Invalidations++
		s.stats.CoherenceInvalidations++
		return true
	}

	done := now + s.cfg.LLCLatency
	isReplicaPath := req.ReplicaSlice == s.ID && req.Slice != s.ID

	switch req.Kind {
	case sim.Store:
		if req.SM < 0 {
			// Writeback from an L1/flush path or another slice: commit.
			s.stats.LLCAccesses++
			victim, wb := s.tags.Insert(req.Addr, true, false, int64(now))
			if wb {
				s.pushWriteback(victim, done)
			}
			return true
		}
		s.stats.LLCAccesses++
		victim, wb := s.tags.Insert(req.Addr, true, false, int64(now))
		if wb {
			s.pushWriteback(victim, done)
		}
		s.pipe.Push(completion{ready: done, kind: outStoreAck, req: req})
		return true

	case sim.Load, sim.Atomic:
		s.stats.LLCAccesses++
		hit := s.tags.Access(req.Addr, false, int64(now))
		if hit {
			s.stats.LLCHits++
			if req.Kind == sim.Atomic {
				// The raster-op unit updates the line in place.
				s.tags.Insert(req.Addr, true, false, int64(now))
			}
			if isReplicaPath {
				req.Replicated = true
			}
			s.pipe.Push(completion{ready: done, kind: outReply, req: req})
			return true
		}
		s.stats.LLCMisses++
		if _, merged, ok := s.mshr.Allocate(s.tags.LineAddr(req.Addr), req, now); !ok {
			s.stats.LLCAccesses-- // retried next cycle; don't double count
			s.stats.LLCMisses--
			return false
		} else if merged {
			return true
		}
		if isReplicaPath {
			s.pipe.Push(completion{ready: done, kind: outForward, req: req})
		} else {
			s.pipe.Push(completion{ready: done, kind: outToMem, req: req})
		}
		return true
	}
	return true
}

func (s *Slice) pushWriteback(victim uint64, at sim.Cycle) {
	wb := &sim.MemReq{Kind: sim.Store, Addr: victim, Size: sim.LineSize, SM: -1, Slice: s.ID, ReplicaSlice: -1}
	s.pipe.Push(completion{ready: at, kind: outToMem, req: wb})
}

// AcceptFill handles data returning from the memory controller (home
// path) for an outstanding miss: install the line and reply to the
// primary and all merged waiters.
func (s *Slice) AcceptFill(req *sim.MemReq, now sim.Cycle) {
	line := s.tags.LineAddr(req.Addr)
	entry, ok := s.mshr.Release(line)
	if !ok {
		// Fill without an entry (flush raced): still answer the requester.
		s.outbox.Push(completion{ready: now, kind: outReply, req: req})
		return
	}
	dirty := entry.Primary.Kind == sim.Atomic
	for _, r := range entry.Waiters {
		if r.Kind == sim.Atomic {
			dirty = true
		}
	}
	victim, wb := s.tags.Insert(line, dirty, false, int64(now))
	if wb {
		s.pushWriteback(victim, now)
	}
	s.outbox.Push(completion{ready: now, kind: outReply, req: entry.Primary})
	for _, r := range entry.Waiters {
		s.outbox.Push(completion{ready: now, kind: outReply, req: r})
	}
}

// AcceptReplicaFill handles a reply returning over the NoC from the home
// slice for a forwarded replica miss: install the line as a replica and
// reply locally to the primary and merged waiters.
func (s *Slice) AcceptReplicaFill(req *sim.MemReq, now sim.Cycle) {
	line := s.tags.LineAddr(req.Addr)
	entry, ok := s.mshr.Release(line)
	if !ok {
		s.outbox.Push(completion{ready: now, kind: outReply, req: req})
		return
	}
	victim, wb := s.tags.Insert(line, false, true, int64(now))
	if wb {
		s.pushWriteback(victim, now)
	}
	entry.Primary.Replicated = true
	s.outbox.Push(completion{ready: now, kind: outReply, req: entry.Primary})
	for _, r := range entry.Waiters {
		r.Replicated = true
		s.outbox.Push(completion{ready: now, kind: outReply, req: r})
	}
}

// InvalidateLine applies a coherence invalidation immediately (used by
// the SM-side UBA write path when modeled without queueing).
func (s *Slice) InvalidateLine(addr uint64) bool {
	found, _ := s.tags.Invalidate(addr)
	if found {
		s.Invalidations++
	}
	return found
}

// HitRate returns the tag-array hit rate since the last reset.
func (s *Slice) HitRate() float64 { return s.tags.HitRate() }

// DebugState summarizes queue occupancy for stall diagnosis.
func (s *Slice) DebugState() string {
	return fmt.Sprintf("lmr=%d rmr=%d pipe=%d outbox=%d mshr=%d",
		s.lmr.Len(), s.rmr.Len(), s.pipe.Len(), s.outbox.Len(), s.mshr.Len())
}

// MSHRStalls returns how many cycles the slice stalled on a full MSHR
// file.
func (s *Slice) MSHRStalls() int64 { return s.mshr.StallsFull }
