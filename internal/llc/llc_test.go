package llc

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// harness wires a slice to in-memory sinks.
type harness struct {
	s        *Slice
	replies  []*sim.MemReq
	misses   []*sim.MemReq
	forwards []*sim.MemReq
	acks     []*sim.MemReq
	blockMem bool
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	cfg := config.Baseline()
	st := &metrics.Stats{}
	h := &harness{s: New(2, 1, &cfg, st)}
	h.s.SendReply = func(r *sim.MemReq, _ sim.Cycle) bool { h.replies = append(h.replies, r); return true }
	h.s.SendMiss = func(r *sim.MemReq, _ sim.Cycle) bool {
		if h.blockMem {
			return false
		}
		h.misses = append(h.misses, r)
		return true
	}
	h.s.SendForward = func(r *sim.MemReq, _ sim.Cycle) bool { h.forwards = append(h.forwards, r); return true }
	h.s.StoreDone = func(r *sim.MemReq, _ sim.Cycle) { h.acks = append(h.acks, r) }
	return h
}

func (h *harness) run(from, to sim.Cycle) {
	for now := from; now <= to; now++ {
		h.s.Tick(now)
	}
}

func load(id uint64, addr uint64, sm int) *sim.MemReq {
	return &sim.MemReq{ID: id, Kind: sim.Load, Addr: addr, SM: sm, Slice: 2, ReplicaSlice: -1}
}

func TestLoadMissGoesToMemoryThenReplies(t *testing.T) {
	h := newHarness(t)
	r := load(1, 0x1000, 0)
	h.s.EnqueueLocal(r)
	h.run(1, 200)
	if len(h.misses) != 1 || h.misses[0] != r {
		t.Fatalf("miss not forwarded: %d", len(h.misses))
	}
	if len(h.replies) != 0 {
		t.Fatal("premature reply")
	}
	h.s.AcceptFill(r, 200)
	h.run(201, 205)
	if len(h.replies) != 1 {
		t.Fatal("fill produced no reply")
	}
	// Second access to the same line now hits.
	r2 := load(2, 0x1000, 1)
	h.s.EnqueueLocal(r2)
	h.run(206, 400)
	if len(h.misses) != 1 {
		t.Fatal("hit went to memory")
	}
	if len(h.replies) != 2 {
		t.Fatal("hit produced no reply")
	}
}

func TestLLCLatencyRespected(t *testing.T) {
	h := newHarness(t)
	cfgLat := sim.Cycle(120)
	r := load(1, 0x40, 0)
	h.s.EnqueueLocal(r)
	var missAt sim.Cycle
	h.s.SendMiss = func(q *sim.MemReq, now sim.Cycle) bool { missAt = now; h.misses = append(h.misses, q); return true }
	h.run(1, 300)
	if missAt < cfgLat {
		t.Fatalf("miss left the slice at %d, before the %d-cycle pipeline", missAt, cfgLat)
	}
}

func TestMSHRMergesSecondMiss(t *testing.T) {
	h := newHarness(t)
	a, b := load(1, 0x2000, 0), load(2, 0x2000, 1)
	h.s.EnqueueLocal(a)
	h.s.EnqueueRemote(b)
	h.run(1, 200)
	if len(h.misses) != 1 {
		t.Fatalf("expected single memory fetch, got %d", len(h.misses))
	}
	h.s.AcceptFill(a, 200)
	h.run(201, 210)
	if len(h.replies) != 2 {
		t.Fatalf("both requesters should be answered, got %d", len(h.replies))
	}
}

func TestArbiterAlternatesQueues(t *testing.T) {
	h := newHarness(t)
	// Fill both queues; the round-robin arbiter must alternate.
	for i := 0; i < 4; i++ {
		h.s.EnqueueLocal(load(uint64(10+i), uint64(0x100000+i*128), 0))
		h.s.EnqueueRemote(load(uint64(20+i), uint64(0x200000+i*128), 1))
	}
	h.run(1, 400)
	if len(h.misses) != 8 {
		t.Fatalf("processed %d", len(h.misses))
	}
	// The first eight misses alternate local/remote by construction:
	// ids 10,20,11,21,...
	for i := 0; i < 4; i++ {
		if h.misses[2*i].ID != uint64(10+i) || h.misses[2*i+1].ID != uint64(20+i) {
			t.Fatalf("arbitration order broken: %d %d", h.misses[2*i].ID, h.misses[2*i+1].ID)
		}
	}
}

func TestStoreCommitsAndAcks(t *testing.T) {
	h := newHarness(t)
	st := &sim.MemReq{ID: 1, Kind: sim.Store, Addr: 0x3000, SM: 3, Slice: 2, ReplicaSlice: -1}
	h.s.EnqueueLocal(st)
	h.run(1, 200)
	if len(h.acks) != 1 {
		t.Fatal("store not acked")
	}
	if len(h.misses) != 0 {
		t.Fatal("write-validate store should not fetch")
	}
	// The stored line is now present (dirty): a load hits.
	r := load(2, 0x3000, 0)
	h.s.EnqueueLocal(r)
	h.run(201, 400)
	if len(h.misses) != 0 || len(h.replies) != 1 {
		t.Fatal("load after store did not hit")
	}
}

func TestAtomicDirtiesLine(t *testing.T) {
	h := newHarness(t)
	at := &sim.MemReq{ID: 1, Kind: sim.Atomic, Addr: 0x5000, SM: 0, Slice: 2, ReplicaSlice: -1}
	h.s.EnqueueLocal(at)
	h.run(1, 200)
	if len(h.misses) != 1 {
		t.Fatal("atomic miss should fetch")
	}
	h.s.AcceptFill(at, 200)
	h.run(201, 210)
	if len(h.replies) != 1 {
		t.Fatal("atomic not replied")
	}
	// Flush must write the dirtied line back.
	h.s.Flush(211)
	h.run(212, 220)
	found := false
	for _, m := range h.misses[1:] {
		if m.Kind == sim.Store && m.Addr == 0x5000 && m.SM < 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("dirty atomic line not written back on flush")
	}
}

func TestInvalDropsLine(t *testing.T) {
	h := newHarness(t)
	st := &sim.MemReq{ID: 1, Kind: sim.Store, Addr: 0x7000, SM: 0, Slice: 2, ReplicaSlice: -1}
	h.s.EnqueueLocal(st)
	h.run(1, 200)
	inv := &sim.MemReq{Kind: sim.Store, Addr: 0x7000, SM: -1, Slice: 2, ReplicaSlice: -1, Inval: true}
	h.s.EnqueueRemote(inv)
	h.run(201, 330)
	// A load now misses (line dropped without writeback reply).
	r := load(3, 0x7000, 0)
	h.s.EnqueueLocal(r)
	h.run(331, 500)
	if len(h.misses) == 0 {
		t.Fatal("line survived invalidation")
	}
	if h.s.Invalidations != 1 {
		t.Fatalf("inval count %d", h.s.Invalidations)
	}
}

func TestReplicaPathForwardAndFill(t *testing.T) {
	h := newHarness(t)
	// Request for a remote home line (slice 9) replicated at this slice (2).
	r := &sim.MemReq{ID: 1, Kind: sim.Load, Addr: 0x9000, SM: 0, Slice: 9, ReplicaSlice: 2, ReadOnly: true}
	h.s.EnqueueLocal(r)
	h.run(1, 200)
	if len(h.forwards) != 1 {
		t.Fatalf("replica miss not forwarded: %d", len(h.forwards))
	}
	if len(h.misses) != 0 {
		t.Fatal("replica miss went to local memory")
	}
	h.s.AcceptReplicaFill(r, 200)
	h.run(201, 210)
	if len(h.replies) != 1 || !r.Replicated {
		t.Fatal("replica fill not replied/marked")
	}
	// Next access hits the replica locally.
	r2 := &sim.MemReq{ID: 2, Kind: sim.Load, Addr: 0x9000, SM: 1, Slice: 9, ReplicaSlice: 2, ReadOnly: true}
	h.s.EnqueueLocal(r2)
	h.run(211, 400)
	if len(h.forwards) != 1 {
		t.Fatal("replica hit forwarded again")
	}
	if !r2.Replicated {
		t.Fatal("replica hit not marked")
	}
	// DropReplicas removes it.
	if n := h.s.DropReplicas(); n != 1 {
		t.Fatalf("dropped %d replicas", n)
	}
}

func TestBackpressureRetries(t *testing.T) {
	h := newHarness(t)
	h.blockMem = true
	r := load(1, 0xA000, 0)
	h.s.EnqueueLocal(r)
	h.run(1, 300)
	if len(h.misses) != 0 {
		t.Fatal("miss escaped despite blocked channel")
	}
	if !h.s.Pending() {
		t.Fatal("slice dropped the request")
	}
	h.blockMem = false
	h.run(301, 310)
	if len(h.misses) != 1 {
		t.Fatal("miss not retried after unblock")
	}
}
