package mdr

import (
	"math"
	"testing"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

func TestRawBandwidths(t *testing.T) {
	cfg := config.Baseline()
	bw := RawBandwidths(&cfg)
	// 64 slices * 128 B = 8192 B/cycle LLC.
	if bw.LLC != 8192 {
		t.Fatalf("LLC %v", bw.LLC)
	}
	// 32 channels * 64 B / 4 = 512 B/cycle memory (720 GB/s).
	if bw.Mem != 512 {
		t.Fatalf("Mem %v", bw.Mem)
	}
	// 64 ports * 16 B = 1024 B/cycle NoC (1.4 TB/s).
	if bw.NoC != 1024 {
		t.Fatalf("NoC %v", bw.NoC)
	}
}

func TestModelEquationsByHand(t *testing.T) {
	bw := Bandwidths{LLC: 8192, Mem: 512, NoC: 1024}
	// Hand evaluation, no replication, hit=0.5, 60% local:
	// llcMiss = min(0.5*8192, 512) = 512
	// local = 0.5*8192 + 512 = 4608
	// remote = min(1024, 4608) = 1024
	// total = 0.6*4608 + 0.4*1024 = 2764.8 + 409.6 = 3174.4
	got := ModelNoRep(bw, 0.5, 0.6, 0.4)
	if math.Abs(got-3174.4) > 1e-9 {
		t.Fatalf("NoRep = %v", got)
	}
	// Full replication, hit=0.4, 60% local:
	// remote = min(1024, 512) = 512
	// memEff = 0.6*512 + 0.4*512 = 512
	// total = 0.4*8192 + min(0.6*8192, 512) = 3276.8 + 512 = 3788.8
	got = ModelFullRep(bw, 0.4, 0.6, 0.4)
	if math.Abs(got-3788.8) > 1e-9 {
		t.Fatalf("FullRep = %v", got)
	}
}

func TestModelPrefersReplicationForSmallSharedSet(t *testing.T) {
	bw := Bandwidths{LLC: 8192, Mem: 512, NoC: 1024}
	// Mostly remote read-only traffic with unchanged hit rates:
	// replication should win.
	noRep := ModelNoRep(bw, 0.8, 0.1, 0.9)
	fullRep := ModelFullRep(bw, 0.8, 0.9, 0.1)
	if fullRep <= noRep {
		t.Fatalf("replication should win: %v <= %v", fullRep, noRep)
	}
	// Replication that craters the hit rate should lose.
	fullRepThrash := ModelFullRep(bw, 0.05, 0.9, 0.1)
	if fullRepThrash >= noRep {
		t.Fatalf("thrashing replication should lose: %v >= %v", fullRepThrash, noRep)
	}
}

func mkReq(addr uint64, ro bool, kind sim.ReqKind) *sim.MemReq {
	return &sim.MemReq{Addr: addr, ReadOnly: ro, Kind: kind}
}

func TestProfilerShadowsAndFractions(t *testing.T) {
	cfg := config.Baseline()
	p := NewProfiler(&cfg, 0)
	// Feed 100 local loads to slice 0, 100 remote read-only loads whose
	// replica would land on slice 0, and 50 remote read-write loads.
	for i := 0; i < 100; i++ {
		p.Observe(mkReq(uint64(i)*128, false, sim.Load), 0, true, 0, 0)
	}
	for i := 0; i < 100; i++ {
		p.Observe(mkReq(uint64(4096+i)*128, true, sim.Load), 9, false, 0, 0)
	}
	for i := 0; i < 50; i++ {
		p.Observe(mkReq(uint64(8192+i)*128, false, sim.Load), 9, false, 0, 0)
	}
	snap := p.EndEpoch()
	if snap.Loads != 250 {
		t.Fatalf("loads %d", snap.Loads)
	}
	if math.Abs(snap.FracLocalNoRep-100.0/250) > 1e-9 {
		t.Fatalf("fracLocalNoRep %v", snap.FracLocalNoRep)
	}
	if math.Abs(snap.FracLocalFullRep-200.0/250) > 1e-9 {
		t.Fatalf("fracLocalFullRep %v", snap.FracLocalFullRep)
	}
	// Counters reset after the epoch.
	if s2 := p.EndEpoch(); s2.Loads != 0 {
		t.Fatalf("epoch reset failed: %d", s2.Loads)
	}
}

func TestControllerFlipsOffUnderThrash(t *testing.T) {
	cfg := config.Baseline()
	cfg.MDREpoch = 100
	cfg.MDREvalDelay = 10
	st := &metrics.Stats{}
	p := NewProfiler(&cfg, 0)
	c := NewController(&cfg, st, p)
	if !c.Replicating() {
		t.Fatal("controller should start replicating")
	}
	// Epoch of pure remote-RO traffic that would thrash under
	// replication: hammer many distinct lines into the sampled sets so
	// the full-rep shadow hit rate collapses while no-rep stays decent.
	now := sim.Cycle(0)
	for round := 0; round < 40; round++ {
		// Local stream with reuse (hits in the no-rep shadow).
		for i := 0; i < 64; i++ {
			p.Observe(mkReq(uint64(i%8)*128*64, false, sim.Load), 0, true, 0, now)
		}
		// Remote read-only stream with no reuse (kills full-rep shadow).
		for i := 0; i < 512; i++ {
			addr := uint64(round*512+i) * 128 * 48 // spread over sets
			p.Observe(mkReq(addr, true, sim.Load), 9, false, 0, now)
		}
	}
	for now = 1; now < 400; now++ {
		c.Tick(now)
	}
	if c.Decisions == 0 {
		t.Fatal("no epoch evaluation happened")
	}
	if c.Replicating() {
		t.Fatal("controller kept replicating despite thrash profile")
	}
}

func TestControllerKeepsReplicatingWhenBeneficial(t *testing.T) {
	cfg := config.Baseline()
	cfg.MDREpoch = 100
	cfg.MDREvalDelay = 10
	st := &metrics.Stats{}
	p := NewProfiler(&cfg, 0)
	c := NewController(&cfg, st, p)
	// Remote read-only traffic with a small, hot working set: both
	// shadows hit well, replication turns remote into local.
	for round := 0; round < 50; round++ {
		for i := 0; i < 128; i++ {
			addr := uint64(i%16) * 128 * 48
			p.Observe(mkReq(addr, true, sim.Load), 9, false, 0, 0)
		}
	}
	for now := sim.Cycle(1); now < 400; now++ {
		c.Tick(now)
	}
	if !c.Replicating() {
		t.Fatal("controller turned off beneficial replication")
	}
	if st.MDRDecisions == 0 {
		t.Fatal("stats not updated")
	}
}

func TestControllerEvalDelay(t *testing.T) {
	cfg := config.Baseline()
	cfg.MDREpoch = 100
	cfg.MDREvalDelay = 50
	p := NewProfiler(&cfg, 0)
	c := NewController(&cfg, &metrics.Stats{}, p)
	// Thrash profile as above, condensed.
	for i := 0; i < 4096; i++ {
		p.Observe(mkReq(uint64(i)*128*48, true, sim.Load), 9, false, 0, 0)
	}
	for i := 0; i < 64; i++ {
		p.Observe(mkReq(uint64(i%4)*128*48, false, sim.Load), 0, true, 0, 0)
	}
	for now := sim.Cycle(1); now <= 100; now++ {
		c.Tick(now)
	}
	if !c.Replicating() {
		t.Fatal("decision applied before the 116-cycle evaluation window")
	}
	for now := sim.Cycle(101); now <= 160; now++ {
		c.Tick(now)
	}
	if c.Replicating() {
		t.Fatal("decision not applied after the evaluation delay")
	}
}
