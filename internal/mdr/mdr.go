// Package mdr implements Model-Driven Replication (Section 5): the
// hardware mechanism that decides, once per fixed-length epoch, whether
// read-only shared cache lines should be replicated into requesters'
// local LLC slices.
//
// Profiling uses dynamic set sampling: shadow tag arrays covering 8 sets
// of one designated LLC slice simulate the *opposite* replication mode,
// giving the LLC hit rate "as if" the other policy were active; request
// classification counters give the local/remote fractions under both
// modes. At each epoch boundary the controller evaluates the paper's two
// closed-form effective-bandwidth models and adopts the configuration with
// the higher estimate, with the 116-cycle fixed-point evaluation delay
// before the decision takes effect.
package mdr

import (
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// shadowTags is a tiny tag-only cache covering the sampled sets. The
// paper's hardware budget is 8 sets x 16 ways x 24-bit tags = 384 bytes.
type shadowTags struct {
	ways     int
	sets     int
	tags     []uint64
	valid    []bool
	lastUse  []int64
	accesses int64
	hits     int64
}

func newShadowTags(sets, ways int) *shadowTags {
	n := sets * ways
	return &shadowTags{
		ways: ways, sets: sets,
		tags: make([]uint64, n), valid: make([]bool, n), lastUse: make([]int64, n),
	}
}

// access simulates a lookup+fill of line in sampled set si.
func (t *shadowTags) access(si int, line uint64, now int64) {
	t.accesses++
	base := si * t.ways
	vi := base
	for i := base; i < base+t.ways; i++ {
		if t.valid[i] && t.tags[i] == line {
			t.hits++
			t.lastUse[i] = now
			return
		}
		if !t.valid[i] {
			vi = i
		} else if t.valid[vi] && t.lastUse[i] < t.lastUse[vi] {
			vi = i
		}
	}
	t.tags[vi], t.valid[vi], t.lastUse[vi] = line, true, now
}

func (t *shadowTags) hitRate() (float64, bool) {
	if t.accesses < 32 {
		return 0, false // too few samples to trust
	}
	return float64(t.hits) / float64(t.accesses), true
}

func (t *shadowTags) reset() {
	t.accesses, t.hits = 0, 0
	// Tags persist across epochs like real cache contents would.
}

// Profiler collects one epoch of profiling input for the model.
type Profiler struct {
	cfg         *config.Config
	targetSlice int
	llcSets     int
	sampleEvery int // a set is sampled if set % sampleEvery == 0

	shadowNoRep   *shadowTags
	shadowFullRep *shadowTags

	// Request-classification counters (all L1-miss loads; stores and
	// atomics are never replicated and excluded from the fractions, as
	// the model reasons about read bandwidth).
	localHome   int64
	remoteRO    int64
	remoteOther int64
}

// NewProfiler returns a profiler sampling MDRSampleSets sets of the given
// slice.
func NewProfiler(cfg *config.Config, targetSlice int) *Profiler {
	sets := cfg.LLCSets()
	every := sets / cfg.MDRSampleSets
	if every < 1 {
		every = 1
	}
	n := (sets + every - 1) / every
	return &Profiler{
		cfg:           cfg,
		targetSlice:   targetSlice,
		llcSets:       sets,
		sampleEvery:   every,
		shadowNoRep:   newShadowTags(n, cfg.LLCWays),
		shadowFullRep: newShadowTags(n, cfg.LLCWays),
	}
}

// TargetSlice returns the profiled slice.
func (p *Profiler) TargetSlice() int { return p.targetSlice }

// sampleIndex returns the shadow set index for addr, or -1 if the
// address's set is not sampled.
func (p *Profiler) sampleIndex(addr uint64) int {
	set := int((addr >> 7) % uint64(p.llcSets))
	if set%p.sampleEvery != 0 {
		return -1
	}
	return set / p.sampleEvery
}

// Observe classifies one L1-miss request. home is its home slice, local
// reports whether the home lies in the requester's partition, and
// replicaWouldBe is the local slice that would hold its replica under
// full replication.
func (p *Profiler) Observe(req *sim.MemReq, home int, local bool, replicaWouldBe int, now sim.Cycle) {
	if req.Kind == sim.Load {
		switch {
		case local:
			p.localHome++
		case req.ReadOnly:
			p.remoteRO++
		default:
			p.remoteOther++
		}
	}
	line := req.Addr >> 7
	// No-replication shadow: the slice sees exactly its home requests.
	if home == p.targetSlice {
		if si := p.sampleIndex(req.Addr); si >= 0 {
			p.shadowNoRep.access(si, line, int64(now))
			// Under full replication the slice also keeps serving local
			// requests and remote non-read-only ones.
			if local || !req.ReadOnly || req.Kind != sim.Load {
				p.shadowFullRep.access(si, line, int64(now))
			}
		}
		return
	}
	// Full-replication shadow additionally sees read-only remote-home
	// loads from this slice's partition, installed as replicas.
	if !local && req.ReadOnly && req.Kind == sim.Load && replicaWouldBe == p.targetSlice {
		if si := p.sampleIndex(req.Addr); si >= 0 {
			p.shadowFullRep.access(si, line, int64(now))
		}
	}
}

// Snapshot captures the epoch's model inputs and resets the counters.
type Snapshot struct {
	HitNoRep          float64
	HitFullRep        float64
	HaveSamples       bool
	FracLocalNoRep    float64
	FracRemoteNoRep   float64
	FracLocalFullRep  float64
	FracRemoteFullRep float64
	Loads             int64
}

// EndEpoch returns the epoch snapshot and resets per-epoch counters.
func (p *Profiler) EndEpoch() Snapshot {
	total := p.localHome + p.remoteRO + p.remoteOther
	s := Snapshot{Loads: total}
	hitNR, okNR := p.shadowNoRep.hitRate()
	hitFR, okFR := p.shadowFullRep.hitRate()
	s.HitNoRep, s.HitFullRep = hitNR, hitFR
	s.HaveSamples = okNR && okFR && total > 0
	if total > 0 {
		ft := float64(total)
		s.FracLocalNoRep = float64(p.localHome) / ft
		s.FracRemoteNoRep = float64(p.remoteRO+p.remoteOther) / ft
		s.FracLocalFullRep = float64(p.localHome+p.remoteRO) / ft
		s.FracRemoteFullRep = float64(p.remoteOther) / ft
	}
	p.localHome, p.remoteRO, p.remoteOther = 0, 0, 0
	p.shadowNoRep.reset()
	p.shadowFullRep.reset()
	return s
}

// Bandwidths are the microarchitectural raw bandwidth constants of the
// model, in bytes per core cycle.
type Bandwidths struct {
	LLC float64 // aggregate LLC tag/data bandwidth
	Mem float64 // aggregate DRAM bandwidth
	NoC float64 // aggregate inter-partition NoC bandwidth
}

// RawBandwidths derives the model constants from the configuration.
func RawBandwidths(cfg *config.Config) Bandwidths {
	return Bandwidths{
		LLC: float64(cfg.NumLLCSlices) * sim.LineSize,
		Mem: float64(cfg.NumChannels) * float64(cfg.MemBusBytesPerMemCycle) / float64(cfg.MemClockDiv),
		NoC: float64(cfg.NumLLCSlices) * float64(cfg.NoCPortBytes()),
	}
}

// ModelNoRep evaluates the paper's no-replication effective bandwidth:
//
//	BW_NoRep     = Frac_local*BW_local + Frac_remote*BW_remote
//	BW_local     = LLC_hit*BW_LLC + BW_LLC_miss
//	BW_LLC_miss  = min(LLC_miss*BW_LLC, BW_MEM)
//	BW_remote    = min(BW_NoC, LLC_hit*BW_LLC + BW_LLC_miss)
func ModelNoRep(bw Bandwidths, hit, fracLocal, fracRemote float64) float64 {
	miss := 1 - hit
	llcMissBW := minf(miss*bw.LLC, bw.Mem)
	local := hit*bw.LLC + llcMissBW
	remote := minf(bw.NoC, hit*bw.LLC+llcMissBW)
	return fracLocal*local + fracRemote*remote
}

// ModelFullRep evaluates the full-replication effective bandwidth:
//
//	BW_FullRep       = LLC_hit*BW_LLC + BW_LLC_miss
//	BW_LLC_miss      = min(LLC_miss*BW_LLC, BW_local/remote)
//	BW_local/remote  = Frac_local*BW_MEM + Frac_remote*BW_remote
//	BW_remote        = min(BW_NoC, BW_MEM)
func ModelFullRep(bw Bandwidths, hit, fracLocal, fracRemote float64) float64 {
	miss := 1 - hit
	remote := minf(bw.NoC, bw.Mem)
	memEff := fracLocal*bw.Mem + fracRemote*remote
	return hit*bw.LLC + minf(miss*bw.LLC, memEff)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Controller owns the epoch loop and the current replication decision.
type Controller struct {
	cfg   *config.Config
	stats *metrics.Stats
	prof  *Profiler
	bw    Bandwidths

	replicate    bool
	nextDecision bool
	applyAt      sim.Cycle
	epochEnd     sim.Cycle

	// Decisions/EpochsReplicating mirror the metrics counters for tests.
	Decisions         int64
	EpochsReplicating int64

	// OnDecision, when non-nil, is invoked at every epoch boundary with
	// the evaluation the controller just performed — the tracing layer's
	// probe. The callback must not mutate controller state.
	OnDecision func(DecisionEvent)
}

// DecisionEvent describes one epoch-boundary model evaluation.
type DecisionEvent struct {
	Now         sim.Cycle
	Epoch       int64 // decision ordinal (1-based)
	Replicating bool  // mode that ruled the ending epoch
	Next        bool  // decision for the next epoch
	Held        bool  // too few profile samples: prior decision kept

	// PredNoRep/PredFullRep are the two model outputs in bytes per core
	// cycle and ApplyAt the cycle Next takes effect (after the 116-cycle
	// evaluation delay); all three are meaningful only when !Held.
	PredNoRep   float64
	PredFullRep float64
	ApplyAt     sim.Cycle
}

// NewController returns the MDR controller. The initial decision is to
// replicate: the first epoch has no profile yet and optimistically
// replicating matches the paper's on-demand warm-up behaviour.
func NewController(cfg *config.Config, stats *metrics.Stats, prof *Profiler) *Controller {
	return &Controller{
		cfg:       cfg,
		stats:     stats,
		prof:      prof,
		bw:        RawBandwidths(cfg),
		replicate: true,
		applyAt:   -1,
		epochEnd:  cfg.MDREpoch,
	}
}

// Replicating reports whether read-only shared lines are currently being
// replicated (the routing layer consults this per request).
func (c *Controller) Replicating() bool { return c.replicate }

// NextEvent returns the next cycle at which Tick acts: the pending
// decision's apply cycle when an evaluation is in flight, the epoch
// boundary otherwise. Tick is a pure no-op on every earlier cycle.
func (c *Controller) NextEvent() sim.Cycle {
	if c.applyAt >= 0 && c.applyAt < c.epochEnd {
		return c.applyAt
	}
	return c.epochEnd
}

// StateSig returns a signature of the controller's observable state:
// the replication mode, the pending decision and its apply time, the
// epoch boundary and the decision counters.
func (c *Controller) StateSig() uint64 {
	h := sim.MixSigBool(sim.SigSeed, c.replicate)
	h = sim.MixSigBool(h, c.nextDecision)
	h = sim.MixSig(h, uint64(c.applyAt))
	h = sim.MixSig(h, uint64(c.epochEnd))
	h = sim.MixSig(h, uint64(c.Decisions))
	h = sim.MixSig(h, uint64(c.EpochsReplicating))
	return h
}

// Tick advances the controller: applies a pending decision once the
// 116-cycle evaluation completes, and evaluates the model at epoch
// boundaries.
func (c *Controller) Tick(now sim.Cycle) {
	if c.applyAt >= 0 && now >= c.applyAt {
		c.replicate = c.nextDecision
		c.applyAt = -1
	}
	if now < c.epochEnd {
		return
	}
	c.epochEnd = now + c.cfg.MDREpoch
	snap := c.prof.EndEpoch()
	c.Decisions++
	c.stats.MDRDecisions++
	if c.replicate {
		c.EpochsReplicating++
		c.stats.MDREpochsReplicating++
	}
	ev := DecisionEvent{Now: now, Epoch: c.Decisions, Replicating: c.replicate}
	if !snap.HaveSamples {
		// Not enough profile data: keep the current decision.
		ev.Held = true
		ev.Next = c.replicate
		if c.OnDecision != nil {
			c.OnDecision(ev)
		}
		return
	}
	noRep := ModelNoRep(c.bw, snap.HitNoRep, snap.FracLocalNoRep, snap.FracRemoteNoRep)
	fullRep := ModelFullRep(c.bw, snap.HitFullRep, snap.FracLocalFullRep, snap.FracRemoteFullRep)
	c.nextDecision = fullRep > noRep
	c.applyAt = now + c.cfg.MDREvalDelay
	ev.Next, ev.PredNoRep, ev.PredFullRep, ev.ApplyAt = c.nextDecision, noRep, fullRep, c.applyAt
	if c.OnDecision != nil {
		c.OnDecision(ev)
	}
}
