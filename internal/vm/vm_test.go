package vm

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/driver"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(4, 2) // 2 sets, 2 ways
	// VPNs 0 and 2 share set 0.
	tlb.Insert(0, 1)
	tlb.Insert(2, 2)
	tlb.Lookup(0, 3) // refresh 0
	tlb.Insert(4, 4) // evicts 2 (LRU)
	if !tlb.Lookup(0, 5) || tlb.Lookup(2, 6) || !tlb.Lookup(4, 7) {
		t.Fatal("LRU eviction wrong")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8, 2)
	tlb.Insert(5, 0)
	tlb.Flush(5)
	if tlb.Lookup(5, 1) {
		t.Fatal("flushed entry still present")
	}
	tlb.Insert(6, 2)
	tlb.Insert(7, 3)
	tlb.FlushAll()
	if tlb.Lookup(6, 4) || tlb.Lookup(7, 5) {
		t.Fatal("FlushAll incomplete")
	}
	if tlb.HitRate() != 0 {
		t.Fatalf("hit rate %v", tlb.HitRate())
	}
}

func newSystem(t *testing.T) (*System, *metrics.Stats, *config.Config) {
	t.Helper()
	cfg := config.Baseline()
	cfg.L2TLBLatency = 10
	cfg.PageWalkLatency = 100
	cfg.PageFaultLatency = 1000
	m := addrmap.New(&cfg)
	drv := driver.New(&cfg, m)
	st := &metrics.Stats{}
	return NewSystem(&cfg, drv, st), st, &cfg
}

func TestWalkFaultAndHitLatencies(t *testing.T) {
	s, st, cfg := newSystem(t)
	doneAt := sim.Cycle(-1)
	if !s.Request(0, 42, false, 0, func() { doneAt = -2 }) {
		t.Fatal("request rejected")
	}
	var now sim.Cycle
	for now = 1; now < 3000 && doneAt == -1; now++ {
		s.Tick(now)
		if doneAt == -2 {
			doneAt = now
		}
	}
	// First touch: L2 latency + walk + fault.
	min := cfg.L2TLBLatency + cfg.PageWalkLatency + cfg.PageFaultLatency
	if doneAt < min {
		t.Fatalf("fault completed at %d, expected >= %d", doneAt, min)
	}
	if st.PageFaults != 1 || st.PageWalks != 1 {
		t.Fatalf("faults=%d walks=%d", st.PageFaults, st.PageWalks)
	}
	// Second access: the L2 TLB now hits; completes after ~10 cycles.
	doneAt2 := sim.Cycle(-1)
	start := now
	s.Request(0, 42, false, now, func() { doneAt2 = 0 })
	for ; now < start+100 && doneAt2 != 0; now++ {
		s.Tick(now)
	}
	if doneAt2 != 0 {
		t.Fatal("L2 hit never completed")
	}
	if now-start > cfg.L2TLBLatency+3 {
		t.Fatalf("L2 hit took %d cycles", now-start)
	}
}

func TestWalkMerging(t *testing.T) {
	s, st, _ := newSystem(t)
	fired := 0
	for i := 0; i < 5; i++ {
		// Same cycle: only 2 ports; spread over cycles.
		now := sim.Cycle(i)
		s.Tick(now)
		if !s.Request(0, 77, false, now, func() { fired++ }) {
			t.Fatalf("request %d rejected", i)
		}
	}
	for now := sim.Cycle(5); now < 3000 && fired < 5; now++ {
		s.Tick(now)
	}
	if fired != 5 {
		t.Fatalf("only %d waiters fired", fired)
	}
	if st.PageWalks != 1 || st.PageFaults != 1 {
		t.Fatalf("merging failed: walks=%d faults=%d", st.PageWalks, st.PageFaults)
	}
}

func TestL2PortLimit(t *testing.T) {
	s, _, cfg := newSystem(t)
	accepted := 0
	for i := 0; i < 5; i++ {
		if s.Request(0, uint64(100+i), false, 7, func() {}) {
			accepted++
		}
	}
	if accepted != cfg.L2TLBPorts {
		t.Fatalf("accepted %d, want %d (port limit)", accepted, cfg.L2TLBPorts)
	}
}

func TestWalkerSaturation(t *testing.T) {
	s, st, cfg := newSystem(t)
	cfg.PageWalkers = 2
	fired := 0
	now := sim.Cycle(0)
	for i := 0; i < 6; i++ {
		now++
		s.Tick(now)
		s.Request(0, uint64(200+i), false, now, func() { fired++ })
	}
	for ; now < 20000 && fired < 6; now++ {
		s.Tick(now)
	}
	if fired != 6 {
		t.Fatalf("only %d/6 completed with 2 walkers", fired)
	}
	if st.PageWalks != 6 {
		t.Fatalf("walks=%d", st.PageWalks)
	}
	if s.Pending() {
		t.Fatal("system still pending")
	}
}

func TestShootdown(t *testing.T) {
	s, _, _ := newSystem(t)
	s.L2().Insert(9, 0)
	s.Shootdown(9)
	if s.L2().Lookup(9, 1) {
		t.Fatal("shootdown ineffective")
	}
}

func TestTLBGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad geometry")
		}
	}()
	NewTLB(5, 2) // not a multiple
}
