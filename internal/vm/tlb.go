// Package vm models the GPU's unified-memory address translation: per-SM
// L1 TLBs, a shared multi-ported L2 TLB, a pool of concurrent page-table
// walkers and the fixed 20 us first-touch page-fault penalty, following
// the two-level design of Table 1.
package vm

// TLB is a set-associative translation lookaside buffer with LRU
// replacement. It tracks only virtual page numbers; physical mappings are
// always fetched from the driver so migrations and replica placement stay
// coherent by construction (a TLB shootdown is modeled by flushing the
// VPN, which forces the latency of a re-walk).
type TLB struct {
	sets int
	ways int
	tags []tlbEntry

	Accesses int64
	Hits     int64
}

type tlbEntry struct {
	vpn     uint64
	valid   bool
	lastUse int64
}

// NewTLB returns a TLB with entries total entries and the given
// associativity. entries must be a multiple of ways.
func NewTLB(entries, ways int) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("vm: TLB geometry invalid")
	}
	return &TLB{sets: entries / ways, ways: ways, tags: make([]tlbEntry, entries)}
}

func (t *TLB) set(vpn uint64) []tlbEntry {
	i := int(vpn%uint64(t.sets)) * t.ways
	return t.tags[i : i+t.ways]
}

// Lookup probes for vpn at cycle now, updating LRU state and hit counters.
func (t *TLB) Lookup(vpn uint64, now int64) bool {
	t.Accesses++
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn {
			e.lastUse = now
			t.Hits++
			return true
		}
	}
	return false
}

// Insert fills vpn, evicting the LRU entry of its set if needed.
func (t *TLB) Insert(vpn uint64, now int64) {
	set := t.set(vpn)
	vi := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn {
			e.lastUse = now
			return
		}
		if !e.valid {
			vi = i
			break
		}
		if e.lastUse < set[vi].lastUse {
			vi = i
		}
	}
	set[vi] = tlbEntry{vpn: vpn, valid: true, lastUse: now}
}

// Flush removes vpn if present (TLB shootdown on migration).
func (t *TLB) Flush(vpn uint64) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
		}
	}
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	for i := range t.tags {
		t.tags[i].valid = false
	}
}

// HitRate returns hits per access.
func (t *TLB) HitRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Accesses)
}
