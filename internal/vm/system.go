package vm

import (
	"container/heap"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/driver"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// System is the shared part of the translation hierarchy: the L2 TLB, the
// page-table walker pool and the page-fault path into the driver. Per-SM
// L1 TLBs live in the SM model; on an L1 TLB miss the SM calls Request and
// suspends the warp until the completion callback fires.
type System struct {
	cfg   *config.Config
	drv   *driver.Driver
	stats *metrics.Stats

	l2 *TLB

	// L2 TLB port accounting: at most L2TLBPorts lookups may start per
	// cycle.
	portCycle sim.Cycle
	portsUsed int

	walkersBusy int
	walkQueue   *sim.Queue[*walk]
	walks       map[uint64]*walk // in-flight walks by VPN (merged)

	events   eventHeap
	lastTick sim.Cycle
}

type walk struct {
	vpn      uint64
	homePart int  // partition of the first requester (first-touch home)
	writable bool // whether the faulting access's buffer is writable
	waiters  []func()
	started  bool
}

type event struct {
	ready sim.Cycle
	fire  func()
	walk  *walk // non-nil when the event completes a page walk
	// walkerFreed marks walk-completion events whose walker was already
	// released (fault path).
	walkerFreed bool
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].ready < h[j].ready }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewSystem returns the shared translation system.
func NewSystem(cfg *config.Config, drv *driver.Driver, stats *metrics.Stats) *System {
	return &System{
		cfg:       cfg,
		drv:       drv,
		stats:     stats,
		l2:        NewTLB(cfg.L2TLBEntries, cfg.L2TLBWays),
		walkQueue: sim.NewQueue[*walk](0),
		walks:     make(map[uint64]*walk),
	}
}

// L2 exposes the shared TLB (for shootdowns and tests).
func (s *System) L2() *TLB { return s.l2 }

// portAvailable consumes one L2 TLB port for cycle now if one is free.
func (s *System) portAvailable(now sim.Cycle) bool {
	if s.portCycle != now {
		s.portCycle = now
		s.portsUsed = 0
	}
	if s.portsUsed >= s.cfg.L2TLBPorts {
		return false
	}
	s.portsUsed++
	return true
}

// Request starts a translation for vpn on behalf of an SM in partition
// part whose access targets a buffer with the given writability. done
// fires when the translation completes (the caller then consults the
// driver for the physical frame). Request reports false when the L2 TLB
// ports are saturated this cycle and the SM must retry next cycle.
func (s *System) Request(part int, vpn uint64, writable bool, now sim.Cycle, done func()) bool {
	if !s.portAvailable(now) {
		return false
	}
	s.stats.L2TLBAccesses++
	if s.l2.Lookup(vpn, now) {
		heap.Push(&s.events, event{ready: now + s.cfg.L2TLBLatency, fire: done})
		return true
	}
	s.stats.L2TLBMisses++
	// Merge into an in-flight walk for the same page if one exists.
	if w, ok := s.walks[vpn]; ok {
		w.waiters = append(w.waiters, done)
		return true
	}
	w := &walk{vpn: vpn, homePart: part, writable: writable, waiters: []func(){done}}
	s.walks[vpn] = w
	s.startOrQueueWalk(w, now+s.cfg.L2TLBLatency)
	return true
}

func (s *System) startOrQueueWalk(w *walk, at sim.Cycle) {
	if s.walkersBusy >= s.cfg.PageWalkers {
		s.walkQueue.Push(w)
		return
	}
	s.walkersBusy++
	w.started = true
	s.stats.PageWalks++
	lat := s.cfg.PageWalkLatency
	if _, mapped := s.drv.LookupPending(w.vpn); !mapped {
		// First touch: the walk page-faults and the driver allocates.
		// The walker is released after the walk itself; the fixed fault
		// penalty is a latency charged to the waiting warps, not a
		// walker occupancy — the host driver batches fault servicing
		// (see DESIGN.md), so faults beyond the walk do not serialize
		// on the 64 walkers.
		s.stats.PageFaults++
		s.drv.Allocate(w.vpn, w.homePart, w.writable)
		lat += s.cfg.PageFaultLatency
		heap.Push(&s.events, event{ready: at + s.cfg.PageWalkLatency, fire: s.releaseWalker})
		heap.Push(&s.events, event{ready: at + lat, walk: w, walkerFreed: true})
		return
	}
	heap.Push(&s.events, event{ready: at + lat, walk: w})
}

// releaseWalker frees one walker slot and admits a queued walk.
func (s *System) releaseWalker() {
	s.walkersBusy--
	if next, ok := s.walkQueue.Pop(); ok {
		s.startOrQueueWalk(next, s.lastTick)
	}
}

// Tick fires due events: L2-hit completions and finished walks. Finished
// walks fill the L2 TLB, release their walker (admitting a queued walk)
// and wake all merged waiters.
func (s *System) Tick(now sim.Cycle) {
	s.lastTick = now
	for len(s.events) > 0 && s.events[0].ready <= now {
		e := heap.Pop(&s.events).(event)
		if e.walk == nil {
			e.fire()
			continue
		}
		w := e.walk
		delete(s.walks, w.vpn)
		s.l2.Insert(w.vpn, now)
		if !e.walkerFreed {
			s.releaseWalker()
		}
		for _, f := range w.waiters {
			f()
		}
	}
}

// Pending reports whether translations remain in flight.
func (s *System) Pending() bool {
	return len(s.events) > 0 || len(s.walks) > 0 || !s.walkQueue.Empty()
}

// NextEvent returns the cycle the earliest queued timing event fires, or
// sim.Never when none is scheduled. Every in-flight walk (and every
// queued walk, which a completion event admits) is driven by a heap
// event, so Tick is a no-op on any cycle before this one.
func (s *System) NextEvent() sim.Cycle {
	if len(s.events) == 0 {
		return sim.Never
	}
	return s.events[0].ready
}

// StateSig returns a signature of the translation system's observable
// state: the event heap (length and firing cycles), busy walkers and
// the queued and in-flight walk counts. lastTick is pure time progress
// and excluded.
func (s *System) StateSig() uint64 {
	h := sim.MixSig(sim.SigSeed, uint64(len(s.events)))
	for _, e := range s.events {
		h = sim.MixSig(h, uint64(e.ready))
	}
	h = sim.MixSig(h, uint64(s.walkersBusy))
	h = sim.MixSig(h, uint64(s.walkQueue.Len()))
	h = sim.MixSig(h, uint64(len(s.walks)))
	return h
}

// Shootdown flushes vpn from the L2 TLB (per-SM L1 TLB flushes are the
// core's responsibility since it owns the SMs).
func (s *System) Shootdown(vpn uint64) { s.l2.Flush(vpn) }
