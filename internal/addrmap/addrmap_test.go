package addrmap

import (
	"testing"
	"testing/quick"

	"github.com/nuba-gpu/nuba/internal/config"
)

func mapper(t *testing.T, am config.AddressMapping) *Mapper {
	t.Helper()
	cfg := config.Baseline()
	cfg.AddressMap = am
	return New(&cfg)
}

func TestFixedChannelPreservesDriverChoice(t *testing.T) {
	m := mapper(t, config.FixedChannel)
	for ch := 0; ch < 32; ch++ {
		for seq := uint64(0); seq < 16; seq++ {
			ppn := m.ComposeFrame(seq, ch)
			addr := m.FrameToAddr(ppn) + 512 // arbitrary offset
			if got := m.Channel(addr); got != ch {
				t.Fatalf("frame (seq=%d,ch=%d): Channel=%d", seq, ch, got)
			}
		}
	}
}

func TestComposeFrameUnique(t *testing.T) {
	m := mapper(t, config.FixedChannel)
	seen := make(map[uint64]bool)
	for ch := 0; ch < 32; ch++ {
		for seq := uint64(0); seq < 64; seq++ {
			ppn := m.ComposeFrame(seq, ch)
			if seen[ppn] {
				t.Fatalf("duplicate PPN %d", ppn)
			}
			seen[ppn] = true
		}
	}
}

func TestPAERandomizesChannels(t *testing.T) {
	m := mapper(t, config.PAE)
	counts := make([]int, 32)
	for ppn := uint64(0); ppn < 3200; ppn++ {
		counts[m.Channel(m.FrameToAddr(ppn))]++
	}
	for ch, n := range counts {
		if n < 50 || n > 200 {
			t.Fatalf("PAE channel %d badly skewed: %d/3200", ch, n)
		}
	}
	// And the driver's channel choice is NOT preserved.
	preserved := 0
	for seq := uint64(0); seq < 100; seq++ {
		ppn := m.ComposeFrame(seq, 5)
		if m.Channel(m.FrameToAddr(ppn)) == 5 {
			preserved++
		}
	}
	if preserved > 30 {
		t.Fatalf("PAE preserved the driver channel %d/100 times", preserved)
	}
}

func TestSliceBelongsToChannel(t *testing.T) {
	m := mapper(t, config.FixedChannel)
	f := func(raw uint64) bool {
		addr := raw % (1 << 40)
		slice := m.Slice(addr)
		return m.ChannelOfSlice(slice) == m.Channel(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowLocalityWithinChunk(t *testing.T) {
	m := mapper(t, config.FixedChannel)
	// All lines within one RowBytes chunk share bank and row.
	base := uint64(0x12340000)
	b0, r0 := m.Bank(base), m.Row(base)
	for off := uint64(0); off < RowBytes; off += 128 {
		if m.Bank(base+off) != b0 || m.Row(base+off) != r0 {
			t.Fatalf("chunk broken at offset %d", off)
		}
	}
}

func TestBankDistribution(t *testing.T) {
	m := mapper(t, config.FixedChannel)
	counts := make([]int, 16)
	for i := uint64(0); i < 1600; i++ {
		counts[m.Bank(i*RowBytes)]++
	}
	for b, n := range counts {
		if n < 40 || n > 220 {
			t.Fatalf("bank %d skewed: %d/1600", b, n)
		}
	}
}

func TestPageHelpers(t *testing.T) {
	m := mapper(t, config.FixedChannel)
	if m.PageShift() != 12 {
		t.Fatalf("page shift %d", m.PageShift())
	}
	addr := uint64(0xABCD1234)
	if m.PPN(addr) != addr>>12 {
		t.Fatal("PPN mismatch")
	}
	if m.PageOffset(addr) != addr&0xFFF {
		t.Fatal("offset mismatch")
	}
}

func TestSliceStableWithinRowChunk(t *testing.T) {
	// Lines of the same 1 KB chunk must map to the same slice so their
	// miss stream preserves row locality at the channel.
	m := mapper(t, config.FixedChannel)
	for chunk := uint64(0); chunk < 256; chunk++ {
		base := chunk * RowBytes
		s0 := m.Slice(base)
		for off := uint64(128); off < RowBytes; off += 128 {
			if m.Slice(base+off) != s0 {
				t.Fatalf("slice changed within chunk %d", chunk)
			}
		}
	}
}
