// Package addrmap implements the physical address mapping policies of
// Section 2. The partition-aware fixed-channel map (Figure 2) selects the
// channel bits directly above the page offset and copies them verbatim, so
// the GPU driver controls page placement by choosing the physical frame;
// bank bits are randomized by harvesting entropy from the row bits, as in
// the PAE policy. The full PAE variant additionally randomizes the channel
// bits, which evens out load in UBA GPUs but defeats driver-controlled
// placement in NUBA GPUs.
package addrmap

import (
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// RowBytes is the DRAM row-buffer coverage per bank used for row-hit
// accounting: 1 KB chunks (8 cache lines) of the physical address space
// map to one (bank, row) pair, so streaming accesses enjoy row locality
// while the harvested entropy still spreads chunks across banks.
const RowBytes = 1024

// Mapper translates physical addresses to memory channel, DRAM bank, DRAM
// row and home LLC slice. It is a pure function of the address, shared by
// the L1-side routing logic, the LLC slices and the memory controllers.
type Mapper struct {
	policy           config.AddressMapping
	numChannels      int
	slicesPerChannel int
	banks            int
	pageShift        uint
	pageMask         uint64
}

// New returns a Mapper for the configuration.
func New(cfg *config.Config) *Mapper {
	shift := uint(0)
	for p := cfg.PageSize; p > 1; p >>= 1 {
		shift++
	}
	return &Mapper{
		policy:           cfg.AddressMap,
		numChannels:      cfg.NumChannels,
		slicesPerChannel: cfg.NumLLCSlices / cfg.NumChannels,
		banks:            cfg.BanksPerChan,
		pageShift:        shift,
		pageMask:         cfg.PageSize - 1,
	}
}

// PageShift returns log2 of the page size.
func (m *Mapper) PageShift() uint { return m.pageShift }

// PPN returns the physical page number of paddr.
func (m *Mapper) PPN(paddr uint64) uint64 { return paddr >> m.pageShift }

// Channel returns the memory channel that owns paddr. Under the
// fixed-channel policy the channel bits sit directly above the page offset;
// under PAE they are a hash of the physical page number.
func (m *Mapper) Channel(paddr uint64) int {
	ppn := paddr >> m.pageShift
	if m.policy == config.PAE {
		return int(sim.Mix(ppn) % uint64(m.numChannels))
	}
	return int(ppn % uint64(m.numChannels))
}

// Bank returns the DRAM bank within the channel. Bank bits are always
// randomized by harvesting entropy from the row bits (both policies), at
// RowBytes granularity so row locality survives.
func (m *Mapper) Bank(paddr uint64) int {
	chunk := paddr / RowBytes
	return int(sim.Mix(chunk) % uint64(m.banks))
}

// Row returns a row identifier such that two addresses with equal
// (Channel, Bank, Row) hit the same DRAM row buffer.
func (m *Mapper) Row(paddr uint64) uint64 {
	return (paddr / RowBytes) / uint64(m.banks)
}

// Slice returns the home LLC slice of paddr: the slice group is the
// channel, and the least-significant bank bit(s) select the slice within
// the channel's group (Section 2).
func (m *Mapper) Slice(paddr uint64) int {
	ch := m.Channel(paddr)
	if m.slicesPerChannel == 1 {
		return ch
	}
	return ch*m.slicesPerChannel + m.Bank(paddr)%m.slicesPerChannel
}

// ChannelOfSlice returns the memory channel attached to an LLC slice.
func (m *Mapper) ChannelOfSlice(slice int) int { return slice / m.slicesPerChannel }

// ComposeFrame builds the physical page number for the frameSeq-th frame
// allocated to channel: the channel bits are the low bits of the PPN so
// that the fixed-channel policy preserves the driver's placement decision.
func (m *Mapper) ComposeFrame(frameSeq uint64, channel int) uint64 {
	return frameSeq*uint64(m.numChannels) + uint64(channel)
}

// FrameToAddr returns the base physical address of a physical page number.
func (m *Mapper) FrameToAddr(ppn uint64) uint64 { return ppn << m.pageShift }

// PageOffset returns the offset of paddr within its page.
func (m *Mapper) PageOffset(paddr uint64) uint64 { return paddr & m.pageMask }
