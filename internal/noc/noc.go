// Package noc models the inter-partition interconnect: the paper's
// hierarchical crossbar — e.g. the 64x64 fabric between 64 L1 caches and
// 64 LLC slices, assembled from 16 8x8 sub-crossbars (8 ingress + 8
// egress) with 4-cycle per-stage latency and 16 B links — plus the
// point-to-point links used inside NUBA partitions and between MCM
// modules.
//
// The hierarchy is modeled structurally: input ports are grouped by
// eight, output ports are grouped by eight, and every (ingress group,
// egress group) pair is connected by one middle link. The middle links
// are where a real hierarchical crossbar loses bandwidth under contention
// — the overhead that motivates NUBA. A standard Clos-style internal
// speedup of two keeps the fabric near its nominal bandwidth under
// uniform traffic while preserving the contention loss under bursts.
//
// Requests and replies travel on separate fabrics (the core instantiates
// one Crossbar per direction), matching how real GPU NoCs split request
// and response networks to stay deadlock-free.
package noc

import (
	"github.com/nuba-gpu/nuba/internal/sim"
)

// GroupSize is the radix of the component sub-crossbars.
const GroupSize = 8

// MidSpeedup is the internal bandwidth provision of the middle stage.
const MidSpeedup = 3

// Msg is one network message: a memory request or reply en route to the
// component attached to output port Dst.
type Msg struct {
	Req *sim.MemReq
	// Reply distinguishes replies (data toward the SM) from requests.
	Reply bool
	// Dst is the destination output port.
	Dst int
	// Bytes is the on-wire size.
	Bytes int
	// Inval marks SM-side UBA coherence invalidations.
	Inval bool
}

type inPort struct {
	q        *sim.Queue[Msg]
	nextFree sim.Cycle
	busy     int64
	// bytes and msgs count traffic accepted at this port. Keeping the
	// counters per port (summed on read by Bytes/Messages) lets the
	// partition-parallel engine inject on partition-owned ports from
	// different goroutines without sharing an accumulator.
	bytes int64
	msgs  int64
}

// Crossbar is a hierarchical switch with inPorts input ports and outPorts
// output ports of width bytes/cycle each.
type Crossbar struct {
	width     int
	stageLat  sim.Cycle
	inGroups  int
	outGroups int
	in        []inPort
	// mid[ig*outGroups+og] carries ingress group ig -> egress group og.
	mid []*sim.Link[Msg]
	out []*sim.Link[Msg]

	// flt is the nil-gated fault-injection hook (never set outside
	// tests; see InjectStall).
	flt *xbarFault
}

// xbarFault holds the test-only fault-injection state; nil in
// production runs so Tick pays a single nil check.
type xbarFault struct {
	stallFrom sim.Cycle
}

// NewCrossbar returns a hierarchical crossbar. latency is the end-to-end
// traversal latency (two stages); buffering is per queue in messages.
func NewCrossbar(inPorts, outPorts, width int, latency sim.Cycle, inBuf, outBuf int) *Crossbar {
	if inPorts <= 0 || outPorts <= 0 || width <= 0 {
		panic("noc: ports and width must be positive")
	}
	ig := (inPorts + GroupSize - 1) / GroupSize
	og := (outPorts + GroupSize - 1) / GroupSize
	stageLat := latency / 2
	if stageLat < 1 {
		stageLat = 1
	}
	x := &Crossbar{
		width:     width,
		stageLat:  stageLat,
		inGroups:  ig,
		outGroups: og,
		in:        make([]inPort, inPorts),
		mid:       make([]*sim.Link[Msg], ig*og),
		out:       make([]*sim.Link[Msg], outPorts),
	}
	for i := range x.in {
		x.in[i].q = sim.NewQueue[Msg](inBuf)
	}
	for i := range x.out {
		x.out[i] = sim.NewLink[Msg](stageLat, width, outBuf)
	}
	for i := range x.mid {
		x.mid[i] = sim.NewLink[Msg](stageLat, MidSpeedup*width, outBuf)
	}
	return x
}

// InPorts returns the number of input ports.
func (x *Crossbar) InPorts() int { return len(x.in) }

// OutPorts returns the number of output ports.
func (x *Crossbar) OutPorts() int { return len(x.out) }

// Width returns the per-link width in bytes per cycle.
func (x *Crossbar) Width() int { return x.width }

// CanInject reports whether input port can accept a message at cycle now.
func (x *Crossbar) CanInject(port int, now sim.Cycle) bool {
	p := &x.in[port]
	return p.nextFree <= now && !p.q.Full()
}

// Inject queues m at the given input port, serializing it over the port
// width. It reports whether the message was accepted.
func (x *Crossbar) Inject(port int, now sim.Cycle, m Msg) bool {
	p := &x.in[port]
	if p.nextFree > now || p.q.Full() {
		return false
	}
	ser := sim.Cycle((m.Bytes + x.width - 1) / x.width)
	if ser < 1 {
		ser = 1
	}
	p.nextFree = now + ser
	p.busy += int64(ser)
	p.q.Push(m)
	p.bytes += int64(m.Bytes)
	p.msgs++
	return true
}

// Bytes returns the total payload bytes accepted across all input
// ports.
func (x *Crossbar) Bytes() int64 {
	var t int64
	for i := range x.in {
		t += x.in[i].bytes
	}
	return t
}

// Messages returns the total messages accepted across all input ports.
func (x *Crossbar) Messages() int64 {
	var t int64
	for i := range x.in {
		t += x.in[i].msgs
	}
	return t
}

// InjectStall freezes the crossbar from cycle from onward: Tick becomes
// a no-op while queued messages stay put, modeling a stuck switch
// arbiter. Test-only.
func (x *Crossbar) InjectStall(from sim.Cycle) {
	x.flt = &xbarFault{stallFrom: from}
}

// Tick advances both stages by one cycle.
func (x *Crossbar) Tick(now sim.Cycle) {
	if x.flt != nil && now >= x.flt.stallFrom {
		return
	}
	// Stage 1: move input heads into the middle links.
	for i := range x.in {
		p := &x.in[i]
		m, ok := p.q.Peek()
		if !ok {
			continue
		}
		ig, og := i/GroupSize, m.Dst/GroupSize
		if x.mid[ig*x.outGroups+og].Send(now, m, m.Bytes) {
			p.q.Pop()
		}
	}
	// Stage 2: drain arrived middle-link heads into the egress links.
	for og := 0; og < x.outGroups; og++ {
		for ig := 0; ig < x.inGroups; ig++ {
			link := x.mid[ig*x.outGroups+og]
			for {
				m, ok := link.Peek(now)
				if !ok {
					break
				}
				if !x.out[m.Dst].Send(now, m, m.Bytes) {
					break
				}
				link.Pop(now)
			}
		}
	}
}

// Pop retrieves the next delivered message at output port, if any has
// arrived by cycle now.
func (x *Crossbar) Pop(port int, now sim.Cycle) (Msg, bool) {
	return x.out[port].Pop(now)
}

// Peek inspects the next delivered message at output port without
// consuming it.
func (x *Crossbar) Peek(port int, now sim.Cycle) (Msg, bool) {
	return x.out[port].Peek(now)
}

// Occupancy returns the number of messages buffered at the input stage
// — the congestion probe the tracing layer samples at epoch boundaries.
func (x *Crossbar) Occupancy() int {
	n := 0
	for i := range x.in {
		n += x.in[i].q.Len()
	}
	return n
}

// NextEvent returns the crossbar's wake hint: a crossbar holding any
// message moves it between stages on the very next tick, so the hint
// is now+1 while occupied and sim.Never when empty. This satisfies the
// engine contract (every ticked component exposes a hint the idle-skip
// scan can read; see lint.policy `structs engine-contract`).
func (x *Crossbar) NextEvent(now sim.Cycle) sim.Cycle {
	if x.Pending() {
		return now + 1
	}
	return sim.Never
}

// StateSig returns a signature of the crossbar's observable state: the
// input-queue depths and port-free times plus the middle- and
// egress-link signatures. Traffic counters (Bytes, Messages, busy) are
// accounting, not simulation state, and are excluded.
func (x *Crossbar) StateSig() uint64 {
	h := sim.SigSeed
	for i := range x.in {
		p := &x.in[i]
		h = sim.MixSig(h, uint64(p.q.Len()))
		h = sim.MixSig(h, uint64(p.nextFree))
	}
	for _, l := range x.mid {
		h = sim.MixSig(h, l.StateSig())
	}
	for _, l := range x.out {
		h = sim.MixSig(h, l.StateSig())
	}
	return h
}

// Pending reports whether any message is buffered or in flight.
func (x *Crossbar) Pending() bool {
	for i := range x.in {
		if !x.in[i].q.Empty() {
			return true
		}
	}
	for _, l := range x.out {
		if l.Pending() > 0 {
			return true
		}
	}
	for _, l := range x.mid {
		if l.Pending() > 0 {
			return true
		}
	}
	return false
}

// BusyCycles returns total link-serialization cycles (inputs, middle
// links and egress links), the activity input to the NoC power model.
func (x *Crossbar) BusyCycles() int64 {
	var t int64
	for i := range x.in {
		t += x.in[i].busy
	}
	for _, l := range x.out {
		t += l.BusyCycles
	}
	for _, l := range x.mid {
		t += l.BusyCycles
	}
	return t
}

// StageUtilization returns the average busy fraction of the input ports,
// middle links and output links over elapsed cycles (diagnostics).
func (x *Crossbar) StageUtilization(elapsed sim.Cycle) (in, mid, out float64) {
	var ib, mb, ob int64
	for i := range x.in {
		ib += x.in[i].busy
	}
	for _, l := range x.mid {
		mb += l.BusyCycles
	}
	for _, l := range x.out {
		ob += l.BusyCycles
	}
	if elapsed <= 0 {
		return 0, 0, 0
	}
	e := float64(elapsed)
	return float64(ib) / (e * float64(len(x.in))),
		float64(mb) / (e * float64(len(x.mid)) * MidSpeedup),
		float64(ob) / (e * float64(len(x.out)))
}
