package noc

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/sim"
)

func msg(dst, bytes int) Msg {
	return Msg{Req: &sim.MemReq{}, Dst: dst, Bytes: bytes}
}

func tickAndDrain(x *Crossbar, from, to sim.Cycle, got map[int]int) {
	for now := from; now <= to; now++ {
		x.Tick(now)
		for p := 0; p < x.OutPorts(); p++ {
			for {
				m, ok := x.Pop(p, now)
				if !ok {
					break
				}
				got[p]++
				_ = m
			}
		}
	}
}

func TestDeliveryAcrossGroups(t *testing.T) {
	x := NewCrossbar(64, 64, 16, 8, 8, 8)
	if !x.Inject(0, 0, msg(63, 8)) {
		t.Fatal("inject rejected")
	}
	got := map[int]int{}
	tickAndDrain(x, 0, 50, got)
	if got[63] != 1 {
		t.Fatalf("message not delivered: %v", got)
	}
	if x.Pending() {
		t.Fatal("still pending after delivery")
	}
}

func TestDeliveryWithinGroup(t *testing.T) {
	x := NewCrossbar(64, 64, 16, 8, 8, 8)
	x.Inject(1, 0, msg(2, 8))
	got := map[int]int{}
	tickAndDrain(x, 0, 50, got)
	if got[2] != 1 {
		t.Fatalf("intra-group message lost: %v", got)
	}
}

func TestInjectionSerialization(t *testing.T) {
	x := NewCrossbar(8, 8, 16, 8, 8, 8)
	// A 136 B message occupies the input for 9 cycles.
	if !x.Inject(0, 0, msg(7, 136)) {
		t.Fatal("first inject rejected")
	}
	if x.CanInject(0, 4) {
		t.Fatal("input free too early")
	}
	if !x.CanInject(0, 9) {
		t.Fatal("input not free after serialization")
	}
}

func TestPerFlowOrdering(t *testing.T) {
	x := NewCrossbar(64, 64, 16, 64, 64, 64)
	// Tag messages via the request ID.
	for i := 0; i < 10; i++ {
		m := Msg{Req: &sim.MemReq{ID: uint64(i)}, Dst: 40, Bytes: 8}
		ok := false
		for now := sim.Cycle(i * 10); now < sim.Cycle(i*10+10); now++ {
			if x.Inject(3, now, m) {
				ok = true
				break
			}
			x.Tick(now)
		}
		if !ok {
			t.Fatalf("inject %d failed", i)
		}
	}
	var seen []uint64
	for now := sim.Cycle(0); now < 500; now++ {
		x.Tick(now)
		for {
			m, ok := x.Pop(40, now)
			if !ok {
				break
			}
			seen = append(seen, m.Req.ID)
		}
	}
	if len(seen) != 10 {
		t.Fatalf("delivered %d/10", len(seen))
	}
	for i, id := range seen {
		if id != uint64(i) {
			t.Fatalf("reordered: %v", seen)
		}
	}
}

func TestBandwidthConservation(t *testing.T) {
	// Uniform random-ish traffic cannot exceed aggregate port bandwidth.
	x := NewCrossbar(64, 64, 16, 8, 8, 8)
	delivered := 0
	const cycles = 2000
	for now := sim.Cycle(0); now < cycles; now++ {
		for p := 0; p < 64; p++ {
			dst := (p*13 + int(now)*7) % 64
			x.Inject(p, now, msg(dst, 136))
		}
		x.Tick(now)
		for p := 0; p < 64; p++ {
			for {
				if _, ok := x.Pop(p, now); !ok {
					break
				}
				delivered++
			}
		}
	}
	maxBytes := int64(cycles) * 64 * 16
	if int64(delivered)*136 > maxBytes {
		t.Fatalf("over-delivered: %d messages", delivered)
	}
	// And it should achieve a decent fraction of nominal bandwidth.
	if float64(delivered*136) < 0.4*float64(maxBytes) {
		t.Fatalf("under-delivered badly: %d messages (%.0f%% of nominal)",
			delivered, 100*float64(delivered*136)/float64(maxBytes))
	}
}

func TestHotspotContention(t *testing.T) {
	// All inputs target one output: delivery rate collapses to one
	// output port's bandwidth.
	x := NewCrossbar(64, 64, 16, 8, 8, 8)
	delivered := 0
	const cycles = 1000
	for now := sim.Cycle(0); now < cycles; now++ {
		for p := 0; p < 64; p++ {
			x.Inject(p, now, msg(5, 136))
		}
		x.Tick(now)
		for {
			if _, ok := x.Pop(5, now); !ok {
				break
			}
			delivered++
		}
	}
	// One 16 B port can carry at most cycles*16/136 messages.
	if limit := cycles * 16 / 136; delivered > limit+2 {
		t.Fatalf("hotspot over-delivered: %d > %d", delivered, limit)
	}
}

func TestAsymmetricPorts(t *testing.T) {
	x := NewCrossbar(32, 64, 16, 8, 8, 8)
	if x.InPorts() != 32 || x.OutPorts() != 64 {
		t.Fatal("port counts wrong")
	}
	x.Inject(31, 0, msg(63, 8))
	got := map[int]int{}
	tickAndDrain(x, 0, 50, got)
	if got[63] != 1 {
		t.Fatal("asymmetric delivery failed")
	}
}

func TestBusyCyclesAccumulate(t *testing.T) {
	x := NewCrossbar(16, 16, 16, 8, 8, 8)
	x.Inject(0, 0, msg(15, 136))
	got := map[int]int{}
	tickAndDrain(x, 0, 100, got)
	if x.BusyCycles() == 0 || x.Bytes() != 136 || x.Messages() != 1 {
		t.Fatalf("stats: busy=%d bytes=%d msgs=%d", x.BusyCycles(), x.Bytes(), x.Messages())
	}
	in, mid, out := x.StageUtilization(100)
	if in <= 0 || mid <= 0 || out <= 0 {
		t.Fatalf("stage utilization %v %v %v", in, mid, out)
	}
}
