package experiments

import (
	"fmt"
	"time"

	"github.com/nuba-gpu/nuba"
)

// This file is the engine's progress/ETA layer and the only place in
// the experiments package allowed to read the wall clock: lint.policy
// allowlists it for no-wallclock. Simulated results never depend on
// anything computed here — wall-clock time feeds progress lines and
// ETA estimates only, so confining it keeps the byte-identical-report
// guarantee machine-checkable.

// Event is one structured progress notification from the engine.
type Event struct {
	// Bench and Config identify the completed run.
	Bench  string
	Config string
	// Cycles, IPC and LocalFrac summarize the run.
	Cycles    int64
	IPC       float64
	LocalFrac float64
	// Done counts completed simulations; Total the simulations planned
	// so far (Total is 0 when running outside the engine, where the job
	// set is unknown).
	Done, Total int
	// Elapsed is the wall-clock time since the first simulation
	// started; Remaining is the linear-extrapolation ETA (zero when
	// Total is unknown).
	Elapsed, Remaining time.Duration
}

// markStarted records the wall-clock start of the first simulation, for
// elapsed/ETA reporting. Callers hold r.mu.
func (r *Runner) markStarted() {
	if r.started.IsZero() {
		r.started = time.Now()
	}
}

// emitLocked reports one completed run to the configured sinks. Callers
// hold r.mu, which also serializes OnEvent callbacks.
func (r *Runner) emitLocked(cfgName, abbr string, res *nuba.Result) {
	if r.opts.Progress == nil && r.opts.OnEvent == nil {
		return
	}
	elapsed := time.Since(r.started)
	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "  ran %-7s on %-28s cycles=%-9d ipc=%.2f local=%.2f\n",
			abbr, cfgName, res.Stats.Cycles, res.Stats.IPC(), res.Stats.LocalFraction())
	}
	if r.opts.OnEvent != nil {
		ev := Event{
			Bench:  abbr,
			Config: cfgName,
			Cycles: res.Stats.Cycles, IPC: res.Stats.IPC(), LocalFrac: res.Stats.LocalFraction(),
			Done: r.done, Total: r.planned,
			Elapsed: elapsed,
		}
		if r.planned > r.done && r.done > 0 {
			ev.Remaining = time.Duration(float64(elapsed) / float64(r.done) * float64(r.planned-r.done))
		}
		r.opts.OnEvent(ev)
	}
}
