package experiments

// The seeded fault-injection stress matrix (`make stress`): every fault
// class in internal/fault is injected into a short run and must be
// caught by the layer docs/ROBUSTNESS.md assigns it to — the
// forward-progress watchdog (hangs and deadlocks), the sanitize engine
// (unsound hints), or the experiment pool (panics and transient
// failures) — while the live-but-degraded faults must NOT trip anything
// (the false-positive guard). Everything is seeded, so a failure here
// reproduces exactly.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/fault"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// stressConfig is the matrix's small, bounded system: big enough to
// exercise every component class, capped so even an uncaught hang ends
// the test quickly.
func stressConfig() nuba.Config {
	cfg := nuba.NUBAConfig().Scale(0.125)
	cfg.MaxCycles = 4 << 20
	return cfg
}

const (
	stressSeed   = 0x9ba7_57e5 // arbitrary, fixed: reruns hit identical targets
	stressWindow = 16384       // watchdog no-progress window for the matrix
)

func stressBench(t *testing.T, abbr string) workload.Benchmark {
	t.Helper()
	b, err := workload.ByAbbr(abbr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStressMatrix runs one fault class per row against a watchdogged
// run and asserts the documented detection outcome.
func TestStressMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed stress matrix")
	}
	b := stressBench(t, "MVT")
	cases := []struct {
		name   string
		faults []fault.Fault
		engine nuba.Engine
		// want is the required outcome: "clean" (no error), "hang"
		// (*nuba.HangError), "sanitize" (hint-soundness diagnostic) or
		// "panic" (*nuba.PanicError).
		want string
	}{
		{"control-clean", nil, nuba.EngineHybrid, "clean"},
		{"wedge-sm", []fault.Fault{{Kind: fault.WedgeSM, Target: -1, At: 2000}}, nuba.EngineHybrid, "hang"},
		{"stall-llc", []fault.Fault{{Kind: fault.StallLLC, Target: -1, At: 2000}}, nuba.EngineHybrid, "hang"},
		{"stall-noc", []fault.Fault{{Kind: fault.StallNoC, Target: -1, At: 2000}}, nuba.EngineHybrid, "hang"},
		{"drop-dram-reply", []fault.Fault{{Kind: fault.DropDRAMReply, Target: -1, After: 3}}, nuba.EngineHybrid, "hang"},
		{"slow-llc", []fault.Fault{{Kind: fault.SlowLLC, Target: -1, At: 2000, Period: 64}}, nuba.EngineHybrid, "clean"},
		{"hint-bias", []fault.Fault{{Kind: fault.HintBias, Bias: 64}}, nuba.EngineSanitize, "sanitize"},
		{"panic", []fault.Fault{{Kind: fault.PanicAt, At: 2000}}, nuba.EngineHybrid, "panic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := &fault.Spec{Seed: stressSeed, Faults: tc.faults}
			run := func() error {
				_, err := nuba.Run(context.Background(), stressConfig(), b,
					nuba.WithEngine(tc.engine),
					nuba.WithWatchdog(nuba.WatchdogOptions{NoProgressCycles: stressWindow}),
					nuba.WithArm(spec.Arm))
				return err
			}
			err := run()
			switch tc.want {
			case "clean":
				if err != nil {
					t.Fatalf("injected %s must not trip anything: %v", spec.Describe(), err)
				}
			case "hang":
				var he *nuba.HangError
				if !errors.As(err, &he) {
					t.Fatalf("injected %s not caught by the watchdog: %v", spec.Describe(), err)
				}
				if len(he.Report.Stuck) == 0 {
					t.Fatalf("hang report names no stuck components:\n%s", he.Report.String())
				}
				// Seeded determinism: the rerun must fail identically,
				// same victim, same cycle, same report.
				if err2 := run(); err2 == nil || err2.Error() != err.Error() {
					t.Fatalf("rerun diverged:\nfirst:  %v\nsecond: %v", err, err2)
				}
			case "sanitize":
				if err == nil || !strings.Contains(err.Error(), "unsound wake hint") {
					t.Fatalf("injected %s not caught by the sanitize engine: %v", spec.Describe(), err)
				}
			case "panic":
				var pe *nuba.PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("injected %s not recovered as a PanicError: %v", spec.Describe(), err)
				}
				if len(pe.Stack) == 0 {
					t.Fatal("recovered panic carries no stack")
				}
			}
		})
	}
}

// TestStressPoolIsolatesFailures is the acceptance scenario: a sweep
// containing one panicking job and one hanging job still renders a
// report for every healthy benchmark, records both failures with their
// cause, and marks the report partial.
func TestStressPoolIsolatesFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed stress matrix")
	}
	plan := fault.NewPlan()
	plan.Add("", "BP", fault.Spec{Seed: stressSeed,
		Faults: []fault.Fault{{Kind: fault.PanicAt, At: 2000}}})
	plan.Add("", "SGEMM", fault.Spec{Seed: stressSeed,
		Faults: []fault.Fault{{Kind: fault.WedgeSM, Target: 0, At: 2000}}})

	benches := []workload.Benchmark{
		stressBench(t, "BP"), stressBench(t, "SGEMM"), stressBench(t, "MVT"),
	}
	r := NewRunner(Options{
		Scale: 0.125, Benchmarks: benches, Jobs: 2,
		Watchdog: stressWindow, Faults: plan,
	})
	e, err := ByName("fig3")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute(context.Background(), e)
	if err != nil {
		t.Fatalf("a partial sweep must still render: %v", err)
	}
	if !strings.Contains(rep.Text, "MVT") {
		t.Fatalf("healthy benchmark missing from the partial report:\n%s", rep.Text)
	}
	if !strings.Contains(rep.Text, "FAILED JOBS") {
		t.Fatalf("partial report carries no failures section:\n%s", rep.Text)
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("want 2 job failures, got %d: %+v", len(rep.Failures), rep.Failures)
	}
	byBench := map[string]JobFailure{}
	for _, f := range rep.Failures {
		byBench[f.Bench] = f
	}
	if f := byBench["BP"]; !f.Panic || len(f.Stack) == 0 || !strings.Contains(f.Err, "panic") {
		t.Errorf("BP failure must be a recovered panic with stack: %+v", f)
	}
	if f := byBench["SGEMM"]; f.Panic || !strings.Contains(f.Err, "watchdog") {
		t.Errorf("SGEMM failure must be a watchdog hang: %+v", f)
	}
}

// TestStressTransientRetry: an injected flake that fails the first two
// attempts must be absorbed by the retry policy, while a zero-retry
// pool records it as a terminal failure after one attempt.
func TestStressTransientRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed stress matrix")
	}
	bp := stressBench(t, "BP")
	e, err := ByName("fig3")
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan()
	plan.FailTransiently("", "BP", 2)
	r := NewRunner(Options{
		Scale: 0.125, Benchmarks: []workload.Benchmark{bp}, Jobs: 1,
		Faults: plan, Retries: 3, RetryBackoff: time.Millisecond,
	})
	rep, err := r.Execute(context.Background(), e)
	if err != nil {
		t.Fatalf("retries must absorb a transient failure: %v", err)
	}
	if len(rep.Failures) != 0 || !strings.Contains(rep.Text, "BP") {
		t.Fatalf("flaky-but-recovered job misreported: failures=%+v\n%s", rep.Failures, rep.Text)
	}

	plan = fault.NewPlan()
	plan.FailTransiently("", "BP", 2)
	r = NewRunner(Options{
		Scale: 0.125, Benchmarks: []workload.Benchmark{bp}, Jobs: 1,
		Faults: plan, // Retries: 0
	})
	_, err = r.Execute(context.Background(), e)
	if err == nil {
		t.Fatal("every benchmark failed; Execute must error")
	}
	fs := r.Failures()
	if len(fs) != 1 || fs[0].Attempts != 1 || !strings.Contains(fs[0].Err, "transient") {
		t.Fatalf("zero-retry pool must fail after one attempt: %+v", fs)
	}
}

// TestStressCancelUnderFault: with a stall fault armed and no watchdog,
// the run can never finish — cancellation must still stop all three
// engines promptly. Runs under -race via the experiments race target.
func TestStressCancelUnderFault(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed stress matrix")
	}
	b := stressBench(t, "MVT")
	for _, engine := range []nuba.Engine{nuba.EngineHybrid, nuba.EngineNaive, nuba.EngineSanitize} {
		t.Run(engine.String(), func(t *testing.T) {
			spec := &fault.Spec{Seed: stressSeed,
				Faults: []fault.Fault{{Kind: fault.StallNoC, Target: 0, At: 1000}}}
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := nuba.Run(ctx, stressConfig(), b,
				nuba.WithEngine(engine), nuba.WithArm(spec.Arm))
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("want ctx deadline error, got %v", err)
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("cancellation took %s; the engine kept spinning", elapsed)
			}
		})
	}
}
