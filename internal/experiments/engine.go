package experiments

import (
	"context"
	"runtime"
	"sync"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// Job is one (configuration, benchmark) simulation an experiment needs.
// Jobs are identified by the configuration's canonical Fingerprint plus
// the benchmark abbreviation, so configurations differing in any semantic
// field are distinct cache entries.
type Job struct {
	Config nuba.Config
	Bench  workload.Benchmark
}

// jobKey is the memo-cache identity of a job.
func jobKey(cfg *nuba.Config, abbr string) string {
	return cfg.Fingerprint() + "|" + abbr
}

// workers returns the effective worker-pool size.
func (r *Runner) workers() int {
	if r.opts.Jobs > 0 {
		return r.opts.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Execute runs one experiment through the concurrent engine: it
// enumerates the experiment's deduplicated jobs, simulates them across
// the worker pool into the memo cache, then renders the report serially
// from the warm cache. The rendered report is byte-identical to a fully
// serial run for any worker count, because rendering always walks the
// benchmarks in presentation order and every simulation is deterministic
// given its configuration. A canceled ctx stops scheduling promptly and
// surfaces an error wrapping ctx.Err().
func (r *Runner) Execute(ctx context.Context, e Experiment) (string, error) {
	if e.Plan != nil {
		if err := r.Prefetch(ctx, e.Plan(r)); err != nil {
			return "", err
		}
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return e.Run(r)
}

// Prefetch simulates the given jobs across the worker pool, deduplicating
// against each other and against runs already cached. It returns the
// first simulation error (canceling the rest), or ctx's error if the
// context was canceled.
func (r *Runner) Prefetch(ctx context.Context, jobs []Job) error {
	fresh := r.admit(jobs)
	if len(fresh) == 0 {
		return ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.workers()
	if workers > len(fresh) {
		workers = len(fresh)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	ch := make(chan Job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if runCtx.Err() != nil {
					continue // drain without simulating after cancel
				}
				if _, err := r.runCtx(runCtx, j.Config, j.Bench); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					errMu.Unlock()
				}
			}
		}()
	}
feed:
	for _, j := range fresh {
		select {
		case ch <- j:
		case <-runCtx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// admit deduplicates jobs against each other and the cache, accounts the
// survivors in the progress totals and returns them.
func (r *Runner) admit(jobs []Job) []Job {
	var fresh []Job
	seen := make(map[string]bool, len(jobs))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range jobs {
		k := jobKey(&j.Config, j.Bench.Abbr)
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		fresh = append(fresh, j)
	}
	r.planned += len(fresh)
	if len(fresh) > 0 {
		r.markStarted()
	}
	return fresh
}

// cross pairs every benchmark of the runner's workload set with every
// configuration, in order.
func (r *Runner) cross(cfgs ...nuba.Config) []Job {
	jobs := make([]Job, 0, len(cfgs)*len(r.opts.Benchmarks))
	for _, cfg := range cfgs {
		for _, b := range r.opts.Benchmarks {
			jobs = append(jobs, Job{Config: cfg, Bench: b})
		}
	}
	return jobs
}

// isoPlan enumerates the shared Section 7 iso-resource runs
// (fig7/8/9/13).
func (r *Runner) isoPlan() []Job {
	cfgs := r.isoConfigs()
	var list []nuba.Config
	for _, name := range sortedKeys(cfgs) {
		list = append(list, cfgs[name])
	}
	return r.cross(list...)
}

func (r *Runner) fig3Plan() []Job {
	return r.cross(r.scaled(nuba.Baseline()))
}

func (r *Runner) fig10Plan() []Job {
	cfgs := []nuba.Config{r.scaled(nuba.Baseline())}
	for _, p := range r.fig10Points() {
		cfgs = append(cfgs, p.cfg)
	}
	return r.cross(cfgs...)
}

func (r *Runner) fig11Plan() []Job {
	base, ft, rr, lab := r.fig11Configs()
	return r.cross(base, ft, rr, lab)
}

func (r *Runner) fig12Plan() []Job {
	noRep, fullRep, mdr := r.fig12Configs()
	return r.cross(noRep, fullRep, mdr)
}

// sensitivityPlan enumerates the UBA-vs-NUBA runs of one Figure 14
// sensitivity sweep.
func (r *Runner) sensitivityPlan(variants map[string]func(nuba.Config) nuba.Config) []Job {
	var cfgs []nuba.Config
	for _, name := range sortedKeys(variants) {
		f := variants[name]
		cfgs = append(cfgs, f(r.scaled(nuba.Baseline())), f(r.scaled(nuba.NUBAConfig())))
	}
	return r.cross(cfgs...)
}

func (r *Runner) fig14SizePlan() []Job      { return r.sensitivityPlan(fig14SizeVariants) }
func (r *Runner) fig14PartitionPlan() []Job { return r.sensitivityPlan(fig14PartitionVariants) }
func (r *Runner) fig14LLCPlan() []Job       { return r.sensitivityPlan(fig14LLCVariants) }
func (r *Runner) fig14PagePlan() []Job      { return r.sensitivityPlan(fig14PageVariants) }

func (r *Runner) fig14AddrMapPlan() []Job {
	ubaPAE, nub := r.fig14AddrMapConfigs()
	return r.cross(ubaPAE, nub)
}

func (r *Runner) fig14LABPlan() []Job {
	base, variants := r.fig14LABConfigs()
	return r.cross(append([]nuba.Config{base}, variants...)...)
}

func (r *Runner) fig16Plan() []Job {
	monoUBA, monoNUBA, mcmUBA, mcmNUBA := r.fig16Configs()
	return r.cross(monoUBA, monoNUBA, mcmUBA, mcmNUBA)
}

func (r *Runner) altPlacementPlan() []Job {
	base, lab, mig, rep := r.altConfigs()
	return r.cross(base, lab, mig, rep)
}
