package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// Job is one (configuration, benchmark) simulation an experiment needs.
// Jobs are identified by the configuration's canonical Fingerprint plus
// the benchmark abbreviation, so configurations differing in any semantic
// field are distinct cache entries.
type Job struct {
	Config nuba.Config
	Bench  workload.Benchmark
}

// jobKey is the memo-cache identity of a job.
func jobKey(cfg *nuba.Config, abbr string) string {
	return cfg.Fingerprint() + "|" + abbr
}

// workers returns the effective worker-pool size.
func (r *Runner) workers() int {
	if r.opts.Jobs > 0 {
		return r.opts.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Execute runs one experiment through the concurrent engine: it
// enumerates the experiment's deduplicated jobs, simulates them across
// the worker pool into the memo cache, then renders the report serially
// from the warm cache. The rendered report is byte-identical to a fully
// serial run for any worker count, because rendering always walks the
// benchmarks in presentation order and every simulation is deterministic
// given its configuration. A canceled ctx stops scheduling promptly and
// surfaces an error wrapping ctx.Err().
//
// A failed job does not abort the experiment: the pool records it (see
// JobFailure), the failing benchmark is excluded from the rendered
// tables, and the partial report carries an explicit failures section.
// Execute only errors when the context is canceled, when rendering
// itself breaks, or when every benchmark failed.
func (r *Runner) Execute(ctx context.Context, e Experiment) (*Report, error) {
	if e.Plan != nil {
		if err := r.Prefetch(ctx, e.Plan(r)); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Render from the warm cache, degrading to a partial view when jobs
	// failed: a benchmark with any terminal failure is dropped from
	// r.opts.Benchmarks (every renderer walks that list) and reported in
	// the failures section instead. Rendering can itself surface new
	// failures — an uncached (config, benchmark) pair a renderer
	// simulates inline — so the filter loop repeats until a render
	// succeeds or stops producing new failures.
	orig := r.opts.Benchmarks
	defer func() { r.opts.Benchmarks = orig }()
	for tries := 0; tries <= len(orig); tries++ {
		failed := r.failedBenches()
		if len(failed) > 0 {
			kept := make([]workload.Benchmark, 0, len(orig))
			for _, b := range orig {
				if !failed[b.Abbr] {
					kept = append(kept, b)
				}
			}
			if len(kept) == 0 {
				return &Report{Failures: r.Failures()},
					fmt.Errorf("experiments: %s: every benchmark failed (%d job failures)", e.Name, r.failureCount())
			}
			r.opts.Benchmarks = kept
		}
		before := r.failureCount()
		text, err := e.Run(r)
		if err != nil {
			if ctx.Err() != nil || r.failureCount() == before {
				return nil, err
			}
			continue // new failures during render: re-filter and re-render
		}
		rep := &Report{Text: text, Failures: r.Failures()}
		if len(rep.Failures) > 0 {
			rep.Text += failuresSection(rep.Failures)
		}
		return rep, nil
	}
	return nil, fmt.Errorf("experiments: %s: rendering kept failing with new job failures", e.Name)
}

// failuresSection renders the explicit failures block appended to a
// partial report.
func failuresSection(fs []JobFailure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nFAILED JOBS (%d) — the tables above exclude these benchmarks:\n", len(fs))
	for _, f := range fs {
		kind := "error"
		if f.Panic {
			kind = "panic"
		}
		fmt.Fprintf(&b, "  %-16s %-8s %s after %d attempt(s): %s\n", f.Config, f.Bench, kind, f.Attempts, f.Err)
	}
	return b.String()
}

// Prefetch simulates the given jobs across the worker pool, deduplicating
// against each other and against runs already cached. Job failures are
// recorded on the runner (see Failures) without canceling the remaining
// jobs; Prefetch itself only errors when the context is canceled.
func (r *Runner) Prefetch(ctx context.Context, jobs []Job) error {
	fresh := r.admit(jobs)
	if len(fresh) == 0 {
		return ctx.Err()
	}

	workers := r.workers()
	if workers > len(fresh) {
		workers = len(fresh)
	}
	var wg sync.WaitGroup
	ch := make(chan Job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if ctx.Err() != nil {
					continue // drain without simulating after cancel
				}
				// Errors are recorded by runCtx; one bad job must not
				// take down the rest of the sweep.
				_, _ = r.runCtx(ctx, j.Config, j.Bench)
			}
		}()
	}
feed:
	for _, j := range fresh {
		select {
		case ch <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	return ctx.Err()
}

// admit deduplicates jobs against each other and the cache, accounts the
// survivors in the progress totals and returns them.
func (r *Runner) admit(jobs []Job) []Job {
	var fresh []Job
	seen := make(map[string]bool, len(jobs))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range jobs {
		k := jobKey(&j.Config, j.Bench.Abbr)
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		fresh = append(fresh, j)
	}
	r.planned += len(fresh)
	if len(fresh) > 0 {
		r.markStarted()
	}
	return fresh
}

// cross pairs every benchmark of the runner's workload set with every
// configuration, in order.
func (r *Runner) cross(cfgs ...nuba.Config) []Job {
	jobs := make([]Job, 0, len(cfgs)*len(r.opts.Benchmarks))
	for _, cfg := range cfgs {
		for _, b := range r.opts.Benchmarks {
			jobs = append(jobs, Job{Config: cfg, Bench: b})
		}
	}
	return jobs
}

// isoPlan enumerates the shared Section 7 iso-resource runs
// (fig7/8/9/13).
func (r *Runner) isoPlan() []Job {
	cfgs := r.isoConfigs()
	var list []nuba.Config
	for _, name := range sortedKeys(cfgs) {
		list = append(list, cfgs[name])
	}
	return r.cross(list...)
}

func (r *Runner) fig3Plan() []Job {
	return r.cross(r.scaled(nuba.Baseline()))
}

func (r *Runner) fig10Plan() []Job {
	cfgs := []nuba.Config{r.scaled(nuba.Baseline())}
	for _, p := range r.fig10Points() {
		cfgs = append(cfgs, p.cfg)
	}
	return r.cross(cfgs...)
}

func (r *Runner) fig11Plan() []Job {
	base, ft, rr, lab := r.fig11Configs()
	return r.cross(base, ft, rr, lab)
}

func (r *Runner) fig12Plan() []Job {
	noRep, fullRep, mdr := r.fig12Configs()
	return r.cross(noRep, fullRep, mdr)
}

// sensitivityPlan enumerates the UBA-vs-NUBA runs of one Figure 14
// sensitivity sweep.
func (r *Runner) sensitivityPlan(variants map[string]func(nuba.Config) nuba.Config) []Job {
	var cfgs []nuba.Config
	for _, name := range sortedKeys(variants) {
		f := variants[name]
		cfgs = append(cfgs, f(r.scaled(nuba.Baseline())), f(r.scaled(nuba.NUBAConfig())))
	}
	return r.cross(cfgs...)
}

func (r *Runner) fig14SizePlan() []Job      { return r.sensitivityPlan(fig14SizeVariants) }
func (r *Runner) fig14PartitionPlan() []Job { return r.sensitivityPlan(fig14PartitionVariants) }
func (r *Runner) fig14LLCPlan() []Job       { return r.sensitivityPlan(fig14LLCVariants) }
func (r *Runner) fig14PagePlan() []Job      { return r.sensitivityPlan(fig14PageVariants) }

func (r *Runner) fig14AddrMapPlan() []Job {
	ubaPAE, nub := r.fig14AddrMapConfigs()
	return r.cross(ubaPAE, nub)
}

func (r *Runner) fig14LABPlan() []Job {
	base, variants := r.fig14LABConfigs()
	return r.cross(append([]nuba.Config{base}, variants...)...)
}

func (r *Runner) fig16Plan() []Job {
	monoUBA, monoNUBA, mcmUBA, mcmNUBA := r.fig16Configs()
	return r.cross(monoUBA, monoNUBA, mcmUBA, mcmNUBA)
}

func (r *Runner) altPlacementPlan() []Job {
	base, lab, mig, rep := r.altConfigs()
	return r.cross(base, lab, mig, rep)
}
