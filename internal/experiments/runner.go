// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulator: each experiment is a named
// recipe that runs the required {architecture, policy, benchmark}
// combinations and prints rows in the shape the paper reports. See
// DESIGN.md for the experiment index.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// Options configure a Runner.
type Options struct {
	// Benchmarks restricts the workload set (default: the full suite).
	Benchmarks []workload.Benchmark
	// Scale scales the GPU size (1.0 = the 64-SM baseline). Experiments
	// that sweep GPU size ignore it.
	Scale float64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// Runner executes experiments, memoizing runs shared between figures
// (fig7/fig8/fig9/fig13 all reuse the iso-resource runs).
type Runner struct {
	opts  Options
	cache map[string]*nuba.Result
}

// NewRunner returns a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = workload.Suite()
	}
	return &Runner{opts: opts, cache: make(map[string]*nuba.Result)}
}

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Title string
	Run   func(r *Runner) (string, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table2", "Table 2: benchmark suite and footprints", (*Runner).table2},
		{"fig3", "Figure 3: memory page sharing degree", (*Runner).fig3},
		{"fig7", "Figure 7: iso-resource speedup over UBA", (*Runner).fig7},
		{"fig8", "Figure 8: perceived bandwidth (replies/cycle)", (*Runner).fig8},
		{"fig9", "Figure 9: L1 miss breakdown (local/remote)", (*Runner).fig9},
		{"fig10", "Figure 10: performance vs NoC power", (*Runner).fig10},
		{"fig11", "Figure 11: page allocation policies", (*Runner).fig11},
		{"fig12", "Figure 12: data replication policies", (*Runner).fig12},
		{"fig13", "Figure 13: GPU energy breakdown", (*Runner).fig13},
		{"fig14-size", "Figure 14: GPU size sensitivity", (*Runner).fig14Size},
		{"fig14-partition", "Figure 14: LLC slices per partition", (*Runner).fig14Partition},
		{"fig14-llc", "Figure 14: LLC capacity sensitivity", (*Runner).fig14LLC},
		{"fig14-page", "Figure 14: page size sensitivity", (*Runner).fig14Page},
		{"fig14-addrmap", "Figure 14: PAE address mapping", (*Runner).fig14AddrMap},
		{"fig14-lab", "Figure 14: LAB threshold sensitivity", (*Runner).fig14LAB},
		{"fig16", "Figure 16: MCM-GPU", (*Runner).fig16},
		{"alt-placement", "Section 7.6: migration / page replication", (*Runner).altPlacement},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// Names lists the experiment names.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	return out
}

// run executes (or returns the memoized) result of one configuration and
// benchmark.
func (r *Runner) run(cfg nuba.Config, b workload.Benchmark) (*nuba.Result, error) {
	key := cfg.Name() + "|" + fmt.Sprintf("s%.2f|p%d|%v|t%.2f|m%v|%d|%d|%d",
		r.opts.Scale, cfg.PageSize, cfg.AddressMap, cfg.LABThreshold, cfg.NumModules,
		cfg.NumSMs, cfg.NumLLCSlices, cfg.LLCSliceBytes) + "|" + b.Abbr
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	res, err := nuba.Run(cfg, b)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", b.Abbr, cfg.Name(), err)
	}
	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "  ran %-7s on %-28s cycles=%-9d ipc=%.2f local=%.2f\n",
			b.Abbr, cfg.Name(), res.Stats.Cycles, res.Stats.IPC(), res.Stats.LocalFraction())
	}
	r.cache[key] = res
	return res, nil
}

// scaled applies the Runner's GPU scale to a configuration.
func (r *Runner) scaled(cfg nuba.Config) nuba.Config {
	if r.opts.Scale != 1 {
		cfg = cfg.Scale(r.opts.Scale)
	}
	return cfg
}

// The four headline iso-resource configurations of Section 7.
func (r *Runner) isoConfigs() map[string]nuba.Config {
	ubaMem := r.scaled(nuba.Baseline())
	ubaSM := r.scaled(nuba.SMSideConfig())
	noRep := r.scaled(nuba.NUBAConfig())
	noRep.Replication = nuba.NoRep
	full := r.scaled(nuba.NUBAConfig())
	return map[string]nuba.Config{
		"UBA-mem":     ubaMem,
		"UBA-SM":      ubaSM,
		"NUBA-No-Rep": noRep,
		"NUBA":        full,
	}
}

// speedupPct returns (base/cand - 1) * 100.
func speedupPct(cand, base *nuba.Result) float64 {
	if cand.Stats.Cycles == 0 {
		return 0
	}
	return (float64(base.Stats.Cycles)/float64(cand.Stats.Cycles) - 1) * 100
}

// summarize computes the paper-style harmonic-mean improvement for a set
// of per-benchmark speedups (given as multiplicative speedups).
func summarize(speedups []float64) float64 {
	return (metrics.HarmonicMeanSpeedup(speedups) - 1) * 100
}

// groupSummary renders Low/High/All harmonic-mean improvements.
func groupSummary(b *strings.Builder, label string, low, high []float64) {
	all := append(append([]float64{}, low...), high...)
	fmt.Fprintf(b, "%s: low-sharing %+.1f%%  high-sharing %+.1f%%  all %+.1f%%\n",
		label, summarize(low), summarize(high), summarize(all))
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func pct(x float64) string { return fmt.Sprintf("%+.1f%%", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func mbs(x float64) string { return fmt.Sprintf("%.2f MB", x) }
