// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulator: each experiment is a named
// recipe that runs the required {architecture, policy, benchmark}
// combinations and prints rows in the shape the paper reports. See
// DESIGN.md for the experiment index.
//
// Experiments execute through a concurrent engine (see engine.go): each
// experiment declares the deduplicated set of (Config, Benchmark) jobs it
// needs, the engine simulates them across a worker pool into a
// concurrency-safe memo cache, and the report is then rendered serially
// from the warm cache — so the output is byte-identical regardless of the
// worker count, and figures sharing runs (fig7/8/9/13 all reuse the
// iso-resource runs) never recompute.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// Options configure a Runner.
type Options struct {
	// Benchmarks restricts the workload set (default: the full suite).
	Benchmarks []workload.Benchmark
	// Scale scales the GPU size (1.0 = the 64-SM baseline). Experiments
	// that sweep GPU size ignore it.
	Scale float64
	// Jobs is the worker-pool size used to execute an experiment's job
	// set; zero or negative selects runtime.GOMAXPROCS(0). Jobs = 1
	// reproduces the historical strictly-serial execution.
	Jobs int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// OnEvent, when non-nil, receives a structured Event per completed
	// run (run counts, elapsed time, ETA). Calls are serialized.
	OnEvent func(Event)
	// Trace, when non-nil, is consulted once per simulation and may
	// return that run's trace sinks (docs/OBSERVABILITY.md); nil keeps
	// the run untraced. It is called concurrently from the worker pool,
	// so it must be safe for concurrent use and must hand each run its
	// own writers. Tracing never enters the memo key: a (Config,
	// Benchmark) pair shared by several figures still simulates exactly
	// once (so Trace is consulted once for it), reports stay
	// byte-identical for any Jobs value, and each run's trace is too.
	Trace func(cfgName, bench string) *nuba.TraceOptions
	// Engine selects the cycle-loop engine (default nuba.EngineHybrid).
	// Like Trace it never enters the memo key: both engines are
	// cycle-exact, so the engine changes only how fast a job simulates,
	// never its result.
	Engine nuba.Engine
}

// Runner executes experiments, memoizing runs shared between figures
// (fig7/fig8/fig9/fig13 all reuse the iso-resource runs). All methods are
// safe for concurrent use; the memo cache is singleflight, so a run
// requested by several workers simulates exactly once.
type Runner struct {
	opts Options

	mu      sync.Mutex
	cache   map[string]*cacheEntry
	planned int       // jobs scheduled across Execute/Prefetch calls
	done    int       // simulations completed
	started time.Time // first simulation start, for elapsed/ETA
}

// cacheEntry is one singleflight slot: the first requester simulates and
// closes ready; everyone else blocks on ready and reads res/err.
type cacheEntry struct {
	ready chan struct{}
	res   *nuba.Result
	err   error
}

// NewRunner returns a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = workload.Suite()
	}
	return &Runner{opts: opts, cache: make(map[string]*cacheEntry)}
}

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Title string
	// Run renders the experiment's report. Runs it needs that are not
	// already cached are simulated inline (serially).
	Run func(r *Runner) (string, error)
	// Plan enumerates the simulations Run will consume, so the engine
	// can execute them across the worker pool first. Nil for
	// experiments that need no simulation (table2).
	Plan func(r *Runner) []Job
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{Name: "table2", Title: "Table 2: benchmark suite and footprints", Run: (*Runner).table2},
		{Name: "fig3", Title: "Figure 3: memory page sharing degree", Run: (*Runner).fig3, Plan: (*Runner).fig3Plan},
		{Name: "fig7", Title: "Figure 7: iso-resource speedup over UBA", Run: (*Runner).fig7, Plan: (*Runner).isoPlan},
		{Name: "fig8", Title: "Figure 8: perceived bandwidth (replies/cycle)", Run: (*Runner).fig8, Plan: (*Runner).isoPlan},
		{Name: "fig9", Title: "Figure 9: L1 miss breakdown (local/remote)", Run: (*Runner).fig9, Plan: (*Runner).isoPlan},
		{Name: "fig10", Title: "Figure 10: performance vs NoC power", Run: (*Runner).fig10, Plan: (*Runner).fig10Plan},
		{Name: "fig11", Title: "Figure 11: page allocation policies", Run: (*Runner).fig11, Plan: (*Runner).fig11Plan},
		{Name: "fig12", Title: "Figure 12: data replication policies", Run: (*Runner).fig12, Plan: (*Runner).fig12Plan},
		{Name: "fig13", Title: "Figure 13: GPU energy breakdown", Run: (*Runner).fig13, Plan: (*Runner).isoPlan},
		{Name: "fig14-size", Title: "Figure 14: GPU size sensitivity", Run: (*Runner).fig14Size, Plan: (*Runner).fig14SizePlan},
		{Name: "fig14-partition", Title: "Figure 14: LLC slices per partition", Run: (*Runner).fig14Partition, Plan: (*Runner).fig14PartitionPlan},
		{Name: "fig14-llc", Title: "Figure 14: LLC capacity sensitivity", Run: (*Runner).fig14LLC, Plan: (*Runner).fig14LLCPlan},
		{Name: "fig14-page", Title: "Figure 14: page size sensitivity", Run: (*Runner).fig14Page, Plan: (*Runner).fig14PagePlan},
		{Name: "fig14-addrmap", Title: "Figure 14: PAE address mapping", Run: (*Runner).fig14AddrMap, Plan: (*Runner).fig14AddrMapPlan},
		{Name: "fig14-lab", Title: "Figure 14: LAB threshold sensitivity", Run: (*Runner).fig14LAB, Plan: (*Runner).fig14LABPlan},
		{Name: "fig16", Title: "Figure 16: MCM-GPU", Run: (*Runner).fig16, Plan: (*Runner).fig16Plan},
		{Name: "alt-placement", Title: "Section 7.6: migration / page replication", Run: (*Runner).altPlacement, Plan: (*Runner).altPlacementPlan},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// Names lists the experiment names.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	return out
}

// run executes (or returns the memoized) result of one configuration and
// benchmark. It is the serial entry point the figure renderers use; the
// engine's workers go through runCtx.
func (r *Runner) run(cfg nuba.Config, b workload.Benchmark) (*nuba.Result, error) {
	return r.runCtx(context.Background(), cfg, b)
}

// runCtx is run under a context, with singleflight memoization: the first
// caller of a (config, benchmark) pair simulates it, concurrent callers
// block until it completes, later callers hit the cache. A failed or
// canceled run is evicted so a retry can re-simulate.
func (r *Runner) runCtx(ctx context.Context, cfg nuba.Config, b workload.Benchmark) (*nuba.Result, error) {
	key := jobKey(&cfg, b.Abbr)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		select {
		case <-e.ready:
			return e.res, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &cacheEntry{ready: make(chan struct{})}
	r.cache[key] = e
	r.markStarted()
	r.mu.Unlock()

	var topts *nuba.TraceOptions
	if r.opts.Trace != nil {
		topts = r.opts.Trace(cfg.Name(), b.Abbr)
	}
	res, err := nuba.Run(ctx, cfg, b, nuba.WithTrace(topts), nuba.WithEngine(r.opts.Engine))
	if err != nil {
		err = fmt.Errorf("%s on %s: %w", b.Abbr, cfg.Name(), err)
	}
	e.res, e.err = res, err

	r.mu.Lock()
	if err != nil {
		delete(r.cache, key)
	} else {
		r.done++
		r.emitLocked(cfg.Name(), b.Abbr, res)
	}
	r.mu.Unlock()
	close(e.ready)
	return res, err
}

// scaled applies the Runner's GPU scale to a configuration.
func (r *Runner) scaled(cfg nuba.Config) nuba.Config {
	if r.opts.Scale != 1 {
		cfg = cfg.Scale(r.opts.Scale)
	}
	return cfg
}

// The four headline iso-resource configurations of Section 7.
func (r *Runner) isoConfigs() map[string]nuba.Config {
	ubaMem := r.scaled(nuba.Baseline())
	ubaSM := r.scaled(nuba.SMSideConfig())
	noRep := r.scaled(nuba.NUBAConfig())
	noRep.Replication = nuba.NoRep
	full := r.scaled(nuba.NUBAConfig())
	return map[string]nuba.Config{
		"UBA-mem":     ubaMem,
		"UBA-SM":      ubaSM,
		"NUBA-No-Rep": noRep,
		"NUBA":        full,
	}
}

// speedupPct returns (base/cand - 1) * 100.
func speedupPct(cand, base *nuba.Result) float64 {
	if cand.Stats.Cycles == 0 {
		return 0
	}
	return (float64(base.Stats.Cycles)/float64(cand.Stats.Cycles) - 1) * 100
}

// summarize computes the paper-style harmonic-mean improvement for a set
// of per-benchmark speedups (given as multiplicative speedups).
func summarize(speedups []float64) float64 {
	return (metrics.HarmonicMeanSpeedup(speedups) - 1) * 100
}

// groupSummary renders Low/High/All harmonic-mean improvements.
func groupSummary(b *strings.Builder, label string, low, high []float64) {
	all := append(append([]float64{}, low...), high...)
	fmt.Fprintf(b, "%s: low-sharing %+.1f%%  high-sharing %+.1f%%  all %+.1f%%\n",
		label, summarize(low), summarize(high), summarize(all))
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func pct(x float64) string { return fmt.Sprintf("%+.1f%%", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func mbs(x float64) string { return fmt.Sprintf("%.2f MB", x) }
