// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulator: each experiment is a named
// recipe that runs the required {architecture, policy, benchmark}
// combinations and prints rows in the shape the paper reports. See
// DESIGN.md for the experiment index.
//
// Experiments execute through a concurrent engine (see engine.go): each
// experiment declares the deduplicated set of (Config, Benchmark) jobs it
// needs, the engine simulates them across a worker pool into a
// concurrency-safe memo cache, and the report is then rendered serially
// from the warm cache — so the output is byte-identical regardless of the
// worker count, and figures sharing runs (fig7/8/9/13 all reuse the
// iso-resource runs) never recompute.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/fault"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// Options configure a Runner.
type Options struct {
	// Benchmarks restricts the workload set (default: the full suite).
	Benchmarks []workload.Benchmark
	// Scale scales the GPU size (1.0 = the 64-SM baseline). Experiments
	// that sweep GPU size ignore it.
	Scale float64
	// Jobs is the worker-pool size used to execute an experiment's job
	// set; zero or negative selects runtime.GOMAXPROCS(0). Jobs = 1
	// reproduces the historical strictly-serial execution.
	Jobs int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// OnEvent, when non-nil, receives a structured Event per completed
	// run (run counts, elapsed time, ETA). Calls are serialized.
	OnEvent func(Event)
	// Trace, when non-nil, is consulted once per simulation and may
	// return that run's trace sinks (docs/OBSERVABILITY.md); nil keeps
	// the run untraced. It is called concurrently from the worker pool,
	// so it must be safe for concurrent use and must hand each run its
	// own writers. Tracing never enters the memo key: a (Config,
	// Benchmark) pair shared by several figures still simulates exactly
	// once (so Trace is consulted once for it), reports stay
	// byte-identical for any Jobs value, and each run's trace is too.
	Trace func(cfgName, bench string) *nuba.TraceOptions
	// Engine selects the cycle-loop engine (default nuba.EngineHybrid).
	// Like Trace it never enters the memo key: both engines are
	// cycle-exact, so the engine changes only how fast a job simulates,
	// never its result.
	Engine nuba.Engine
	// PartitionWorkers tunes nuba.EngineParallel's goroutine count per
	// run (0 = one worker per partition); other engines ignore it. Like
	// Engine it is an execution knob outside the memo key — results are
	// byte-identical at every worker count. Note it multiplies with Jobs:
	// each of the Jobs concurrent simulations runs this many workers, so
	// keep Jobs * PartitionWorkers near GOMAXPROCS (docs/PARALLEL.md).
	PartitionWorkers int
	// Watchdog arms each run's forward-progress watchdog: the run fails
	// with a structured hang report once no component state changes for
	// this many simulated cycles while work is outstanding (0 = off).
	// The watchdog reads only pure state signatures, so results are
	// byte-identical with it on or off; like Trace and Engine it never
	// enters the memo key.
	Watchdog int64
	// Faults, when non-nil, maps (config, benchmark) jobs to injected
	// fault specs and transient failures — the seeded stress matrix
	// (see internal/fault and docs/ROBUSTNESS.md). Production sweeps
	// leave it nil.
	Faults *fault.Plan
	// Retries is how many times a failed job is re-attempted when its
	// error is transient (implements `Transient() bool`). Deterministic
	// failures — hangs, panics, model errors — are never retried.
	Retries int
	// RetryBackoff is the base wait between retry attempts; the wait
	// grows linearly with the attempt number, is capped at 2s, and
	// aborts promptly when the context is canceled. Zero selects 50ms.
	RetryBackoff time.Duration
}

// JobFailure records one job the pool gave up on: the failing
// configuration and benchmark, the final error, whether it was a
// recovered panic (with the stack), and how many attempts were made.
// The slice of these is the report's explicit failures section — the
// schema is documented in docs/ROBUSTNESS.md.
type JobFailure struct {
	// Config is the configuration's display name; Fingerprint its
	// canonical identity (the memo key prefix).
	Config      string
	Fingerprint string
	// Bench is the benchmark abbreviation.
	Bench string
	// Err is the final attempt's error text.
	Err string
	// Panic reports whether the failure was a recovered simulator
	// panic; Stack then holds the panicking goroutine's stack.
	Panic bool
	Stack string
	// Attempts is the number of attempts made (1 = no retries).
	Attempts int
}

// Report is a rendered experiment plus the jobs that could not be
// simulated. A non-empty Failures means Text is a partial report: the
// failed benchmarks are excluded from every table and listed in the
// trailing failures section instead.
type Report struct {
	Text     string
	Failures []JobFailure
}

// Runner executes experiments, memoizing runs shared between figures
// (fig7/fig8/fig9/fig13 all reuse the iso-resource runs). All methods are
// safe for concurrent use; the memo cache is singleflight, so a run
// requested by several workers simulates exactly once.
type Runner struct {
	opts Options

	mu       sync.Mutex
	cache    map[string]*cacheEntry
	failures map[string]JobFailure // terminally failed jobs, by jobKey
	planned  int                   // jobs scheduled across Execute/Prefetch calls
	done     int                   // simulations completed
	started  time.Time             // first simulation start, for elapsed/ETA
}

// cacheEntry is one singleflight slot: the first requester simulates and
// closes ready; everyone else blocks on ready and reads res/err.
type cacheEntry struct {
	ready chan struct{}
	res   *nuba.Result
	err   error
}

// NewRunner returns a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Scale == 0 {
		opts.Scale = 1
	}
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = workload.Suite()
	}
	return &Runner{
		opts:     opts,
		cache:    make(map[string]*cacheEntry),
		failures: make(map[string]JobFailure),
	}
}

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Title string
	// Run renders the experiment's report. Runs it needs that are not
	// already cached are simulated inline (serially).
	Run func(r *Runner) (string, error)
	// Plan enumerates the simulations Run will consume, so the engine
	// can execute them across the worker pool first. Nil for
	// experiments that need no simulation (table2).
	Plan func(r *Runner) []Job
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{Name: "table2", Title: "Table 2: benchmark suite and footprints", Run: (*Runner).table2},
		{Name: "fig3", Title: "Figure 3: memory page sharing degree", Run: (*Runner).fig3, Plan: (*Runner).fig3Plan},
		{Name: "fig7", Title: "Figure 7: iso-resource speedup over UBA", Run: (*Runner).fig7, Plan: (*Runner).isoPlan},
		{Name: "fig8", Title: "Figure 8: perceived bandwidth (replies/cycle)", Run: (*Runner).fig8, Plan: (*Runner).isoPlan},
		{Name: "fig9", Title: "Figure 9: L1 miss breakdown (local/remote)", Run: (*Runner).fig9, Plan: (*Runner).isoPlan},
		{Name: "fig10", Title: "Figure 10: performance vs NoC power", Run: (*Runner).fig10, Plan: (*Runner).fig10Plan},
		{Name: "fig11", Title: "Figure 11: page allocation policies", Run: (*Runner).fig11, Plan: (*Runner).fig11Plan},
		{Name: "fig12", Title: "Figure 12: data replication policies", Run: (*Runner).fig12, Plan: (*Runner).fig12Plan},
		{Name: "fig13", Title: "Figure 13: GPU energy breakdown", Run: (*Runner).fig13, Plan: (*Runner).isoPlan},
		{Name: "fig14-size", Title: "Figure 14: GPU size sensitivity", Run: (*Runner).fig14Size, Plan: (*Runner).fig14SizePlan},
		{Name: "fig14-partition", Title: "Figure 14: LLC slices per partition", Run: (*Runner).fig14Partition, Plan: (*Runner).fig14PartitionPlan},
		{Name: "fig14-llc", Title: "Figure 14: LLC capacity sensitivity", Run: (*Runner).fig14LLC, Plan: (*Runner).fig14LLCPlan},
		{Name: "fig14-page", Title: "Figure 14: page size sensitivity", Run: (*Runner).fig14Page, Plan: (*Runner).fig14PagePlan},
		{Name: "fig14-addrmap", Title: "Figure 14: PAE address mapping", Run: (*Runner).fig14AddrMap, Plan: (*Runner).fig14AddrMapPlan},
		{Name: "fig14-lab", Title: "Figure 14: LAB threshold sensitivity", Run: (*Runner).fig14LAB, Plan: (*Runner).fig14LABPlan},
		{Name: "fig16", Title: "Figure 16: MCM-GPU", Run: (*Runner).fig16, Plan: (*Runner).fig16Plan},
		{Name: "alt-placement", Title: "Section 7.6: migration / page replication", Run: (*Runner).altPlacement, Plan: (*Runner).altPlacementPlan},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// Names lists the experiment names.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	return out
}

// run executes (or returns the memoized) result of one configuration and
// benchmark. It is the serial entry point the figure renderers use; the
// engine's workers go through runCtx.
func (r *Runner) run(cfg nuba.Config, b workload.Benchmark) (*nuba.Result, error) {
	return r.runCtx(context.Background(), cfg, b)
}

// runCtx is run under a context, with singleflight memoization: the first
// caller of a (config, benchmark) pair simulates it, concurrent callers
// block until it completes, later callers hit the cache. A canceled run
// is evicted so a later call can re-simulate; a deterministically failed
// run stays cached with its error (re-running would fail identically)
// and is recorded as a JobFailure.
func (r *Runner) runCtx(ctx context.Context, cfg nuba.Config, b workload.Benchmark) (*nuba.Result, error) {
	key := jobKey(&cfg, b.Abbr)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		select {
		case <-e.ready:
			return e.res, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &cacheEntry{ready: make(chan struct{})}
	r.cache[key] = e
	r.markStarted()
	r.mu.Unlock()

	res, attempts, err := r.simulate(ctx, cfg, b)
	if err != nil {
		err = fmt.Errorf("%s on %s: %w", b.Abbr, cfg.Name(), err)
	}
	e.res, e.err = res, err

	r.mu.Lock()
	switch {
	case err == nil:
		r.done++
		r.emitLocked(cfg.Name(), b.Abbr, res)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		delete(r.cache, key)
	default:
		r.recordFailureLocked(key, &cfg, b, err, attempts)
	}
	r.mu.Unlock()
	close(e.ready)
	return res, err
}

// simulate executes one run with the runner's watchdog, fault plan and
// bounded ctx-aware retry policy applied. It returns the attempt count
// alongside the final result.
func (r *Runner) simulate(ctx context.Context, cfg nuba.Config, b workload.Benchmark) (*nuba.Result, int, error) {
	var topts *nuba.TraceOptions
	if r.opts.Trace != nil {
		topts = r.opts.Trace(cfg.Name(), b.Abbr)
	}
	opts := []nuba.RunOption{
		nuba.WithTrace(topts),
		nuba.WithEngine(r.opts.Engine),
		nuba.WithPartitionWorkers(r.opts.PartitionWorkers),
	}
	if r.opts.Watchdog > 0 {
		opts = append(opts, nuba.WithWatchdog(nuba.WatchdogOptions{NoProgressCycles: r.opts.Watchdog}))
	}
	if r.opts.Faults != nil {
		if spec, ok := r.opts.Faults.For(cfg.Name(), b.Abbr); ok {
			opts = append(opts, nuba.WithArm(spec.Arm))
		}
	}
	for attempts := 1; ; attempts++ {
		var res *nuba.Result
		var err error
		if r.opts.Faults != nil {
			err = r.opts.Faults.TakeTransientFailure(cfg.Name(), b.Abbr)
		}
		if err == nil {
			res, err = nuba.Run(ctx, cfg, b, opts...)
		}
		if err == nil || attempts > r.opts.Retries || !transient(err) || ctx.Err() != nil {
			return res, attempts, err
		}
		// Bounded backoff before the next attempt: base * attempt,
		// capped, aborted promptly on cancellation.
		d := r.opts.RetryBackoff
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		d *= time.Duration(attempts)
		if d > 2*time.Second {
			d = 2 * time.Second
		}
		select {
		case <-ctx.Done():
			return nil, attempts, ctx.Err()
		case <-time.After(d):
		}
	}
}

// transient reports whether err is marked retryable via a
// `Transient() bool` method anywhere in its chain.
func transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// recordFailureLocked files a terminal job failure (r.mu held).
func (r *Runner) recordFailureLocked(key string, cfg *nuba.Config, b workload.Benchmark, err error, attempts int) {
	if _, ok := r.failures[key]; ok {
		return
	}
	jf := JobFailure{
		Config:      cfg.Name(),
		Fingerprint: cfg.Fingerprint(),
		Bench:       b.Abbr,
		Err:         err.Error(),
		Attempts:    attempts,
	}
	var pe *nuba.PanicError
	if errors.As(err, &pe) {
		jf.Panic = true
		jf.Stack = string(pe.Stack)
	}
	r.failures[key] = jf
}

// Failures returns the terminally failed jobs, sorted by configuration
// then benchmark (deterministic regardless of worker interleaving).
func (r *Runner) Failures() []JobFailure {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobFailure, 0, len(r.failures))
	for _, k := range sortedKeys(r.failures) {
		out = append(out, r.failures[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Config != out[j].Config {
			return out[i].Config < out[j].Config
		}
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// failedBenches returns the benchmark abbreviations with at least one
// terminal failure on any configuration.
func (r *Runner) failedBenches() map[string]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := make(map[string]bool)
	for _, k := range sortedKeys(r.failures) {
		m[r.failures[k].Bench] = true
	}
	return m
}

// failureCount returns the number of terminally failed jobs so far.
func (r *Runner) failureCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failures)
}

// scaled applies the Runner's GPU scale to a configuration.
func (r *Runner) scaled(cfg nuba.Config) nuba.Config {
	if r.opts.Scale != 1 {
		cfg = cfg.Scale(r.opts.Scale)
	}
	return cfg
}

// The four headline iso-resource configurations of Section 7.
func (r *Runner) isoConfigs() map[string]nuba.Config {
	ubaMem := r.scaled(nuba.Baseline())
	ubaSM := r.scaled(nuba.SMSideConfig())
	noRep := r.scaled(nuba.NUBAConfig())
	noRep.Replication = nuba.NoRep
	full := r.scaled(nuba.NUBAConfig())
	return map[string]nuba.Config{
		"UBA-mem":     ubaMem,
		"UBA-SM":      ubaSM,
		"NUBA-No-Rep": noRep,
		"NUBA":        full,
	}
}

// speedupPct returns (base/cand - 1) * 100.
func speedupPct(cand, base *nuba.Result) float64 {
	if cand.Stats.Cycles == 0 {
		return 0
	}
	return (float64(base.Stats.Cycles)/float64(cand.Stats.Cycles) - 1) * 100
}

// summarize computes the paper-style harmonic-mean improvement for a set
// of per-benchmark speedups (given as multiplicative speedups).
func summarize(speedups []float64) float64 {
	return (metrics.HarmonicMeanSpeedup(speedups) - 1) * 100
}

// groupSummary renders Low/High/All harmonic-mean improvements.
func groupSummary(b *strings.Builder, label string, low, high []float64) {
	all := append(append([]float64{}, low...), high...)
	fmt.Fprintf(b, "%s: low-sharing %+.1f%%  high-sharing %+.1f%%  all %+.1f%%\n",
		label, summarize(low), summarize(high), summarize(all))
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func pct(x float64) string { return fmt.Sprintf("%+.1f%%", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func mbs(x float64) string { return fmt.Sprintf("%.2f MB", x) }
