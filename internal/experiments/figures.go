package experiments

import (
	"fmt"
	"strings"

	"github.com/nuba-gpu/nuba"
	"github.com/nuba-gpu/nuba/internal/energy"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// table2 prints the suite with the paper's and the scaled footprints.
func (r *Runner) table2() (string, error) {
	t := &metrics.Table{Header: []string{"Benchmark", "Abbr", "Sharing", "Paper MB/RO", "Sim MB", "Launches"}}
	for _, b := range r.opts.Benchmarks {
		var total uint64
		n := 0
		alloc := func(size uint64) uint64 {
			total += size
			n++
			return uint64(n) << 40
		}
		launches, err := b.Build(alloc)
		if err != nil {
			return "", fmt.Errorf("%s: %w", b.Abbr, err)
		}
		sharing := "low"
		if b.High {
			sharing = "high"
		}
		t.AddRow(b.Name, b.Abbr, sharing,
			fmt.Sprintf("%.0f / %.2f", b.PaperMB, b.PaperROMB),
			mbs(float64(total)/workload.MB), fmt.Sprintf("%d", len(launches)))
	}
	return t.String(), nil
}

// fig3 reports the page sharing histogram per benchmark on the baseline
// UBA GPU, as in Figure 3.
func (r *Runner) fig3() (string, error) {
	cfg := r.scaled(nuba.Baseline())
	t := &metrics.Table{Header: []string{"Bench", "Class", "Pages", "1 SM", "2-10", "11-25", ">25", "Shared%"}}
	for _, b := range r.opts.Benchmarks {
		res, err := r.run(cfg, b)
		if err != nil {
			return "", err
		}
		one, two, eleven, over := res.Sharing.Buckets()
		cls := "low"
		if b.High {
			cls = "high"
		}
		t.AddRow(b.Abbr, cls, fmt.Sprintf("%d", res.Sharing.Pages()),
			f2(one), f2(two), f2(eleven), f2(over), pct(res.Sharing.SharedFraction()*100))
	}
	return t.String(), nil
}

// isoRuns executes the four Section 7 configurations over the suite.
func (r *Runner) isoRuns() (map[string]map[string]*nuba.Result, error) {
	cfgs := r.isoConfigs()
	out := make(map[string]map[string]*nuba.Result)
	for _, name := range sortedKeys(cfgs) {
		cfg := cfgs[name]
		out[name] = make(map[string]*nuba.Result)
		for _, b := range r.opts.Benchmarks {
			res, err := r.run(cfg, b)
			if err != nil {
				return nil, err
			}
			out[name][b.Abbr] = res
		}
	}
	return out, nil
}

// fig7 reports speedup of NUBA-No-Rep and NUBA over the memory-side UBA.
func (r *Runner) fig7() (string, error) {
	runs, err := r.isoRuns()
	if err != nil {
		return "", err
	}
	t := &metrics.Table{Header: []string{"Bench", "Class", "UBA-SM", "NUBA-No-Rep", "NUBA"}}
	var lowN, highN, lowR, highR []float64
	for _, b := range r.opts.Benchmarks {
		base := runs["UBA-mem"][b.Abbr]
		sm := speedupPct(runs["UBA-SM"][b.Abbr], base)
		nr := speedupPct(runs["NUBA-No-Rep"][b.Abbr], base)
		nb := speedupPct(runs["NUBA"][b.Abbr], base)
		cls := "low"
		if b.High {
			cls = "high"
			highN = append(highN, 1+nr/100)
			highR = append(highR, 1+nb/100)
		} else {
			lowN = append(lowN, 1+nr/100)
			lowR = append(lowR, 1+nb/100)
		}
		t.AddRow(b.Abbr, cls, pct(sm), pct(nr), pct(nb))
	}
	chart := &metrics.BarChart{Title: "NUBA speedup over UBA (%)", Width: 50}
	for _, b := range r.opts.Benchmarks {
		chart.Add(b.Abbr, speedupPct(runs["NUBA"][b.Abbr], runs["UBA-mem"][b.Abbr]))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	bld.WriteByte('\n')
	bld.WriteString(chart.String())
	groupSummary(&bld, "NUBA-No-Rep vs UBA", lowN, highN)
	groupSummary(&bld, "NUBA        vs UBA", lowR, highR)
	bld.WriteString("(paper: NUBA +30.4% low, +15.1% high, +23.1% overall vs memory-side UBA)\n")
	return bld.String(), nil
}

// fig8 reports the perceived bandwidth in replies per cycle.
func (r *Runner) fig8() (string, error) {
	runs, err := r.isoRuns()
	if err != nil {
		return "", err
	}
	t := &metrics.Table{Header: []string{"Bench", "UBA-mem", "NUBA-No-Rep", "NUBA", "Gain"}}
	var gains []float64
	for _, b := range r.opts.Benchmarks {
		u := runs["UBA-mem"][b.Abbr].Stats.RepliesPerCycle()
		nr := runs["NUBA-No-Rep"][b.Abbr].Stats.RepliesPerCycle()
		nb := runs["NUBA"][b.Abbr].Stats.RepliesPerCycle()
		gain := 0.0
		if u > 0 {
			gain = (nb/u - 1) * 100
		}
		gains = append(gains, 1+gain/100)
		t.AddRow(b.Abbr, f3(u), f3(nr), f3(nb), pct(gain))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	fmt.Fprintf(&bld, "harmonic-mean perceived-bandwidth gain: %+.1f%% (paper: +38.9%%)\n", summarize(gains))
	return bld.String(), nil
}

// fig9 reports the L1 miss service breakdown.
func (r *Runner) fig9() (string, error) {
	runs, err := r.isoRuns()
	if err != nil {
		return "", err
	}
	t := &metrics.Table{Header: []string{"Bench", "UBA local", "NoRep local", "NUBA local", "NUBA replica"}}
	var localSum, n float64
	for _, b := range r.opts.Benchmarks {
		u := runs["UBA-mem"][b.Abbr].Stats
		nr := runs["NUBA-No-Rep"][b.Abbr].Stats
		nb := runs["NUBA"][b.Abbr].Stats
		repFrac := 0.0
		if tot := nb.LocalAccesses + nb.RemoteAccesses; tot > 0 {
			repFrac = float64(nb.ReplicatedAccesses) / float64(tot)
		}
		localSum += nb.LocalFraction()
		n++
		t.AddRow(b.Abbr, f2(u.LocalFraction()), f2(nr.LocalFraction()), f2(nb.LocalFraction()), f2(repFrac))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	fmt.Fprintf(&bld, "mean NUBA local fraction: %.1f%% (paper: 63.9%% of L1 misses local)\n", 100*localSum/n)
	return bld.String(), nil
}

// fig10Point is one architecture/NoC-bandwidth combination of Figure 10.
type fig10Point struct {
	arch string
	cfg  nuba.Config
}

// fig10Points enumerates the Figure 10 sweep (shared by the renderer and
// the engine's job plan).
func (r *Runner) fig10Points() []fig10Point {
	var points []fig10Point
	for _, gbs := range []float64{700, 1400, 2800, 5600} {
		points = append(points,
			fig10Point{"UBA-mem", r.scaled(nuba.Baseline().WithNoC(gbs))},
			fig10Point{"UBA-SM", r.scaled(nuba.SMSideConfig().WithNoC(gbs))},
			fig10Point{"NUBA", r.scaled(nuba.NUBAConfig().WithNoC(gbs))},
		)
	}
	return points
}

// fig10 sweeps the NoC bandwidth and reports performance vs NoC power.
func (r *Runner) fig10() (string, error) {
	points := r.fig10Points()
	baseCfg := r.scaled(nuba.Baseline())
	t := &metrics.Table{Header: []string{"Config", "NoC GB/s", "Perf vs UBA@1400", "NoC power (W)"}}
	for _, p := range points {
		var speedups []float64
		var power float64
		for _, b := range r.opts.Benchmarks {
			base, err := r.run(baseCfg, b)
			if err != nil {
				return "", err
			}
			res, err := r.run(p.cfg, b)
			if err != nil {
				return "", err
			}
			speedups = append(speedups, float64(base.Stats.Cycles)/float64(res.Stats.Cycles))
			power += energy.NoCPowerW(energy.Breakdown{NoCNJ: res.Stats.NoCEnergyNJ},
				res.Stats.Cycles, p.cfg.CoreClockGHz)
		}
		power /= float64(len(r.opts.Benchmarks))
		t.AddRow(p.arch, fmt.Sprintf("%.0f", p.cfg.NoCBandwidthGBs), pct(summarize(speedups)), f2(power))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	bld.WriteString("(paper: NUBA@700 ~= UBA@5600 performance at 12.1x / 9.4x lower NoC power)\n")
	return bld.String(), nil
}

// fig11Configs returns the Figure 11 comparison set.
func (r *Runner) fig11Configs() (base, ft, rr, lab nuba.Config) {
	base = r.scaled(nuba.Baseline())
	ft = r.scaled(nuba.NUBAConfig())
	ft.Placement = nuba.FirstTouch
	rr = r.scaled(nuba.NUBAConfig())
	rr.Placement = nuba.RoundRobin
	lab = r.scaled(nuba.NUBAConfig())
	lab.Placement = nuba.LAB
	return base, ft, rr, lab
}

// fig11 compares page allocation policies on NUBA (no replication, to
// isolate placement as in the paper's Figure 11 with MDR active — the
// paper applies MDR; we follow it).
func (r *Runner) fig11() (string, error) {
	base, ft, rr, lab := r.fig11Configs()
	t := &metrics.Table{Header: []string{"Bench", "Class", "FT vs UBA", "RR vs UBA", "LAB vs UBA"}}
	var ftS, rrS, labS []float64
	for _, b := range r.opts.Benchmarks {
		ub, err := r.run(base, b)
		if err != nil {
			return "", err
		}
		rf, err := r.run(ft, b)
		if err != nil {
			return "", err
		}
		rrr, err := r.run(rr, b)
		if err != nil {
			return "", err
		}
		rl, err := r.run(lab, b)
		if err != nil {
			return "", err
		}
		cls := "low"
		if b.High {
			cls = "high"
		}
		ftS = append(ftS, float64(ub.Stats.Cycles)/float64(rf.Stats.Cycles))
		rrS = append(rrS, float64(ub.Stats.Cycles)/float64(rrr.Stats.Cycles))
		labS = append(labS, float64(ub.Stats.Cycles)/float64(rl.Stats.Cycles))
		t.AddRow(b.Abbr, cls, pct(speedupPct(rf, ub)), pct(speedupPct(rrr, ub)), pct(speedupPct(rl, ub)))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	fmt.Fprintf(&bld, "harmonic means vs UBA: FT %+.1f%%  RR %+.1f%%  LAB %+.1f%%\n",
		summarize(ftS), summarize(rrS), summarize(labS))
	bld.WriteString("(paper: LAB +14.8% vs UBA; LAB beats FT by 88.9% and RR by 14.3% on NUBA)\n")
	return bld.String(), nil
}

// fig12Configs returns the Figure 12 replication-policy set.
func (r *Runner) fig12Configs() (noRep, fullRep, mdr nuba.Config) {
	noRep = r.scaled(nuba.NUBAConfig())
	noRep.Replication = nuba.NoRep
	fullRep = r.scaled(nuba.NUBAConfig())
	fullRep.Replication = nuba.FullRep
	mdr = r.scaled(nuba.NUBAConfig())
	return noRep, fullRep, mdr
}

// fig12 compares replication policies on NUBA with LAB placement.
func (r *Runner) fig12() (string, error) {
	noRep, fullRep, mdr := r.fig12Configs()
	t := &metrics.Table{Header: []string{"Bench", "Class", "Full-Rep", "MDR", "LLCmiss No/Full"}}
	var fullS, mdrS []float64
	for _, b := range r.opts.Benchmarks {
		rn, err := r.run(noRep, b)
		if err != nil {
			return "", err
		}
		rf, err := r.run(fullRep, b)
		if err != nil {
			return "", err
		}
		rm, err := r.run(mdr, b)
		if err != nil {
			return "", err
		}
		cls := "low"
		if b.High {
			cls = "high"
		}
		fullS = append(fullS, float64(rn.Stats.Cycles)/float64(rf.Stats.Cycles))
		mdrS = append(mdrS, float64(rn.Stats.Cycles)/float64(rm.Stats.Cycles))
		t.AddRow(b.Abbr, cls, pct(speedupPct(rf, rn)), pct(speedupPct(rm, rn)),
			fmt.Sprintf("%.2f/%.2f", 1-rn.Stats.LLCHitRate(), 1-rf.Stats.LLCHitRate()))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	fmt.Fprintf(&bld, "harmonic means vs No-Rep: Full-Rep %+.1f%%  MDR %+.1f%%\n", summarize(fullS), summarize(mdrS))
	bld.WriteString("(paper: MDR +15.1% vs No-Rep; Full-Rep helps 2MM/AN/SN/RN, hurts SC/BT/GRU/BICG)\n")
	return bld.String(), nil
}

// fig13 reports the energy breakdown.
func (r *Runner) fig13() (string, error) {
	runs, err := r.isoRuns()
	if err != nil {
		return "", err
	}
	t := &metrics.Table{Header: []string{"Bench", "UBA NoC%", "NUBA NoC%", "NoC energy vs UBA", "Total vs UBA"}}
	var nocRatios, totRatios []float64
	for _, b := range r.opts.Benchmarks {
		u := runs["UBA-mem"][b.Abbr].Stats
		nb := runs["NUBA"][b.Abbr].Stats
		uNoC := u.NoCEnergyNJ / u.TotalEnergyNJ() * 100
		nNoC := nb.NoCEnergyNJ / nb.TotalEnergyNJ() * 100
		nocR := (nb.NoCEnergyNJ/u.NoCEnergyNJ - 1) * 100
		totR := (nb.TotalEnergyNJ()/u.TotalEnergyNJ() - 1) * 100
		nocRatios = append(nocRatios, nb.NoCEnergyNJ/u.NoCEnergyNJ)
		totRatios = append(totRatios, nb.TotalEnergyNJ()/u.TotalEnergyNJ())
		t.AddRow(b.Abbr, f2(uNoC), f2(nNoC), pct(nocR), pct(totR))
	}
	var mn, mt float64
	for i := range nocRatios {
		mn += nocRatios[i]
		mt += totRatios[i]
	}
	mn /= float64(len(nocRatios))
	mt /= float64(len(totRatios))
	var bld strings.Builder
	bld.WriteString(t.String())
	fmt.Fprintf(&bld, "mean NUBA/UBA: NoC energy %.2fx, total energy %.2fx (paper: NoC -54.5%%, total -16.0%%)\n", mn, mt)
	return bld.String(), nil
}

// sensitivity runs UBA vs NUBA under a config transform and reports the
// harmonic-mean NUBA improvement.
func (r *Runner) sensitivity(label string, variants map[string]func(nuba.Config) nuba.Config) (string, error) {
	t := &metrics.Table{Header: []string{label, "NUBA vs UBA (low)", "(high)", "(all)"}}
	for _, name := range sortedKeys(variants) {
		f := variants[name]
		uba := f(r.scaled(nuba.Baseline()))
		nub := f(r.scaled(nuba.NUBAConfig()))
		var low, high []float64
		for _, b := range r.opts.Benchmarks {
			ub, err := r.run(uba, b)
			if err != nil {
				return "", err
			}
			nb, err := r.run(nub, b)
			if err != nil {
				return "", err
			}
			s := float64(ub.Stats.Cycles) / float64(nb.Stats.Cycles)
			if b.High {
				high = append(high, s)
			} else {
				low = append(low, s)
			}
		}
		all := append(append([]float64{}, low...), high...)
		t.AddRow(name, pct(summarize(low)), pct(summarize(high)), pct(summarize(all)))
	}
	return t.String(), nil
}

// The Figure 14 sensitivity variants, shared between the renderers and
// the engine's job plans. Immutable after init.
var (
	fig14SizeVariants = map[string]func(nuba.Config) nuba.Config{
		"0.5x (32 SMs)": func(c nuba.Config) nuba.Config { return c.Scale(0.5) },
		"1x (64 SMs)":   func(c nuba.Config) nuba.Config { return c },
		"2x (128 SMs)":  func(c nuba.Config) nuba.Config { return c.Scale(2) },
	}
	fig14PartitionVariants = map[string]func(nuba.Config) nuba.Config{
		"1 slice":  func(c nuba.Config) nuba.Config { return c.WithPartition(1) },
		"2 slices": func(c nuba.Config) nuba.Config { return c },
		"4 slices": func(c nuba.Config) nuba.Config { return c.WithPartition(4) },
	}
	fig14LLCVariants = map[string]func(nuba.Config) nuba.Config{
		"0.5x (3 MB)": func(c nuba.Config) nuba.Config { return c.WithLLCCapacity(0.5) },
		"1x (6 MB)":   func(c nuba.Config) nuba.Config { return c },
		"2x (12 MB)":  func(c nuba.Config) nuba.Config { return c.WithLLCCapacity(2) },
	}
	fig14PageVariants = map[string]func(nuba.Config) nuba.Config{
		"4 KB": func(c nuba.Config) nuba.Config { return c },
		"2 MB": func(c nuba.Config) nuba.Config { c.PageSize = 2 << 20; return c },
	}
)

func (r *Runner) fig14Size() (string, error) {
	return r.sensitivity("GPU size", fig14SizeVariants)
}

func (r *Runner) fig14Partition() (string, error) {
	return r.sensitivity("Slices/partition", fig14PartitionVariants)
}

func (r *Runner) fig14LLC() (string, error) {
	return r.sensitivity("LLC capacity", fig14LLCVariants)
}

func (r *Runner) fig14Page() (string, error) {
	return r.sensitivity("Page size", fig14PageVariants)
}

// fig14AddrMapConfigs returns the UBA+PAE versus NUBA pair.
func (r *Runner) fig14AddrMapConfigs() (ubaPAE, nub nuba.Config) {
	ubaPAE = r.scaled(nuba.Baseline())
	ubaPAE.AddressMap = nuba.PAE
	nub = r.scaled(nuba.NUBAConfig())
	return ubaPAE, nub
}

// fig14AddrMap compares NUBA (fixed-channel) against UBA with PAE.
func (r *Runner) fig14AddrMap() (string, error) {
	ubaPAE, nub := r.fig14AddrMapConfigs()
	var low, high []float64
	for _, b := range r.opts.Benchmarks {
		ub, err := r.run(ubaPAE, b)
		if err != nil {
			return "", err
		}
		nb, err := r.run(nub, b)
		if err != nil {
			return "", err
		}
		s := float64(ub.Stats.Cycles) / float64(nb.Stats.Cycles)
		if b.High {
			high = append(high, s)
		} else {
			low = append(low, s)
		}
	}
	var bld strings.Builder
	groupSummary(&bld, "NUBA vs UBA+PAE", low, high)
	bld.WriteString("(paper: +19.7% average improvement over UBA with PAE)\n")
	return bld.String(), nil
}

// fig14LABThresholds are the Figure 14 LAB sweep points.
var fig14LABThresholds = []float64{0.8, 0.9, 0.95}

// fig14LABConfigs returns the UBA baseline plus one NUBA(No-Rep) config
// per swept LAB threshold, in sweep order.
func (r *Runner) fig14LABConfigs() (base nuba.Config, variants []nuba.Config) {
	base = r.scaled(nuba.Baseline())
	for _, th := range fig14LABThresholds {
		cfg := r.scaled(nuba.NUBAConfig())
		cfg.Replication = nuba.NoRep
		cfg.LABThreshold = th
		variants = append(variants, cfg)
	}
	return base, variants
}

func (r *Runner) fig14LAB() (string, error) {
	base, variants := r.fig14LABConfigs()
	t := &metrics.Table{Header: []string{"LAB threshold", "vs UBA (low)", "(high)", "(all)"}}
	for i, th := range fig14LABThresholds {
		cfg := variants[i]
		var low, high []float64
		for _, b := range r.opts.Benchmarks {
			ub, err := r.run(base, b)
			if err != nil {
				return "", err
			}
			nb, err := r.run(cfg, b)
			if err != nil {
				return "", err
			}
			s := float64(ub.Stats.Cycles) / float64(nb.Stats.Cycles)
			if b.High {
				high = append(high, s)
			} else {
				low = append(low, s)
			}
		}
		all := append(append([]float64{}, low...), high...)
		t.AddRow(fmt.Sprintf("%.2f", th), pct(summarize(low)), pct(summarize(high)), pct(summarize(all)))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	bld.WriteString("(paper: 0.8 -> +14.5%, 0.9 -> +14.8%, 0.95 -> +13.1% vs UBA)\n")
	return bld.String(), nil
}

// fig16Configs returns the Figure 16 monolithic/MCM comparison set.
func (r *Runner) fig16Configs() (monoUBA, monoNUBA, mcmUBA, mcmNUBA nuba.Config) {
	monoUBA = r.scaled(nuba.Baseline().Scale(2))
	monoNUBA = r.scaled(nuba.NUBAConfig().Scale(2))
	mcmUBA = r.scaled(nuba.MCMConfig(nuba.UBAMem))
	mcmNUBA = r.scaled(nuba.MCMConfig(nuba.NUBA))
	return monoUBA, monoNUBA, mcmUBA, mcmNUBA
}

// fig16 compares UBA and NUBA in the four-module MCM configuration
// against the monolithic 2x GPU.
func (r *Runner) fig16() (string, error) {
	monoUBA, monoNUBA, mcmUBA, mcmNUBA := r.fig16Configs()
	var monoLow, monoHigh, mcmLow, mcmHigh []float64
	for _, b := range r.opts.Benchmarks {
		mu, err := r.run(monoUBA, b)
		if err != nil {
			return "", err
		}
		mn, err := r.run(monoNUBA, b)
		if err != nil {
			return "", err
		}
		xu, err := r.run(mcmUBA, b)
		if err != nil {
			return "", err
		}
		xn, err := r.run(mcmNUBA, b)
		if err != nil {
			return "", err
		}
		sMono := float64(mu.Stats.Cycles) / float64(mn.Stats.Cycles)
		sMCM := float64(xu.Stats.Cycles) / float64(xn.Stats.Cycles)
		if b.High {
			monoHigh = append(monoHigh, sMono)
			mcmHigh = append(mcmHigh, sMCM)
		} else {
			monoLow = append(monoLow, sMono)
			mcmLow = append(mcmLow, sMCM)
		}
	}
	var bld strings.Builder
	groupSummary(&bld, "monolithic 2x NUBA vs UBA", monoLow, monoHigh)
	groupSummary(&bld, "MCM 4-module NUBA vs UBA ", mcmLow, mcmHigh)
	bld.WriteString("(paper: +30.1% monolithic vs +40.0% MCM)\n")
	return bld.String(), nil
}

// altConfigs returns the §7.6 placement-alternative comparison set.
func (r *Runner) altConfigs() (base, lab, mig, rep nuba.Config) {
	base = r.scaled(nuba.Baseline())
	lab = r.scaled(nuba.NUBAConfig())
	mig = r.scaled(nuba.NUBAConfig())
	mig.Placement = nuba.Migration
	rep = r.scaled(nuba.NUBAConfig())
	rep.Placement = nuba.PageReplication
	return base, lab, mig, rep
}

// altPlacement compares LAB against the §7.6 alternatives.
func (r *Runner) altPlacement() (string, error) {
	base, lab, mig, rep := r.altConfigs()
	t := &metrics.Table{Header: []string{"Bench", "Class", "LAB", "Migration", "PageRep", "Migrations", "PageReplicas"}}
	for _, b := range r.opts.Benchmarks {
		ub, err := r.run(base, b)
		if err != nil {
			return "", err
		}
		rl, err := r.run(lab, b)
		if err != nil {
			return "", err
		}
		rm, err := r.run(mig, b)
		if err != nil {
			return "", err
		}
		rp, err := r.run(rep, b)
		if err != nil {
			return "", err
		}
		cls := "low"
		if b.High {
			cls = "high"
		}
		t.AddRow(b.Abbr, cls, pct(speedupPct(rl, ub)), pct(speedupPct(rm, ub)), pct(speedupPct(rp, ub)),
			fmt.Sprintf("%d", rm.Stats.PageMigrations), fmt.Sprintf("%d", rp.Stats.PageReplicas))
	}
	var bld strings.Builder
	bld.WriteString(t.String())
	bld.WriteString("(paper: migration/replication ~+26% on low-sharing but up to -80.4% on high-sharing)\n")
	return bld.String(), nil
}
