package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/nuba-gpu/nuba/internal/workload"
)

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != len(All()) || len(names) < 15 {
		t.Fatalf("names: %v", names)
	}
	for _, n := range names {
		e, err := ByName(n)
		if err != nil || e.Name != n {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable2RunsWithoutSimulation(t *testing.T) {
	r := NewRunner(Options{})
	out, err := r.table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workload.Suite() {
		if !strings.Contains(out, b.Abbr) {
			t.Fatalf("table2 missing %s:\n%s", b.Abbr, out)
		}
	}
}

func TestFig3SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	bp, _ := workload.ByAbbr("BP")
	sg, _ := workload.ByAbbr("SGEMM")
	r := NewRunner(Options{Scale: 0.125, Benchmarks: []workload.Benchmark{bp, sg}})
	out, err := r.fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BP") || !strings.Contains(out, "SGEMM") {
		t.Fatalf("fig3 output:\n%s", out)
	}
}

// TestParallelMatchesSerial is the engine's determinism contract: a
// serial run (jobs=1) and a jobs=4 run of the same experiment must
// produce byte-identical report text and identical cycle counts for
// every (config, benchmark) pair.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	bp, _ := workload.ByAbbr("BP")
	leu, _ := workload.ByAbbr("LEU")
	benches := []workload.Benchmark{bp, leu}
	e, err := ByName("fig7")
	if err != nil {
		t.Fatal(err)
	}

	serial := NewRunner(Options{Scale: 0.125, Benchmarks: benches, Jobs: 1})
	serialOut, err := serial.Execute(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	par := NewRunner(Options{Scale: 0.125, Benchmarks: benches, Jobs: 4})
	parOut, err := par.Execute(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}

	if serialOut.Text != parOut.Text {
		t.Fatalf("jobs=4 report differs from jobs=1:\n--- serial ---\n%s\n--- jobs=4 ---\n%s", serialOut.Text, parOut.Text)
	}
	if len(serialOut.Failures) != 0 || len(parOut.Failures) != 0 {
		t.Fatalf("unexpected job failures: serial %v, parallel %v", serialOut.Failures, parOut.Failures)
	}
	if len(serial.cache) == 0 || len(serial.cache) != len(par.cache) {
		t.Fatalf("cache sizes differ: serial %d, parallel %d", len(serial.cache), len(par.cache))
	}
	for key, se := range serial.cache {
		pe, ok := par.cache[key]
		if !ok {
			t.Fatalf("parallel runner missing run %q", key)
		}
		if se.res.Stats.Cycles != pe.res.Stats.Cycles {
			t.Fatalf("run %q: serial %d cycles, parallel %d cycles",
				key, se.res.Stats.Cycles, pe.res.Stats.Cycles)
		}
	}
}

// TestExecutePrefetchesPlan checks that the engine's job plan covers the
// runs the renderer consumes: after Prefetch, rendering must hit the
// cache only (no new simulations).
func TestExecutePrefetchesPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	bp, _ := workload.ByAbbr("BP")
	r := NewRunner(Options{Scale: 0.125, Benchmarks: []workload.Benchmark{bp}, Jobs: 2})
	e, _ := ByName("fig12")
	if err := r.Prefetch(context.Background(), e.Plan(r)); err != nil {
		t.Fatal(err)
	}
	before := len(r.cache)
	if before == 0 {
		t.Fatal("plan enumerated no jobs")
	}
	if _, err := e.Run(r); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != before {
		t.Fatalf("rendering simulated %d runs the plan missed", len(r.cache)-before)
	}
}

// TestCanceledContextStopsEngine: a context canceled mid-run stops
// scheduling promptly and surfaces ctx.Err().
func TestCanceledContextStopsEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	bp, _ := workload.ByAbbr("BP")
	leu, _ := workload.ByAbbr("LEU")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(Options{
		Scale: 0.125, Benchmarks: []workload.Benchmark{bp, leu}, Jobs: 1,
		// Cancel as soon as the first run completes; the engine must
		// then refuse to schedule the remaining jobs.
		OnEvent: func(Event) { cancel() },
	})
	e, _ := ByName("fig7")
	_, err := r.Execute(ctx, e)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := len(r.cache); got >= 8 {
		t.Fatalf("engine kept scheduling after cancel: %d runs cached", got)
	}
}

// TestPreCanceledContext: an already-canceled context returns before any
// simulation starts.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Options{Jobs: 4})
	e, _ := ByName("fig7")
	_, err := r.Execute(ctx, e)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(r.cache) != 0 {
		t.Fatalf("simulated %d runs under a canceled context", len(r.cache))
	}
}

func TestFig7SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	bp, _ := workload.ByAbbr("BP")
	r := NewRunner(Options{Scale: 0.125, Benchmarks: []workload.Benchmark{bp}})
	out, err := r.fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NUBA") || !strings.Contains(out, "%") {
		t.Fatalf("fig7 output:\n%s", out)
	}
	// Runs are memoized: a second experiment sharing configurations must
	// not re-simulate (fast path check via the cache size).
	if len(r.cache) == 0 {
		t.Fatal("runner cache empty")
	}
	before := len(r.cache)
	if _, err := r.fig9(); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != before {
		t.Fatal("fig9 re-simulated runs fig7 already did")
	}
}
