package experiments

import (
	"strings"
	"testing"

	"github.com/nuba-gpu/nuba/internal/workload"
)

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != len(All()) || len(names) < 15 {
		t.Fatalf("names: %v", names)
	}
	for _, n := range names {
		e, err := ByName(n)
		if err != nil || e.Name != n {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable2RunsWithoutSimulation(t *testing.T) {
	r := NewRunner(Options{})
	out, err := r.table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workload.Suite() {
		if !strings.Contains(out, b.Abbr) {
			t.Fatalf("table2 missing %s:\n%s", b.Abbr, out)
		}
	}
}

func TestFig3SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	bp, _ := workload.ByAbbr("BP")
	sg, _ := workload.ByAbbr("SGEMM")
	r := NewRunner(Options{Scale: 0.125, Benchmarks: []workload.Benchmark{bp, sg}})
	out, err := r.fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BP") || !strings.Contains(out, "SGEMM") {
		t.Fatalf("fig3 output:\n%s", out)
	}
}

func TestFig7SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	bp, _ := workload.ByAbbr("BP")
	r := NewRunner(Options{Scale: 0.125, Benchmarks: []workload.Benchmark{bp}})
	out, err := r.fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NUBA") || !strings.Contains(out, "%") {
		t.Fatalf("fig7 output:\n%s", out)
	}
	// Runs are memoized: a second experiment sharing configurations must
	// not re-simulate (fast path check via the cache size).
	if len(r.cache) == 0 {
		t.Fatal("runner cache empty")
	}
	before := len(r.cache)
	if _, err := r.fig9(); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != before {
		t.Fatal("fig9 re-simulated runs fig7 already did")
	}
}
