// Package sim provides the low-level primitives of the NUBA cycle-level
// simulator: the simulation clock, deterministic pseudo-random numbers,
// bounded queues, bandwidth-limited links and the memory request type that
// flows between the SMs, caches, NoC and DRAM models.
//
// The simulator is cycle-driven: the core assembly ticks every component
// once per core clock cycle (1.4 GHz in the baseline configuration) in a
// fixed order. Components communicate exclusively through Queue and Link
// values, which makes every run deterministic for a given configuration
// and seed.
package sim

// Cycle counts core clock cycles since the start of a simulation. The
// baseline core clock is 1.4 GHz, so one Cycle is ~0.714 ns.
type Cycle = int64

// Never is a sentinel wake-up hint meaning "no self-scheduled work": the
// component cannot make progress until an external event (a message
// arrival, a fill, a kernel launch) re-activates it. It is far beyond any
// reachable cycle count yet small enough that arithmetic on it cannot
// overflow.
const Never Cycle = 1 << 62

// ReqKind identifies the operation a memory request performs.
type ReqKind uint8

// Memory request kinds.
const (
	// Load is a global memory read of one cache line.
	Load ReqKind = iota
	// Store is a global memory write. L1 caches are write-through and
	// write-no-allocate, so stores always propagate to the LLC.
	Store
	// Atomic is a read-modify-write handled at the LLC (the raster
	// operation units in the paper's terminology). Atomics are never
	// replicated and always execute at the home slice.
	Atomic
)

// String returns a short human-readable name for the request kind.
func (k ReqKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Atomic:
		return "atomic"
	default:
		return "unknown"
	}
}

// MemReq is a single cache-line-sized memory transaction after coalescing.
// A MemReq is created by an SM's load/store unit, travels through the L1,
// the interconnect, an LLC slice and possibly DRAM, and is finally returned
// to the SM as a reply. The same value is reused for the reply to avoid
// allocation churn; direction is implied by which queue carries it.
type MemReq struct {
	// ID is a globally unique request identifier, assigned by the SM.
	ID uint64
	// Kind is the operation performed.
	Kind ReqKind
	// Addr is the physical address of the first byte of the transaction.
	// Line requests are aligned to the 128 B line size.
	Addr uint64
	// VAddr is the virtual address that produced Addr, kept for
	// sharing-degree accounting and debugging.
	VAddr uint64
	// Size is the transaction size in bytes (always the 128 B line size
	// for global accesses in this model).
	Size uint32
	// ReadOnly marks requests produced by ld.global.ro instructions,
	// i.e. loads that the compiler proved touch read-only data within
	// the kernel. Only these are candidates for MDR replication.
	ReadOnly bool
	// SM is the index of the issuing SM.
	SM int
	// Warp is the issuing hardware warp slot within the SM.
	Warp int
	// DstReg is the destination register the reply feeds (-1 for stores).
	DstReg int8
	// Slice is the home LLC slice as determined by the address mapping
	// policy. For replicated requests this remains the home slice; the
	// replica slice is carried in ReplicaSlice.
	Slice int
	// Channel is the home memory channel.
	Channel int
	// ReplicaSlice is the local slice that holds (or will hold) a
	// replica when the request takes the replication path; -1 otherwise.
	ReplicaSlice int
	// Issue is the cycle at which the request left the SM's L1.
	Issue Cycle
	// Done is the cycle at which the reply reached the SM.
	Done Cycle
	// Remote records whether the request crossed the inter-partition NoC.
	Remote bool
	// Replicated records whether the request was serviced through the
	// replication path (hit or fill in a local replica).
	Replicated bool
	// Pending is the number of outstanding sub-operations; used by
	// components that fan a request out (e.g. a store plus a coherence
	// invalidation in the SM-side UBA).
	Pending int8
	// MergedBehind reports that the request was merged into an existing
	// MSHR entry rather than issued to memory.
	MergedBehind bool
	// Inval marks an SM-side UBA coherence invalidation: the receiving
	// slice drops the line and produces no reply.
	Inval bool
}

// IsWrite reports whether the request modifies memory.
func (r *MemReq) IsWrite() bool { return r.Kind == Store || r.Kind == Atomic }

// Request and reply sizes in bytes, matching the paper's accounting: a read
// request carries only the 8 B address; a reply or a write carries the
// 128 B line plus 8 B of control.
const (
	// LineSize is the cache line and memory transaction size.
	LineSize = 128
	// CtrlBytes is the per-message control overhead.
	CtrlBytes = 8
	// ReqBytes is the size of a read request or a write acknowledgement.
	ReqBytes = CtrlBytes
	// DataBytes is the size of a message that carries a full line
	// (read reply or write request).
	DataBytes = LineSize + CtrlBytes
)

// MessageBytes returns the on-wire size of a request in the given
// direction. Requests carrying data (stores, replies to loads) cost
// DataBytes; address-only messages cost ReqBytes.
func MessageBytes(r *MemReq, reply bool) int {
	if reply {
		if r.Kind == Store {
			return ReqBytes // write acknowledgement
		}
		return DataBytes // load/atomic reply with data
	}
	if r.IsWrite() {
		return DataBytes // write request carries the line
	}
	return ReqBytes // read request carries only the address
}
