package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push into full queue accepted")
	}
	if !q.Full() || q.Len() != 4 {
		t.Fatalf("expected full queue of 4, got len=%d", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 1000; i++ {
		if !q.Push(i) {
			t.Fatalf("unbounded push rejected at %d", i)
		}
	}
	if q.Full() {
		t.Fatal("unbounded queue reports full")
	}
	for i := 0; i < 1000; i++ {
		if v, _ := q.Pop(); v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestQueueAtAndRemoveAt(t *testing.T) {
	q := NewQueue[int](8)
	// Exercise wraparound: push/pop a few first.
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	for i := 5; i < 9; i++ {
		q.Push(i)
	}
	// Queue now holds 2..8.
	for i := 0; i < q.Len(); i++ {
		if q.At(i) != i+2 {
			t.Fatalf("At(%d)=%d want %d", i, q.At(i), i+2)
		}
	}
	v := q.RemoveAt(2) // removes 4
	if v != 4 {
		t.Fatalf("RemoveAt(2)=%d want 4", v)
	}
	want := []int{2, 3, 5, 6, 7, 8}
	for i, w := range want {
		if q.At(i) != w {
			t.Fatalf("after remove, At(%d)=%d want %d", i, q.At(i), w)
		}
	}
}

func TestQueueProperty(t *testing.T) {
	// Property: a Queue behaves exactly like a slice-based FIFO under any
	// push/pop sequence.
	f := func(ops []uint8) bool {
		q := NewQueue[int](0)
		var model []int
		next := 0
		for _, op := range ops {
			if op%3 == 0 && len(model) > 0 {
				got, _ := q.Pop()
				want := model[0]
				model = model[1:]
				if got != want {
					return false
				}
			} else {
				q.Push(next)
				model = append(model, next)
				next++
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkLatencyAndOrder(t *testing.T) {
	l := NewLink[int](5, 16, 0)
	if !l.Send(10, 42, 16) {
		t.Fatal("send rejected")
	}
	if _, ok := l.Pop(14); ok {
		t.Fatal("message delivered before latency+serialization")
	}
	v, ok := l.Pop(16) // 1 cycle serialization + 5 latency
	if !ok || v != 42 {
		t.Fatalf("Pop(16) = %d, %v", v, ok)
	}
}

func TestLinkSerialization(t *testing.T) {
	// A 136 B message on a 16 B link occupies ceil(136/16)=9 cycles.
	l := NewLink[int](0, 16, 0)
	if !l.Send(0, 1, 136) {
		t.Fatal("first send rejected")
	}
	if l.CanSend(0) {
		t.Fatal("link should be backlogged within the same cycle")
	}
	if !l.CanSend(9) {
		t.Fatal("link should be free after 9 cycles")
	}
	if _, ok := l.Pop(8); ok {
		t.Fatal("delivered before serialization finished")
	}
	if _, ok := l.Pop(9); !ok {
		t.Fatal("not delivered after serialization")
	}
}

func TestLinkByteBudgetSharing(t *testing.T) {
	// Many small messages share a wide link's cycle instead of
	// serializing one per cycle.
	l := NewLink[int](0, 64, 0)
	sent := 0
	for i := 0; i < 8; i++ {
		if l.Send(0, i, 8) {
			sent++
		}
	}
	if sent != 8 {
		t.Fatalf("expected 8x8B to share a 64B cycle, sent %d", sent)
	}
	// Next cycle the backlog has drained.
	if !l.CanSend(1) {
		t.Fatal("expected link free on next cycle")
	}
}

func TestLinkBandwidthConservation(t *testing.T) {
	// Long-run throughput cannot exceed width bytes per cycle.
	l := NewLink[int](2, 16, 0)
	var sentBytes int64
	for now := Cycle(0); now < 1000; now++ {
		for l.CanSend(now) {
			if !l.Send(now, 0, 40) {
				break
			}
			sentBytes += 40
		}
		for {
			if _, ok := l.Pop(now); !ok {
				break
			}
		}
	}
	if max := int64(1000*16 + 40); sentBytes > max {
		t.Fatalf("link over-delivered: %d bytes > %d", sentBytes, max)
	}
	if sentBytes < 1000*16*9/10 {
		t.Fatalf("link under-delivered badly: %d bytes", sentBytes)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a = NewRNG(7)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Adjacent inputs should map to well-separated outputs.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		h := Mix(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
	// Low bits should be roughly balanced.
	ones := 0
	for i := uint64(0); i < 1000; i++ {
		if Mix(i)&1 == 1 {
			ones++
		}
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("low bit biased: %d/1000", ones)
	}
}

func TestMessageBytes(t *testing.T) {
	load := &MemReq{Kind: Load}
	store := &MemReq{Kind: Store}
	atomic := &MemReq{Kind: Atomic}
	cases := []struct {
		req   *MemReq
		reply bool
		want  int
	}{
		{load, false, ReqBytes},
		{load, true, DataBytes},
		{store, false, DataBytes},
		{store, true, ReqBytes},
		{atomic, false, DataBytes},
		{atomic, true, DataBytes},
	}
	for i, c := range cases {
		if got := MessageBytes(c.req, c.reply); got != c.want {
			t.Errorf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

func TestReqKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Atomic.String() != "atomic" {
		t.Fatal("bad kind names")
	}
}
