package sim

// Link models a unidirectional, bandwidth-limited, fixed-latency wire
// between two components: a NUBA point-to-point SM<->LLC link, a crossbar
// output port, an LLC<->memory-controller connection or an MCM
// inter-module link.
//
// A message of b bytes occupies the link input for ceil(b/width) cycles
// (serialization) and is delivered latency cycles after its last flit left.
// Delivery is in order. The receiver pops messages when it is ready; a
// bounded output buffer propagates back-pressure to senders.
type Link[T any] struct {
	latency Cycle
	width   int // bytes per cycle
	// Serialization is byte-budget based: backlog is the number of
	// injected bytes not yet drained at width bytes per cycle
	// (lastCycle tracks the drain). Multiple small messages may share a
	// cycle; a large message occupies several. This matters for wide
	// links carrying many small control messages (e.g. coherence
	// invalidations), which must not serialize at one message per cycle.
	backlog   int
	lastCycle Cycle
	out       *Queue[linkItem[T]]

	// BusyCycles accumulates the serialization cycles consumed, which the
	// energy model converts to dynamic link energy.
	BusyCycles int64
	// Bytes accumulates payload bytes accepted.
	Bytes int64
	// Messages accumulates messages accepted.
	Messages int64
}

type linkItem[T any] struct {
	ready Cycle
	v     T
}

// NewLink returns a link with the given propagation latency in cycles,
// width in bytes per cycle, and output buffer capacity in messages
// (0 = unbounded). Width must be positive.
func NewLink[T any](latency Cycle, width, buffer int) *Link[T] {
	if width <= 0 {
		panic("sim: Link width must be positive")
	}
	if latency < 0 {
		panic("sim: Link latency must be non-negative")
	}
	return &Link[T]{latency: latency, width: width, out: NewQueue[linkItem[T]](buffer)}
}

// Width returns the link width in bytes per cycle.
func (l *Link[T]) Width() int { return l.width }

// Latency returns the propagation latency in cycles.
func (l *Link[T]) Latency() Cycle { return l.latency }

// drain advances the byte backlog to cycle now.
func (l *Link[T]) drain(now Cycle) {
	if now > l.lastCycle {
		drained := int(now-l.lastCycle) * l.width
		if drained >= l.backlog {
			l.backlog = 0
		} else {
			l.backlog -= drained
		}
		l.lastCycle = now
	}
}

// CanSend reports whether a message may be injected at cycle now: less
// than one cycle of serialization backlog remains and the output buffer
// has room.
func (l *Link[T]) CanSend(now Cycle) bool {
	l.drain(now)
	return l.backlog < l.width && !l.out.Full()
}

// Send injects a message of the given byte size at cycle now. It reports
// whether the link accepted it; callers must check CanSend or the return
// value and retry on back-pressure.
func (l *Link[T]) Send(now Cycle, v T, bytes int) bool {
	if !l.CanSend(now) {
		return false
	}
	if bytes < 1 {
		bytes = 1
	}
	l.backlog += bytes
	ser := Cycle((l.backlog + l.width - 1) / l.width)
	l.out.Push(linkItem[T]{ready: now + ser + l.latency, v: v})
	l.BusyCycles += int64((bytes + l.width - 1) / l.width)
	l.Bytes += int64(bytes)
	l.Messages++
	return true
}

// Peek returns the message at the head of the link if it has arrived by
// cycle now, without consuming it.
func (l *Link[T]) Peek(now Cycle) (v T, ok bool) {
	it, ok := l.out.Peek()
	if !ok || it.ready > now {
		var zero T
		return zero, false
	}
	return it.v, true
}

// Pop consumes and returns the message at the head of the link if it has
// arrived by cycle now.
func (l *Link[T]) Pop(now Cycle) (v T, ok bool) {
	it, ok := l.out.Peek()
	if !ok || it.ready > now {
		var zero T
		return zero, false
	}
	l.out.Pop()
	return it.v, true
}

// Pending returns the number of in-flight or waiting messages.
func (l *Link[T]) Pending() int { return l.out.Len() }

// NextReady returns the arrival cycle of the head message, or Never when
// the link is empty. Delivery is in order, so the head's arrival bounds
// every later message: no receiver can pop anything before it.
func (l *Link[T]) NextReady() Cycle {
	it, ok := l.out.Peek()
	if !ok {
		return Never
	}
	return it.ready
}

// StateSig returns a signature of the link's semantically observable
// state: the in-flight message count and each message's arrival cycle.
// The serialization drain (backlog, lastCycle) and the accounting
// counters are excluded — drain is pure time progress re-derived from
// the clock on the next Send, so it may advance inside a proven-idle
// window without invalidating the wake hint.
func (l *Link[T]) StateSig() uint64 {
	h := MixSig(SigSeed, uint64(l.out.Len()))
	for i := 0; i < l.out.Len(); i++ {
		h = MixSig(h, uint64(l.out.At(i).ready))
	}
	return h
}

// Utilization returns the fraction of cycles the link input was busy over
// the elapsed cycle count, a direct input to the NoC power model.
func (l *Link[T]) Utilization(elapsed Cycle) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(l.BusyCycles) / float64(elapsed)
}
