package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). The simulator never uses math/rand or wall-clock time so
// that every run is reproducible from its configuration seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced by a
// fixed non-zero constant because the all-zero state is a fixed point of
// the xorshift transition.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Mix hashes x with a 64-bit finalizer (splitmix64). It is used wherever
// the simulator needs a stateless, reproducible "random" function of an
// address or index, e.g. synthetic irregular access patterns and the PAE
// address entropy harvest.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
