package sim

import "testing"

func TestMixSigOrderSensitive(t *testing.T) {
	a := MixSig(MixSig(SigSeed, 1), 2)
	b := MixSig(MixSig(SigSeed, 2), 1)
	if a == b {
		t.Error("MixSig is order-insensitive: swapped values collide")
	}
	if MixSig(SigSeed, 0) == SigSeed {
		t.Error("mixing a zero must still advance the signature")
	}
	if MixSigBool(SigSeed, true) == MixSigBool(SigSeed, false) {
		t.Error("MixSigBool collides on true/false")
	}
}

// The sanitize engine's precision contract for links: the signature
// tracks the in-flight messages (what the wake hint promises about) but
// ignores the serialization drain, which legitimately advances with the
// clock inside a proven-idle window.
func TestLinkStateSig(t *testing.T) {
	l := NewLink[int](4, 16, 0)
	empty := l.StateSig()
	if !l.Send(10, 7, 16) {
		t.Fatal("send rejected on an empty link")
	}
	loaded := l.StateSig()
	if loaded == empty {
		t.Error("StateSig unchanged by Send")
	}
	// Draining the backlog via a later-cycle CanSend must not move the
	// signature: nothing observable happened to the in-flight message.
	l.CanSend(12)
	if l.StateSig() != loaded {
		t.Error("StateSig changed by backlog drain (pure time progress)")
	}
	if _, ok := l.Pop(100); !ok {
		t.Fatal("message never arrived")
	}
	if l.StateSig() == loaded {
		t.Error("StateSig unchanged by Pop")
	}
	if l.StateSig() != empty {
		t.Error("drained link's signature differs from the empty link's")
	}
}
