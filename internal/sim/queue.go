package sim

// Queue is a bounded FIFO ring buffer. It is the basic hardware queue
// abstraction of the simulator (LMR/RMR queues, DRAM command queues,
// crossbar input buffers, ...). A zero-capacity Queue is unbounded.
type Queue[T any] struct {
	buf   []T
	head  int
	count int
	limit int // 0 means unbounded
}

// NewQueue returns a queue that holds at most capacity entries.
// capacity == 0 creates an unbounded queue.
func NewQueue[T any](capacity int) *Queue[T] {
	n := capacity
	if n <= 0 {
		n = 8
	}
	return &Queue[T]{buf: make([]T, n), limit: capacity}
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return q.count }

// Cap returns the configured capacity (0 for unbounded).
func (q *Queue[T]) Cap() int { return q.limit }

// Empty reports whether the queue holds no entries.
func (q *Queue[T]) Empty() bool { return q.count == 0 }

// Full reports whether the queue cannot accept another entry.
func (q *Queue[T]) Full() bool { return q.limit > 0 && q.count >= q.limit }

// Push appends v and reports whether it was accepted. A full queue
// rejects the push; callers treat that as back-pressure.
func (q *Queue[T]) Push(v T) bool {
	if q.Full() {
		return false
	}
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	return true
}

// Pop removes and returns the oldest entry. ok is false on an empty queue.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.count == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return v, true
}

// Peek returns the oldest entry without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.count == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// At returns the i-th oldest entry (0 == head). It panics if i is out of
// range; callers iterate with i < Len(). FR-FCFS scheduling uses At to scan
// for row hits without disturbing queue order.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.count {
		panic("sim: Queue.At out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// RemoveAt removes and returns the i-th oldest entry, preserving the order
// of the remaining entries.
func (q *Queue[T]) RemoveAt(i int) T {
	if i < 0 || i >= q.count {
		panic("sim: Queue.RemoveAt out of range")
	}
	v := q.buf[(q.head+i)%len(q.buf)]
	// Shift everything after i forward by one slot.
	for j := i; j < q.count-1; j++ {
		q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j+1)%len(q.buf)]
	}
	var zero T
	q.buf[(q.head+q.count-1)%len(q.buf)] = zero
	q.count--
	return v
}

func (q *Queue[T]) grow() {
	nb := make([]T, 2*len(q.buf))
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
