package sim

// State signatures. Every component the engine ticks exposes
// StateSig() uint64, a cheap order-sensitive hash of its observable
// state. The sanitize engine (internal/core) snapshots the signatures
// at the start of a window the wake hints claim is idle, then steps
// through the window and re-hashes after every cycle: any difference
// proves a hint unsound and pins the violation to a cycle and a
// component. Signatures are accumulated FNV-1a style:
//
//	h := sim.SigSeed
//	h = sim.MixSig(h, uint64(x))
//
// A signature only needs to change whenever a tick changed state that
// future behavior depends on — it does not need to be collision-free,
// just cheap and sensitive to the state transitions Tick performs.

// SigSeed is the accumulation start value (the FNV-1a 64-bit offset
// basis).
const SigSeed uint64 = 14695981039346656037

// sigPrime is the FNV-1a 64-bit prime.
const sigPrime uint64 = 1099511628211

// MixSig folds v into the signature h.
func MixSig(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= sigPrime
		v >>= 8
	}
	return h
}

// MixSigBool folds a boolean into the signature h.
func MixSigBool(h uint64, b bool) uint64 {
	if b {
		return MixSig(h, 1)
	}
	return MixSig(h, 0)
}
