package fault

import (
	"fmt"
	"sync"
)

// Plan maps experiment jobs — (config name, benchmark abbreviation)
// pairs — to fault specs and injected transient failures. The
// experiment pool consults it per job: specs are armed onto the run's
// system via Spec.Arm, transient failures make the job's first N
// attempts fail with a retryable error (exercising the pool's bounded
// backoff). Safe for concurrent use by the pool's workers.
type Plan struct {
	mu        sync.Mutex
	specs     map[string]*Spec
	transient map[string]int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{specs: make(map[string]*Spec), transient: make(map[string]int)}
}

func planKey(cfgName, bench string) string { return cfgName + "|" + bench }

// Add arms spec on the (cfgName, bench) job. An empty cfgName matches
// the benchmark under every configuration (exact entries win).
func (p *Plan) Add(cfgName, bench string, spec Spec) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := spec
	p.specs[planKey(cfgName, bench)] = &s
}

// For returns the spec armed on the (cfgName, bench) job, trying the
// exact key first and the benchmark-wide ("", bench) key second.
func (p *Plan) For(cfgName, bench string) (*Spec, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.specs[planKey(cfgName, bench)]; ok {
		return s, true
	}
	s, ok := p.specs[planKey("", bench)]
	return s, ok
}

// FailTransiently makes the job's next times attempts fail with a
// *TransientError before the simulation even starts — the injected
// flake the pool's retry loop must absorb. An empty cfgName matches the
// benchmark under every configuration, like Add.
func (p *Plan) FailTransiently(cfgName, bench string, times int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.transient[planKey(cfgName, bench)] = times
}

// TakeTransientFailure consumes one pending transient failure for the
// job — trying the exact key first and the benchmark-wide ("", bench)
// key second — returning the error to fail the attempt with, or nil
// once the budget is exhausted.
func (p *Plan) TakeTransientFailure(cfgName, bench string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, k := range []string{planKey(cfgName, bench), planKey("", bench)} {
		if n := p.transient[k]; n > 0 {
			p.transient[k] = n - 1
			return &TransientError{Remaining: n - 1}
		}
	}
	return nil
}

// TransientError is a retryable injected failure; the pool's retry loop
// recognizes it through the Transient() method.
type TransientError struct {
	// Remaining is how many more attempts will fail after this one.
	Remaining int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: injected transient failure (%d more to come)", e.Remaining)
}

// Transient marks the error as retryable.
func (e *TransientError) Transient() bool { return true }
