// Package fault is the deterministic fault-injection harness: a small
// vocabulary of component faults (wedged SM, stuck LLC slice or NoC
// switch, dropped DRAM reply, optimistic wake hint, scheduled panic,
// slow-but-live component) armed onto an assembled system through the
// core's test-only Inject hooks, plus a Plan mapping (config, benchmark)
// jobs to fault specs for the experiment pool's stress matrix.
//
// Everything is seeded and deterministic: a Spec with Target -1 picks
// its victim component with the spec's own xorshift RNG, so the same
// seed always wedges the same SM — every robustness claim in
// docs/ROBUSTNESS.md is provable by injecting the fault and asserting
// detection, repeatably.
//
// The package is importable only from internal/experiments and _test.go
// files (nubalint's fault-containment rule): fault hooks must stay off
// the model hot path, nil-gated like the trace probes.
package fault

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/core"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// WedgeSM freezes one SM's Tick while it still holds live warps:
	// the classic silent hang the forward-progress watchdog must catch.
	WedgeSM Kind = iota
	// StallLLC freezes one LLC slice's arbiter with requests queued.
	StallLLC
	// SlowLLC degrades one LLC slice to one tick every Period cycles —
	// slow but live. A correct watchdog must NOT flag it (the
	// false-positive guard of the stress matrix).
	SlowLLC
	// StallNoC freezes one request crossbar with messages in flight.
	StallNoC
	// DropDRAMReply silently swallows one DRAM read reply, wedging the
	// waiting MSHR forever: the lost-reply deadlock (every wake hint
	// goes to Never while work is pending).
	DropDRAMReply
	// HintBias makes every wake hint optimistic by Bias cycles: the
	// unsound-hint fault EngineSanitize must catch.
	HintBias
	// PanicAt panics inside the cycle loop at cycle At: the
	// model-invariant blowup the experiment pool must isolate.
	PanicAt
)

// String returns the fault class name used in reports and test output.
func (k Kind) String() string {
	switch k {
	case WedgeSM:
		return "wedge-sm"
	case StallLLC:
		return "stall-llc"
	case SlowLLC:
		return "slow-llc"
	case StallNoC:
		return "stall-noc"
	case DropDRAMReply:
		return "drop-dram-reply"
	case HintBias:
		return "hint-bias"
	case PanicAt:
		return "panic"
	default:
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
}

// Fault is one injectable fault. Zero fields beyond Kind select
// defaults: Target -1 (seeded pick) must be set explicitly to pin a
// component.
type Fault struct {
	Kind Kind
	// Target is the victim component index (SM, slice, crossbar or
	// channel, depending on Kind); -1 picks one with the spec's seed.
	Target int
	// At is the activation cycle (wedge, stall, slow, panic).
	At sim.Cycle
	// Until ends a StallLLC at that cycle; 0 stalls forever.
	Until sim.Cycle
	// Period is the SlowLLC tick period (cycles per tick).
	Period sim.Cycle
	// Bias is the HintBias offset (negative = optimistic).
	Bias sim.Cycle
	// After is the number of DRAM read replies delivered before
	// DropDRAMReply swallows one.
	After int64
}

// Spec is a seeded set of faults to arm on one run.
type Spec struct {
	// Seed drives every seeded target pick in Faults, independently per
	// fault index, so adding a fault never re-rolls earlier targets.
	Seed   uint64
	Faults []Fault
}

// Arm resolves seeded targets and installs every fault onto the
// assembled system. It is shaped to slot into nuba.WithArm.
func (s *Spec) Arm(g *core.GPU) error {
	for i, f := range s.Faults {
		target := f.Target
		if target < 0 {
			n := s.targetSpace(g, f.Kind)
			if n <= 0 {
				return fmt.Errorf("fault: %s has no target components", f.Kind)
			}
			rng := sim.NewRNG(sim.Mix(s.Seed ^ uint64(i+1)))
			target = rng.Intn(n)
		}
		var err error
		switch f.Kind {
		case WedgeSM:
			err = g.InjectWedgedSM(target, f.At)
		case StallLLC:
			err = g.InjectLLCStall(target, f.At, f.Until)
		case SlowLLC:
			err = g.InjectLLCSlow(target, f.At, f.Period)
		case StallNoC:
			err = g.InjectNoCStall(target, f.At)
		case DropDRAMReply:
			err = g.InjectDRAMReplyDrop(target, f.After)
		case HintBias:
			g.InjectHintBias(f.Bias)
		case PanicAt:
			g.InjectPanic(f.At)
		default:
			err = fmt.Errorf("fault: unknown kind %d", int(f.Kind))
		}
		if err != nil {
			return fmt.Errorf("fault: arm %s: %w", f.Kind, err)
		}
	}
	return nil
}

// targetSpace returns the number of candidate victim components for a
// fault class on this system.
func (s *Spec) targetSpace(g *core.GPU, k Kind) int {
	switch k {
	case WedgeSM:
		return g.NumSMs()
	case StallLLC, SlowLLC:
		return g.NumSlices()
	case StallNoC:
		return g.NumReqXbars()
	case DropDRAMReply:
		return g.NumChannels()
	default:
		return 1 // system-wide faults need no target
	}
}

// Describe renders the spec for test output and stress-matrix logs.
func (s *Spec) Describe() string {
	if len(s.Faults) == 0 {
		return "no faults"
	}
	out := ""
	for i, f := range s.Faults {
		if i > 0 {
			out += ", "
		}
		out += f.Kind.String()
	}
	return out
}
