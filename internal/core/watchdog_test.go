package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// wdRun runs the tiny kernel with an optional fault armed and the
// watchdog set to window.
func wdRun(t *testing.T, window sim.Cycle, arm func(g *GPU) error) (*GPU, error) {
	t.Helper()
	g := MustNew(tinyConfig(config.NUBA))
	if arm != nil {
		if err := arm(g); err != nil {
			t.Fatalf("arm: %v", err)
		}
	}
	g.SetWatchdog(window)
	l := tinyLaunch(t, g, 32, 4)
	return g, g.RunProgram([]*kir.Launch{l})
}

// A clean run must be untouched by the watchdog: same cycle count as an
// unwatched run, no error. The watchdog only reads pure signatures.
func TestWatchdogCleanRunIdentical(t *testing.T) {
	gOff, err := wdRun(t, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	gOn, err := wdRun(t, 4096, nil)
	if err != nil {
		t.Fatalf("watchdog flagged a healthy run: %v", err)
	}
	if a, b := gOff.Stats().Cycles, gOn.Stats().Cycles; a != b {
		t.Fatalf("watchdog perturbed the run: %d cycles unwatched, %d watched", a, b)
	}
}

// A wedged SM freezes the machine with work outstanding; the watchdog
// must fail the run with a structured report naming stuck components.
func TestWatchdogCatchesWedgedSM(t *testing.T) {
	_, err := wdRun(t, 8192, func(g *GPU) error { return g.InjectWedgedSM(0, 2000) })
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("want *HangError, got %v", err)
	}
	r := he.Report
	if r.Reason != "no-progress" && r.Reason != "deadlock" {
		t.Fatalf("unexpected reason %q", r.Reason)
	}
	if len(r.Stuck) == 0 {
		t.Fatal("report names no stuck components")
	}
	if !strings.Contains(r.String(), "SM 0") {
		t.Errorf("report does not name the wedged SM:\n%s", r.String())
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Errorf("one-line error does not identify the watchdog: %v", err)
	}
}

// A dropped DRAM reply leaves an MSHR waiting forever: every wake hint
// goes to Never while work is pending, so the deadlock fast path fires
// at the next check — no full no-progress window needed.
func TestWatchdogCatchesDroppedDRAMReply(t *testing.T) {
	_, err := wdRun(t, 1<<20, func(g *GPU) error { return g.InjectDRAMReplyDrop(0, 3) })
	var he *HangError
	if !errors.As(err, &he) {
		t.Fatalf("want *HangError, got %v", err)
	}
	if he.Report.Reason != "deadlock" {
		t.Fatalf("want deadlock report, got %q:\n%s", he.Report.Reason, he.Report.String())
	}
	if he.Report.Cycle >= 1<<20 {
		t.Fatalf("deadlock detection waited for the no-progress window (cycle %d)", he.Report.Cycle)
	}
}

// A stalled LLC slice and a stalled request crossbar both freeze the
// progress signature while claiming next-cycle wakes: the no-progress
// path must catch each within ~1.25 windows of the stall.
func TestWatchdogCatchesStalls(t *testing.T) {
	for name, arm := range map[string]func(g *GPU) error{
		"llc": func(g *GPU) error { return g.InjectLLCStall(0, 2000, 0) },
		"noc": func(g *GPU) error { return g.InjectNoCStall(0, 2000) },
	} {
		_, err := wdRun(t, 8192, arm)
		var he *HangError
		if !errors.As(err, &he) {
			t.Fatalf("%s: want *HangError, got %v", name, err)
		}
		if max := sim.Cycle(2000 + 8192*2); he.Report.Cycle > max {
			t.Errorf("%s: detection at cycle %d, want <= %d", name, he.Report.Cycle, max)
		}
	}
}

// A slow-but-live component makes progress every period; the watchdog
// must not flag it as long as the window exceeds the period.
func TestWatchdogSlowComponentNoFalsePositive(t *testing.T) {
	_, err := wdRun(t, 32768, func(g *GPU) error { return g.InjectLLCSlow(0, 2000, 64) })
	if err != nil {
		t.Fatalf("watchdog flagged a slow-but-live run: %v", err)
	}
}

// A transient stall shorter than the window must ride through cleanly,
// and the run must still complete with the right result.
func TestWatchdogToleratesTransientStall(t *testing.T) {
	clean, err := wdRun(t, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := wdRun(t, 32768, func(g *GPU) error { return g.InjectLLCStall(0, 2000, 4000) })
	if err != nil {
		t.Fatalf("watchdog flagged a transient stall: %v", err)
	}
	if g.Stats().Cycles < clean.Stats().Cycles {
		t.Fatalf("stalled run finished in %d cycles, faster than the clean run's %d",
			g.Stats().Cycles, clean.Stats().Cycles)
	}
}

// Inject* must validate component indices rather than panic.
func TestInjectValidatesTargets(t *testing.T) {
	g := MustNew(tinyConfig(config.NUBA))
	for name, err := range map[string]error{
		"sm":    g.InjectWedgedSM(10_000, 0),
		"llc":   g.InjectLLCStall(-1, 0, 0),
		"noc":   g.InjectNoCStall(99, 0),
		"dram":  g.InjectDRAMReplyDrop(-3, 0),
		"slow":  g.InjectLLCSlow(0, 0, 0), // bad period
		"slow2": g.InjectLLCSlow(77, 0, 8),
	} {
		if err == nil {
			t.Errorf("%s: out-of-range injection accepted", name)
		}
	}
}

// The report renders wake hints relative to the hang cycle and caps the
// component listing.
func TestHangReportRendering(t *testing.T) {
	r := HangReport{
		Cycle: 1000, LastProgress: 500, Window: 400, Reason: "no-progress",
		Stuck: []ComponentState{
			{Name: "SM 0", Wake: 1001, Detail: "warps=3"},
			{Name: "LLC slice 1", Wake: sim.Never, Detail: "mshr=2"},
		},
		stuckAll: 20,
	}
	s := r.String()
	for _, want := range []string{"cycle 1000", "no-progress", "SM 0", "wake=+1", "wake=never", "18 more pending"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	e := &HangError{Report: r}
	if msg := e.Error(); !strings.Contains(msg, "SM 0") || strings.Contains(msg, "\n") {
		t.Errorf("one-line error must name the first stuck component on a single line: %q", msg)
	}
}

// An injected panic escapes the core (isolation is the experiment
// pool's job, not the model's).
func TestInjectPanicFires(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not fire")
		}
		if !strings.Contains(fmt.Sprint(r), "injected fault") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	g := MustNew(tinyConfig(config.NUBA))
	g.InjectPanic(1000)
	l := tinyLaunch(t, g, 32, 4)
	_ = g.RunProgram([]*kir.Launch{l})
}
