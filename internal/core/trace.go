package core

// Tracing support: the epoch sampler behind internal/trace. AttachTracer
// installs a tracer; the cycle loop then emits one EpochSample every
// EpochCycles (deltas of the cumulative component counters against the
// snapshot kept here), the MDR controller's OnDecision hook feeds
// decision records, and run.go/route.go emit kernel spans and placement
// events. With no tracer attached the per-cycle cost is one nil check.

import (
	"github.com/nuba-gpu/nuba/internal/mdr"
	"github.com/nuba-gpu/nuba/internal/sim"
	"github.com/nuba-gpu/nuba/internal/trace"
)

// traceState is the sampler's previous-counter snapshot: everything
// needed to turn the cumulative Stats/component counters into per-epoch
// deltas.
type traceState struct {
	next  sim.Cycle // next sample boundary
	last  sim.Cycle // previous sample boundary
	epoch int64     // samples emitted so far

	llcAcc     int64
	llcHits    int64
	placement  int64 // local + remote accesses
	local      int64
	replicated int64
	replies    int64
	nocBytes   int64
	groupBusy  []int64

	// mdrReplies/mdrCycle measure observed bandwidth per MDR epoch
	// (which may differ from the sampling epoch under -trace-epoch).
	mdrReplies int64
	mdrCycle   sim.Cycle
}

// AttachTracer installs the tracing sink; call before running kernels.
// A nil tracer (the default) leaves tracing off.
func (g *GPU) AttachTracer(t *trace.Tracer) {
	g.tracer = t
	if t == nil {
		return
	}
	groups := 0
	if len(g.chans) > 0 {
		groups = g.chans[0].BankGroups()
	}
	g.tr = traceState{next: t.EpochCycles(), groupBusy: make([]int64, groups)}
	if g.mdrCtl != nil {
		g.mdrCtl.OnDecision = g.traceMDRDecision
	}
}

// traceSample emits one epoch sample covering (tr.last, now].
func (g *GPU) traceSample(now sim.Cycle) {
	elapsed := now - g.tr.last
	if elapsed <= 0 {
		return
	}
	// Under the parallel engine, SM/slice counters live in per-partition
	// shards until end of run; sample a non-destructive merged view so
	// the emitted deltas match the serial engines byte for byte.
	stats := g.statsView()
	g.tr.epoch++
	s := trace.EpochSample{Epoch: g.tr.epoch, Cycle: now, Cycles: int64(elapsed)}

	s.NPB = g.drv.NPB()
	s.PartBalance = g.drv.ChannelBalance()

	var lmr, rmr int
	for _, sl := range g.slices {
		l, r := sl.QueueDepths()
		lmr += l
		rmr += r
	}
	if n := len(g.slices); n > 0 {
		s.LMROcc = float64(lmr) / float64(n)
		s.RMROcc = float64(rmr) / float64(n)
	}

	var occ int
	var nocBytes int64
	for _, x := range g.reqXbars {
		occ += x.Occupancy()
		nocBytes += x.Bytes()
	}
	for _, x := range g.replyXbars {
		occ += x.Occupancy()
		nocBytes += x.Bytes()
	}
	for _, l := range g.interHalf {
		if l != nil {
			occ += l.Pending()
			nocBytes += l.Bytes
		}
	}
	for _, row := range g.interModule {
		for _, l := range row {
			if l != nil {
				occ += l.Pending()
				nocBytes += l.Bytes
			}
		}
	}
	s.NoCOcc = int64(occ)
	s.NoCBytes = nocBytes - g.tr.nocBytes
	g.tr.nocBytes = nocBytes
	if capacity := g.nocInjectionCapacity(); capacity > 0 {
		s.NoCUtil = float64(s.NoCBytes) / (float64(elapsed) * float64(capacity))
	}

	dAcc := stats.LLCAccesses - g.tr.llcAcc
	dHits := stats.LLCHits - g.tr.llcHits
	g.tr.llcAcc, g.tr.llcHits = stats.LLCAccesses, stats.LLCHits
	if dAcc > 0 {
		s.LLCHitRate = float64(dHits) / float64(dAcc)
		s.LLCMissRate = float64(dAcc-dHits) / float64(dAcc)
	}

	place := stats.LocalAccesses + stats.RemoteAccesses
	dPlace := place - g.tr.placement
	dLocal := stats.LocalAccesses - g.tr.local
	dRep := stats.ReplicatedAccesses - g.tr.replicated
	g.tr.placement, g.tr.local, g.tr.replicated = place, stats.LocalAccesses, stats.ReplicatedAccesses
	if dPlace > 0 {
		s.LocalFrac = float64(dLocal) / float64(dPlace)
		s.RepHitRate = float64(dRep) / float64(dPlace)
	}

	dReplies := stats.Replies - g.tr.replies
	g.tr.replies = stats.Replies
	s.RepliesPerCycle = float64(dReplies) / float64(elapsed)

	s.DRAMGroupBusy = g.traceGroupBusy(elapsed)

	if g.mdrCtl != nil {
		s.HaveMDR = true
		s.MDRReplicating = g.mdrCtl.Replicating()
	}

	g.tracer.EpochSample(s)
	g.tr.last = now
}

// traceGroupBusy computes each bank group's data-bus busy fraction over
// the window, aggregated across channels.
func (g *GPU) traceGroupBusy(elapsed sim.Cycle) []float64 {
	groups := len(g.tr.groupBusy)
	if groups == 0 || len(g.chans) == 0 {
		return nil
	}
	cur := make([]int64, groups)
	for _, ch := range g.chans {
		for i, v := range ch.GroupBusyCycles() {
			cur[i] += v
		}
	}
	elapsedMem := int64(elapsed) / int64(g.cfg.MemClockDiv)
	out := make([]float64, groups)
	if elapsedMem > 0 {
		denom := float64(elapsedMem) * float64(len(g.chans))
		for i := range out {
			out[i] = float64(cur[i]-g.tr.groupBusy[i]) / denom
		}
	}
	g.tr.groupBusy = cur
	return out
}

// nocInjectionCapacity returns the fabric's nominal aggregate injection
// bandwidth in bytes per cycle (every crossbar input port at full
// width), the normalization of the noc_util probe.
func (g *GPU) nocInjectionCapacity() int {
	ports := 0
	for _, x := range g.reqXbars {
		ports += x.InPorts()
	}
	for _, x := range g.replyXbars {
		ports += x.InPorts()
	}
	return ports * g.cfg.NoCPortBytes()
}

// traceMDRDecision is the mdr.Controller OnDecision hook: it adds the
// observed bandwidth of the ending epoch (data replies delivered per
// cycle, in line bytes — the quantity the model predicts) and forwards
// the record.
func (g *GPU) traceMDRDecision(ev mdr.DecisionEvent) {
	d := trace.MDRDecision{
		Cycle:          ev.Now,
		Epoch:          ev.Epoch,
		Replicating:    ev.Replicating,
		Next:           ev.Next,
		Held:           ev.Held,
		PredNoRepBPC:   ev.PredNoRep,
		PredFullRepBPC: ev.PredFullRep,
		ApplyAt:        ev.ApplyAt,
	}
	replies := g.statsView().Replies
	if dc := ev.Now - g.tr.mdrCycle; dc > 0 {
		d.ObservedBPC = float64(replies-g.tr.mdrReplies) * float64(sim.LineSize) / float64(dc)
	}
	g.tr.mdrReplies, g.tr.mdrCycle = replies, ev.Now
	g.tracer.MDRDecision(d)
}

// traceFinish flushes the final partial sample at end of program.
func (g *GPU) traceFinish() {
	if g.tracer != nil && g.cycle > g.tr.last {
		g.traceSample(g.cycle)
	}
}
