package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/kir"
)

// A clean sanitize run must be byte-identical to the serial reference:
// verification is plain naive stepping, so any divergence means the
// sanitizer itself perturbed the simulation.
func TestSanitizeEngineCycleExact(t *testing.T) {
	mdrCfg := tinyConfig(config.NUBA)
	mdrCfg.Replication = config.MDR
	mdrCfg.MDREpoch = 4096
	cases := map[string]config.Config{
		"uba-mem":  tinyConfig(config.UBAMem),
		"uba-sm":   tinyConfig(config.UBASMSide),
		"nuba":     tinyConfig(config.NUBA),
		"nuba-mdr": mdrCfg,
	}
	for _, name := range []string{"uba-mem", "uba-sm", "nuba", "nuba-mdr"} {
		cfg := cases[name]
		naive := runEngine(t, cfg, EngineNaive)
		san := runEngine(t, cfg, EngineSanitize)
		if a, b := fmt.Sprintf("%+v", *naive), fmt.Sprintf("%+v", *san); a != b {
			t.Errorf("%s: sanitize diverges from reference\nnaive:    %s\nsanitize: %s", name, a, b)
		}
	}
}

// The sanitizer's reason to exist: a deliberately optimistic hint — the
// scan's claimed wake pushed past the true next event — must fail the
// run with a diagnostic naming the cycle and the component, while the
// reference engine (which never consults hints) completes normally.
func TestSanitizeCatchesInjectedBadHint(t *testing.T) {
	run := func(e Engine, bias int64) error {
		g := MustNew(tinyConfig(config.NUBA))
		g.SetEngine(e)
		g.InjectHintBias(bias)
		l := tinyLaunch(t, g, 32, 4)
		return g.RunProgram([]*kir.Launch{l})
	}
	if err := run(EngineNaive, 64); err != nil {
		t.Fatalf("naive engine must ignore hints entirely: %v", err)
	}
	err := run(EngineSanitize, 64)
	if err == nil {
		t.Fatal("sanitize engine accepted a hint biased 64 cycles past the true wake")
	}
	msg := err.Error()
	if !strings.Contains(msg, "sanitize: unsound wake hint") {
		t.Errorf("diagnostic does not identify the violation kind: %v", err)
	}
	if !strings.Contains(msg, "at cycle") || !strings.Contains(msg, "idle window") {
		t.Errorf("diagnostic does not pin the violation to a cycle and window: %v", err)
	}
}

// An unbiased sanitize run over every architecture variant must report
// zero violations — the dynamic proof that the shipped hints are sound
// on the paths the tiny kernel exercises (the full Table 2 suite runs
// in the root package's TestSanitizeSuite).
func TestSanitizeHintsSoundOnTinyKernels(t *testing.T) {
	mcm := config.Baseline().Scale(0.125).WithArch(config.NUBA)
	mcm.NumModules = 2
	mcm.InterModuleGBs = 256
	migCfg := tinyConfig(config.NUBA)
	migCfg.Placement = config.Migration
	migCfg.MigrationInterval = 4096
	for name, cfg := range map[string]config.Config{
		"nuba-mig": migCfg,
		"nuba-mcm": mcm,
	} {
		g := MustNew(cfg)
		g.SetEngine(EngineSanitize)
		l := tinyLaunch(t, g, 32, 4)
		if err := g.RunProgram([]*kir.Launch{l}); err != nil {
			t.Errorf("%s: sanitize violation on a clean run: %v", name, err)
		}
	}
}
