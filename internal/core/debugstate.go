package core

import (
	"fmt"
	"strings"
)

// debugState summarizes the live state of every component; used by tests
// and the MaxCycles error path to diagnose stalls.
func (g *GPU) debugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d\n", g.cycle)
	for _, s := range g.sms {
		if !s.Idle() {
			fmt.Fprintf(&b, "  SM%d: %s\n", s.ID, s.DebugState())
		}
	}
	for _, sl := range g.slices {
		if sl.Pending() {
			fmt.Fprintf(&b, "  slice%d: %s\n", sl.ID, sl.DebugState())
		}
	}
	for _, ch := range g.chans {
		if ch.Pending() {
			fmt.Fprintf(&b, "  chan%d: %s\n", ch.ID(), ch.DebugState(int64(g.cycle)/int64(g.cfg.MemClockDiv)))
		}
	}
	if g.vmsys.Pending() {
		fmt.Fprintf(&b, "  vm pending\n")
	}
	for i, x := range g.reqXbars {
		if x.Pending() {
			fmt.Fprintf(&b, "  reqXbar%d pending\n", i)
		}
	}
	for i, x := range g.replyXbars {
		if x.Pending() {
			fmt.Fprintf(&b, "  replyXbar%d pending\n", i)
		}
	}
	return b.String()
}
