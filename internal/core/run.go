package core

import (
	"context"
	"fmt"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// RunKernel executes one kernel launch to completion, including the
// kernel-boundary software-coherence flush (L1s and LLC, replica drop).
func (g *GPU) RunKernel(l *kir.Launch) error {
	return g.RunKernelContext(context.Background(), l)
}

// RunKernelContext is RunKernel with cancellation: the cycle loop polls
// ctx between batches of cycles and aborts the simulation with an error
// wrapping ctx.Err() once the context is done.
func (g *GPU) RunKernelContext(ctx context.Context, l *kir.Launch) error {
	if err := l.Validate(); err != nil {
		return err
	}
	g.launchSeq++
	start := g.cycle
	if !g.cfg.ColdStart {
		g.prewarm(l)
	}
	g.assignCTAs(l)
	if err := g.runUntilIdle(ctx); err != nil {
		return err
	}
	g.kernelBoundaryFlush()
	if err := g.runUntilIdle(ctx); err != nil {
		return err
	}
	if g.tracer != nil {
		g.tracer.KernelSpan(l.Kernel.Name, g.launchSeq, start, g.cycle)
	}
	return nil
}

// RunProgram executes a sequence of launches back-to-back (multi-kernel
// workloads such as the DNN benchmarks).
func (g *GPU) RunProgram(launches []*kir.Launch) error {
	return g.RunProgramContext(context.Background(), launches)
}

// RunProgramContext executes a sequence of launches under a context. A
// long simulation stops promptly (within one cycle batch) after the
// context is canceled, returning an error that wraps ctx.Err(); the GPU's
// statistics reflect the partial run.
func (g *GPU) RunProgramContext(ctx context.Context, launches []*kir.Launch) error {
	for i, l := range launches {
		if err := g.RunKernelContext(ctx, l); err != nil {
			return fmt.Errorf("kernel %d (%s): %w", i, l.Kernel.Name, err)
		}
	}
	g.traceFinish()
	g.stats.Cycles = int64(g.cycle)
	g.collect()
	return nil
}

// assignCTAs implements distributed CTA scheduling: contiguous CTA blocks
// per SM, maximizing the locality that first-touch/LAB placement exploits.
// Blocks are passed as [lo, hi) ranges — no per-SM slice allocation, and
// SMs beyond the grid (a launch smaller than the machine) get an empty
// range instead of a negative one.
func (g *GPU) assignCTAs(l *kir.Launch) {
	n := g.cfg.NumSMs
	grid := l.GridDim
	per := (grid + n - 1) / n
	for smID := 0; smID < n; smID++ {
		lo := min(smID*per, grid)
		hi := min(lo+per, grid)
		g.sms[smID].StartKernel(l, lo, hi)
	}
}

// batchCycles is the granularity at which runUntilIdle polls the context
// and checks for quiescence and the MaxCycles limit. Both engines
// evaluate those conditions only at batch boundaries, which keeps their
// reported cycle counts on the same lattice and therefore byte-identical.
const batchCycles = 64

// runUntilIdle advances the clock until every component drains or the
// context is canceled. The ctx poll sits outside the per-batch inner loop
// so its cost is amortized over thousands of component ticks. The batch
// is clamped at MaxCycles so a runaway workload stops exactly at the
// configured limit instead of overshooting by up to a whole batch.
func (g *GPU) runUntilIdle(ctx context.Context) error {
	if g.engine == EngineParallel {
		// The parallel engine's background workers live exactly as long
		// as one runUntilIdle call: the pool is cheap to start relative
		// to a kernel's cycle count, and scoping it here means the
		// experiment pool can hold many GPUs without leaking goroutines.
		if stop := g.startParWorkers(); stop != nil {
			defer stop()
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			g.stats.Cycles = int64(g.cycle)
			g.collect()
			return fmt.Errorf("core: run canceled at cycle %d: %w", g.cycle, err)
		}
		target := g.cycle + batchCycles
		if maxC := sim.Cycle(g.cfg.MaxCycles); g.cycle < maxC && target > maxC {
			target = maxC
		}
		switch g.engine {
		case EngineNaive:
			for g.cycle < target {
				g.step()
			}
		case EngineSanitize:
			if err := g.advanceToSanitize(target); err != nil {
				g.stats.Cycles = int64(g.cycle)
				g.collect()
				return err
			}
		case EngineParallel:
			g.advanceToParallel(target)
		default:
			g.advanceTo(target)
		}
		if f := g.flt; f != nil && f.panicAt > 0 && g.cycle >= f.panicAt {
			panic(fmt.Sprintf("core: injected fault: panic at cycle %d", g.cycle))
		}
		if g.quiet() {
			g.stats.Cycles = int64(g.cycle)
			return nil
		}
		if g.wd != nil {
			if err := g.wd.check(g); err != nil {
				g.stats.Cycles = int64(g.cycle)
				g.collect()
				return err
			}
		}
		if int64(g.cycle) >= g.cfg.MaxCycles {
			g.hitMaxCycles = true
			g.stats.Cycles = int64(g.cycle)
			g.collect()
			return fmt.Errorf("core: run exceeded MaxCycles=%d (deadlock or runaway workload)", g.cfg.MaxCycles)
		}
	}
}

// step advances the whole system by one core cycle.
func (g *GPU) step() {
	g.cycle++
	now := g.cycle

	g.vmsys.Tick(now)
	for _, s := range g.sms {
		s.Tick(now)
	}

	switch g.cfg.Arch {
	case config.NUBA:
		g.moveNUBARequestLinks(now)
		g.moveXbars(now)
		g.moveInterModule(now)
		g.moveNUBAReplyLinks(now)
	case config.UBASMSide:
		g.drainInvalQueue(now)
		g.moveXbars(now)
		g.moveInterHalf(now)
		g.retryFills(now)
	default:
		g.moveXbars(now)
		g.moveInterModule(now)
	}

	for _, sl := range g.slices {
		sl.Tick(now)
	}

	if now%sim.Cycle(g.cfg.MemClockDiv) == 0 {
		mem := int64(now) / int64(g.cfg.MemClockDiv)
		for _, ch := range g.chans {
			ch.Tick(mem)
		}
	}

	if g.mdrCtl != nil {
		g.mdrCtl.Tick(now)
	}
	if g.cfg.Placement == config.Migration && now >= g.nextMigScan {
		g.runMigrationScan(now)
		g.nextMigScan = now + g.cfg.MigrationInterval
	}
	g.drainMigQueue()

	if g.tracer != nil && now >= g.tr.next {
		g.traceSample(now)
		g.tr.next = now + g.tracer.EpochCycles()
	}
}

// retryFills re-attempts SM-side fills that found the inter-half link
// saturated.
func (g *GPU) retryFills(now sim.Cycle) {
	if len(g.migFillRetry) == 0 {
		return
	}
	pending := g.migFillRetry
	g.migFillRetry = g.migFillRetry[:0]
	for _, req := range pending {
		g.memRespond(req)
	}
}

// runMigrationScan applies the §7.6 migration policy's interval decision.
func (g *GPU) runMigrationScan(now sim.Cycle) {
	// The page busy window covers the 4 KB copy plus TLB shootdown.
	const migrationBusy = 4000
	for _, a := range g.drv.MigrationCandidates(now) {
		old := a.Page.PPN
		g.drv.ApplyMigration(a.Page, a.To, now+migrationBusy)
		g.stats.PageMigrations++
		g.shootdown(a.Page.VPN)
		g.chargePageCopy(old, a.Page.PPN)
		if g.tracer != nil {
			g.tracer.PageMigration(now, a.Page.VPN, a.From, a.To)
		}
	}
}

// quiet reports whether every component has drained.
func (g *GPU) quiet() bool {
	for _, s := range g.sms {
		if !s.Idle() {
			return false
		}
	}
	if g.vmsys.Pending() {
		return false
	}
	for _, x := range g.reqXbars {
		if x.Pending() {
			return false
		}
	}
	for _, x := range g.replyXbars {
		if x.Pending() {
			return false
		}
	}
	for _, sl := range g.slices {
		if sl.Pending() {
			return false
		}
	}
	for _, ch := range g.chans {
		if ch.Pending() {
			return false
		}
	}
	for _, l := range g.smReqLinks {
		if l.Pending() > 0 {
			return false
		}
	}
	for _, l := range g.sliceReplyLinks {
		if l.Pending() > 0 {
			return false
		}
	}
	for _, l := range g.interHalf {
		if l != nil && l.Pending() > 0 {
			return false
		}
	}
	for _, row := range g.interModule {
		for _, l := range row {
			if l != nil && l.Pending() > 0 {
				return false
			}
		}
	}
	return g.migQueue.Empty() && g.invalQueue.Empty() && len(g.migFillRetry) == 0
}

// kernelBoundaryFlush applies software coherence at the kernel boundary:
// L1s invalidate, replicas drop, and the LLC flushes (dirty lines write
// back), exactly the overhead Section 5.3 says must be modeled.
func (g *GPU) kernelBoundaryFlush() {
	for _, s := range g.sms {
		s.FlushL1()
	}
	for _, sl := range g.slices {
		sl.DropReplicas()
		sl.Flush(g.cycle)
	}
}

// collect aggregates component counters into the run statistics.
func (g *GPU) collect() {
	g.foldShards()
	var dramReads, dramWrites, rowHits, rowMisses int64
	for _, ch := range g.chans {
		dramReads += ch.Reads
		dramWrites += ch.Writes
		rowHits += ch.RowHits
		rowMisses += ch.RowMisses
	}
	g.stats.DRAMReads = dramReads
	g.stats.DRAMWrites = dramWrites
	g.stats.DRAMRowHits = rowHits
	g.stats.DRAMRowMisses = rowMisses

	var nocBytes, nocFlits int64
	for _, x := range g.reqXbars {
		nocBytes += x.Bytes()
		nocFlits += x.BusyCycles()
	}
	for _, x := range g.replyXbars {
		nocBytes += x.Bytes()
		nocFlits += x.BusyCycles()
	}
	for _, l := range g.interHalf {
		if l != nil {
			nocBytes += l.Bytes
			nocFlits += l.BusyCycles
		}
	}
	for _, row := range g.interModule {
		for _, l := range row {
			if l != nil {
				nocBytes += l.Bytes
				nocFlits += l.BusyCycles
			}
		}
	}
	g.stats.NoCBytes = nocBytes
	g.stats.NoCFlits = nocFlits

	var localBytes int64
	for _, l := range g.smReqLinks {
		localBytes += l.Bytes
	}
	for _, l := range g.sliceReplyLinks {
		localBytes += l.Bytes
	}
	g.stats.LocalLinkBytes = localBytes

	g.stats.PageMigrations = g.drv.Migrations
	g.stats.PageReplicas = g.drv.Replications
}
