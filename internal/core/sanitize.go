package core

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/sim"
)

// The sanitizer build of the hybrid engine (EngineSanitize). The hybrid
// engine's correctness rests on one contract: when nextWake() returns w,
// ticking every component on any cycle in (now, w-1] is a no-op. The
// static half of that proof is nubalint's hint-purity / engine-contract
// rules; this file is the dynamic half. Instead of fast-forwarding over
// a claimed-idle window, the sanitizer steps through it cycle by cycle
// — exactly what EngineNaive would do — and cross-checks every
// component's state signature (StateSig, internal/sim/sig.go) plus the
// run statistics after each step. Any change proves the hint unsound
// and fails the run with the cycle, the component and the claimed wake.
//
// Because verification is plain naive stepping, a clean sanitize run is
// byte-identical to both other engines; its only cost is wall-clock.

// sanProbe pairs a ticked component's display name with its
// state-signature function.
type sanProbe struct {
	name string
	sig  func() uint64
}

// sanProbes enumerates every component the cycle loop ticks, plus a
// pseudo-probe over the core's own queues and timers. The list mirrors
// the `structs engine-contract` policy set in lint.policy: a component
// the engine ticks but the sanitizer cannot see would be a hole in the
// dynamic proof.
func (g *GPU) sanProbes() []sanProbe {
	var ps []sanProbe
	for i, s := range g.sms {
		ps = append(ps, sanProbe{fmt.Sprintf("SM %d", i), s.StateSig})
	}
	for i, x := range g.reqXbars {
		ps = append(ps, sanProbe{fmt.Sprintf("req crossbar %d", i), x.StateSig})
	}
	for i, x := range g.replyXbars {
		ps = append(ps, sanProbe{fmt.Sprintf("reply crossbar %d", i), x.StateSig})
	}
	for i, l := range g.smReqLinks {
		ps = append(ps, sanProbe{fmt.Sprintf("SM-request link %d", i), l.StateSig})
	}
	for i, l := range g.sliceReplyLinks {
		ps = append(ps, sanProbe{fmt.Sprintf("slice-reply link %d", i), l.StateSig})
	}
	for i, l := range g.interHalf {
		if l != nil {
			ps = append(ps, sanProbe{fmt.Sprintf("inter-half link %d", i), l.StateSig})
		}
	}
	for src, row := range g.interModule {
		for dst, l := range row {
			if l != nil {
				ps = append(ps, sanProbe{fmt.Sprintf("inter-module link %d->%d", src, dst), l.StateSig})
			}
		}
	}
	for i, sl := range g.slices {
		ps = append(ps, sanProbe{fmt.Sprintf("LLC slice %d", i), sl.StateSig})
	}
	for i, ch := range g.chans {
		ps = append(ps, sanProbe{fmt.Sprintf("DRAM channel %d", i), ch.StateSig})
	}
	ps = append(ps, sanProbe{"vm system", g.vmsys.StateSig})
	if g.mdrCtl != nil {
		ps = append(ps, sanProbe{"mdr controller", g.mdrCtl.StateSig})
	}
	ps = append(ps, sanProbe{"core queues/timers", g.coreStateSig})
	return ps
}

// coreStateSig covers the state the GPU itself owns between components:
// the migration and invalidation queues, the retry list and the timer
// deadlines. (Request ids are SM-local sequences, covered by
// SM.StateSig.)
func (g *GPU) coreStateSig() uint64 {
	h := sim.MixSig(sim.SigSeed, uint64(g.migQueue.Len()))
	h = sim.MixSig(h, uint64(g.invalQueue.Len()))
	h = sim.MixSig(h, uint64(len(g.migFillRetry)))
	h = sim.MixSig(h, uint64(g.nextMigScan))
	h = sim.MixSig(h, uint64(g.tr.next))
	return h
}

// advanceToSanitize is the EngineSanitize counterpart of advanceTo: the
// same wake-hint scan, but claimed-idle windows are stepped and verified
// instead of skipped. Stepping is exactly EngineNaive's loop, so a clean
// run's state trajectory — and therefore every report and trace — is
// byte-identical to the other engines.
func (g *GPU) advanceToSanitize(target sim.Cycle) error {
	for g.cycle < target {
		w := g.nextWake()
		if w <= g.cycle+1 {
			g.step()
			continue
		}
		end := w - 1
		if end > target {
			end = target
		}
		if err := g.verifyIdleWindow(w, end); err != nil {
			return err
		}
	}
	return nil
}

// verifyIdleWindow checks the hint contract over (g.cycle, end]: it
// snapshots every probe signature and the run statistics, then steps
// one cycle at a time re-checking both. wake is the hint scan's claimed
// next wake-up (end is wake-1 clamped to the batch target), reported in
// the diagnostic so an unsound hint is immediately attributable.
func (g *GPU) verifyIdleWindow(wake, end sim.Cycle) error {
	probes := g.sanProbes()
	sigs := make([]uint64, len(probes))
	for i, p := range probes {
		sigs[i] = p.sig()
	}
	statsBefore := *g.stats
	start := g.cycle
	for g.cycle < end {
		g.step()
		for i, p := range probes {
			if s := p.sig(); s != sigs[i] {
				return fmt.Errorf("core: sanitize: unsound wake hint: %s changed state at cycle %d inside idle window (%d, %d] (hint scan at cycle %d claimed no progress before %d)",
					probes[i].name, g.cycle, start, end, start, wake)
			}
		}
		if *g.stats != statsBefore {
			return fmt.Errorf("core: sanitize: unsound wake hint: run statistics changed at cycle %d inside idle window (%d, %d] (hint scan at cycle %d claimed no progress before %d)",
				g.cycle, start, end, start, wake)
		}
	}
	return nil
}
