// Package core assembles the full simulated GPU systems — the memory-side
// UBA baseline, the SM-side UBA (A100-style) and the proposed NUBA — and
// runs kernels on them. It owns the top-level cycle loop, the distributed
// CTA scheduler, request routing between SMs, LLC slices, the NoC and the
// memory controllers, the kernel-boundary software-coherence flushes and
// the MCM (multi-module) variants of Figure 16.
package core

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/dram"
	"github.com/nuba-gpu/nuba/internal/driver"
	"github.com/nuba-gpu/nuba/internal/energy"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/llc"
	"github.com/nuba-gpu/nuba/internal/mdr"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/noc"
	"github.com/nuba-gpu/nuba/internal/sim"
	"github.com/nuba-gpu/nuba/internal/smcore"
	"github.com/nuba-gpu/nuba/internal/trace"
	"github.com/nuba-gpu/nuba/internal/vm"
)

// GPU is one assembled system.
type GPU struct {
	cfg    config.Config
	stats  *metrics.Stats
	hist   *metrics.SharingHistogram
	mapper *addrmap.Mapper
	drv    *driver.Driver
	vmsys  *vm.System

	sms    []*smcore.SM
	slices []*llc.Slice
	chans  []*dram.Channel

	// Per-module request and reply fabrics (one pair for monolithic
	// GPUs). For the UBA layouts the request fabric runs SMs -> slices
	// and the reply fabric slices -> SMs; for NUBA both fabrics run
	// slice -> slice (inter-partition traffic), with port indices local
	// to the module.
	reqXbars   []*noc.Crossbar
	replyXbars []*noc.Crossbar

	// NUBA point-to-point links.
	smReqLinks      []*sim.Link[*sim.MemReq] // per SM, toward its partition's slices
	sliceReplyLinks []*sim.Link[*sim.MemReq] // per slice, toward its partition's SMs

	// Inter-half links for the SM-side UBA (index = source half) and
	// inter-module links for MCM ([src][dst], nil on the diagonal).
	interHalf   [2]*sim.Link[noc.Msg]
	interModule [][]*sim.Link[noc.Msg]

	mdrProf *mdr.Profiler
	mdrCtl  *mdr.Controller

	cycle        sim.Cycle
	launchSeq    int
	vaCursor     uint64
	hitMaxCycles bool
	engine       Engine
	// busyStride is the hybrid engine's hint-scan backoff: how many
	// extra cycles advanceTo blind-steps after a scan proves the
	// machine busy. Purely an engine-speed knob — never observable in
	// simulated state.
	busyStride sim.Cycle
	// flt is the nil-gated core-level fault-injection state (hint bias,
	// scheduled panic; see fault.go). Never set outside tests.
	flt *coreFault
	// wd is the forward-progress watchdog, nil unless armed with
	// SetWatchdog (see watchdog.go).
	wd *watchdog
	// par is the partition-parallel engine state (parallel.go), built
	// lazily on the first EngineParallel batch for configurations the
	// parallel cycle supports; nil for every serial engine and for
	// fallback configurations. parWorkers is the requested worker count
	// (0 = one worker per partition); parTried latches the capability
	// probe.
	par        *parState
	parWorkers int
	parTried   bool

	// migQueue holds background page-copy traffic awaiting channel space.
	migQueue    *sim.Queue[*sim.MemReq]
	nextMigScan sim.Cycle

	// dbgToMemSum/dbgToMemCnt accumulate L1-miss-to-memory-controller
	// latency for diagnostics, sharded per partition (indexed by the
	// request's home-slice partition) so the parallel engine's phase-B
	// workers never share an accumulator.
	dbgToMemSum, dbgToMemCnt []int64
	dbgFillSum, dbgFillCnt   []int64

	// invalQueue holds SM-side UBA coherence invalidations awaiting
	// inter-half link space.
	invalQueue *sim.Queue[*sim.MemReq]
	// migFillRetry holds SM-side fills that found the inter-half link
	// saturated; retried every cycle.
	migFillRetry []*sim.MemReq

	// tracer, when non-nil, receives epoch samples and span events
	// (AttachTracer); tr is the sampler's counter snapshot (trace.go).
	tracer *trace.Tracer
	tr     traceState
}

// New builds a GPU for the configuration.
func New(cfg config.Config) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{
		cfg:         cfg,
		stats:       &metrics.Stats{},
		hist:        metrics.NewSharingHistogram(),
		vaCursor:    1 << 40,
		migQueue:    sim.NewQueue[*sim.MemReq](0),
		invalQueue:  sim.NewQueue[*sim.MemReq](0),
		nextMigScan: cfg.MigrationInterval,
	}
	g.mapper = addrmap.New(&g.cfg)
	g.drv = driver.New(&g.cfg, g.mapper)
	g.vmsys = vm.NewSystem(&g.cfg, g.drv, g.stats)

	parts := cfg.NumPartitions()
	g.dbgToMemSum = make([]int64, parts)
	g.dbgToMemCnt = make([]int64, parts)
	g.dbgFillSum = make([]int64, parts)
	g.dbgFillCnt = make([]int64, parts)

	for i := 0; i < cfg.NumSMs; i++ {
		part := g.cfg.PartitionOfSM(i)
		s := smcore.New(i, part, &g.cfg, g.stats, g.hist)
		g.sms = append(g.sms, s)
	}
	for j := 0; j < cfg.NumLLCSlices; j++ {
		g.slices = append(g.slices, llc.New(j, g.cfg.PartitionOfSlice(j), &g.cfg, g.stats))
	}
	for c := 0; c < cfg.NumChannels; c++ {
		ch := dram.NewChannel(c, &g.cfg, g.mapper)
		g.chans = append(g.chans, ch)
	}

	g.buildInterconnect()
	g.wire()

	if cfg.Arch == config.NUBA && cfg.Replication == config.MDR {
		g.mdrProf = mdr.NewProfiler(&g.cfg, 0)
		g.mdrCtl = mdr.NewController(&g.cfg, g.stats, g.mdrProf)
	}
	return g, nil
}

// MustNew is New that panics on configuration errors (used by examples,
// benchmarks and the experiment harness where configs are static).
func MustNew(cfg config.Config) *GPU {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Stats returns the run statistics.
func (g *GPU) Stats() *metrics.Stats { return g.stats }

// Sharing returns the page-sharing histogram (Figure 3 data).
func (g *GPU) Sharing() *metrics.SharingHistogram { return g.hist }

// Driver exposes the page-placement engine.
func (g *GPU) Driver() *driver.Driver { return g.drv }

// Config returns the configuration the GPU was built with.
func (g *GPU) Config() *config.Config { return &g.cfg }

// MDRController returns the MDR controller, or nil when MDR is inactive.
func (g *GPU) MDRController() *mdr.Controller { return g.mdrCtl }

// HitMaxCycles reports whether a run aborted at the MaxCycles safety net.
func (g *GPU) HitMaxCycles() bool { return g.hitMaxCycles }

// modules returns the number of crossbar domains.
func (g *GPU) modules() int {
	if g.cfg.Arch == config.UBASMSide {
		return 2
	}
	if g.cfg.NumModules > 1 {
		return g.cfg.NumModules
	}
	return 1
}

func (g *GPU) smsPerModule() int    { return g.cfg.NumSMs / g.modules() }
func (g *GPU) slicesPerModule() int { return g.cfg.NumLLCSlices / g.modules() }

// moduleOfSM returns the crossbar domain of an SM (the half for SM-side).
func (g *GPU) moduleOfSM(sm int) int { return sm / g.smsPerModule() }

// moduleOfSlice returns the crossbar domain of a slice.
func (g *GPU) moduleOfSlice(s int) int { return s / g.slicesPerModule() }

// moduleOfChannel returns the crossbar domain of a channel.
func (g *GPU) moduleOfChannel(c int) int { return c / (g.cfg.NumChannels / g.modules()) }

// buildInterconnect creates the crossbars and links for the architecture.
func (g *GPU) buildInterconnect() {
	width := g.cfg.NoCPortBytes()
	mods := g.modules()
	for m := 0; m < mods; m++ {
		var reqIn, reqOut int
		switch g.cfg.Arch {
		case config.NUBA:
			reqIn, reqOut = g.slicesPerModule(), g.slicesPerModule()
		default: // UBA-mem and SM-side halves
			reqIn, reqOut = g.smsPerModule(), g.slicesPerModule()
		}
		g.reqXbars = append(g.reqXbars,
			noc.NewCrossbar(reqIn, reqOut, width, g.cfg.NoCLatency, g.cfg.NoCPortBuffer, g.cfg.NoCPortBuffer))
		g.replyXbars = append(g.replyXbars,
			noc.NewCrossbar(reqOut, reqIn, width, g.cfg.NoCLatency, g.cfg.NoCPortBuffer, g.cfg.NoCPortBuffer))
	}

	if g.cfg.Arch == config.NUBA {
		for i := 0; i < g.cfg.NumSMs; i++ {
			g.smReqLinks = append(g.smReqLinks,
				sim.NewLink[*sim.MemReq](g.cfg.LocalLinkLatency, g.cfg.LocalLinkBytes, g.cfg.LocalLinkBuffer))
		}
		for j := 0; j < g.cfg.NumLLCSlices; j++ {
			g.sliceReplyLinks = append(g.sliceReplyLinks,
				sim.NewLink[*sim.MemReq](g.cfg.LocalLinkLatency, g.cfg.LocalLinkBytes, g.cfg.LocalLinkBuffer))
		}
	}

	if g.cfg.Arch == config.UBASMSide {
		// Inter-half links carry LLC misses to remote channels, the
		// returning fills and coherence invalidations. The A100-style
		// halves are stitched with abundant bandwidth; half the per-half
		// crossbar bandwidth each direction keeps the link from becoming
		// an artificial bottleneck relative to the paper's SM-side UBA
		// (which performs within ~1% of the memory-side baseline).
		w := width * g.slicesPerModule()
		if w < width {
			w = width
		}
		g.interHalf[0] = sim.NewLink[noc.Msg](g.cfg.NoCLatency, w, 8*g.cfg.NoCPortBuffer)
		g.interHalf[1] = sim.NewLink[noc.Msg](g.cfg.NoCLatency, w, 8*g.cfg.NoCPortBuffer)
	}

	if g.cfg.NumModules > 1 {
		// All-to-all inter-module links; each module's InterModuleGBs is
		// split across its (mods-1) peers and the two directions.
		per := g.cfg.InterModuleGBs / (2 * float64(mods-1) * g.cfg.CoreClockGHz)
		w := int(per + 0.5)
		if w < 1 {
			w = 1
		}
		g.interModule = make([][]*sim.Link[noc.Msg], mods)
		for a := 0; a < mods; a++ {
			g.interModule[a] = make([]*sim.Link[noc.Msg], mods)
			for b := 0; b < mods; b++ {
				if a == b {
					continue
				}
				g.interModule[a][b] = sim.NewLink[noc.Msg](g.cfg.NoCLatency*2, w, 8*g.cfg.NoCPortBuffer)
			}
		}
	}
}

// NoCGeometry returns the total crossbar endpoint count (inputs plus
// outputs of the request fabric, summed over modules; the reply fabric
// mirrors it) and the per-port width — the inputs to the DSENT-style
// power model.
func (g *GPU) NoCGeometry() (ports, width int) {
	for _, x := range g.reqXbars {
		ports += x.InPorts() + x.OutPorts()
	}
	return ports, g.cfg.NoCPortBytes()
}

// EnergyBreakdown computes and stores the run's energy model outputs.
func (g *GPU) EnergyBreakdown(p energy.Params) energy.Breakdown {
	ports, width := g.NoCGeometry()
	return energy.Compute(&g.cfg, g.stats, ports, width, p)
}

// NewBuffer reserves a page-aligned virtual address range of the given
// size for a kernel buffer binding.
func (g *GPU) NewBuffer(size uint64) uint64 {
	base := g.vaCursor
	pages := (size + g.cfg.PageSize - 1) / g.cfg.PageSize
	g.vaCursor += (pages + 1) * g.cfg.PageSize
	return base
}

// String describes the GPU.
func (g *GPU) String() string {
	return fmt.Sprintf("%s: %d SMs, %d LLC slices, %d channels, NoC %.0f GB/s",
		g.cfg.Arch, g.cfg.NumSMs, g.cfg.NumLLCSlices, g.cfg.NumChannels, g.cfg.NoCBandwidthGBs)
}

// launchFor builds a kir.Launch bound into this GPU's address space; used
// by the workload package through the public facade.
func (g *GPU) launchFor(k *kir.Kernel, grid, ctaThreads int, scalars []int64, bufs []kir.Binding) (*kir.Launch, error) {
	l := &kir.Launch{Kernel: k, GridDim: grid, CTAThreads: ctaThreads, Scalars: scalars, Buffers: bufs}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
