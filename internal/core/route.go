package core

import (
	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/noc"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// This file wires SMs, LLC slices, the NoC and the memory controllers
// together for each architecture and implements the per-cycle message
// movement between them.

// smPort returns an SM's port index within its module's fabrics
// (request-fabric input, reply-fabric output for the UBA layouts).
func (g *GPU) smPort(sm int) int { return sm % g.smsPerModule() }

// slicePort returns a slice's port index within its module's fabrics.
func (g *GPU) slicePort(slice int) int { return slice % g.slicesPerModule() }

// partitionSlice picks the slice of a partition that passes through /
// replicates a given line (the least significant randomized bank bits, as
// in the home-slice selection).
func (g *GPU) partitionSlice(part int, addr uint64) int {
	spp := g.cfg.SlicesPerPartitionActual()
	if spp == 1 {
		return part
	}
	// Row-granular hashing keeps the lines of one DRAM row behind the
	// same slice so their miss stream preserves row locality at the
	// memory controller (mirroring the home-slice selection, which uses
	// the least-significant randomized bank bits).
	return part*spp + int(sim.Mix(addr/addrmap.RowBytes)%uint64(spp))
}

// smSideSlice picks the caching slice for an SM-side UBA access: a slice
// in the SM's half, selected by address hash (every slice may cache every
// address).
func (g *GPU) smSideSlice(sm int, addr uint64) int {
	half := g.moduleOfSM(sm)
	sph := g.cfg.NumLLCSlices / 2
	return half*sph + int(sim.Mix(addr/addrmap.RowBytes)%uint64(sph))
}

// mirrorSlice returns the other half's slice caching the same addresses.
// mirrorSliceDoc (see below).
func (g *GPU) mirrorSlice(slice int, addr uint64) int {
	sph := g.cfg.NumLLCSlices / 2
	return (1-slice/sph)*sph + slice%sph
}

// replicating reports whether read-only shared lines are currently
// replicated.
func (g *GPU) replicating() bool {
	switch g.cfg.Replication {
	case config.FullRep:
		return true
	case config.MDR:
		return g.mdrCtl != nil && g.mdrCtl.Replicating()
	default:
		return false
	}
}

// accountService classifies a serviced L1 miss for the Figure 9 breakdown.
func (g *GPU) accountService(req *sim.MemReq) { g.accountServiceTo(g.stats, req) }

// accountServiceTo is accountService into an explicit sink; the parallel
// engine's phase-B workers pass their partition's stats shard.
func (g *GPU) accountServiceTo(st *metrics.Stats, req *sim.MemReq) {
	if req.SM < 0 {
		return
	}
	if req.Remote {
		st.RemoteAccesses++
		return
	}
	st.LocalAccesses++
	if req.Replicated {
		st.ReplicatedAccesses++
	}
}

// recordPlacementAccess feeds the §7.6 migration/replication counters and
// collapses page replicas on writes.
func (g *GPU) recordPlacementAccess(req *sim.MemReq, part int) {
	if g.cfg.Placement != config.Migration && g.cfg.Placement != config.PageReplication {
		return
	}
	vpn := req.VAddr >> g.mapper.PageShift()
	p, ok := g.drv.Lookup(vpn)
	if !ok {
		return
	}
	if req.IsWrite() && p.Replicas != nil {
		g.drv.CollapseReplicas(p)
		g.shootdown(vpn)
		if g.tracer != nil {
			g.tracer.ReplicaCollapse(g.cycle, vpn)
		}
	}
	before := g.drv.Replications
	g.drv.RecordAccess(p, part)
	if g.drv.Replications != before {
		// A replica was just created: charge the 4 KB copy and the
		// shootdown that redirects the reader partition to it.
		g.stats.PageReplicas++
		g.chargePageCopy(p.PPN, p.Replicas[part])
		g.shootdown(vpn)
		if g.tracer != nil {
			g.tracer.PageReplication(g.cycle, vpn, part)
		}
	}
}

// pageLookup returns the SM's page-table consultation seam: the driver
// lookup that finishes a translation after an L1 TLB hit. busy reports
// a frame mid-migration; ok whether a mapping exists yet.
func (g *GPU) pageLookup(part int) func(uint64, sim.Cycle) (uint64, bool, bool) {
	return func(vpn uint64, now sim.Cycle) (ppn uint64, busy, ok bool) {
		if p, ok := g.drv.Lookup(vpn); ok && p.BusyUntil > now {
			return 0, true, false
		}
		ppn, ok = g.drv.Translate(vpn, part)
		return ppn, false, ok
	}
}

// shootdown flushes a VPN from the shared L2 TLB and every L1 TLB.
func (g *GPU) shootdown(vpn uint64) {
	g.vmsys.Shootdown(vpn)
	for _, s := range g.sms {
		s.L1TLB().Flush(vpn)
	}
}

// chargePageCopy enqueues background DRAM traffic copying one page from
// frame src to frame dst (line reads + line writes).
func (g *GPU) chargePageCopy(src, dst uint64) {
	shift := g.mapper.PageShift()
	lines := int(g.cfg.PageSize) / sim.LineSize
	for i := 0; i < lines; i++ {
		off := uint64(i * sim.LineSize)
		g.migQueue.Push(&sim.MemReq{Kind: sim.Load, Addr: src<<shift | off, Size: sim.LineSize, SM: -1, DstReg: -1, ReplicaSlice: -1})
		g.migQueue.Push(&sim.MemReq{Kind: sim.Store, Addr: dst<<shift | off, Size: sim.LineSize, SM: -1, DstReg: -1, ReplicaSlice: -1})
	}
}

// drainMigQueue issues queued page-copy traffic into the channels.
func (g *GPU) drainMigQueue() {
	for {
		req, ok := g.migQueue.Peek()
		if !ok {
			return
		}
		ch := g.chans[g.mapper.Channel(req.Addr)]
		if !ch.CanEnqueue() {
			return
		}
		ch.Enqueue(req)
		g.migQueue.Pop()
	}
}

// wire installs the architecture-specific callbacks on SMs, slices and
// channels.
func (g *GPU) wire() {
	for _, s := range g.sms {
		// gatedVMRequest forwards to vmsys.Request; under the parallel
		// engine it first serializes callers into partition order (the
		// VM system is the one shared branch-sensitive structure on the
		// SM tick path — see parallel.go). Serial engines pay one nil
		// check.
		s.VMRequest = g.gatedVMRequest
		s.PageLookup = g.pageLookup(s.Part)
	}
	for _, ch := range g.chans {
		ch.Respond = g.memRespond
	}
	for _, s := range g.slices {
		s.SendMiss = g.sliceMiss
		s.StoreDone = g.storeDone
	}
	switch g.cfg.Arch {
	case config.NUBA:
		for _, s := range g.sms {
			s.Send = g.nubaSend(s.ID, s.Part)
		}
		for _, sl := range g.slices {
			sl.SendReply = g.nubaSliceReply(sl.ID, sl.Part)
			sl.SendForward = g.nubaForward(sl.ID)
		}
	case config.UBASMSide:
		for _, s := range g.sms {
			s.Send = g.smSideSend(s.ID)
		}
		for _, sl := range g.slices {
			sl.SendReply = g.ubaSliceReply(sl.ID)
			sl.SendForward = func(req *sim.MemReq, now sim.Cycle) bool { panic("core: forward on UBA") }
		}
	default: // UBA-mem
		for _, s := range g.sms {
			s.Send = g.ubaMemSend(s.ID)
		}
		for _, sl := range g.slices {
			sl.SendReply = g.ubaSliceReply(sl.ID)
			sl.SendForward = func(req *sim.MemReq, now sim.Cycle) bool { panic("core: forward on UBA") }
		}
	}
}

// storeDone retires a committed store at its SM (no wire traffic; see
// DESIGN.md on acknowledgements). The acknowledging slice may sit in a
// different partition than the store's SM, so during the parallel
// engine's memory phase the ack is parked in the slice's outbox and
// replayed at the phase barrier in slice-ID order — exactly the order
// the serial engines produce it in (parallel.go).
func (g *GPU) storeDone(req *sim.MemReq, now sim.Cycle) {
	if req.SM < 0 {
		return
	}
	if p := g.par; p != nil && p.inPhase {
		p.ackOut[req.Slice] = append(p.ackOut[req.Slice], storeAck{req: req, now: now})
		return
	}
	g.accountService(req)
	g.sms[req.SM].AcceptReply(req, now)
}

// sliceMiss issues an LLC miss or writeback to the owning channel.
func (g *GPU) sliceMiss(req *sim.MemReq, now sim.Cycle) bool {
	if req.SM >= 0 && req.Kind == sim.Load {
		p := g.cfg.PartitionOfSlice(req.Slice)
		g.dbgToMemSum[p] += int64(now - req.Issue)
		g.dbgToMemCnt[p]++
	}
	ch := g.mapper.Channel(req.Addr)
	if g.cfg.Arch == config.UBASMSide {
		srcHalf := g.moduleOfSlice(req.Slice)
		if g.moduleOfChannel(ch) != srcHalf {
			link := g.interHalf[srcHalf]
			bytes := sim.MessageBytes(req, false)
			if !link.CanSend(now) {
				return false
			}
			link.Send(now, noc.Msg{Req: req, Dst: ch, Bytes: bytes}, bytes)
			return true
		}
	}
	return g.chans[ch].Enqueue(req)
}

// memRespond routes a finished DRAM read back to the slice that missed.
func (g *GPU) memRespond(req *sim.MemReq) {
	now := g.cycle
	if req.SM >= 0 && req.Kind == sim.Load {
		p := g.cfg.PartitionOfSlice(req.Slice)
		g.dbgFillSum[p] += int64(now - req.Issue)
		g.dbgFillCnt[p]++
	}
	if req.SM < 0 && req.Kind == sim.Load {
		return // page-copy read: no consumer
	}
	target := req.Slice
	if g.cfg.Arch == config.UBASMSide {
		ch := g.mapper.Channel(req.Addr)
		if g.moduleOfChannel(ch) != g.moduleOfSlice(target) {
			link := g.interHalf[g.moduleOfChannel(ch)]
			bytes := sim.MessageBytes(req, true)
			if link.Send(now, noc.Msg{Req: req, Dst: target, Bytes: bytes, Reply: true}, bytes) {
				return
			}
			// Link saturated: the fill is delayed one cycle by retrying
			// through the pending queue.
			g.migFillRetry = append(g.migFillRetry, req)
			return
		}
	}
	g.slices[target].AcceptFill(req, now)
}

// --- Memory-side UBA -------------------------------------------------

// ubaMemSend routes an L1 miss over the module crossbar (or inter-module
// link) to the home slice.
func (g *GPU) ubaMemSend(smID int) func(*sim.MemReq, sim.Cycle) bool {
	return func(req *sim.MemReq, now sim.Cycle) bool {
		req.Slice = g.mapper.Slice(req.Addr)
		req.Channel = g.mapper.Channel(req.Addr)
		req.Remote = true // every UBA L1 miss traverses the NoC
		bytes := sim.MessageBytes(req, false)
		ms, md := g.moduleOfSM(smID), g.moduleOfSlice(req.Slice)
		if ms == md {
			if !g.reqXbars[ms].Inject(g.smPort(smID), now, noc.Msg{Req: req, Dst: g.slicePort(req.Slice), Bytes: bytes}) {
				return false
			}
		} else {
			link := g.interModule[ms][md]
			if !link.CanSend(now) {
				return false
			}
			link.Send(now, noc.Msg{Req: req, Dst: req.Slice, Bytes: bytes}, bytes)
		}
		g.recordPlacementAccess(req, g.cfg.PartitionOfSM(smID))
		return true
	}
}

// ubaSliceReply returns replies over the crossbar toward the SM (both UBA
// variants; SMs and their caching slices share a module by construction).
func (g *GPU) ubaSliceReply(sliceID int) func(*sim.MemReq, sim.Cycle) bool {
	return func(req *sim.MemReq, now sim.Cycle) bool {
		bytes := sim.MessageBytes(req, true)
		ms, mr := g.moduleOfSlice(sliceID), g.moduleOfSM(req.SM)
		if ms == mr {
			return g.replyXbars[ms].Inject(g.slicePort(sliceID), now,
				noc.Msg{Req: req, Dst: g.smPort(req.SM), Bytes: bytes, Reply: true})
		}
		link := g.interModule[ms][mr]
		if !link.CanSend(now) {
			return false
		}
		link.Send(now, noc.Msg{Req: req, Dst: req.SM, Bytes: bytes, Reply: true}, bytes)
		return true
	}
}

// --- SM-side UBA ------------------------------------------------------

// smSideSend routes an L1 miss to a slice in the SM's half and, for
// stores, emits the cross-half coherence invalidation.
func (g *GPU) smSideSend(smID int) func(*sim.MemReq, sim.Cycle) bool {
	return func(req *sim.MemReq, now sim.Cycle) bool {
		req.Slice = g.smSideSlice(smID, req.Addr)
		req.Channel = g.mapper.Channel(req.Addr)
		req.Remote = true
		bytes := sim.MessageBytes(req, false)
		half := g.moduleOfSM(smID)
		if !g.reqXbars[half].Inject(g.smPort(smID), now, noc.Msg{Req: req, Dst: g.slicePort(req.Slice), Bytes: bytes}) {
			return false
		}
		if req.IsWrite() {
			inval := &sim.MemReq{
				Kind: sim.Store, Addr: req.Addr, Size: 0, SM: -1, DstReg: -1,
				Slice: g.mirrorSlice(req.Slice, req.Addr), ReplicaSlice: -1, Inval: true,
			}
			g.invalQueue.Push(inval)
		}
		g.recordPlacementAccess(req, g.cfg.PartitionOfSM(smID))
		return true
	}
}

// drainInvalQueue pushes pending coherence invalidations over the
// inter-half links.
func (g *GPU) drainInvalQueue(now sim.Cycle) {
	for {
		inv, ok := g.invalQueue.Peek()
		if !ok {
			return
		}
		srcHalf := 1 - g.moduleOfSlice(inv.Slice)
		link := g.interHalf[srcHalf]
		if !link.CanSend(now) {
			return
		}
		link.Send(now, noc.Msg{Req: inv, Dst: inv.Slice, Bytes: sim.ReqBytes, Inval: true}, sim.ReqBytes)
		g.stats.CoherenceTraffic += sim.ReqBytes
		g.invalQueue.Pop()
	}
}

// --- NUBA --------------------------------------------------------------

// nubaSend injects an L1 miss into the SM's point-to-point request link;
// classification, replica routing and MDR profiling happen here.
func (g *GPU) nubaSend(smID, part int) func(*sim.MemReq, sim.Cycle) bool {
	return func(req *sim.MemReq, now sim.Cycle) bool {
		link := g.smReqLinks[smID]
		if !link.CanSend(now) {
			return false
		}
		req.Slice = g.mapper.Slice(req.Addr)
		req.Channel = g.mapper.Channel(req.Addr)
		local := g.cfg.PartitionOfSlice(req.Slice) == part
		if !local && req.ReadOnly && req.Kind == sim.Load && g.replicating() {
			req.ReplicaSlice = g.partitionSlice(part, req.Addr)
		}
		if g.mdrProf != nil {
			// The profiler's shadow tags are LRU (order-dependent), so
			// during the parallel engine's SM phase the observation is
			// parked per SM and replayed at the phase barrier in SM-ID
			// order — the serial engines' exact order (parallel.go). The
			// captured fields (Addr, Kind, ReadOnly) never mutate after
			// send, so deferred replay sees identical inputs.
			if p := g.par; p != nil && p.inPhase {
				p.obsOut[smID] = append(p.obsOut[smID], mdrObs{
					req: req, home: req.Slice, local: local,
					replicaWouldBe: g.partitionSlice(part, req.Addr), now: now,
				})
			} else {
				g.mdrProf.Observe(req, req.Slice, local, g.partitionSlice(part, req.Addr), now)
			}
		}
		g.recordPlacementAccess(req, part)
		bytes := sim.MessageBytes(req, false)
		link.Send(now, req, bytes)
		return true
	}
}

// moveNUBARequestLinks delivers arrived requests from SM links into local
// slices or onto the NoC.
func (g *GPU) moveNUBARequestLinks(now sim.Cycle) {
	g.moveNUBARequestLinksRange(0, len(g.smReqLinks), now)
}

// moveNUBARequestLinksRange drains the SM request links in [lo, hi).
// Every destination it touches is partition-local to the source SM (its
// own slices, or its own NoC injection port), so the parallel engine's
// phase-A workers call it for their partitions' SM ranges.
func (g *GPU) moveNUBARequestLinksRange(lo, hi int, now sim.Cycle) {
	for smID := lo; smID < hi; smID++ {
		link := g.smReqLinks[smID]
		part := g.cfg.PartitionOfSM(smID)
		for {
			req, ok := link.Peek(now)
			if !ok {
				break
			}
			var accepted bool
			switch {
			case req.ReplicaSlice >= 0:
				accepted = g.slices[req.ReplicaSlice].EnqueueLocal(req)
			case g.cfg.PartitionOfSlice(req.Slice) == part:
				accepted = g.slices[req.Slice].EnqueueLocal(req)
			default:
				accepted = g.nubaInjectNoC(g.partitionSlice(part, req.Addr), req.Slice, req, false, now)
			}
			if !accepted {
				break
			}
			link.Pop(now)
		}
	}
}

// nubaInjectNoC injects a request or reply into the slice-to-slice NoC
// from srcSlice toward dstSlice, crossing module links when needed.
func (g *GPU) nubaInjectNoC(srcSlice, dstSlice int, req *sim.MemReq, reply bool, now sim.Cycle) bool {
	req.Remote = true
	bytes := sim.MessageBytes(req, reply)
	ms, md := g.moduleOfSlice(srcSlice), g.moduleOfSlice(dstSlice)
	if ms == md {
		fabric := g.reqXbars[ms]
		if reply {
			fabric = g.replyXbars[ms]
		}
		return fabric.Inject(g.slicePort(srcSlice), now,
			noc.Msg{Req: req, Dst: g.slicePort(dstSlice), Bytes: bytes, Reply: reply})
	}
	link := g.interModule[ms][md]
	if !link.CanSend(now) {
		return false
	}
	link.Send(now, noc.Msg{Req: req, Dst: dstSlice, Bytes: bytes, Reply: reply}, bytes)
	return true
}

// nubaSliceReply routes a finished request from a slice: locally over the
// partition reply link, or across the NoC toward the requester's
// partition (or the replica slice awaiting a fill).
func (g *GPU) nubaSliceReply(sliceID, part int) func(*sim.MemReq, sim.Cycle) bool {
	return func(req *sim.MemReq, now sim.Cycle) bool {
		// Home slice answering a forwarded replica miss: return the line
		// to the replica slice.
		if req.ReplicaSlice >= 0 && req.ReplicaSlice != sliceID {
			return g.nubaInjectNoC(sliceID, req.ReplicaSlice, req, true, now)
		}
		rp := g.cfg.PartitionOfSM(req.SM)
		if rp == part {
			link := g.sliceReplyLinks[sliceID]
			bytes := sim.MessageBytes(req, true)
			if !link.CanSend(now) {
				return false
			}
			link.Send(now, req, bytes)
			return true
		}
		return g.nubaInjectNoC(sliceID, g.partitionSlice(rp, req.Addr), req, true, now)
	}
}

// nubaForward sends a replica-slice miss to the line's home slice.
func (g *GPU) nubaForward(sliceID int) func(*sim.MemReq, sim.Cycle) bool {
	return func(req *sim.MemReq, now sim.Cycle) bool {
		return g.nubaInjectNoC(sliceID, req.Slice, req, false, now)
	}
}

// moveNUBAReplyLinks delivers replies from slice links to their SMs.
func (g *GPU) moveNUBAReplyLinks(now sim.Cycle) {
	g.moveNUBAReplyLinksRange(0, len(g.sliceReplyLinks), g.stats, now)
}

// moveNUBAReplyLinksRange drains the slice reply links in [lo, hi) into
// their SMs, accounting into st. A partition's reply links only ever
// carry replies for that partition's SMs (nubaSliceReply routes remote
// requesters over the NoC instead), so the parallel engine's phase-B
// workers call it for their partitions' slice ranges with the
// partition's stats shard.
func (g *GPU) moveNUBAReplyLinksRange(lo, hi int, st *metrics.Stats, now sim.Cycle) {
	for s := lo; s < hi; s++ {
		link := g.sliceReplyLinks[s]
		for {
			req, ok := link.Pop(now)
			if !ok {
				break
			}
			g.accountServiceTo(st, req)
			g.sms[req.SM].AcceptReply(req, now)
		}
	}
}

// moveXbars runs both fabrics' arbitration and drains their egress ports.
func (g *GPU) moveXbars(now sim.Cycle) {
	for m := range g.reqXbars {
		rq, rp := g.reqXbars[m], g.replyXbars[m]
		rq.Tick(now)
		rp.Tick(now)
		// Request egress: slices consume.
		for p := 0; p < rq.OutPorts(); p++ {
			for {
				msg, ok := rq.Peek(p, now)
				if !ok {
					break
				}
				sl := g.slices[m*g.slicesPerModule()+p]
				if !sl.CanAcceptRemote() {
					break
				}
				sl.EnqueueRemote(msg.Req)
				rq.Pop(p, now)
			}
		}
		// Reply egress: SMs (UBA) or slices (NUBA pass-through/replica).
		for p := 0; p < rp.OutPorts(); p++ {
			for {
				msg, ok := rp.Peek(p, now)
				if !ok {
					break
				}
				if !g.deliverReply(m, p, msg, now) {
					break
				}
				rp.Pop(p, now)
			}
		}
	}
}

// deliverReply hands an egressing reply to its consumer, reporting
// whether it was accepted (back-pressure otherwise).
func (g *GPU) deliverReply(module, port int, msg noc.Msg, now sim.Cycle) bool {
	req := msg.Req
	if g.cfg.Arch == config.NUBA {
		sliceID := module*g.slicesPerModule() + port
		sl := g.slices[sliceID]
		if req.ReplicaSlice == sliceID && req.Slice != sliceID {
			sl.AcceptReplicaFill(req, now)
			return true
		}
		// Pass-through reply toward a local SM.
		link := g.sliceReplyLinks[sliceID]
		if !link.CanSend(now) {
			return false
		}
		link.Send(now, req, sim.MessageBytes(req, true))
		return true
	}
	smID := module*g.smsPerModule() + port
	g.accountService(req)
	g.sms[smID].AcceptReply(req, now)
	return true
}

// moveInterHalf drains the SM-side UBA cross-half links.
func (g *GPU) moveInterHalf(now sim.Cycle) {
	for h := 0; h < 2; h++ {
		link := g.interHalf[h]
		if link == nil {
			continue
		}
		for {
			msg, ok := link.Peek(now)
			if !ok {
				break
			}
			var accepted bool
			switch {
			case msg.Inval:
				sl := g.slices[msg.Dst]
				accepted = sl.CanAcceptRemote() && sl.EnqueueRemote(msg.Req)
			case msg.Reply:
				g.slices[msg.Dst].AcceptFill(msg.Req, now)
				accepted = true
			default:
				accepted = g.chans[msg.Dst].Enqueue(msg.Req)
			}
			if !accepted {
				break
			}
			link.Pop(now)
		}
	}
}

// moveInterModule drains MCM inter-module links.
func (g *GPU) moveInterModule(now sim.Cycle) {
	if g.interModule == nil {
		return
	}
	for a := range g.interModule {
		for b := range g.interModule[a] {
			link := g.interModule[a][b]
			if link == nil {
				continue
			}
			for {
				msg, ok := link.Peek(now)
				if !ok {
					break
				}
				if !g.deliverInterModule(msg, now) {
					break
				}
				link.Pop(now)
			}
		}
	}
}

// deliverInterModule hands an inter-module message to its target.
func (g *GPU) deliverInterModule(msg noc.Msg, now sim.Cycle) bool {
	req := msg.Req
	if g.cfg.Arch == config.NUBA {
		sl := g.slices[msg.Dst]
		if msg.Reply {
			if req.ReplicaSlice == msg.Dst && req.Slice != msg.Dst {
				sl.AcceptReplicaFill(req, now)
				return true
			}
			link := g.sliceReplyLinks[msg.Dst]
			if !link.CanSend(now) {
				return false
			}
			link.Send(now, req, sim.MessageBytes(req, true))
			return true
		}
		if !sl.CanAcceptRemote() {
			return false
		}
		sl.EnqueueRemote(req)
		return true
	}
	// UBA-mem MCM.
	if msg.Reply {
		g.accountService(req)
		g.sms[msg.Dst].AcceptReply(req, now)
		return true
	}
	sl := g.slices[msg.Dst]
	if !sl.CanAcceptRemote() {
		return false
	}
	sl.EnqueueRemote(req)
	return true
}
