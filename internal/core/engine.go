package core

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// Engine selects the cycle-loop strategy. Both engines produce
// cycle-exact, byte-identical reports and traces; they differ only in
// wall-clock speed. EngineHybrid is the default; EngineNaive is the
// serial reference kept as an escape hatch and as the oracle the
// cross-engine tests compare against.
type Engine uint8

const (
	// EngineHybrid ticks only components whose wake-up hints say they can
	// make progress and fast-forwards the clock over proven-idle gaps.
	EngineHybrid Engine = iota
	// EngineNaive ticks every component every cycle (the serial
	// reference implementation).
	EngineNaive
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	if e == EngineNaive {
		return "naive"
	}
	return "hybrid"
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "hybrid":
		return EngineHybrid, nil
	case "naive":
		return EngineNaive, nil
	}
	return EngineHybrid, fmt.Errorf("core: unknown engine %q (want hybrid or naive)", s)
}

// SetEngine selects the cycle-loop strategy for subsequent runs.
func (g *GPU) SetEngine(e Engine) { g.engine = e }

// Engine returns the selected cycle-loop strategy.
func (g *GPU) Engine() Engine { return g.engine }

// componentWake returns the earliest cycle at which any component could
// make progress on its own: g.cycle+1 while something is active, a future
// cycle when everything is parked on known timers (DRAM bursts, LLC
// pipelines, link arrivals, scheduler sleeps), and sim.Never when every
// component is drained or waiting on another one. The scan is ordered
// active-likely-first and returns as soon as one active component proves
// the next cycle must run, so its cost on busy cycles is one SM hint.
func (g *GPU) componentWake() sim.Cycle {
	now := g.cycle
	next := now + 1
	wake := sim.Never
	for _, s := range g.sms {
		t := s.NextWake(now)
		if t <= next {
			return next
		}
		if t < wake {
			wake = t
		}
	}
	if !g.migQueue.Empty() || !g.invalQueue.Empty() || len(g.migFillRetry) > 0 {
		return next
	}
	// A crossbar holding messages moves them between stages every cycle.
	for _, x := range g.reqXbars {
		if x.Pending() {
			return next
		}
	}
	for _, x := range g.replyXbars {
		if x.Pending() {
			return next
		}
	}
	for _, l := range g.smReqLinks {
		if t := l.NextReady(); t <= next {
			return next
		} else if t < wake {
			wake = t
		}
	}
	for _, l := range g.sliceReplyLinks {
		if t := l.NextReady(); t <= next {
			return next
		} else if t < wake {
			wake = t
		}
	}
	for _, l := range g.interHalf {
		if l == nil {
			continue
		}
		if t := l.NextReady(); t <= next {
			return next
		} else if t < wake {
			wake = t
		}
	}
	for _, row := range g.interModule {
		for _, l := range row {
			if l == nil {
				continue
			}
			if t := l.NextReady(); t <= next {
				return next
			} else if t < wake {
				wake = t
			}
		}
	}
	for _, sl := range g.slices {
		t := sl.NextEvent(now)
		if t <= next {
			return next
		}
		if t < wake {
			wake = t
		}
	}
	// Channels tick on the memory clock: their next chance to act is the
	// first mem-clock boundary at or after their own next event.
	div := sim.Cycle(g.cfg.MemClockDiv)
	boundary := (now/div + 1) * div
	for _, ch := range g.chans {
		m, ok := ch.NextEvent()
		if !ok {
			continue
		}
		t := m * div
		if t < boundary {
			t = boundary
		}
		if t <= next {
			return next
		}
		if t < wake {
			wake = t
		}
	}
	if t := g.vmsys.NextEvent(); t <= next {
		return next
	} else if t < wake {
		wake = t
	}
	return wake
}

// nextWake is componentWake plus the scheduled timers that fire
// regardless of component activity: MDR epoch boundaries and decision
// applies, migration scans and trace epochs.
func (g *GPU) nextWake() sim.Cycle {
	wake := g.componentWake()
	if wake <= g.cycle+1 {
		return wake
	}
	if g.mdrCtl != nil {
		if t := g.mdrCtl.NextEvent(); t < wake {
			wake = t
		}
	}
	if g.cfg.Placement == config.Migration && g.nextMigScan < wake {
		wake = g.nextMigScan
	}
	if g.tracer != nil && g.tr.next < wake {
		wake = g.tr.next
	}
	return wake
}

// advanceTo advances the clock to target: it steps cycles where some
// component or timer can act and fast-forwards over gaps where ticking
// every component is provably a no-op. Stepping resumes one cycle before
// each wake-up so the event cycle itself runs through the ordinary step,
// with every modulo check and tick ordering identical to EngineNaive.
//
// On busy verdicts the hint scan backs off: stepping is always
// cycle-exact (it is exactly what EngineNaive does), so after a scan
// proves the machine busy the engine blind-steps a stride of cycles
// before scanning again. The stride doubles up to half a batch and
// resets the moment a scan finds skippable idle time, so dense
// workloads pay for at most two scans per 64-cycle batch while
// idle-heavy workloads still fast-forward promptly.
func (g *GPU) advanceTo(target sim.Cycle) {
	for g.cycle < target {
		w := g.nextWake()
		if w <= g.cycle+1 {
			for i := sim.Cycle(0); i <= g.busyStride && g.cycle < target; i++ {
				g.step()
			}
			if g.busyStride < batchCycles/2 {
				g.busyStride = 2*g.busyStride + 1
			}
			continue
		}
		g.busyStride = 0
		if w > target {
			// Nothing can act in (cycle, target]: jump the clock.
			g.cycle = target
			return
		}
		g.cycle = w - 1
		g.step()
	}
}
