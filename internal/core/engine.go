package core

import (
	"fmt"
	"strings"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// Engine selects the cycle-loop strategy. All engines produce
// cycle-exact, byte-identical reports and traces; they differ only in
// wall-clock speed. EngineHybrid is the default; EngineNaive is the
// serial reference kept as an escape hatch and as the oracle the
// cross-engine tests compare against; EngineSanitize is the hybrid
// engine's soundness checker (sanitize.go).
type Engine uint8

const (
	// EngineHybrid ticks only components whose wake-up hints say they can
	// make progress and fast-forwards the clock over proven-idle gaps.
	EngineHybrid Engine = iota
	// EngineNaive ticks every component every cycle (the serial
	// reference implementation).
	EngineNaive
	// EngineSanitize steps through every hybrid-claimed idle window,
	// cross-checking each component's state signature against its wake
	// hint, and fails the run on the first unsound hint.
	EngineSanitize
	// EngineParallel simulates partitions on separate goroutines,
	// synchronizing at the phase barriers tick-phase-order pins
	// (parallel.go). Results stay byte-identical to the serial engines
	// at every worker count.
	EngineParallel
)

// engines is the single registry behind String, ParseEngine,
// EngineNames and EngineUsage — the flag spelling, the enum value and
// the one-line description stay in sync by construction. Order is the
// flag-help display order, default first.
var engines = []struct {
	e    Engine
	name string
	desc string
}{
	{EngineHybrid, "hybrid", "idle-skip cycle loop (default)"},
	{EngineNaive, "naive", "tick every component every cycle (serial reference)"},
	{EngineSanitize, "sanitize", "hybrid with per-cycle hint-soundness checks (slow)"},
	{EngineParallel, "parallel", "partition-parallel cycle loop (deterministic goroutine workers)"},
}

// String returns the engine's flag spelling.
func (e Engine) String() string {
	for _, r := range engines {
		if r.e == e {
			return r.name
		}
	}
	return "hybrid"
}

// ParseEngine parses a -engine flag value. The empty string selects the
// default engine.
func ParseEngine(s string) (Engine, error) {
	if s == "" {
		return EngineHybrid, nil
	}
	for _, r := range engines {
		if r.name == s {
			return r.e, nil
		}
	}
	return EngineHybrid, fmt.Errorf("core: unknown engine %q (want %s)", s, strings.Join(EngineNames(), ", "))
}

// EngineNames returns the flag spellings of every engine, in registry
// order (default first).
func EngineNames() []string {
	names := make([]string, len(engines))
	for i, r := range engines {
		names[i] = r.name
	}
	return names
}

// EngineUsage returns the -engine flag help text, built from the
// registry so CLI help never drifts from the parser.
func EngineUsage() string {
	var b strings.Builder
	b.WriteString("cycle-loop engine: ")
	for i, r := range engines {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(r.name)
	}
	for _, r := range engines {
		fmt.Fprintf(&b, "; %s = %s", r.name, r.desc)
	}
	return b.String()
}

// SetEngine selects the cycle-loop strategy for subsequent runs.
func (g *GPU) SetEngine(e Engine) { g.engine = e }

// Engine returns the selected cycle-loop strategy.
func (g *GPU) Engine() Engine { return g.engine }

// componentWake returns the earliest cycle at which any component could
// make progress on its own: g.cycle+1 while something is active, a future
// cycle when everything is parked on known timers (DRAM bursts, LLC
// pipelines, link arrivals, scheduler sleeps), and sim.Never when every
// component is drained or waiting on another one. The scan is ordered
// active-likely-first and returns as soon as one active component proves
// the next cycle must run, so its cost on busy cycles is one SM hint.
func (g *GPU) componentWake() sim.Cycle {
	now := g.cycle
	next := now + 1
	wake := sim.Never
	for _, s := range g.sms {
		t := s.NextWake(now)
		if t <= next {
			return next
		}
		if t < wake {
			wake = t
		}
	}
	if !g.migQueue.Empty() || !g.invalQueue.Empty() || len(g.migFillRetry) > 0 {
		return next
	}
	// A crossbar holding messages moves them between stages every cycle:
	// its hint is next or Never, never a future timer.
	for _, x := range g.reqXbars {
		if x.NextEvent(now) <= next {
			return next
		}
	}
	for _, x := range g.replyXbars {
		if x.NextEvent(now) <= next {
			return next
		}
	}
	for _, l := range g.smReqLinks {
		if t := l.NextReady(); t <= next {
			return next
		} else if t < wake {
			wake = t
		}
	}
	for _, l := range g.sliceReplyLinks {
		if t := l.NextReady(); t <= next {
			return next
		} else if t < wake {
			wake = t
		}
	}
	for _, l := range g.interHalf {
		if l == nil {
			continue
		}
		if t := l.NextReady(); t <= next {
			return next
		} else if t < wake {
			wake = t
		}
	}
	for _, row := range g.interModule {
		for _, l := range row {
			if l == nil {
				continue
			}
			if t := l.NextReady(); t <= next {
				return next
			} else if t < wake {
				wake = t
			}
		}
	}
	for _, sl := range g.slices {
		t := sl.NextEvent(now)
		if t <= next {
			return next
		}
		if t < wake {
			wake = t
		}
	}
	// Channels tick on the memory clock: their next chance to act is the
	// first mem-clock boundary at or after their own next event.
	div := sim.Cycle(g.cfg.MemClockDiv)
	boundary := (now/div + 1) * div
	for _, ch := range g.chans {
		m, ok := ch.NextEvent()
		if !ok {
			continue
		}
		t := m * div
		if t < boundary {
			t = boundary
		}
		if t <= next {
			return next
		}
		if t < wake {
			wake = t
		}
	}
	if t := g.vmsys.NextEvent(); t <= next {
		return next
	} else if t < wake {
		wake = t
	}
	return wake
}

// nextWake is componentWake plus the scheduled timers that fire
// regardless of component activity: MDR epoch boundaries and decision
// applies, migration scans and trace epochs.
func (g *GPU) nextWake() sim.Cycle {
	wake := g.componentWake()
	if wake <= g.cycle+1 {
		return wake
	}
	if g.mdrCtl != nil {
		if t := g.mdrCtl.NextEvent(); t < wake {
			wake = t
		}
	}
	if g.cfg.Placement == config.Migration && g.nextMigScan < wake {
		wake = g.nextMigScan
	}
	if g.tracer != nil && g.tr.next < wake {
		wake = g.tr.next
	}
	if f := g.flt; f != nil && f.hintBias != 0 && wake != sim.Never {
		wake += f.hintBias
	}
	return wake
}

// advanceTo advances the clock to target: it steps cycles where some
// component or timer can act and fast-forwards over gaps where ticking
// every component is provably a no-op. Stepping resumes one cycle before
// each wake-up so the event cycle itself runs through the ordinary step,
// with every modulo check and tick ordering identical to EngineNaive.
//
// On busy verdicts the hint scan backs off: stepping is always
// cycle-exact (it is exactly what EngineNaive does), so after a scan
// proves the machine busy the engine blind-steps a stride of cycles
// before scanning again. The stride doubles up to half a batch and
// resets the moment a scan finds skippable idle time, so dense
// workloads pay for at most two scans per 64-cycle batch while
// idle-heavy workloads still fast-forward promptly.
func (g *GPU) advanceTo(target sim.Cycle) {
	for g.cycle < target {
		w := g.nextWake()
		if w <= g.cycle+1 {
			for i := sim.Cycle(0); i <= g.busyStride && g.cycle < target; i++ {
				g.step()
			}
			if g.busyStride < batchCycles/2 {
				g.busyStride = 2*g.busyStride + 1
			}
			continue
		}
		g.busyStride = 0
		if w > target {
			// Nothing can act in (cycle, target]: jump the clock.
			g.cycle = target
			return
		}
		g.cycle = w - 1
		g.step()
	}
}
