package core

import (
	"github.com/nuba-gpu/nuba/internal/kir"
)

// Placement prewarm.
//
// The paper simulates a 1-billion-instruction representative window of
// each benchmark, i.e. a mid-execution snapshot in which the working set
// has already been faulted in and placed by the driver; the 20 us
// first-touch fault penalty applies to genuinely cold pages, not to every
// page of the input. The simulator reproduces that by running a fast
// functional pass over each kernel before timing it: warps are
// interpreted without any timing model, and the first touch of each page
// invokes the driver's placement policy from the partition of the SM the
// CTA is scheduled on — exactly the placement the timed window would have
// inherited from the warmup. CTAs are interleaved round-robin across SMs
// in small quanta so the inter-SM first-touch order approximates
// concurrent execution (LAB's balance feedback sees an interleaved
// allocation stream, not one SM's pages at a time).
//
// Set Config.ColdStart to true to skip the prewarm and pay the full
// demand-fault cost during the timed run instead.

// prewarmQuantum is the number of instructions a warp executes per
// round-robin turn.
const prewarmQuantum = 16

type prewarmCTA struct {
	warps  []*kir.Warp
	atBar  []bool
	exited int
}

// prewarm functionally executes the launch, allocating pages on first
// touch with the configured placement policy.
func (g *GPU) prewarm(l *kir.Launch) {
	n := g.cfg.NumSMs
	per := (l.GridDim + n - 1) / n
	cursors := make([]int, n) // next CTA offset per SM
	current := make([]*prewarmCTA, n)
	shift := g.mapper.PageShift()

	var mem kir.MemInfo
	live := n
	for live > 0 {
		live = 0
		for smID := 0; smID < n; smID++ {
			cta := current[smID]
			if cta == nil {
				idx := smID*per + cursors[smID]
				if idx >= l.GridDim || cursors[smID] >= per {
					continue
				}
				cursors[smID]++
				cta = newPrewarmCTA(l, idx)
				current[smID] = cta
			}
			live++
			g.prewarmQuantumRun(l, cta, smID, shift, &mem)
			if cta.exited == len(cta.warps) {
				current[smID] = nil
			}
		}
	}
}

func newPrewarmCTA(l *kir.Launch, cta int) *prewarmCTA {
	wpc := l.WarpsPerCTA()
	p := &prewarmCTA{atBar: make([]bool, wpc)}
	for w := 0; w < wpc; w++ {
		p.warps = append(p.warps, kir.NewWarp(l, cta, w))
	}
	return p
}

// prewarmQuantumRun advances every warp of the CTA by up to
// prewarmQuantum instructions and releases the CTA barrier once every
// non-exited warp reached it.
func (g *GPU) prewarmQuantumRun(l *kir.Launch, cta *prewarmCTA, smID int, shift uint, mem *kir.MemInfo) {
	part := g.cfg.PartitionOfSM(smID)
	for wi, w := range cta.warps {
		if w.Exited || cta.atBar[wi] {
			continue
		}
		for step := 0; step < prewarmQuantum; step++ {
			res := w.Exec(mem)
			switch res.Kind {
			case kir.StepMem:
				g.prewarmTouch(l, mem, part, shift)
			case kir.StepBarrier:
				cta.atBar[wi] = true
			case kir.StepExit:
				cta.exited++
			}
			if w.Exited || cta.atBar[wi] {
				break
			}
		}
	}
	running := 0
	for wi, w := range cta.warps {
		if !w.Exited && !cta.atBar[wi] {
			running++
		}
	}
	if running == 0 {
		for wi := range cta.atBar {
			cta.atBar[wi] = false
		}
	}
}

// prewarmTouch allocates the pages of a memory access on first touch.
func (g *GPU) prewarmTouch(l *kir.Launch, mem *kir.MemInfo, part int, shift uint) {
	writable := !l.Kernel.Buffers[mem.Buf].ReadOnly
	var last uint64 = ^uint64(0)
	for l := 0; l < kir.WarpSize; l++ {
		if mem.Mask&(1<<uint(l)) == 0 {
			continue
		}
		vpn := mem.Addrs[l] >> shift
		if vpn == last {
			continue
		}
		last = vpn
		if _, ok := g.drv.Lookup(vpn); !ok {
			g.drv.Allocate(vpn, part, writable)
		}
	}
}
