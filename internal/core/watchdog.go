package core

import (
	"fmt"
	"strings"

	"github.com/nuba-gpu/nuba/internal/sim"
)

// The forward-progress watchdog. A wedged component can keep the cycle
// loop spinning — its wake hint claims "next cycle" forever while its
// state never changes — and the run only dies at MaxCycles, tens of
// millions of cycles later, with no diagnosis. The watchdog reuses the
// sanitizer's per-component StateSig probes as a progress signature: if
// the signature holds still for a full window of cycles while work is
// outstanding, the run fails immediately with a structured HangReport
// naming the stuck components, their queue depths and their last wake
// hints. A second, instant check catches true deadlocks: every
// component hint at sim.Never while quiet() is false means nothing can
// ever run again (e.g. a dropped DRAM reply wedging an MSHR).
//
// The watchdog only reads the same pure signatures the sanitizer reads,
// so arming it cannot perturb the simulation: runs are byte-identical
// with the watchdog on or off.

// watchdog holds the armed watchdog's state (see GPU.SetWatchdog).
type watchdog struct {
	window       sim.Cycle // fail after this many cycles without progress
	every        sim.Cycle // signature sampling interval
	nextCheck    sim.Cycle
	lastSig      uint64
	lastProgress sim.Cycle
	primed       bool
}

// SetWatchdog arms the forward-progress watchdog: the run fails with a
// *HangError if no component state signature changes for window cycles
// while work is outstanding. window <= 0 disarms. Signatures are
// sampled every window/4 cycles (at least once per batch), so detection
// lands within ~1.25 windows of the actual stall.
func (g *GPU) SetWatchdog(window sim.Cycle) {
	if window <= 0 {
		g.wd = nil
		return
	}
	every := window / 4
	if every < batchCycles {
		every = batchCycles
	}
	g.wd = &watchdog{window: window, every: every}
}

// check runs at batch boundaries while work is outstanding. It returns
// a *HangError when the progress signature has been frozen for a full
// window, or immediately when no component will ever wake again.
func (wd *watchdog) check(g *GPU) error {
	if g.cycle < wd.nextCheck {
		return nil
	}
	wd.nextCheck = g.cycle + wd.every
	// Deadlock fast path: quiet() is false (checked by the caller) yet
	// no component has a future event — nothing can ever run again.
	if g.componentWake() == sim.Never {
		return &HangError{Report: g.CaptureHang("deadlock", 0, g.cycle)}
	}
	sig := g.progressSig()
	if !wd.primed || sig != wd.lastSig {
		wd.primed = true
		wd.lastSig = sig
		wd.lastProgress = g.cycle
		return nil
	}
	if g.cycle-wd.lastProgress >= wd.window {
		return &HangError{Report: g.CaptureHang("no-progress", wd.window, wd.lastProgress)}
	}
	return nil
}

// progressSig folds every ticked component's StateSig into one progress
// signature. Unlike the sanitizer's probe set it excludes pure
// time-driven state — the MDR controller's epoch clock, the migration
// scan and trace timers — which advances even while the machine is
// wedged and would mask a hang.
func (g *GPU) progressSig() uint64 {
	h := sim.MixSig(sim.SigSeed, uint64(g.migQueue.Len()))
	h = sim.MixSig(h, uint64(g.invalQueue.Len()))
	h = sim.MixSig(h, uint64(len(g.migFillRetry)))
	for _, s := range g.sms {
		h = sim.MixSig(h, s.StateSig())
	}
	for _, x := range g.reqXbars {
		h = sim.MixSig(h, x.StateSig())
	}
	for _, x := range g.replyXbars {
		h = sim.MixSig(h, x.StateSig())
	}
	for _, l := range g.smReqLinks {
		h = sim.MixSig(h, l.StateSig())
	}
	for _, l := range g.sliceReplyLinks {
		h = sim.MixSig(h, l.StateSig())
	}
	for _, l := range g.interHalf {
		if l != nil {
			h = sim.MixSig(h, l.StateSig())
		}
	}
	for _, row := range g.interModule {
		for _, l := range row {
			if l != nil {
				h = sim.MixSig(h, l.StateSig())
			}
		}
	}
	for _, sl := range g.slices {
		h = sim.MixSig(h, sl.StateSig())
	}
	for _, ch := range g.chans {
		h = sim.MixSig(h, ch.StateSig())
	}
	h = sim.MixSig(h, g.vmsys.StateSig())
	return h
}

// ComponentState is one stuck component in a HangReport.
type ComponentState struct {
	// Name identifies the component ("SM 3", "LLC slice 0", ...), using
	// the same naming as the sanitizer diagnostics.
	Name string
	// Wake is the component's claimed next wake-up cycle (sim.Never
	// means it is only waiting on external input).
	Wake sim.Cycle
	// Detail is the component's DebugState / queue-depth summary.
	Detail string
}

// HangReport describes a detected hang: when it was declared, how long
// the machine had made no progress, and every component still holding
// work with its last wake hint and queue state.
type HangReport struct {
	// Cycle is when the watchdog declared the hang.
	Cycle sim.Cycle
	// LastProgress is the last cycle at which the progress signature
	// changed (equal to Cycle for deadlock reports).
	LastProgress sim.Cycle
	// Window is the configured no-progress window (0 for deadlock
	// reports, which fire instantly).
	Window sim.Cycle
	// Reason is "no-progress" (signature frozen for Window cycles) or
	// "deadlock" (no component will ever wake while work is pending).
	Reason string
	// Stuck lists the components still holding work (capped at
	// hangReportMaxStuck entries; stuckAll counts them all).
	Stuck    []ComponentState
	stuckAll int
}

// hangReportMaxStuck caps the per-report component listing; the
// remainder is summarized as a count.
const hangReportMaxStuck = 16

// String renders the full multi-line report.
func (r *HangReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hang detected at cycle %d (%s)", r.Cycle, r.Reason)
	if r.Reason == "no-progress" {
		fmt.Fprintf(&b, ": no component state change since cycle %d (window %d)", r.LastProgress, r.Window)
	}
	b.WriteByte('\n')
	for _, c := range r.Stuck {
		wake := "never"
		if c.Wake != sim.Never {
			wake = fmt.Sprintf("%+d", c.Wake-r.Cycle)
		}
		fmt.Fprintf(&b, "  %-24s wake=%-8s %s\n", c.Name, wake, c.Detail)
	}
	if extra := r.stuckAll - len(r.Stuck); extra > 0 {
		fmt.Fprintf(&b, "  ... and %d more pending components\n", extra)
	}
	return b.String()
}

// HangError wraps a HangReport as the run error. Error() is a single
// line naming the first stuck component; the full report is available
// via the Report field.
type HangError struct {
	Report HangReport
}

func (e *HangError) Error() string {
	first := "no pending component identified"
	if len(e.Report.Stuck) > 0 {
		c := e.Report.Stuck[0]
		first = fmt.Sprintf("first stuck: %s (%s)", c.Name, c.Detail)
	}
	if e.Report.Reason == "no-progress" {
		return fmt.Sprintf("core: watchdog: no forward progress for %d cycles at cycle %d; %s",
			e.Report.Cycle-e.Report.LastProgress, e.Report.Cycle, first)
	}
	return fmt.Sprintf("core: watchdog: deadlock at cycle %d: work pending but every wake hint is Never; %s",
		e.Report.Cycle, first)
}

// CaptureHang assembles a HangReport naming every component that still
// holds work, with its wake hint and debug summary. Besides the
// watchdog it serves post-hoc diagnosis (e.g. a wall-clock budget
// expiring in the caller).
func (g *GPU) CaptureHang(reason string, window sim.Cycle, lastProgress sim.Cycle) HangReport {
	r := HangReport{
		Cycle:        g.cycle,
		LastProgress: lastProgress,
		Window:       window,
		Reason:       reason,
	}
	now := g.cycle
	add := func(name string, wake sim.Cycle, detail string) {
		r.stuckAll++
		if len(r.Stuck) < hangReportMaxStuck {
			r.Stuck = append(r.Stuck, ComponentState{Name: name, Wake: wake, Detail: detail})
		}
	}
	for i, s := range g.sms {
		if !s.Idle() {
			add(fmt.Sprintf("SM %d", i), s.NextWake(now), s.DebugState())
		}
	}
	for i, x := range g.reqXbars {
		if x.Pending() {
			add(fmt.Sprintf("req crossbar %d", i), x.NextEvent(now), fmt.Sprintf("occupancy=%d", x.Occupancy()))
		}
	}
	for i, x := range g.replyXbars {
		if x.Pending() {
			add(fmt.Sprintf("reply crossbar %d", i), x.NextEvent(now), fmt.Sprintf("occupancy=%d", x.Occupancy()))
		}
	}
	for i, l := range g.smReqLinks {
		if l.Pending() > 0 {
			add(fmt.Sprintf("SM-request link %d", i), l.NextReady(), fmt.Sprintf("pending=%d", l.Pending()))
		}
	}
	for i, l := range g.sliceReplyLinks {
		if l.Pending() > 0 {
			add(fmt.Sprintf("slice-reply link %d", i), l.NextReady(), fmt.Sprintf("pending=%d", l.Pending()))
		}
	}
	for i, l := range g.interHalf {
		if l != nil && l.Pending() > 0 {
			add(fmt.Sprintf("inter-half link %d", i), l.NextReady(), fmt.Sprintf("pending=%d", l.Pending()))
		}
	}
	for src, row := range g.interModule {
		for dst, l := range row {
			if l != nil && l.Pending() > 0 {
				add(fmt.Sprintf("inter-module link %d->%d", src, dst), l.NextReady(), fmt.Sprintf("pending=%d", l.Pending()))
			}
		}
	}
	for i, sl := range g.slices {
		if sl.Pending() {
			add(fmt.Sprintf("LLC slice %d", i), sl.NextEvent(now), sl.DebugState())
		}
	}
	div := sim.Cycle(g.cfg.MemClockDiv)
	memNow := int64(now) / int64(div)
	for i, ch := range g.chans {
		if ch.Pending() {
			wake := sim.Never
			if t, ok := ch.NextEvent(); ok {
				// Convert the memory-cycle event to the next core cycle
				// on a mem-clock boundary at or after it.
				mc := sim.Cycle(t) * div
				if next := (now/div + 1) * div; mc < next {
					mc = next
				}
				wake = mc
			}
			add(fmt.Sprintf("DRAM channel %d", i), wake, ch.DebugState(memNow))
		}
	}
	if g.vmsys.Pending() {
		add("vm system", g.vmsys.NextEvent(), "in-flight page walks")
	}
	if !g.migQueue.Empty() || !g.invalQueue.Empty() || len(g.migFillRetry) > 0 {
		add("core queues", now+1, fmt.Sprintf("migQ=%d invalQ=%d fillRetry=%d",
			g.migQueue.Len(), g.invalQueue.Len(), len(g.migFillRetry)))
	}
	return r
}
