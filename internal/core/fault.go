package core

import (
	"fmt"

	"github.com/nuba-gpu/nuba/internal/sim"
)

// coreFault holds the core-level fault-injection state. The pointer on
// GPU stays nil in production runs (one nil check on the paths that
// consult it), mirroring the nil-gated trace probes. Faults are armed
// through the Inject* methods below — internal/fault and tests are the
// only callers; the lint fault-containment rule keeps it that way.
type coreFault struct {
	// hintBias is added to every future wake the hint scan reports — a
	// deliberately unsound hint EngineSanitize must catch (generalizes
	// the former testHintBias field).
	hintBias sim.Cycle
	// panicAt makes step() panic at that cycle, modeling a model
	// invariant blowing up mid-run (the experiment pool must isolate
	// it). 0 disables.
	panicAt sim.Cycle
}

func (g *GPU) fault() *coreFault {
	if g.flt == nil {
		g.flt = &coreFault{}
	}
	return g.flt
}

// InjectHintBias makes every future wake hint optimistic (bias < 0) or
// late (bias > 0) by the given amount. Test-only.
func (g *GPU) InjectHintBias(bias sim.Cycle) { g.fault().hintBias = bias }

// InjectPanic schedules a panic inside the cycle loop at cycle at,
// modeling a model-invariant failure (e.g. "smcore: no free warp
// slot"). Test-only.
func (g *GPU) InjectPanic(at sim.Cycle) { g.fault().panicAt = at }

// InjectWedgedSM wedges SM idx from cycle at onward (Tick no-ops while
// work stays outstanding). Test-only.
func (g *GPU) InjectWedgedSM(idx int, at sim.Cycle) error {
	if idx < 0 || idx >= len(g.sms) {
		return fmt.Errorf("core: inject: SM %d out of range [0,%d)", idx, len(g.sms))
	}
	g.sms[idx].InjectWedge(at)
	return nil
}

// InjectLLCStall freezes LLC slice idx in [from, until) (until 0 =
// forever). Test-only.
func (g *GPU) InjectLLCStall(idx int, from, until sim.Cycle) error {
	if idx < 0 || idx >= len(g.slices) {
		return fmt.Errorf("core: inject: LLC slice %d out of range [0,%d)", idx, len(g.slices))
	}
	g.slices[idx].InjectStall(from, until)
	return nil
}

// InjectLLCSlow degrades LLC slice idx from cycle from onward to one
// tick every period cycles — slow but live; the watchdog must not flag
// it. Test-only.
func (g *GPU) InjectLLCSlow(idx int, from, period sim.Cycle) error {
	if idx < 0 || idx >= len(g.slices) {
		return fmt.Errorf("core: inject: LLC slice %d out of range [0,%d)", idx, len(g.slices))
	}
	if period < 1 {
		return fmt.Errorf("core: inject: slow period %d must be >= 1", period)
	}
	g.slices[idx].InjectSlow(from, period)
	return nil
}

// InjectNoCStall freezes request crossbar idx from cycle from onward.
// Test-only.
func (g *GPU) InjectNoCStall(idx int, from sim.Cycle) error {
	if idx < 0 || idx >= len(g.reqXbars) {
		return fmt.Errorf("core: inject: request crossbar %d out of range [0,%d)", idx, len(g.reqXbars))
	}
	g.reqXbars[idx].InjectStall(from)
	return nil
}

// InjectDRAMReplyDrop makes DRAM channel idx swallow its (after+1)-th
// read reply, wedging the waiting MSHR forever. Test-only.
func (g *GPU) InjectDRAMReplyDrop(idx int, after int64) error {
	if idx < 0 || idx >= len(g.chans) {
		return fmt.Errorf("core: inject: DRAM channel %d out of range [0,%d)", idx, len(g.chans))
	}
	g.chans[idx].InjectReplyDrop(after)
	return nil
}

// NumSMs, NumSlices, NumReqXbars and NumChannels expose component
// counts so fault plans can pick seeded targets without reaching into
// core internals.
func (g *GPU) NumSMs() int      { return len(g.sms) }
func (g *GPU) NumSlices() int   { return len(g.slices) }
func (g *GPU) NumReqXbars() int { return len(g.reqXbars) }
func (g *GPU) NumChannels() int { return len(g.chans) }
