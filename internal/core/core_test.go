package core

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// tinyConfig returns a small 8-SM system for fast tests.
func tinyConfig(arch config.Arch) config.Config {
	cfg := config.Baseline().Scale(0.125).WithArch(arch)
	cfg.MaxCycles = 5_000_000
	return cfg
}

const tinyStream = `
.kernel tiny
.param .ptr A
.param .ptr B
.param .u64 iters
  mov r0, %tid
  mov r1, %ctaid
  mov r2, %ntid
  mul r3, r1, r2
  mul r3, r3, iters
  add r3, r3, r0
  mov r4, 0
loop:
  mad r5, r4, r2, r3
  shl r6, r5, 3
  ld.global.u64 r7, [A + r6]
  fma r7, r7
  st.global.u64 [B + r6], r7
  add r4, r4, 1
  setp.lt p0, r4, iters
  @p0 bra loop
  exit
`

func tinyLaunch(t *testing.T, g *GPU, grid int, iters int64) *kir.Launch {
	t.Helper()
	k := kir.MustParse(tinyStream)
	kir.AnalyzeReadOnly(k)
	size := uint64(grid) * 256 * uint64(iters) * 8
	l := &kir.Launch{Kernel: k, GridDim: grid, CTAThreads: 256,
		Scalars: []int64{iters},
		Buffers: []kir.Binding{{Base: g.NewBuffer(size), Size: size}, {Base: g.NewBuffer(size), Size: size}}}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAllArchitecturesRunTinyKernel(t *testing.T) {
	for _, arch := range []config.Arch{config.UBAMem, config.UBASMSide, config.NUBA} {
		g := MustNew(tinyConfig(arch))
		l := tinyLaunch(t, g, 32, 4)
		if err := g.RunProgram([]*kir.Launch{l}); err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		st := g.Stats()
		if st.Cycles == 0 || st.Instructions == 0 || st.Replies == 0 {
			t.Fatalf("%v: empty run %+v", arch, st)
		}
		// All issued loads must be answered: grid*256 threads * 4 iters,
		// 16 elements per line, minus L1 hits and merges.
		if st.L1Misses == 0 {
			t.Fatalf("%v: no L1 misses in a streaming kernel", arch)
		}
		if st.LocalAccesses+st.RemoteAccesses == 0 {
			t.Fatalf("%v: no service classification", arch)
		}
	}
}

func TestInstructionCountMatchesFunctionalExecution(t *testing.T) {
	// The timed pipeline must execute exactly the same instruction stream
	// as a pure functional interpretation.
	g := MustNew(tinyConfig(config.UBAMem))
	l := tinyLaunch(t, g, 16, 4)

	var want int64
	for cta := 0; cta < l.GridDim; cta++ {
		for wi := 0; wi < l.WarpsPerCTA(); wi++ {
			w := kir.NewWarp(l, cta, wi)
			var mem kir.MemInfo
			for !w.Exited {
				w.Exec(&mem)
				want++
			}
		}
	}
	if err := g.RunProgram([]*kir.Launch{l}); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().Instructions; got != want {
		t.Fatalf("timed run executed %d instructions, functional %d", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		g := MustNew(tinyConfig(config.NUBA))
		l := tinyLaunch(t, g, 32, 4)
		if err := g.RunProgram([]*kir.Launch{l}); err != nil {
			t.Fatal(err)
		}
		return g.Stats().Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d cycles", a, b)
	}
}

func TestColdStartPaysFaults(t *testing.T) {
	cfg := tinyConfig(config.UBAMem)
	cfg.ColdStart = true
	cfg.PageFaultLatency = 2000
	g := MustNew(cfg)
	l := tinyLaunch(t, g, 16, 2)
	if err := g.RunProgram([]*kir.Launch{l}); err != nil {
		t.Fatal(err)
	}
	if g.Stats().PageFaults == 0 {
		t.Fatal("cold start produced no faults")
	}

	warm := MustNew(tinyConfig(config.UBAMem))
	lw := tinyLaunch(t, warm, 16, 2)
	if err := warm.RunProgram([]*kir.Launch{lw}); err != nil {
		t.Fatal(err)
	}
	if warm.Stats().PageFaults != 0 {
		t.Fatalf("prewarmed run faulted %d times", warm.Stats().PageFaults)
	}
	if g.Stats().Cycles <= warm.Stats().Cycles {
		t.Fatal("cold start should be slower than prewarmed")
	}
}

func TestNUBALocalityUnderLAB(t *testing.T) {
	g := MustNew(tinyConfig(config.NUBA))
	l := tinyLaunch(t, g, 64, 4)
	if err := g.RunProgram([]*kir.Launch{l}); err != nil {
		t.Fatal(err)
	}
	if lf := g.Stats().LocalFraction(); lf < 0.6 {
		t.Fatalf("low-sharing stream only %.2f local under LAB", lf)
	}
}

func TestMultiKernelFlushesLLC(t *testing.T) {
	g := MustNew(tinyConfig(config.UBAMem))
	l := tinyLaunch(t, g, 16, 2)
	if err := g.RunProgram([]*kir.Launch{l, l}); err != nil {
		t.Fatal(err)
	}
	// Stores dirty the LLC; the inter-kernel flush must write them back.
	if g.Stats().DRAMWrites == 0 {
		t.Fatal("no writebacks after kernel flush")
	}
	for _, sl := range g.slices {
		if sl.Tags().Occupancy() != 0 {
			t.Fatal("LLC not flushed at final kernel boundary")
		}
	}
}

func TestMCMConfigurationRuns(t *testing.T) {
	cfg := config.MCM(config.NUBA).Scale(0.25) // 32 SMs over 4 modules
	cfg.MaxCycles = 10_000_000
	g := MustNew(cfg)
	l := tinyLaunch(t, g, 64, 2)
	if err := g.RunProgram([]*kir.Launch{l}); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Cycles == 0 {
		t.Fatal("MCM run empty")
	}
}

func TestMigrationPolicyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short")
	}
	cfg := config.NUBABaseline().Scale(0.25)
	cfg.Placement = config.Migration
	cfg.MigrationInterval = 10000
	cfg.MigrationThreshold = 8
	cfg.MaxCycles = 40_000_000
	g := MustNew(cfg)
	b, err := workload.ByAbbr("SGEMM")
	if err != nil {
		t.Fatal(err)
	}
	launches, err := b.Build(g.NewBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunProgram(launches[:1]); err != nil {
		t.Fatal(err)
	}
	// Shared panels have remote-dominant accessors: migrations happen.
	if g.Stats().PageMigrations == 0 {
		t.Log("warning: no migrations triggered (acceptable but unusual)")
	}
}

func TestPageReplicationPolicyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short")
	}
	cfg := config.NUBABaseline().Scale(0.25)
	cfg.Placement = config.PageReplication
	cfg.MigrationThreshold = 8
	cfg.MaxCycles = 40_000_000
	g := MustNew(cfg)
	b, err := workload.ByAbbr("SGEMM")
	if err != nil {
		t.Fatal(err)
	}
	launches, err := b.Build(g.NewBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunProgram(launches[:1]); err != nil {
		t.Fatal(err)
	}
	if g.Stats().PageReplicas == 0 {
		t.Fatal("page replication never triggered on a shared-panel GEMM")
	}
}

func TestMDRControllerWiring(t *testing.T) {
	if MustNew(tinyConfig(config.NUBA)).MDRController() == nil {
		t.Fatal("NUBA+MDR has no controller")
	}
	cfg := tinyConfig(config.NUBA)
	cfg.Replication = config.NoRep
	if MustNew(cfg).MDRController() != nil {
		t.Fatal("No-Rep config has a controller")
	}
	if MustNew(tinyConfig(config.UBAMem)).MDRController() != nil {
		t.Fatal("UBA config has a controller")
	}
}

func TestNewBufferPageAligned(t *testing.T) {
	g := MustNew(tinyConfig(config.UBAMem))
	a := g.NewBuffer(100)
	b := g.NewBuffer(5000)
	if a%4096 != 0 || b%4096 != 0 {
		t.Fatal("buffers not page aligned")
	}
	if b <= a || b-a < 4096+100 {
		t.Fatal("buffers overlap or too close")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Baseline()
	cfg.NumSMs = 63 // not divisible by 32 channels
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestReplicationImprovesSharedReadBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short")
	}
	// The headline mechanism: on a shared-panel GEMM, NUBA+MDR must beat
	// NUBA without replication.
	run := func(rep config.ReplicationPolicy) int64 {
		cfg := config.NUBABaseline().Scale(0.5)
		cfg.Replication = rep
		cfg.MaxCycles = 40_000_000
		g := MustNew(cfg)
		b, err := workload.ByAbbr("SGEMM")
		if err != nil {
			t.Fatal(err)
		}
		launches, err := b.Build(g.NewBuffer)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.RunProgram(launches); err != nil {
			t.Fatal(err)
		}
		return g.Stats().Cycles
	}
	noRep := run(config.NoRep)
	mdr := run(config.MDR)
	if float64(mdr) > 0.95*float64(noRep) {
		t.Fatalf("MDR (%d cycles) did not improve on No-Rep (%d cycles)", mdr, noRep)
	}
}
