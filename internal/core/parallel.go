package core

// The partition-parallel engine (-engine=parallel): partitions simulate
// on separate goroutines, synchronizing at the phase barriers that the
// lint rule `tick-phase-order` pins on GPU.step. The committed shard
// map (docs/shardmap.json) proves the partition seam statically; this
// file is the runtime that exploits it. docs/PARALLEL.md walks through
// the barrier protocol and the determinism argument; the short form:
//
//	vmsys.Tick                      serial   (coordinator)
//	phase A  per partition          workers  SM ticks (VM calls gated into
//	                                         partition order) + request-link
//	                                         drains, all partition-local
//	barrier A                       serial   flush staged page allocations,
//	                                         replay MDR observations in SM-ID
//	                                         order
//	moveXbars + moveInterModule     serial   the NoC is the only structure
//	                                         that couples partitions
//	phase B  per partition          workers  reply-link drains, slice ticks
//	                                         (store acks deferred), channel
//	                                         ticks, all partition-local
//	barrier B                       serial   replay store acks in slice-ID
//	                                         order
//	mdr / migration / trace tail    serial   (coordinator)
//
// Commutative state (metrics.Stats counters, the sharing histogram) is
// sharded per partition and folded exactly at end of run; everything
// else a worker touches is either owned by one of its partitions or
// exchanged at a barrier in component-ID order. Results are therefore
// byte-identical to the serial engines at every worker count — the
// cross-engine suite asserts it and CI runs these paths under -race.

import (
	"sync"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// parallelGrouping declares which component types the engine groups by
// owning partition onto workers. The nubalint stale-shardmap guard
// cross-checks this manifest against the components in the committed
// docs/shardmap.json, so the engine cannot silently drift from the
// statically proven partition plan (`make shardmap`).
var parallelGrouping = []string{
	"internal/smcore.SM",
	"internal/llc.Slice",
	"internal/dram.Channel",
}

// phase identifies a worker job.
type phase int8

const (
	phaseSM  phase = iota + 1 // SM ticks + request-link drains
	phaseMem                  // reply-link drains + slice + channel ticks
)

// parJob is one dispatch to a background worker.
type parJob struct {
	ph  phase
	now sim.Cycle
}

// storeAck is a deferred Slice.StoreDone delivery (see GPU.storeDone).
type storeAck struct {
	req *sim.MemReq
	now sim.Cycle
}

// mdrObs is a deferred mdr.Profiler.Observe call (see nubaSend).
type mdrObs struct {
	req            *sim.MemReq
	home           int
	local          bool
	replicaWouldBe int
	now            sim.Cycle
}

// parShard is one partition's private slice of the commutative state.
type parShard struct {
	stats metrics.Stats
	hist  *metrics.SharingHistogram
}

// parState is the engine's machinery: the worker pool, the VM
// allocation gate, the per-partition shards and the barrier-exchange
// outboxes.
type parState struct {
	nParts  int
	blocks  [][2]int // per worker: owned partition range [lo, hi)
	shards  []parShard
	scratch metrics.Stats // statsView's merge buffer

	// inPhase is true while phase workers run; the deferral seams
	// (storeDone, nubaSend) and the VM gate consult it. Written by the
	// coordinator only, with a happens-before edge to the workers
	// through the job channels.
	inPhase bool

	// VM allocation gate: partition p's SMs may enter the shared VM
	// system only once every partition < p has finished its SM ticks,
	// so vmsys (whose Request return value is branch-sensitive the same
	// cycle) sees callers in exactly the serial engines' order. Workers
	// own ascending contiguous partition blocks, so the wait graph has
	// no cycles.
	gateMu   sync.Mutex
	gateCond *sync.Cond
	smDone   []bool
	frontier int // first partition whose SM ticks have not all finished

	// Barrier-exchange outboxes, replayed in component-ID order.
	obsOut [][]mdrObs   // per SM: deferred MDR profiler observations
	ackOut [][]storeAck // per slice: deferred store acknowledgements

	// Background worker pool (workers 1..len(blocks)-1; the coordinator
	// runs block 0 inline). Recreated by start for every runUntilIdle.
	jobs    []chan parJob
	done    chan struct{}
	wg      sync.WaitGroup
	running bool

	// A worker panic is captured, the gate is poisoned so no peer
	// deadlocks waiting on the dead worker's partitions, and the panic
	// rethrows on the coordinator after the barrier join — composing
	// with the experiment pool's panic isolation.
	panicMu  sync.Mutex
	panicVal any
}

// parCapable reports whether the configuration supports the fully
// parallel cycle. The monolithic NUBA arch is the paper's partitioned
// machine: SM+LLC+channel clusters coupled only through the NoC. The
// other architectures and the page-moving placement policies have
// cross-partition tick-path traffic outside the NoC phases (inter-half
// links, migration shootdowns mid-phase), so they fall back to the
// hybrid serial loop — still correct, just not parallel.
func (g *GPU) parCapable() bool {
	return g.cfg.Arch == config.NUBA &&
		g.cfg.NumModules <= 1 &&
		g.cfg.Placement != config.Migration &&
		g.cfg.Placement != config.PageReplication &&
		g.cfg.NumPartitions() > 1
}

// SetPartitionWorkers sets the parallel engine's worker count: 0 (the
// default) means one worker per partition; 1 runs the barrier schedule
// inline on the coordinator. Like the engine choice itself, the worker
// count is an execution knob that never changes simulated results —
// it is memo-key-neutral in the run API. Call before running kernels.
func (g *GPU) SetPartitionWorkers(n int) { g.parWorkers = n }

// PartitionWorkers returns the effective worker count the parallel
// engine would use (after clamping to [1, NumPartitions]).
func (g *GPU) PartitionWorkers() int {
	w := g.parWorkers
	if w <= 0 || w > g.cfg.NumPartitions() {
		w = g.cfg.NumPartitions()
	}
	return w
}

// ensurePar builds parState on the first parallel batch; it leaves
// g.par nil for fallback configurations.
func (g *GPU) ensurePar() {
	if g.parTried {
		return
	}
	g.parTried = true
	if !g.parCapable() {
		return
	}
	parts := g.cfg.NumPartitions()
	workers := g.PartitionWorkers()
	p := &parState{
		nParts: parts,
		shards: make([]parShard, parts),
		smDone: make([]bool, parts),
		obsOut: make([][]mdrObs, g.cfg.NumSMs),
		ackOut: make([][]storeAck, g.cfg.NumLLCSlices),
	}
	p.gateCond = sync.NewCond(&p.gateMu)
	// Contiguous ascending partition blocks, one per worker.
	for w := 0; w < workers; w++ {
		lo := w * parts / workers
		hi := (w + 1) * parts / workers
		if lo < hi {
			p.blocks = append(p.blocks, [2]int{lo, hi})
		}
	}
	// Re-point every component's counter sinks at its partition's
	// shard. Each shard is written by exactly one goroutine per phase
	// and folded with the exact commutative merge at end of run.
	for part := range p.shards {
		p.shards[part].hist = metrics.NewSharingHistogram()
	}
	for _, s := range g.sms {
		sh := &p.shards[s.Part]
		s.SetStats(&sh.stats, sh.hist)
	}
	for _, sl := range g.slices {
		sl.SetStats(&p.shards[sl.Part].stats)
	}
	g.par = p
}

// startParWorkers spawns the background workers for one runUntilIdle
// call; the returned stop joins them. nil when the engine runs inline
// (fallback configuration or a single worker).
func (g *GPU) startParWorkers() func() {
	g.ensurePar()
	p := g.par
	if p == nil || len(p.blocks) <= 1 || p.running {
		return nil
	}
	p.running = true
	p.jobs = make([]chan parJob, len(p.blocks))
	p.done = make(chan struct{}, len(p.blocks))
	for w := 1; w < len(p.blocks); w++ {
		p.jobs[w] = make(chan parJob)
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			for job := range p.jobs[w] {
				g.runParBlock(job.ph, w, job.now)
				p.done <- struct{}{}
			}
		}(w)
	}
	return func() {
		for w := 1; w < len(p.blocks); w++ {
			close(p.jobs[w])
		}
		p.wg.Wait()
		p.running = false
	}
}

// runParBlock executes one phase for worker w's partitions, capturing
// panics so a dying worker can neither wedge the gate nor escape the
// experiment pool's isolation.
func (g *GPU) runParBlock(ph phase, w int, now sim.Cycle) {
	defer func() {
		if r := recover(); r != nil {
			p := g.par
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
			}
			p.panicMu.Unlock()
			// Poison the gate: release any peer waiting on this
			// worker's unfinished partitions. The run is already dead;
			// the coordinator rethrows after the join.
			p.gateMu.Lock()
			p.frontier = p.nParts
			p.gateCond.Broadcast()
			p.gateMu.Unlock()
		}
	}()
	lo, hi := g.par.blocks[w][0], g.par.blocks[w][1]
	switch ph {
	case phaseSM:
		spp := g.cfg.SMsPerPartitionActual()
		for part := lo; part < hi; part++ {
			for i := part * spp; i < (part+1)*spp; i++ {
				g.sms[i].Tick(now)
			}
			g.par.finishSMs(part)
			g.moveNUBARequestLinksRange(part*spp, (part+1)*spp, now)
		}
	case phaseMem:
		slpp := g.cfg.SlicesPerPartitionActual()
		memTick := now%sim.Cycle(g.cfg.MemClockDiv) == 0
		mem := int64(now) / int64(g.cfg.MemClockDiv)
		for part := lo; part < hi; part++ {
			st := &g.par.shards[part].stats
			g.moveNUBAReplyLinksRange(part*slpp, (part+1)*slpp, st, now)
			for s := part * slpp; s < (part+1)*slpp; s++ {
				g.slices[s].Tick(now)
			}
			if memTick {
				// NumPartitions == NumChannels: partition part owns
				// exactly channel part.
				g.chans[part].Tick(mem)
			}
		}
	}
}

// runPhase dispatches one phase to the background workers, runs block 0
// on the coordinator, joins the barrier, and rethrows any worker panic.
func (g *GPU) runPhase(ph phase, now sim.Cycle) {
	p := g.par
	for w := 1; w < len(p.blocks); w++ {
		p.jobs[w] <- parJob{ph: ph, now: now}
	}
	g.runParBlock(ph, 0, now)
	for w := 1; w < len(p.blocks); w++ {
		<-p.done
	}
	if p.panicVal != nil {
		r := p.panicVal
		p.panicVal = nil
		panic(r)
	}
}

// resetGate re-arms the VM allocation gate for a new SM phase.
func (p *parState) resetGate() {
	p.gateMu.Lock()
	p.frontier = 0
	for i := range p.smDone {
		p.smDone[i] = false
	}
	p.gateMu.Unlock()
}

// finishSMs marks partition part's SM ticks complete and advances the
// gate frontier over the finished prefix.
func (p *parState) finishSMs(part int) {
	p.gateMu.Lock()
	p.smDone[part] = true
	for p.frontier < p.nParts && p.smDone[p.frontier] {
		p.frontier++
	}
	p.gateCond.Broadcast()
	p.gateMu.Unlock()
}

// gatedVMRequest is the VMRequest seam installed on every SM (wire).
// Outside a parallel phase it is vmsys.Request plus one nil check.
// Inside phase A it blocks the caller until the gate frontier reaches
// its partition, then holds the gate mutex across the vmsys call: at
// most one SM is ever inside the VM system, and partitions enter in
// ascending order — the serial engines' exact call order, which keeps
// the port-arbitration branch (Request's return value) and the walk
// event-heap insertion order byte-identical.
func (g *GPU) gatedVMRequest(part int, vpn uint64, writable bool, now sim.Cycle, done func()) bool {
	p := g.par
	if p == nil || !p.inPhase {
		return g.vmsys.Request(part, vpn, writable, now, done)
	}
	p.gateMu.Lock()
	for p.frontier < part {
		p.gateCond.Wait()
	}
	ok := g.vmsys.Request(part, vpn, writable, now, done)
	p.gateMu.Unlock()
	return ok
}

// statsView returns the run's counters as the serial engines would see
// them: g.stats itself when no shards exist, otherwise a non-destructive
// merge of g.stats and every partition shard into a scratch buffer. The
// tracing sampler reads through it so epoch deltas stay byte-identical
// across engines.
func (g *GPU) statsView() *metrics.Stats {
	p := g.par
	if p == nil {
		return g.stats
	}
	p.scratch = *g.stats
	for i := range p.shards {
		p.scratch.Add(&p.shards[i].stats)
	}
	return &p.scratch
}

// foldShards drains the per-partition shards into the run statistics
// and histogram. Stats shards are zeroed after the exact integer fold
// so collect stays idempotent on error paths; histogram merges are set
// unions (idempotent by themselves) and need no drain.
func (g *GPU) foldShards() {
	p := g.par
	if p == nil {
		return
	}
	for i := range p.shards {
		sh := &p.shards[i]
		g.stats.Add(&sh.stats)
		sh.stats = metrics.Stats{}
		g.hist.Merge(sh.hist)
	}
}

// replayMDRObs replays phase A's deferred profiler observations in
// SM-ID order — the order nubaSend produces them in under the serial
// engines (the shadow tags are LRU, so order matters).
func (g *GPU) replayMDRObs() {
	if g.mdrProf == nil {
		return
	}
	p := g.par
	for sm := range p.obsOut {
		for _, o := range p.obsOut[sm] {
			g.mdrProf.Observe(o.req, o.home, o.local, o.replicaWouldBe, o.now)
		}
		p.obsOut[sm] = p.obsOut[sm][:0]
	}
}

// replayStoreAcks replays phase B's deferred store acknowledgements in
// slice-ID order — the serial engines' slice-tick order. Nothing reads
// SM state between the slice phase and this barrier, so delivery here
// is indistinguishable from the serial engines' in-tick delivery.
func (g *GPU) replayStoreAcks() {
	p := g.par
	for s := range p.ackOut {
		for _, a := range p.ackOut[s] {
			g.accountService(a.req)
			g.sms[a.req.SM].AcceptReply(a.req, a.now)
		}
		p.ackOut[s] = p.ackOut[s][:0]
	}
}

// advanceToParallel is the parallel engine's advanceTo: the hybrid
// engine's idle-skip control flow (identical wake scan, stride backoff
// and batch lattice) around parallelStep instead of step. Fallback
// configurations run the plain hybrid loop.
func (g *GPU) advanceToParallel(target sim.Cycle) {
	g.ensurePar()
	if g.par == nil {
		g.advanceTo(target)
		return
	}
	for g.cycle < target {
		w := g.nextWake()
		if w <= g.cycle+1 {
			for i := sim.Cycle(0); i <= g.busyStride && g.cycle < target; i++ {
				g.parallelStep()
			}
			if g.busyStride < batchCycles/2 {
				g.busyStride = 2*g.busyStride + 1
			}
			continue
		}
		g.busyStride = 0
		if w > target {
			g.cycle = target
			return
		}
		g.cycle = w - 1
		g.parallelStep()
	}
}

// parallelStep advances the whole system by one core cycle on the
// barrier schedule. Compare with GPU.step's NUBA arm: the phases run
// in the same declared order, with the partition-local work fanned out
// and every cross-partition effect confined to the serial sections and
// the ordered barrier replays.
func (g *GPU) parallelStep() {
	g.cycle++
	now := g.cycle
	p := g.par

	g.vmsys.Tick(now)

	// Phase A: SM ticks + request-link drains, per partition. Page
	// allocations stage their page-table insert so concurrent
	// PageLookup readers never observe a mid-phase map write.
	p.resetGate()
	g.drv.StageAllocations(true)
	p.inPhase = true
	g.runPhase(phaseSM, now)
	p.inPhase = false
	g.drv.StageAllocations(false)
	g.drv.FlushStagedAllocations()
	g.replayMDRObs()

	// The NoC phases couple partitions and stay serial.
	g.moveXbars(now)
	g.moveInterModule(now)

	// Phase B: reply-link drains, slice ticks and channel ticks, per
	// partition; store acks park in slice outboxes.
	p.inPhase = true
	g.runPhase(phaseMem, now)
	p.inPhase = false
	g.replayStoreAcks()

	if g.mdrCtl != nil {
		g.mdrCtl.Tick(now)
	}
	g.drainMigQueue()

	if g.tracer != nil && now >= g.tr.next {
		g.traceSample(now)
		g.tr.next = now + g.tracer.EpochCycles()
	}
}
