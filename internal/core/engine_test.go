package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/sim"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		err  bool
	}{
		{"", EngineHybrid, false},
		{"hybrid", EngineHybrid, false},
		{"naive", EngineNaive, false},
		{"sanitize", EngineSanitize, false},
		{"turbo", EngineHybrid, true},
	} {
		got, err := ParseEngine(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	if EngineHybrid.String() != "hybrid" || EngineNaive.String() != "naive" || EngineSanitize.String() != "sanitize" {
		t.Errorf("engine String() drifted: %q, %q, %q", EngineHybrid, EngineNaive, EngineSanitize)
	}
	// The registry round-trips: every advertised name parses back to an
	// engine that spells itself the same way, so CLI help (EngineUsage)
	// can never drift from the parser.
	for _, name := range EngineNames() {
		e, err := ParseEngine(name)
		if err != nil || e.String() != name {
			t.Errorf("registry round-trip broken for %q: %v, %v", name, e, err)
		}
		if !strings.Contains(EngineUsage(), name) {
			t.Errorf("EngineUsage() omits engine %q: %s", name, EngineUsage())
		}
	}
}

// runEngine executes the tiny streaming kernel on cfg under the given
// engine and returns the final statistics.
func runEngine(t *testing.T, cfg config.Config, e Engine) *metrics.Stats {
	t.Helper()
	g := MustNew(cfg)
	g.SetEngine(e)
	l := tinyLaunch(t, g, 32, 4)
	if err := g.RunProgram([]*kir.Launch{l}); err != nil {
		t.Fatal(err)
	}
	return g.Stats()
}

// The hybrid engine must be cycle-exact: every counter equal to the
// serial reference, across all architectures and the timer-driven
// subsystems (MDR epochs, migration scans, MCM inter-module links).
func TestEnginesCycleExact(t *testing.T) {
	mcm := config.Baseline().Scale(0.125).WithArch(config.NUBA)
	mcm.NumModules = 2
	mcm.InterModuleGBs = 256
	mdrCfg := tinyConfig(config.NUBA)
	mdrCfg.Replication = config.MDR
	mdrCfg.MDREpoch = 4096
	migCfg := tinyConfig(config.NUBA)
	migCfg.Placement = config.Migration
	migCfg.MigrationInterval = 4096
	cases := map[string]config.Config{
		"uba-mem":  tinyConfig(config.UBAMem),
		"uba-sm":   tinyConfig(config.UBASMSide),
		"nuba":     tinyConfig(config.NUBA),
		"nuba-mdr": mdrCfg,
		"nuba-mig": migCfg,
		"nuba-mcm": mcm,
	}
	for _, name := range []string{"uba-mem", "uba-sm", "nuba", "nuba-mdr", "nuba-mig", "nuba-mcm"} {
		cfg := cases[name]
		naive := runEngine(t, cfg, EngineNaive)
		hybrid := runEngine(t, cfg, EngineHybrid)
		if a, b := fmt.Sprintf("%+v", *naive), fmt.Sprintf("%+v", *hybrid); a != b {
			t.Errorf("%s: engines diverge\nnaive:  %s\nhybrid: %s", name, a, b)
		}
	}
}

// Wake-up ordering ties: when an MDR epoch boundary, a migration scan and
// a mem-clock boundary all land on the same cycle, the hybrid engine must
// process them in the same intra-step order as the reference.
func TestEnginesWakeTies(t *testing.T) {
	cfg := tinyConfig(config.NUBA)
	cfg.Replication = config.MDR
	cfg.Placement = config.Migration
	// Both timers share a period that is a multiple of MemClockDiv and of
	// the batch size, so every firing ties with a mem-clock boundary and
	// lands exactly on a batch lattice point.
	cfg.MDREpoch = 4 * batchCycles
	cfg.MigrationInterval = 4 * batchCycles
	naive := runEngine(t, cfg, EngineNaive)
	hybrid := runEngine(t, cfg, EngineHybrid)
	if a, b := fmt.Sprintf("%+v", *naive), fmt.Sprintf("%+v", *hybrid); a != b {
		t.Errorf("engines diverge under tied wake-ups\nnaive:  %s\nhybrid: %s", a, b)
	}
}

// A component that re-activates exactly at a fast-forward target: with
// the epoch equal to the batch size every MDR wake-up coincides with the
// batch boundary the fast-forward aims at, exercising the w == target
// path of advanceTo.
func TestEngineReactivationAtFastForwardTarget(t *testing.T) {
	cfg := tinyConfig(config.NUBA)
	cfg.Replication = config.MDR
	cfg.MDREpoch = batchCycles
	naive := runEngine(t, cfg, EngineNaive)
	hybrid := runEngine(t, cfg, EngineHybrid)
	if a, b := fmt.Sprintf("%+v", *naive), fmt.Sprintf("%+v", *hybrid); a != b {
		t.Errorf("engines diverge with wake at batch boundary\nnaive:  %s\nhybrid: %s", a, b)
	}
}

// errAfterCtx reports Canceled starting from the nth Err poll — a
// deterministic cancellation point, independent of wall-clock, that lands
// in the middle of a run (and, for the hybrid engine, between
// fast-forward jumps).
type errAfterCtx struct {
	polls int64
	after int64
}

func (c *errAfterCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *errAfterCtx) Done() <-chan struct{}       { return nil }
func (c *errAfterCtx) Value(any) any               { return nil }
func (c *errAfterCtx) Err() error {
	if atomic.AddInt64(&c.polls, 1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestEnginesCancelMidRun(t *testing.T) {
	run := func(e Engine) (int64, error) {
		g := MustNew(tinyConfig(config.NUBA))
		g.SetEngine(e)
		l := tinyLaunch(t, g, 32, 4)
		err := g.RunProgramContext(&errAfterCtx{after: 10}, []*kir.Launch{l})
		return g.Stats().Cycles, err
	}
	nCycles, nErr := run(EngineNaive)
	hCycles, hErr := run(EngineHybrid)
	if nErr == nil || hErr == nil {
		t.Fatalf("cancellation not observed: naive=%v hybrid=%v", nErr, hErr)
	}
	if nCycles != hCycles {
		t.Errorf("canceled runs diverge: naive stopped at %d, hybrid at %d", nCycles, hCycles)
	}
	if nCycles == 0 {
		t.Error("cancellation fired before any batch ran")
	}
}

// The MaxCycles limit must clamp inside the cycle batch: a runaway run
// stops at exactly the configured cycle — not rounded up to the next
// 64-cycle batch boundary — and both engines agree on the clamped state.
func TestMaxCyclesClampsWithinBatch(t *testing.T) {
	run := func(e Engine, maxCycles int64) (*metrics.Stats, error) {
		cfg := tinyConfig(config.NUBA)
		cfg.MaxCycles = maxCycles
		g := MustNew(cfg)
		g.SetEngine(e)
		l := tinyLaunch(t, g, 32, 4)
		err := g.RunProgram([]*kir.Launch{l})
		return g.Stats(), err
	}
	// 101 is deliberately far off the batch lattice; the kernel needs
	// hundreds of cycles, so the limit always fires mid-run.
	const limit = 101
	for _, e := range []Engine{EngineNaive, EngineHybrid} {
		st, err := run(e, limit)
		if err == nil {
			t.Fatalf("%v: runaway run did not report MaxCycles", e)
		}
		if st.Cycles != limit {
			t.Errorf("%v: stopped at cycle %d, want exactly %d", e, st.Cycles, limit)
		}
	}
	naive, nErr := run(EngineNaive, limit)
	hybrid, hErr := run(EngineHybrid, limit)
	if fmt.Sprint(nErr) != fmt.Sprint(hErr) {
		t.Errorf("clamped errors diverge: naive %v, hybrid %v", nErr, hErr)
	}
	if a, b := fmt.Sprintf("%+v", *naive), fmt.Sprintf("%+v", *hybrid); a != b {
		t.Errorf("clamped stats diverge\nnaive:  %s\nhybrid: %s", a, b)
	}
}

// The quiet()-vs-wake consistency invariant (checked under -race in CI):
// a quiet GPU must report no component wake-up, and a non-quiet GPU must
// always have a pending wake-up — otherwise the hybrid engine would
// sleep forever on live work.
func TestQuietVsWakeInvariant(t *testing.T) {
	g := MustNew(tinyConfig(config.NUBA))
	l := tinyLaunch(t, g, 16, 2)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	g.launchSeq++
	g.prewarm(l)
	g.assignCTAs(l)
	for batch := 0; ; batch++ {
		if batch > 1_000_000 {
			t.Fatal("runaway: kernel did not drain")
		}
		quiet := g.quiet()
		wake := g.componentWake()
		if quiet && wake != sim.Never {
			t.Fatalf("batch %d (cycle %d): quiet GPU reports component wake at %d", batch, g.cycle, wake)
		}
		if !quiet && g.nextWake() == sim.Never {
			t.Fatalf("batch %d (cycle %d): live components but no pending wake-up (lost wake)", batch, g.cycle)
		}
		if quiet {
			break
		}
		g.advanceTo(g.cycle + batchCycles)
	}
	if g.Stats().Instructions == 0 {
		t.Fatal("invariant walk executed no instructions")
	}
}
