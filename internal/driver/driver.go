// Package driver models the GPU driver's memory page placement (Section 4).
// On the first access to an unmapped page the driver picks the memory
// channel (= NUBA partition) that will hold the page; the partition-aware
// address map then preserves that choice. Implemented policies:
//
//   - FirstTouch: the channel of the partition whose SM faulted first.
//   - RoundRobin: channels in strict rotation.
//   - LAB (Local-And-Balanced): first-touch while the Normalized Page
//     Balance (NPB) is at or above the threshold (0.9 default), least-first
//     otherwise. NPB = (1/n) * sum_i P_i / max_j P_j.
//   - Migration: first-touch placement plus interval-based migration of
//     pages with a dominant remote accessor (§7.6 alternative).
//   - PageReplication: first-touch placement plus page-granularity
//     replication into reader partitions (§7.6 alternative).
package driver

import (
	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// Page records the placement of one virtual page.
type Page struct {
	VPN uint64
	// PPN is the home physical page.
	PPN uint64
	// Channel is the home memory channel.
	Channel int
	// Replicas maps partition -> replica PPN for the PageReplication
	// policy; nil otherwise.
	Replicas map[int]uint64
	// Writable pages never get replicated by the page-replication
	// policy (set from the kernel's data-flow analysis).
	Writable bool
	// accesses[ch] counts accesses from partition ch in the current
	// migration interval.
	accesses []int32
	// BusyUntil blocks translation while the page is being migrated.
	BusyUntil sim.Cycle
}

// Driver is the page placement engine. It owns the virtual-to-physical
// mapping used by the vm package.
type Driver struct {
	cfg    *config.Config
	mapper *addrmap.Mapper
	rng    *sim.RNG

	pages map[uint64]*Page
	// pagesPerChannel is the LAB book-keeping array: one counter per
	// channel, exactly the 32-entry array the paper's driver keeps.
	pagesPerChannel []int64
	frameSeq        []uint64
	rrNext          int

	// staging defers d.pages map inserts while the partition-parallel
	// engine's SM phase is running: SMs on other goroutines read d.pages
	// concurrently (PageLookup/Translate), so the insert — the only
	// mutation those readers could observe — is parked in staged and
	// flushed at the next phase barrier. Everything else Allocate touches
	// (counters, frame sequence, RNG) is only ever accessed under the
	// engine's allocation gate and mutates in place. Serial engines never
	// arm staging.
	staging bool
	staged  []*Page

	// Stats.
	Allocations   int64
	FirstTouchOps int64
	LeastFirstOps int64
	Migrations    int64
	Replications  int64
	Collapses     int64
}

// New returns a driver for the configuration.
func New(cfg *config.Config, mapper *addrmap.Mapper) *Driver {
	return &Driver{
		cfg:             cfg,
		mapper:          mapper,
		rng:             sim.NewRNG(cfg.Seed ^ 0xd1e55e1),
		pages:           make(map[uint64]*Page),
		pagesPerChannel: make([]int64, cfg.NumChannels),
		frameSeq:        make([]uint64, cfg.NumChannels),
	}
}

// Lookup returns the page record for vpn, if mapped.
func (d *Driver) Lookup(vpn uint64) (*Page, bool) {
	p, ok := d.pages[vpn]
	return p, ok
}

// LookupPending is Lookup including allocations staged but not yet
// flushed. The VM system's fault path uses it so a walk started in the
// same phase as a staged allocation sees the mapping exactly as it
// would under a serial engine. Callers must hold the engine's
// allocation gate; with staging off it is identical to Lookup.
func (d *Driver) LookupPending(vpn uint64) (*Page, bool) {
	if p, ok := d.pages[vpn]; ok {
		return p, true
	}
	for _, p := range d.staged {
		if p.VPN == vpn {
			return p, true
		}
	}
	return nil, false
}

// StageAllocations arms (or disarms) deferred page-table inserts for the
// partition-parallel engine's concurrent SM phase.
func (d *Driver) StageAllocations(on bool) { d.staging = on }

// FlushStagedAllocations publishes staged page-table inserts. The engine
// calls it at phase barriers, when no reader goroutines are running.
func (d *Driver) FlushStagedAllocations() {
	for _, p := range d.staged {
		d.pages[p.VPN] = p
	}
	d.staged = d.staged[:0]
}

// NPB computes the Normalized Page Balance of Equation 1:
// the mean over channels of P_i / max(P), in (0, 1]; 1 when perfectly
// balanced. An empty system is balanced by definition.
func (d *Driver) NPB() float64 {
	var maxP int64
	for _, p := range d.pagesPerChannel {
		if p > maxP {
			maxP = p
		}
	}
	if maxP == 0 {
		return 1
	}
	var sum float64
	for _, p := range d.pagesPerChannel {
		sum += float64(p) / float64(maxP)
	}
	return sum / float64(len(d.pagesPerChannel))
}

// leastFirst returns a channel with the minimum page count. The paper
// breaks ties arbitrarily; this implementation breaks them in favor of
// the requesting partition — when allocation is already balanced, LAB
// then retains first-touch locality instead of scattering pages.
func (d *Driver) leastFirst(homePart int) int {
	minV := d.pagesPerChannel[0]
	for _, p := range d.pagesPerChannel[1:] {
		if p < minV {
			minV = p
		}
	}
	if homePart < len(d.pagesPerChannel) && d.pagesPerChannel[homePart] == minV {
		return homePart
	}
	// Otherwise pick among the ties pseudo-randomly.
	n := 0
	for _, p := range d.pagesPerChannel {
		if p == minV {
			n++
		}
	}
	pick := d.rng.Intn(n)
	for ch, p := range d.pagesPerChannel {
		if p == minV {
			if pick == 0 {
				return ch
			}
			pick--
		}
	}
	return 0 // unreachable
}

// chooseChannel applies the placement policy for a page first touched by
// an SM in partition homePart.
func (d *Driver) chooseChannel(homePart int) int {
	switch d.cfg.Placement {
	case config.RoundRobin:
		ch := d.rrNext
		d.rrNext = (d.rrNext + 1) % d.cfg.NumChannels
		return ch
	case config.LAB:
		if d.NPB() >= d.cfg.LABThreshold {
			d.FirstTouchOps++
			return homePart
		}
		d.LeastFirstOps++
		return d.leastFirst(homePart)
	default: // FirstTouch, Migration, PageReplication all start first-touch
		d.FirstTouchOps++
		return homePart
	}
}

// Allocate maps vpn on its first touch by an SM in partition homePart and
// returns the page record. writable comes from the kernel's data-flow
// analysis and gates page replication.
func (d *Driver) Allocate(vpn uint64, homePart int, writable bool) *Page {
	if p, ok := d.LookupPending(vpn); ok {
		return p
	}
	ch := d.chooseChannel(homePart)
	ppn := d.mapper.ComposeFrame(d.frameSeq[ch], ch)
	d.frameSeq[ch]++
	p := &Page{VPN: vpn, PPN: ppn, Channel: ch, Writable: writable}
	if d.cfg.Placement == config.Migration || d.cfg.Placement == config.PageReplication {
		p.accesses = make([]int32, d.cfg.NumChannels)
	}
	if d.staging {
		d.staged = append(d.staged, p)
	} else {
		d.pages[vpn] = p
	}
	d.pagesPerChannel[ch]++
	d.Allocations++
	return p
}

// Translate returns the physical page the given partition should use for
// vpn: the local replica when one exists, the home page otherwise. ok is
// false when the page is unmapped (a first-touch fault must be taken).
func (d *Driver) Translate(vpn uint64, part int) (ppn uint64, ok bool) {
	p, exists := d.pages[vpn]
	if !exists {
		return 0, false
	}
	if p.Replicas != nil {
		if r, has := p.Replicas[part]; has {
			return r, true
		}
	}
	return p.PPN, true
}

// ChannelBalance returns each channel's page count normalized to the
// fullest channel — the per-partition components of the NPB mean
// (Equation 1). An empty system reports all ones, matching NPB's
// balanced-by-definition convention.
func (d *Driver) ChannelBalance() []float64 {
	out := make([]float64, len(d.pagesPerChannel))
	var maxP int64
	for _, p := range d.pagesPerChannel {
		if p > maxP {
			maxP = p
		}
	}
	for i, p := range d.pagesPerChannel {
		if maxP == 0 {
			out[i] = 1
		} else {
			out[i] = float64(p) / float64(maxP)
		}
	}
	return out
}

// PageCounts returns a copy of the per-channel page counters.
func (d *Driver) PageCounts() []int64 {
	out := make([]int64, len(d.pagesPerChannel))
	copy(out, d.pagesPerChannel)
	return out
}

// Pages returns the number of mapped virtual pages.
func (d *Driver) Pages() int { return len(d.pages) }
