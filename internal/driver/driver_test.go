package driver

import (
	"testing"

	"github.com/nuba-gpu/nuba/internal/addrmap"
	"github.com/nuba-gpu/nuba/internal/config"
)

func newDriver(t *testing.T, p config.PlacementPolicy) (*Driver, *config.Config) {
	t.Helper()
	cfg := config.Baseline()
	cfg.Placement = p
	m := addrmap.New(&cfg)
	return New(&cfg, m), &cfg
}

func TestFirstTouchPlacesLocally(t *testing.T) {
	d, _ := newDriver(t, config.FirstTouch)
	for part := 0; part < 32; part++ {
		p := d.Allocate(uint64(1000+part), part, false)
		if p.Channel != part {
			t.Fatalf("first-touch put page in %d, toucher partition %d", p.Channel, part)
		}
	}
}

func TestRoundRobinDistributes(t *testing.T) {
	d, cfg := newDriver(t, config.RoundRobin)
	for i := 0; i < 64; i++ {
		d.Allocate(uint64(i), 5, false) // all touched by partition 5
	}
	for ch, n := range d.PageCounts() {
		if n != 64/int64(cfg.NumChannels) {
			t.Fatalf("channel %d holds %d pages", ch, n)
		}
	}
}

func TestNPB(t *testing.T) {
	d, _ := newDriver(t, config.LAB)
	if d.NPB() != 1 {
		t.Fatalf("empty system NPB = %v", d.NPB())
	}
	d.Allocate(1, 0, false)
	// One page in one of 32 channels: NPB = 1/32.
	if got := d.NPB(); got > 0.05 {
		t.Fatalf("skewed NPB = %v", got)
	}
}

func TestLABSwitchesToLeastFirst(t *testing.T) {
	d, _ := newDriver(t, config.LAB)
	// Partition 0 touches many pages; LAB must start spreading them.
	for i := 0; i < 320; i++ {
		d.Allocate(uint64(i), 0, false)
	}
	counts := d.PageCounts()
	if counts[0] > 32 {
		t.Fatalf("LAB let partition 0 hoard %d pages", counts[0])
	}
	if d.LeastFirstOps == 0 {
		t.Fatal("least-first never engaged")
	}
	// Balance must be good: max-min small.
	var mn, mx int64 = 1 << 60, 0
	for _, c := range counts {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	if mx-mn > 4 {
		t.Fatalf("imbalance %d..%d", mn, mx)
	}
}

func TestLABStaysLocalWhenBalanced(t *testing.T) {
	d, _ := newDriver(t, config.LAB)
	// Interleaved touches from all partitions: placement should be
	// almost entirely local.
	local := 0
	for round := 0; round < 20; round++ {
		for part := 0; part < 32; part++ {
			p := d.Allocate(uint64(round*32+part), part, false)
			if p.Channel == part {
				local++
			}
		}
	}
	if local < 600 { // 640 allocations
		t.Fatalf("only %d/640 placed locally under balanced load", local)
	}
}

func TestLeastFirstTieBreakPrefersLocal(t *testing.T) {
	d, cfg := newDriver(t, config.LAB)
	cfg.LABThreshold = 2 // force least-first always (NPB <= 1 < 2)
	p := d.Allocate(77, 9, false)
	if p.Channel != 9 {
		t.Fatalf("balanced least-first ignored local partition: %d", p.Channel)
	}
}

func TestAllocateIdempotent(t *testing.T) {
	d, _ := newDriver(t, config.FirstTouch)
	p1 := d.Allocate(5, 1, false)
	p2 := d.Allocate(5, 30, true)
	if p1 != p2 || p2.Channel != 1 {
		t.Fatal("re-allocation changed placement")
	}
	if d.Allocations != 1 {
		t.Fatalf("allocations = %d", d.Allocations)
	}
}

func TestTranslate(t *testing.T) {
	d, _ := newDriver(t, config.FirstTouch)
	if _, ok := d.Translate(123, 0); ok {
		t.Fatal("unmapped page translated")
	}
	p := d.Allocate(123, 4, false)
	ppn, ok := d.Translate(123, 0)
	if !ok || ppn != p.PPN {
		t.Fatal("translate mismatch")
	}
}

func TestPageReplicationFlow(t *testing.T) {
	d, cfg := newDriver(t, config.PageReplication)
	cfg.MigrationThreshold = 4
	p := d.Allocate(55, 0, false) // read-only page, home partition 0
	// Partition 7 reads it repeatedly.
	for i := 0; i < 4; i++ {
		d.RecordAccess(p, 7)
	}
	if d.Replications != 1 {
		t.Fatalf("replications = %d", d.Replications)
	}
	ppn7, _ := d.Translate(55, 7)
	ppn0, _ := d.Translate(55, 0)
	if ppn7 == ppn0 {
		t.Fatal("partition 7 not redirected to its replica")
	}
	// Writable pages are never replicated.
	w := d.Allocate(56, 0, true)
	for i := 0; i < 10; i++ {
		d.RecordAccess(w, 7)
	}
	if w.Replicas != nil {
		t.Fatal("writable page replicated")
	}
	// A write collapses replicas.
	dropped := d.CollapseReplicas(p)
	if len(dropped) != 1 || p.Replicas != nil {
		t.Fatal("collapse failed")
	}
	if after, _ := d.Translate(55, 7); after != ppn0 {
		t.Fatal("collapsed replica still used")
	}
}

func TestMigrationCandidates(t *testing.T) {
	d, cfg := newDriver(t, config.Migration)
	cfg.MigrationThreshold = 8
	p := d.Allocate(70, 0, false)
	q := d.Allocate(71, 0, false)
	// p: heavily accessed by remote partition 3; q: local only.
	for i := 0; i < 20; i++ {
		d.RecordAccess(p, 3)
	}
	for i := 0; i < 20; i++ {
		d.RecordAccess(q, 0)
	}
	acts := d.MigrationCandidates(100)
	if len(acts) != 1 || acts[0].Page != p || acts[0].To != 3 {
		t.Fatalf("candidates: %+v", acts)
	}
	old := p.PPN
	newPPN := d.ApplyMigration(p, 3, 500)
	if p.Channel != 3 || newPPN == old || p.BusyUntil != 500 {
		t.Fatal("migration not applied")
	}
	if d.Migrations != 1 {
		t.Fatalf("migrations = %d", d.Migrations)
	}
	// Counters reset: a second scan finds nothing.
	if acts := d.MigrationCandidates(200); len(acts) != 0 {
		t.Fatalf("stale candidates: %v", acts)
	}
}

func TestPageCountsIsCopy(t *testing.T) {
	d, _ := newDriver(t, config.FirstTouch)
	d.Allocate(1, 0, false)
	c := d.PageCounts()
	c[0] = 999
	if d.PageCounts()[0] == 999 {
		t.Fatal("PageCounts returned internal slice")
	}
	if d.Pages() != 1 {
		t.Fatalf("pages = %d", d.Pages())
	}
}
