package driver

import (
	"slices"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/sim"
)

// This file implements the §7.6 alternative placement mechanisms that the
// paper compares LAB/MDR against: access-count-driven page migration
// (Griffin-style) and page-granularity replication (Carrefour-style).
// Both are driven by per-interval access counters that the core updates on
// every LLC access when one of these policies is active.

// ActionKind identifies a placement action produced at an interval
// boundary.
type ActionKind int

// Placement actions.
const (
	// Migrate moves a page's home to a new channel; accessors stall
	// while the copy is in flight and cached lines of the old frame go
	// cold.
	Migrate ActionKind = iota
	// Replicate creates a page replica in a reader partition.
	Replicate
	// Collapse removes all replicas of a page (triggered by a write).
	Collapse
)

// Action describes one migration/replication decision for the core to
// charge costs for (copy traffic, TLB shootdown, page busy time).
type Action struct {
	Kind   ActionKind
	Page   *Page
	From   int
	To     int
	OldPPN uint64
	NewPPN uint64
}

// RecordAccess bumps the interval access counter of a page for the
// accessing partition. Only meaningful when the Migration or
// PageReplication policy is active (the counters are nil otherwise).
func (d *Driver) RecordAccess(p *Page, part int) {
	if p.accesses == nil || part >= len(p.accesses) {
		return
	}
	p.accesses[part]++
	// Page replication is eager: once a remote partition has touched a
	// read-only page MigrationThreshold times, give it a replica.
	if d.cfg.Placement == config.PageReplication && !p.Writable && part != p.Channel &&
		int(p.accesses[part]) == d.cfg.MigrationThreshold {
		if p.Replicas == nil {
			p.Replicas = make(map[int]uint64, 4)
		}
		if _, ok := p.Replicas[part]; !ok {
			ppn := d.mapper.ComposeFrame(d.frameSeq[part], part)
			d.frameSeq[part]++
			p.Replicas[part] = ppn
			d.Replications++
		}
	}
}

// MigrationCandidates scans the interval counters and returns the pages
// the migration policy moves this interval: pages whose dominant accessor
// is a remote partition with at least MigrationThreshold accesses and at
// least twice the home partition's count. All interval counters reset.
func (d *Driver) MigrationCandidates(now sim.Cycle) []Action {
	if d.cfg.Placement != config.Migration {
		return nil
	}
	// Visit pages in VPN order: the action list feeds simulated work, so
	// map iteration order here would leak into cycle counts.
	vpns := make([]uint64, 0, len(d.pages))
	for vpn := range d.pages {
		vpns = append(vpns, vpn)
	}
	slices.Sort(vpns)
	var actions []Action
	for _, vpn := range vpns {
		p := d.pages[vpn]
		if p.accesses == nil {
			continue
		}
		best, bestCount := p.Channel, int32(0)
		var total int32
		for ch, c := range p.accesses {
			total += c
			if c > bestCount {
				best, bestCount = ch, c
			}
		}
		if total == 0 {
			continue
		}
		home := p.accesses[p.Channel]
		if best != p.Channel && int(bestCount) >= d.cfg.MigrationThreshold && bestCount >= 2*home+1 {
			actions = append(actions, Action{Kind: Migrate, Page: p, From: p.Channel, To: best, OldPPN: p.PPN})
		}
		for ch := range p.accesses {
			p.accesses[ch] = 0
		}
	}
	return actions
}

// ApplyMigration rehomes the page to channel to, allocating a fresh frame
// there, and marks the page busy until busyUntil (the copy + shootdown
// cost charged by the core). It returns the new physical page number.
func (d *Driver) ApplyMigration(p *Page, to int, busyUntil sim.Cycle) uint64 {
	d.pagesPerChannel[p.Channel]--
	d.pagesPerChannel[to]++
	p.Channel = to
	p.PPN = d.mapper.ComposeFrame(d.frameSeq[to], to)
	d.frameSeq[to]++
	p.BusyUntil = busyUntil
	d.Migrations++
	return p.PPN
}

// CollapseReplicas removes every replica of a page (called when a store
// targets a replicated page) and returns the dropped replica PPNs so the
// core can invalidate any cached lines.
func (d *Driver) CollapseReplicas(p *Page) []uint64 {
	if p.Replicas == nil {
		return nil
	}
	// Drop replicas in partition order so the caller's line
	// invalidations replay identically across runs.
	parts := make([]int, 0, len(p.Replicas))
	for part := range p.Replicas {
		parts = append(parts, part)
	}
	slices.Sort(parts)
	dropped := make([]uint64, 0, len(parts))
	for _, part := range parts {
		dropped = append(dropped, p.Replicas[part])
	}
	p.Replicas = nil
	d.Collapses++
	return dropped
}
