package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads the testdata/src module (a self-contained fixture
// module with its own go.mod and lint.policy).
func loadFixture(t *testing.T) (*Program, *Policy) {
	t.Helper()
	mod, err := FindModule("testdata/src")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	if mod.Path != "example.com/fixture" {
		t.Fatalf("fixture module path = %q", mod.Path)
	}
	prog, err := Load(mod, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pol, err := ParsePolicy(filepath.Join(mod.Dir, "lint.policy"))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	return prog, pol
}

// TestFixtureGolden locks the analyzer's full output on the fixture
// module against testdata/golden.txt: every rule's positive hit, every
// suppression, and the exact diagnostic text.
func TestFixtureGolden(t *testing.T) {
	prog, pol := loadFixture(t)
	diags, err := Run(prog, pol, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", "golden.txt")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate by writing the output below)\n%s", err, got)
	}
	if got != string(want) {
		t.Errorf("fixture diagnostics diverge from %s.\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestEveryRuleFires asserts the fixture exercises all sixteen rules
// (plus the directive pseudo-rule), so a rule that silently stops
// matching cannot hide behind a stale golden file.
func TestEveryRuleFires(t *testing.T) {
	prog, pol := loadFixture(t)
	diags, err := Run(prog, pol, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	seen := make(map[string]bool)
	for _, d := range diags {
		seen[d.Rule] = true
	}
	for _, rule := range append(AllRules(), RuleDirective) {
		if !seen[rule] {
			t.Errorf("fixture produced no %s finding", rule)
		}
	}
}

// TestSuppressionsHold asserts the directive-suppressed and allowlisted
// sites stay clean: the suppressed map range in SumIgnored, the
// same-line time.Since in StampIgnored, the sorted-keys idiom in Keys,
// and the allowlisted clockok/clock.go.
func TestSuppressionsHold(t *testing.T) {
	prog, pol := loadFixture(t)
	diags, err := Run(prog, pol, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		if d.File == "clockok/clock.go" {
			t.Errorf("allowlisted file flagged: %s", d)
		}
	}
	src, err := os.ReadFile(filepath.Join("testdata", "src", "simcore", "simcore.go"))
	if err != nil {
		t.Fatal(err)
	}
	cleanLines := make(map[int]bool)
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "//nubalint:ignore") || strings.Contains(line, "sort.Strings(ks)") {
			// The directive line, the line after it, and the sorted
			// collection loop above the sort call must all be clean.
			cleanLines[i+1] = true
			cleanLines[i+2] = true
			cleanLines[i-1] = true
		}
	}
	for _, d := range diags {
		if d.File == "simcore/simcore.go" && cleanLines[d.Line] {
			t.Errorf("suppressed or idiomatic site flagged: %s", d)
		}
	}

	// The liveness and unit suppressions must hold too: the Intentional
	// knob carries an ignore directive, and units.Suppressed mixes units
	// under one.
	for _, d := range diags {
		if strings.Contains(d.Message, "Intentional") {
			t.Errorf("ignored config knob flagged: %s", d)
		}
		if d.Rule == RuleUnits && d.Message == "mixed units in '-': byte vs cycle" {
			t.Errorf("suppressed unit mix flagged: %s", d)
		}
	}
}

// TestRuleSelection asserts -rules narrows the run to the chosen rule
// (malformed directives are still always reported).
func TestRuleSelection(t *testing.T) {
	prog, pol := loadFixture(t)
	diags, err := Run(prog, pol, []string{RuleGoroutine})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var goroutines int
	for _, d := range diags {
		switch d.Rule {
		case RuleGoroutine:
			goroutines++
		case RuleDirective:
		default:
			t.Errorf("unselected rule reported: %s", d)
		}
	}
	if goroutines != 1 {
		t.Errorf("goroutine-in-core findings = %d, want 1", goroutines)
	}

	if _, err := Run(prog, pol, []string{"bogus-rule"}); err == nil {
		t.Error("Run accepted an unknown rule")
	}
}

// TestDiagnosticJSON asserts the -json shape stays stable, severity
// field included.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 3, Col: 7, Rule: RuleMapRange,
		Severity: SeverityError, Message: "m"}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"a/b.go","line":3,"col":7,"rule":"nondet-map-range","severity":"error","message":"m"}`
	if string(data) != want {
		t.Errorf("json = %s, want %s", data, want)
	}
}

// TestJSONDeterministic asserts two fully independent analyses of the
// same tree marshal to byte-identical JSON: same ordering (file, line,
// col, rule), same severity, no map-iteration noise anywhere in the
// engine. This is what lets CI diff nubalint -json output across runs.
func TestJSONDeterministic(t *testing.T) {
	var outs [][]byte
	for i := 0; i < 2; i++ {
		prog, pol := loadFixture(t)
		diags, err := Run(prog, pol, nil)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		data, err := json.Marshal(diags)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, data)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Errorf("JSON output differs across runs:\n--- 1 ---\n%s\n--- 2 ---\n%s", outs[0], outs[1])
	}
	for _, d := range mustUnmarshal(t, outs[0]) {
		if d.Severity != SeverityError {
			t.Errorf("finding %s has severity %q, want %q", d, d.Severity, SeverityError)
		}
	}
}

func mustUnmarshal(t *testing.T, data []byte) []Diagnostic {
	t.Helper()
	var ds []Diagnostic
	if err := json.Unmarshal(data, &ds); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestPolicyParseErrors asserts the policy parser rejects malformed and
// unknown input instead of silently ignoring it.
func TestPolicyParseErrors(t *testing.T) {
	bad := []string{
		"layer internal/core internal/sim",    // missing '='
		"scope made-up-rule = internal/sim",   // unknown rule
		"allow made-up-rule = x.go",           // unknown rule
		"frobnicate a = b",                    // unknown directive
		"layer a = b\nlayer a = c",            // duplicate layer
		"seams made-up-rule = a.T.F",          // seams verb, unknown rule
		"shared made-up-rule = partition:a.T", // shared verb, unknown rule
		"shared shard-shared = a.T",           // shared entry without class:
		"shared shard-shared = perCore:a.T",   // unknown classification
		"shared shard-shared = partition:",    // class with empty spec
	}
	for _, src := range bad {
		if _, err := ParsePolicyData(src, "test.policy"); err == nil {
			t.Errorf("ParsePolicyData(%q) succeeded, want error", src)
		}
	}
	good := "# comment\n\nlayer a = b c\nscope no-wallclock = *\nallow no-wallclock = a/clock.go\n"
	pol, err := ParsePolicyData(good, "test.policy")
	if err != nil {
		t.Fatalf("ParsePolicyData(good): %v", err)
	}
	if !pol.InScope(RuleWallclock, "anything") {
		t.Error("scope '*' did not match")
	}
	if !pol.Allowed(RuleWallclock, "a/clock.go", "a") {
		t.Error("allow entry did not match")
	}
	if allowed, declared := pol.LayerFor("a"); !declared || !allowed["b"] || !allowed["c"] || allowed["d"] {
		t.Errorf("LayerFor(a) = %v, %v", allowed, declared)
	}

	// The funcs verb (hint-purity roots) round-trips in order.
	funcs := "funcs hint-purity = pkg/a.T.Hint pkg/b.Scan\n"
	pol, err = ParsePolicyData(funcs, "test.policy")
	if err != nil {
		t.Fatalf("ParsePolicyData(funcs): %v", err)
	}
	got := pol.Funcs(RuleHintPurity)
	if len(got) != 2 || got[0] != "pkg/a.T.Hint" || got[1] != "pkg/b.Scan" {
		t.Errorf("Funcs(hint-purity) = %v", got)
	}
	if _, err := ParsePolicyData("funcs made-up-rule = a.B", "test.policy"); err == nil {
		t.Error("funcs verb accepted an unknown rule")
	}

	// The seams and shared verbs (shard-safety) round-trip in order,
	// with the classification prefix preserved.
	shard := "seams shard-footprint = pkg/a.T.Port pkg/a.cross\nshared shard-shared = partition:pkg/a.T commutative:pkg/m.Stats.N\n"
	pol, err = ParsePolicyData(shard, "test.policy")
	if err != nil {
		t.Fatalf("ParsePolicyData(shard): %v", err)
	}
	seams := pol.Seams(RuleShardFootprint)
	if len(seams) != 2 || seams[0] != "pkg/a.T.Port" || seams[1] != "pkg/a.cross" {
		t.Errorf("Seams(shard-footprint) = %v", seams)
	}
	shared := pol.Shared(RuleShardShared)
	if len(shared) != 2 || shared[0] != "partition:pkg/a.T" || shared[1] != "commutative:pkg/m.Stats.N" {
		t.Errorf("Shared(shard-shared) = %v", shared)
	}
}
