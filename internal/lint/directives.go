package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an in-source suppression comment:
//
//	//nubalint:ignore <rule> <reason>
//
// The directive suppresses diagnostics of <rule> reported on its own
// line or on the line directly below it (so it can trail the flagged
// statement or sit on its own line above it). The reason is mandatory:
// an ignore that cannot say why it is safe should not exist.
const directivePrefix = "//nubalint:ignore"

// directive is one parsed suppression comment.
type directive struct {
	rule   string
	reason string
	pos    token.Pos
}

// directiveIndex maps file line numbers to the suppression in force
// there, for one file.
type directiveIndex struct {
	byLine map[int]*directive
}

// collectDirectives scans a file's comments for nubalint directives.
// Malformed directives (missing rule, unknown rule, or missing reason)
// are reported through emit under the "directive" pseudo-rule so they
// fail the build instead of silently suppressing nothing.
func collectDirectives(fset *token.FileSet, f *ast.File, emit func(pos token.Pos, rule, msg string)) *directiveIndex {
	idx := &directiveIndex{byLine: make(map[int]*directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				emit(c.Pos(), RuleDirective, "malformed directive: want //nubalint:ignore <rule> <reason>")
				continue
			case !knownRule(fields[0]):
				emit(c.Pos(), RuleDirective, "directive names unknown rule "+fields[0])
				continue
			case len(fields) == 1:
				emit(c.Pos(), RuleDirective, "directive for "+fields[0]+" is missing a reason")
				continue
			}
			d := &directive{rule: fields[0], reason: strings.Join(fields[1:], " "), pos: c.Pos()}
			idx.byLine[fset.Position(c.Pos()).Line] = d
		}
	}
	return idx
}

// suppresses reports whether a diagnostic of rule at line is covered by
// a directive on the same line or the line above.
func (idx *directiveIndex) suppresses(rule string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		if d, ok := idx.byLine[l]; ok && d.rule == rule {
			return true
		}
	}
	return false
}
