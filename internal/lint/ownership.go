package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Ownership rules for the engine contract (DESIGN.md §7/§9):
//
//   - engine-contract: every type the engine ticks must expose a wake
//     hint (a NextWake, NextEvent or NextReady method) and be declared
//     in `structs engine-contract`, so a new tickable component cannot
//     silently join the cycle loop without joining componentWake's
//     hint scan. Stale policy entries (listed but never ticked) are
//     findings too, so the list cannot rot.
//
//   - partition-isolation: writes to fields of the partition-owned
//     component structs listed in `structs partition-isolation` may
//     only originate from the struct's own package or from the seam
//     functions/files declared in `writers partition-isolation` (the
//     core's wiring of callbacks and request-id allocators). Anything
//     else is a cross-partition mutation that would make ROADMAP item
//     2's partition-parallel engine nondeterministic.
//
// OwnershipReport (nubalint -ownership) prints the audited field →
// writers map for manual auditing of the same data.

// hintMethodNames are the accepted wake-hint spellings.
var hintMethodNames = []string{"NextWake", "NextEvent", "NextReady"}

// hasWakeHint reports whether the named type declares one of the wake
// hint methods (value or pointer receiver).
func hasWakeHint(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		name := named.Method(i).Name()
		for _, h := range hintMethodNames {
			if name == h {
				return true
			}
		}
	}
	return false
}

// resolveNamed maps a policy struct spec "internal/smcore.SM" to its
// *types.Named and the module-relative package that declares it.
func (c *progCtx) resolveNamed(spec string) (*types.Named, string, error) {
	dot := strings.LastIndex(spec, ".")
	if dot < 0 {
		return nil, "", fmt.Errorf("struct spec %q is not of the form pkg.Type", spec)
	}
	pkgRel, typeName := spec[:dot], spec[dot+1:]
	if pkgRel == "" {
		pkgRel = "."
	}
	for _, pkg := range c.prog.Pkgs {
		if pkg.RelName() != pkgRel {
			continue
		}
		obj := pkg.Types.Scope().Lookup(typeName)
		if obj == nil {
			return nil, "", fmt.Errorf("struct spec %q: no type %s in package %s", spec, typeName, pkgRel)
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil, "", fmt.Errorf("struct spec %q: %s is not a named type", spec, typeName)
		}
		return named, pkgRel, nil
	}
	return nil, "", fmt.Errorf("struct spec %q: package %s is not among the loaded packages", spec, pkgRel)
}

// --- engine-contract ---------------------------------------------------

// tickedTypes scans the rule's in-scope packages for method calls named
// Tick and resolves each receiver to its module-declared named type,
// returning the first call position per type.
func tickedTypes(c *progCtx) map[*types.Named]token.Pos {
	out := make(map[*types.Named]token.Pos)
	for _, pkg := range c.prog.Pkgs {
		if !c.pol.InScope(RuleEngineContract, pkg.RelName()) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Name() != "Tick" {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				t := sig.Recv().Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				named, ok := t.(*types.Named)
				if !ok {
					return true
				}
				obj := named.Obj()
				if obj.Pkg() == nil {
					return true
				}
				if _, internal := internalRel(c.prog.Mod, obj.Pkg().Path()); !internal {
					return true
				}
				if _, seen := out[named]; !seen {
					out[named] = call.Pos()
				}
				return true
			})
		}
	}
	return out
}

func checkEngineContract(c *progCtx) error {
	specs := c.pol.Structs(RuleEngineContract)
	if len(specs) == 0 {
		return nil
	}
	listed := make(map[*types.Named]string, len(specs))
	for _, spec := range specs {
		named, _, err := c.resolveNamed(spec)
		if err != nil {
			return fmt.Errorf("engine-contract: %w", err)
		}
		listed[named] = spec
	}
	ticked := tickedTypes(c)

	// Deterministic order: sort ticked types by first call position.
	order := make([]*types.Named, 0, len(ticked))
	for named := range ticked {
		order = append(order, named)
	}
	sort.Slice(order, func(i, j int) bool { return ticked[order[i]] < ticked[order[j]] })

	for _, named := range order {
		spec, ok := listed[named]
		if !ok {
			c.emitPos(ticked[named], RuleEngineContract,
				fmt.Sprintf("engine ticks %s.%s, which is not in `structs engine-contract` (lint.policy); every ticked component must declare a wake hint and join the list",
					named.Obj().Pkg().Name(), named.Obj().Name()))
			continue
		}
		if !hasWakeHint(named) {
			c.emitPos(named.Obj().Pos(), RuleEngineContract,
				fmt.Sprintf("%s is ticked by the engine but exposes no wake hint (want a %s method)",
					spec, strings.Join(hintMethodNames, ", ")))
		}
	}
	for _, spec := range specs {
		named, _, _ := c.resolveNamed(spec)
		if _, ok := ticked[named]; !ok {
			c.emitPos(named.Obj().Pos(), RuleEngineContract,
				fmt.Sprintf("lint.policy lists %s in `structs engine-contract` but the engine never ticks it; drop the stale entry", spec))
		}
	}
	return nil
}

// --- partition-isolation -----------------------------------------------

// isFuncSpecPattern distinguishes a writers entry naming a single
// function ("internal/core.GPU.wire") from one naming a package or
// file ("internal/noc", "internal/core/route.go").
func isFuncSpecPattern(pat string) bool {
	if strings.HasSuffix(pat, ".go") || strings.ContainsAny(pat, "*?[") {
		return false
	}
	tail := pat
	if i := strings.LastIndexByte(pat, '/'); i >= 0 {
		tail = pat[i+1:]
	}
	return strings.Contains(tail, ".")
}

// writerAllowed reports whether node n may write partition state under
// the writers patterns: role patterns match its package or file, func
// specs match the node's own function.
func writerAllowed(n *funcNode, rolePats, funcSpecs []string) bool {
	if n.matchesRole(rolePats) {
		return true
	}
	spec := n.spec()
	for _, fs := range funcSpecs {
		if fs == spec {
			return true
		}
	}
	return false
}

func checkPartitionIsolation(c *progCtx) error {
	specs := c.pol.Structs(RulePartitionIsolation)
	if len(specs) == 0 {
		return nil
	}
	var rolePats, funcSpecs []string
	for _, pat := range c.pol.Writers(RulePartitionIsolation) {
		if isFuncSpecPattern(pat) {
			funcSpecs = append(funcSpecs, pat)
		} else {
			rolePats = append(rolePats, pat)
		}
	}
	g := c.useGraph()
	for _, spec := range specs {
		named, ownerRel, err := c.resolveNamed(spec)
		if err != nil {
			return fmt.Errorf("partition-isolation: %w", err)
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return fmt.Errorf("partition-isolation: struct spec %q: %s is not a struct type", spec, named.Obj().Name())
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			for _, n := range g.nodes {
				if n.pkg.RelName() == ownerRel {
					continue // the owning subsystem may mutate its own state
				}
				posns := n.writes[f]
				if len(posns) == 0 || writerAllowed(n, rolePats, funcSpecs) {
					continue
				}
				for _, pos := range posns {
					c.emitPos(pos, RulePartitionIsolation,
						fmt.Sprintf("%s writes partition-owned %s.%s; only %s or a seam in `writers partition-isolation` may mutate it",
							n.spec(), spec, f.Name(), ownerRel))
				}
			}
		}
	}
	return nil
}

// --- ownership report --------------------------------------------------

// OwnershipReport renders the field → writers map of every struct
// audited by partition-isolation, for `nubalint -ownership`. Output is
// deterministic: structs in policy order, fields in declaration order,
// writers sorted by position.
func OwnershipReport(prog *Program, pol *Policy) (string, error) {
	c := &progCtx{prog: prog, pol: pol}
	specs := pol.Structs(RulePartitionIsolation)
	if len(specs) == 0 {
		return "", fmt.Errorf("ownership: no `structs partition-isolation` entries in the policy")
	}
	g := c.useGraph()
	var b strings.Builder
	for _, spec := range specs {
		named, ownerRel, err := c.resolveNamed(spec)
		if err != nil {
			return "", fmt.Errorf("ownership: %w", err)
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return "", fmt.Errorf("ownership: struct spec %q is not a struct type", spec)
		}
		fmt.Fprintf(&b, "%s (owner: %s)\n", spec, ownerRel)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			type site struct {
				pos  token.Pos
				spec string
			}
			var sites []site
			for _, n := range g.nodes {
				for _, pos := range n.writes[f] {
					sites = append(sites, site{pos: pos, spec: n.spec()})
				}
			}
			sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
			if len(sites) == 0 {
				fmt.Fprintf(&b, "  %-24s (no writers)\n", f.Name())
				continue
			}
			for _, s := range sites {
				posn := prog.Fset.Position(s.pos)
				fmt.Fprintf(&b, "  %-24s <- %s (%s:%d)\n", f.Name(), s.spec, prog.RelFile(s.pos), posn.Line)
			}
		}
	}
	return b.String(), nil
}
