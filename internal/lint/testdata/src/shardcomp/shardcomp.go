// Package shardcomp holds the partition components for the
// shard-safety fixtures: Core and Bank are listed in
// `structs shard-footprint`, Core.Send and flush are the declared
// seams, and the Tick bodies seed one finding per shard-rule clause.
package shardcomp

import "example.com/fixture/shardstate"

// Core is one partition component. Send is its declared seam port,
// Eject an undeclared one (finding).
type Core struct {
	depth int
	peer  *Bank
	tally *shardstate.Tally
	lcl   shardstate.Local
	box   *shardstate.Mailbox
	q     *shardstate.Queue

	Send  func(v int)
	Eject func(v int)
}

// NewCore wires a Core with its shared-state handles.
func NewCore() *Core {
	return &Core{peer: NewBank(), tally: &shardstate.Tally{},
		box: &shardstate.Mailbox{}, q: &shardstate.Queue{}}
}

// Tick seeds, line by line, every component-closure finding the golden
// file locks.
func (c *Core) Tick() {
	c.depth++
	c.lcl.Depth = c.depth                // partition class: fine
	c.tally.Total++                      // commutative accumulation: fine
	c.tally.Total = 0                    // finding: non-accumulative write
	c.tally.Note = "reset"               // field-level partition class: fine
	c.peer.Level++                       // finding: other partition's state
	c.box.Slots++                        // finding: barrier-exchange mid-tick
	shardstate.Registry.Pending++        // finding: unclassified shared state
	_ = shardstate.Packet{Data: c.depth} // message class: fine
	c.Send(c.depth)                      // declared seam port: fine
	c.Eject(c.depth)                     // finding: undeclared port
	flush(c.q)                           // declared seam function: not traversed
}

// NextWake is the component's wake hint; it joins Tick as a closure
// root.
func (c *Core) NextWake() int { return c.depth }

// flush is the declared seam function: its body runs at the partition
// barrier, but the queue it drains is unclassified, so the seam
// closure seeds its own shard-shared finding.
func flush(q *shardstate.Queue) { q.Items = q.Items[:0] }

// Bank is the second partition component.
type Bank struct{ Level int }

// NewBank returns an empty Bank.
func NewBank() *Bank { return &Bank{} }

// Tick reads the unclassified registry (a second unclassified finding,
// and the read side of the phase-order backward dataflow) and the
// unsafe global (finding).
func (b *Bank) Tick() {
	_ = shardstate.Registry.Pending
	_ = shardstate.Global.Mode
}
