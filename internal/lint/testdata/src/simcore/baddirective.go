package simcore

// A directive that names no rule must itself be a finding — otherwise a
// typo would silently suppress nothing while looking like a suppression.

//nubalint:ignore
func Bad() {}

// A nubaunit annotation that fails the grammar must also be a finding:
// an annotation that silently parses to nothing checks nothing.

// BadUnit carries a malformed unit annotation.
const BadUnit = 1 // nubaunit: bytes per cycle
