package simcore

// A directive that names no rule must itself be a finding — otherwise a
// typo would silently suppress nothing while looking like a suppression.

//nubalint:ignore
func Bad() {}
