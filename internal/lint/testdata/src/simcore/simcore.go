// Package simcore is a lint fixture standing in for a cycle-level model
// package: every rule has a positive hit, a suppressed hit, and a clean
// variant here or in a sibling package.
package simcore

import (
	"context"
	"math/rand"
	"sort"
	"time"
)

// Sum ranges over a map unsorted: nondet-map-range positive.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SumIgnored carries a suppression directive: no finding.
func SumIgnored(m map[string]int) int {
	total := 0
	//nubalint:ignore nondet-map-range order-independent sum
	for _, v := range m {
		total += v
	}
	return total
}

// Keys collects keys and sorts them: the sanctioned idiom, clean.
func Keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// KeysUnsorted collects keys but never sorts: nondet-map-range positive.
func KeysUnsorted(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// Stamp reads the wall clock: no-wallclock positive (and the math/rand
// import above is a second one).
func Stamp() int64 {
	return time.Now().UnixNano()
}

// StampIgnored suppresses a wall-clock read on the same line.
func StampIgnored(t0 time.Time) time.Duration {
	return time.Since(t0) //nubalint:ignore no-wallclock fixture exercises same-line suppression
}

// Jitter uses math/rand (flagged at the import, not here).
func Jitter() int {
	return rand.Intn(8)
}

// Spawn starts a goroutine inside the model: goroutine-in-core positive.
func Spawn(f func()) {
	go f()
}

// Detach receives a ctx but resets the chain: ctx-propagation positive.
func Detach(ctx context.Context) error {
	return wait(context.Background())
}

// Wait propagates its ctx properly: clean.
func Wait(ctx context.Context) error {
	return wait(ctx)
}

func wait(ctx context.Context) error {
	return ctx.Err()
}
