// Package pool is the fixture's experiment pool: the one sanctioned
// importer of the faultinj harness (readers fault-containment), so its
// import below must stay clean.
package pool

import "example.com/fixture/faultinj"

// Run arms the plan's faults before running.
func Run() int { return faultinj.Arm() }
