// Package owner owns the partition state the partition-isolation rule
// audits in the fixture.
package owner

// Core is partition-owned component state.
type Core struct {
	// Counter is mutated by the owner and, illegally, by intruder.Poke.
	Counter int64
	// Send is the wiring seam installed at construction time by the
	// sanctioned intruder.Install.
	Send func(v int64) bool
}

// Bump is the owner's own mutation — always sanctioned.
func (c *Core) Bump() { c.Counter++ }
