// Package model is the fixture's simulator: the sanctioned reader of
// params knobs and writer of stats counters.
package model

import (
	"example.com/fixture/params"
	"example.com/fixture/stats"
)

// Step consumes the live knobs and bumps the counters. The += on Ticks
// is a write, not a read: reporting must happen in the report package.
func Step(cfg *params.Config, st *stats.Stats) {
	st.Ticks += int64(cfg.LineBytes / cfg.Derived())
	st.Unreported++
}
