// Package report is the fixture's reporting path: the sanctioned
// reader of stats counters.
package report

import "example.com/fixture/stats"

// Summarize reads the reported counters. Counters it never touches are
// unreported-counter findings.
func Summarize(st *stats.Stats) int64 { return st.Ticks }
