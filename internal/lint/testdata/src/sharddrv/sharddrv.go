// Package sharddrv holds the tick-phase-order fixture: Engine.step is
// the declared driver, and its body contradicts the declared phase
// order in every way the rule checks — an out-of-order phase, an
// undeclared Tick, a stale declared phase and a backward cross-phase
// dataflow.
package sharddrv

import "example.com/fixture/shardcomp"

// Pump is ticked by the driver but not declared as a phase (finding).
type Pump struct{ n int }

// Tick advances the pump.
func (p *Pump) Tick() { p.n++ }

// Idle is declared as a phase but never ticked (stale finding).
type Idle struct{}

// Tick does nothing.
func (i *Idle) Tick() {}

// Engine drives the fixture components once per cycle.
type Engine struct {
	c    *shardcomp.Core
	b    *shardcomp.Bank
	p    *Pump
	sent int
}

// New wires the engine, installing the Core's seam port.
func New() *Engine {
	e := &Engine{c: shardcomp.NewCore(), b: shardcomp.NewBank(), p: &Pump{}}
	e.c.Send = e.push
	return e
}

// push receives the Core's seam traffic.
func (e *Engine) push(v int) { e.sent += v }

// step calls Core before Bank, contradicting the declared order
// (Bank first), and ticks the undeclared Pump.
func (e *Engine) step() {
	e.c.Tick()
	e.b.Tick()
	e.p.Tick()
}
