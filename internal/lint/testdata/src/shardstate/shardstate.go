// Package shardstate holds the shared-state fixtures for the
// shard-safety rules: one representative of every classification in
// `shared shard-shared`, plus the deliberately unclassified objects
// the golden findings point at.
package shardstate

// Reg tracks in-flight work; deliberately unclassified, so ticks that
// touch Registry.Pending seed shard-shared's unclassified finding.
type Reg struct{ Pending int }

// Registry is the unclassified shared mutable the components fight
// over.
var Registry Reg

// Tally is a commutative accumulator (classified commutative in
// lint.policy); Note is classified partition at field level, proving
// field precedence over the type entry.
type Tally struct {
	Total int
	Note  string
}

// Local is per-partition scratch (classified partition).
type Local struct{ Depth int }

// Mailbox is exchanged only at barriers (classified
// barrier-exchange): a tick touching it is a finding.
type Mailbox struct{ Slots int }

// Cfg is the type behind Global.
type Cfg struct{ Mode int }

// Global is a known-unsafe global knob (classified unsafe).
var Global Cfg

// Packet is a message payload (classified message): ownership moves
// with the message, so writes from a tick are fine.
type Packet struct{ Data int }

// Queue backs the flush seam; deliberately unclassified so the seam
// closure seeds its own shard-shared finding.
type Queue struct{ Items []int }

// Unused exists only to exercise the stale-classification finding:
// lint.policy classifies it but no audited closure touches it.
type Unused struct{ N int }
