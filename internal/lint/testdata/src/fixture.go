// Package fixture is the root package of the lint fixture module: the
// public API surface whose pre-unification wrappers the deprecated-api
// rule polices.
package fixture

// Run is the unified entry point.
func Run() int { return 1 }

// RunOld is the pre-unification entry point.
//
// Deprecated: call Run instead.
func RunOld() int { return Run() }
