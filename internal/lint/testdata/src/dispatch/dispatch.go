// Package dispatch exercises the use graph's indirect call edges —
// interface dispatch, method values, deferred and go calls, generic
// instantiations. The usegraph tests assert the edges exist; no lint
// rule fires here.
package dispatch

// Doer is the dynamic-dispatch fixture interface.
type Doer interface{ Do() }

// A and B are the concrete implementations the dispatch
// over-approximation must expand Doer.Do to.
type A struct{ n int }

// Do implements Doer.
func (a *A) Do() { a.n++ }

// B is the second implementation.
type B struct{ n int }

// Do implements Doer.
func (b *B) Do() { b.n++ }

// CallIface dispatches through the interface: the graph records an edge
// to the abstract Doer.Do.
func CallIface(d Doer) { d.Do() }

// MethodValue captures a bound method without calling it — still an
// edge, the reference is what the graph tracks.
func MethodValue(a *A) func() { return a.Do }

// DeferredAndGo references callees from defer and go statements.
func DeferredAndGo(a *A, b *B) {
	defer a.Do()
	go b.Do()
}

// Box exercises generic-instantiation normalization: a call on a
// concrete instantiation must resolve to the declared origin method.
type Box[T any] struct{ v T }

// Get returns the boxed value.
func (b *Box[T]) Get() T { return b.v }

// UseBox calls through the int instantiation.
func UseBox(b *Box[int]) int { return b.Get() }
