// Package hints holds the wake-hint contract fixtures: pure and impure
// hint methods for hint-purity, and the ticked/hintless/stale component
// types engine-contract audits against the policy's structs list.
package hints

import "strings"

// Comp is the sound component: ticked by the engine package, listed in
// the policy, and exposing a side-effect-free wake hint. No findings.
type Comp struct {
	next int64
	n    int
}

// Tick advances the component.
func (c *Comp) Tick(now int64) { c.n++ }

// NextEvent is a pure hint: field reads plus a pure helper call.
func (c *Comp) NextEvent(now int64) int64 {
	if c.n == 0 {
		return c.floor(now)
	}
	return c.next
}

func (c *Comp) floor(now int64) int64 {
	if c.next < now {
		return now
	}
	return c.next
}

// NoHint is ticked and listed in the engine-contract policy but exposes
// no wake hint: a finding at this type.
type NoHint struct{ n int }

// Tick advances the component.
func (h *NoHint) Tick(now int64) { h.n++ }

// Stale is listed in the engine-contract policy but nothing ticks it:
// a stale-entry finding at this type.
type Stale struct{}

// NextEvent is a hint no cycle loop consults.
func (Stale) NextEvent(now int64) int64 { return now }

// Rogue is ticked by the engine but missing from the engine-contract
// policy list: a finding at the tick site.
type Rogue struct{ n int }

// Tick advances the component.
func (r *Rogue) Tick(now int64) { r.n++ }

// FieldComp's hint mutates the component itself: a root-effect finding.
type FieldComp struct {
	scans int64
	next  int64
}

// NextEvent counts its own evaluations — a field write inside a hint.
func (f *FieldComp) NextEvent(now int64) int64 {
	f.scans++
	return f.next
}

// hintProbes counts hint evaluations module-wide.
var hintProbes int64

// TransComp's hint is impure two calls deep.
type TransComp struct{ next int64 }

// NextEvent looks pure but reaches a package-variable write through
// probe: a transitive finding reporting the call path.
func (tc *TransComp) NextEvent(now int64) int64 {
	tc.probe()
	return tc.next
}

func (tc *TransComp) probe() { bumpProbe() }

func bumpProbe() { hintProbes++ }

// ChanComp's hint signals a watcher: goroutine-start and channel-send
// findings.
type ChanComp struct {
	wake chan int64
	next int64
}

// NextEvent notifies a watcher goroutine from inside a hint.
func (cc *ChanComp) NextEvent(now int64) int64 {
	go func() { cc.wake <- now }()
	return cc.next
}

// ExternComp's hint calls outside the module: its effects cannot be
// verified, an unverifiable-call finding.
type ExternComp struct{ name string }

// NextEvent canonicalizes a label via the standard library.
func (e *ExternComp) NextEvent(now int64) int64 {
	if strings.ToUpper(e.name) == "IDLE" {
		return now + 1
	}
	return now
}
