// Package faultinj is the fixture's fault-injection harness: protected
// by fault-containment, importable only from the sanctioned pool
// package (and _test.go files, which lint never loads).
package faultinj

// Arm pretends to arm a fault and reports how many it armed.
func Arm() int { return 1 }
