// Package stats is the fixture's counter sink: the struct audited by
// metrics-liveness.
package stats

// Stats mirrors the real metrics.Stats shape (writers = model,
// readers = report in lint.policy).
type Stats struct {
	// Ticks is written by model and read by report: clean.
	Ticks int64
	// DeadCounter is never written anywhere: dead-counter finding.
	DeadCounter int64
	// Unreported is written by model but never read by report:
	// unreported-counter finding.
	Unreported int64
}
