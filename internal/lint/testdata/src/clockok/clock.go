// Package clockok is the fixture's progress/clock layer: lint.policy
// allowlists this file for no-wallclock, so its time.Now is clean.
package clockok

import "time"

// Now reads the wall clock, legally.
func Now() time.Time {
	return time.Now()
}
