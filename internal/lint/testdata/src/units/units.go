// Package units exercises the dimensional checker: annotated consts
// and vars, mixed-unit arithmetic, sound compositions and suppression.
package units

// LineBytes is the transfer size.
const LineBytes = 128 // nubaunit: bytes

// Window is a sampling interval.
const Window = 1000 // nubaunit: cycles

// Rate is the link bandwidth.
const Rate = 4 // nubaunit: bytes/cycle

// Budget is an annotated package var.
var Budget int64 // nubaunit: bytes

// MixedAdd adds bytes to cycles: finding.
func MixedAdd() int { return LineBytes + Window }

// MixedCompare compares bytes with cycles: finding.
func MixedCompare() bool { return LineBytes < Window }

// BadAssign stores a cycle count into a bytes-annotated var: finding.
func BadAssign() { Budget = int64(Window) }

// Compose multiplies bytes/cycle by cycles and compares the product
// with bytes — dimensionally sound, clean.
func Compose() bool {
	moved := Rate * Window
	return moved > LineBytes
}

// Quotient divides bytes by bytes/cycle, yielding cycles: clean.
func Quotient() bool {
	took := LineBytes / Rate
	return took < Window
}

// Suppressed mixes units under an ignore directive: no finding.
func Suppressed() int {
	//nubalint:ignore unit-consistency fixture exercises unit suppression
	return LineBytes - Window
}
