// Package params is the fixture's config layer: the struct audited by
// config-liveness.
package params

// Config is the audited parameter struct (see lint.policy: structs
// config-liveness = params.Config, readers = model).
type Config struct {
	// LineBytes is read directly by model.Step: live.
	LineBytes int
	// DeadKnob is written in Default but never read by the model:
	// config-liveness finding.
	DeadKnob int
	// Threshold is read only through the Derived helper, which the
	// model calls — liveness is reachability, not direct reads.
	Threshold int
	// Intentional is deliberately unread; the directive keeps it.
	//nubalint:ignore config-liveness reserved knob kept to exercise suppression
	Intentional int
}

// Default returns the baseline config. Writing a knob here does not
// make it live: only reads from the reader set count.
func Default() Config {
	return Config{LineBytes: 128, DeadKnob: 7, Threshold: 3, Intentional: 1}
}

// Derived is the helper whose read of Threshold counts because the
// model calls it.
func (c *Config) Derived() int { return c.Threshold * 2 }
