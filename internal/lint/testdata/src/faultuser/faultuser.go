// Package faultuser imports the faultinj harness without being a
// sanctioned reader: the layering entry permits the import, so the
// finding below is fault-containment's alone.
package faultuser

import "example.com/fixture/faultinj"

// Sneak reaches the harness from outside the pool.
func Sneak() int { return faultinj.Arm() }
