// Package intruder touches owner state from outside the owning
// package: Install is the declared wiring seam (listed in `writers
// partition-isolation`), Poke is the violation the rule must flag.
package intruder

import "example.com/fixture/owner"

// Install wires the core's send callback — the sanctioned seam.
func Install(c *owner.Core, send func(int64) bool) { c.Send = send }

// Poke resets owner state from outside: a partition-isolation finding.
func Poke(c *owner.Core) { c.Counter = 0 }
