// Package app tops the fixture DAG and may only import engine; the
// simcore import below is the import-layering positive.
package app

import (
	"example.com/fixture/engine"
	"example.com/fixture/simcore"
)

// Main exercises both imports.
func Main() {
	engine.Drive(map[string]int{"a": 1}, func() {})
	simcore.Spawn(func() {})
}
