// Package app tops the fixture DAG and may only import engine; the
// simcore import below is the import-layering positive.
package app

import (
	"example.com/fixture"
	"example.com/fixture/engine"
	"example.com/fixture/simcore"
)

// Main exercises the imports; the RunOld call is the deprecated-api
// positive.
func Main() {
	engine.Drive(map[string]int{"a": 1}, func() {})
	simcore.Spawn(func() {})
	fixture.RunOld()
}
