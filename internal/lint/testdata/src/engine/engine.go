// Package engine sits above the fixture model layer: goroutines and
// unsorted map ranges are out of every determinism rule's scope here,
// and its simcore/clockok imports are permitted by the layer DAG.
package engine

import (
	"example.com/fixture/clockok"
	"example.com/fixture/simcore"
)

// Drive fans work out; all of this is legal at the engine layer.
func Drive(m map[string]int, f func()) int {
	go f()
	_ = clockok.Now()
	n := 0
	for _, v := range m {
		n += v
	}
	return n + simcore.Sum(m)
}
