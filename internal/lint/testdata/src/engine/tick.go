package engine

import "example.com/fixture/hints"

// TickAll is the fixture cycle loop: it drives the sound component, the
// hintless component (engine-contract finding at the type) and the
// unlisted rogue (engine-contract finding at the call site below).
func TickAll(c *hints.Comp, nh *hints.NoHint, r *hints.Rogue, now int64) {
	c.Tick(now)
	nh.Tick(now)
	r.Tick(now)
}
