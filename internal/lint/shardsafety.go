package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Shard-safety analysis: the static proof obligations of the planned
// partition-parallel engine (ROADMAP item 2), checked before that
// engine exists. The partition plan runs each partition's components
// (SMs, LLC slices, DRAM channels) on their own shard and exchanges
// work only at cycle barriers, so three things must already be true of
// the sequential code:
//
//   - shard-footprint: a partition component's tick closure — its Tick
//     and wake-hint methods plus everything they transitively call —
//     touches only its own component's state. Work leaves the
//     component exclusively through declared seams: func-typed ports
//     (`internal/smcore.SM.Send`) and seam functions, listed in
//     `seams shard-footprint`. Traversal stops at a declared seam and
//     records the crossing; an undeclared port on a component is a
//     finding, and so is reaching another component's fields.
//
//   - shard-shared: every shared mutable object a tick closure reaches
//     must carry a classification in `shared shard-shared` saying why
//     it is safe: `partition` (per-partition instances), `commutative`
//     (merge-safe accumulators; non-accumulative writes are findings),
//     `message` (payload owned by whoever holds the message),
//     `barrier-exchange` (only seam functions may touch it — a tick
//     touching it is a finding) or `unsafe` (known-unsafe, must not be
//     reachable from a tick). Objects never written in any audited
//     closure derive `read-only` and need no entry. Classifications
//     that match nothing are stale findings.
//
//   - tick-phase-order: the engine's per-cycle phase sequence (`funcs
//     tick-phase-order`: driver then phases in order) is what the
//     barrier schedule will replay; see checkTickPhaseOrder.
//
// `nubalint -shardmap` (shardmap.go) renders the same analysis as a
// JSON partition map committed under docs/.

// classEntry is one `shared shard-shared = class:spec` classification.
type classEntry struct {
	class string
	spec  string
	pos   token.Pos // what the spec resolves to, for stale findings
	used  bool
}

// sharedClasses resolves objects to their declared classification,
// most specific spec first: pkg.Type.Field, then pkg.Type (or pkg.Var
// for package variables), then pkg.
type sharedClasses struct {
	byField map[string]*classEntry
	byType  map[string]*classEntry
	byPkg   map[string]*classEntry
	entries []*classEntry // declaration order, for stale detection
}

// specDots counts the dots in a spec's tail ("internal/vm.TLB.entries"
// has 2): 0 names a package, 1 a type or package variable, 2 a field.
func specDots(spec string) int {
	tail := spec
	if i := strings.LastIndexByte(spec, '/'); i >= 0 {
		tail = spec[i+1:]
	}
	return strings.Count(tail, ".")
}

// lookup finds the most specific entry for oi without marking it used.
func (sc *sharedClasses) lookup(oi objInfo) *classEntry {
	if e := sc.byField[oi.key]; e != nil {
		return e
	}
	if oi.owner != nil {
		if e := sc.byType[oi.ownerSpec]; e != nil {
			return e
		}
	} else if e := sc.byType[oi.key]; e != nil {
		return e
	}
	return sc.byPkg[oi.pkgRel]
}

// classify is lookup plus used-marking (stale detection).
func (sc *sharedClasses) classify(oi objInfo) *classEntry {
	e := sc.lookup(oi)
	if e != nil {
		e.used = true
	}
	return e
}

// objInfo identifies one accessed object in classification terms.
type objInfo struct {
	obj       types.Object
	key       string // "pkg.Type.Field" or "pkg.Var"
	pkgRel    string
	owner     *types.Named // declaring type for fields of named structs
	ownerSpec string       // "pkg.Type" when owner is set
}

// site is one evidence location: a position plus the call path from
// the closure root that reaches it.
type site struct {
	pos  token.Pos
	path string
}

// objAccess aggregates one closure's accesses to one object.
type objAccess struct {
	info       objInfo
	class      *classEntry // nil = unclassified
	reads      int
	writes     int
	firstRead  site
	firstWrite site
	nonAccum   []site // non-accumulative write sites (commutative police)
}

// first returns the earliest evidence site.
func (a *objAccess) first() site {
	switch {
	case a.reads == 0:
		return a.firstWrite
	case a.writes == 0 || a.firstRead.pos <= a.firstWrite.pos:
		return a.firstRead
	}
	return a.firstWrite
}

// portUse is one dispatch through a func-typed field.
type portUse struct {
	key  string // "pkg.Type.Field" or "pkg.Var"
	pos  token.Pos
	path string
}

// seamUse is one call into a declared seam function.
type seamUse struct {
	spec string
	pos  token.Pos
	path string
}

// shardClosure is the flow-sensitive footprint of one root set: a
// component's tick+hint methods, a declared seam function, or an
// engine phase.
type shardClosure struct {
	name      string // component type spec, seam spec or phase spec
	kind      string // "component", "seam" or "phase"
	ownType   *types.Named
	roots     []string
	objs      map[types.Object]*objAccess
	order     []types.Object // first-touch order
	ports     []portUse      // declared seam ports dispatched
	undecl    []portUse      // undeclared component ports (findings)
	hooks     []portUse      // other func-field dispatches, not traversed
	seamCalls []seamUse      // declared seam functions reached
	nodes     map[*funcNode]bool
}

func newShardClosure(name, kind string, own *types.Named) *shardClosure {
	return &shardClosure{
		name: name, kind: kind, ownType: own,
		objs:  make(map[types.Object]*objAccess),
		nodes: make(map[*funcNode]bool),
	}
}

// shardAnalysis is the shared result the three shard rules and the
// -shardmap report all consume; progCtx caches it (one build per run).
type shardAnalysis struct {
	enabled   bool // false when `structs shard-footprint` is empty
	comps     []*shardClosure
	seams     []*shardClosure
	classes   *sharedClasses
	written   map[types.Object]bool // written in any audited closure
	compTypes map[*types.Named]string
	seamPorts map[*types.Var]string
	seamFuncs map[*types.Func]string
	portOrder []string // declared port seams, policy order
	graph     *useGraph
	owners    map[*types.Var]*types.Named
	mod       Module
}

// buildFieldOwners indexes every field of every named struct type in
// the loaded packages to its declaring type, so an accessed field can
// be attributed to "pkg.Type".
func buildFieldOwners(prog *Program) map[*types.Var]*types.Named {
	out := make(map[*types.Var]*types.Named)
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				out[st.Field(i)] = named
			}
		}
	}
	return out
}

// objInfoOf classifies obj for the shard analysis. Only module-internal
// variables count: fields and package-level variables; consts, locals
// and external state are out of scope (hint-purity owns external calls).
func objInfoOf(obj types.Object, owners map[*types.Var]*types.Named, mod Module) (objInfo, bool) {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return objInfo{}, false
	}
	rel, internal := internalRel(mod, v.Pkg().Path())
	if !internal {
		return objInfo{}, false
	}
	oi := objInfo{obj: v, pkgRel: rel}
	if v.IsField() {
		if owner := owners[v]; owner != nil {
			oi.owner = owner
			oi.ownerSpec = rel + "." + owner.Obj().Name()
			oi.key = oi.ownerSpec + "." + v.Name()
		} else {
			oi.key = rel + ".(anon)." + v.Name()
		}
	} else {
		oi.key = rel + "." + v.Name()
	}
	return oi, true
}

// shardAnalysis lazily builds (and caches) the analysis; an error is a
// configuration problem (unresolvable spec, component without a Tick)
// and fails the run rather than producing findings.
func (c *progCtx) shardAnalysis() (*shardAnalysis, error) {
	if c.shard == nil && c.shardErr == nil {
		c.shard, c.shardErr = buildShardAnalysis(c)
	}
	return c.shard, c.shardErr
}

func buildShardAnalysis(c *progCtx) (*shardAnalysis, error) {
	a := &shardAnalysis{
		classes:   &sharedClasses{byField: map[string]*classEntry{}, byType: map[string]*classEntry{}, byPkg: map[string]*classEntry{}},
		written:   make(map[types.Object]bool),
		compTypes: make(map[*types.Named]string),
		seamPorts: make(map[*types.Var]string),
		seamFuncs: make(map[*types.Func]string),
		graph:     c.useGraph(),
		owners:    buildFieldOwners(c.prog),
		mod:       c.prog.Mod,
	}
	if err := a.resolveShared(c); err != nil {
		return nil, err
	}
	compSpecs := c.pol.Structs(RuleShardFootprint)
	if len(compSpecs) == 0 {
		return a, nil // tick-phase-order may still run
	}
	a.enabled = true
	for _, spec := range compSpecs {
		named, _, err := c.resolveNamed(spec)
		if err != nil {
			return nil, err
		}
		a.compTypes[named] = spec
	}
	var seamFnOrder []string
	for _, spec := range c.pol.Seams(RuleShardFootprint) {
		port, fn, err := c.resolveSeam(spec)
		if err != nil {
			return nil, err
		}
		if port != nil {
			a.seamPorts[port] = spec
			a.portOrder = append(a.portOrder, spec)
		} else {
			a.seamFuncs[fn] = spec
			seamFnOrder = append(seamFnOrder, spec)
		}
	}
	// Component closures, in policy order; roots are the Tick and
	// wake-hint methods so the footprint covers exactly what the engine
	// runs on the component every cycle.
	for _, spec := range compSpecs {
		named, _, _ := c.resolveNamed(spec)
		cl := newShardClosure(spec, "component", named)
		roots := tickAndHintMethods(named)
		if len(roots) == 0 {
			return nil, fmt.Errorf("`structs shard-footprint` lists %s but it has no Tick or wake-hint method", spec)
		}
		for _, fn := range roots {
			if err := a.walkClosure(cl, fn); err != nil {
				return nil, err
			}
		}
		a.comps = append(a.comps, cl)
	}
	// Seam-function closures, in policy order: the barrier side of the
	// proof. Their bodies run at partition boundaries, so they may touch
	// barrier-exchange and unsafe state, but unclassified shared
	// mutables are still findings.
	for _, spec := range seamFnOrder {
		var fn *types.Func
		for f, s := range a.seamFuncs {
			if s == spec {
				fn = f
			}
		}
		cl := newShardClosure(spec, "seam", nil)
		if err := a.walkClosure(cl, fn); err != nil {
			return nil, err
		}
		a.seams = append(a.seams, cl)
	}
	a.finish()
	return a, nil
}

// finish derives mutability and classification once every closure is
// walked: written-anywhere feeds the read-only derivation, classify
// marks entries used for stale detection.
func (a *shardAnalysis) finish() {
	for _, cl := range append(append([]*shardClosure{}, a.comps...), a.seams...) {
		for _, obj := range cl.order {
			if cl.objs[obj].writes > 0 {
				a.written[obj] = true
			}
		}
	}
	for _, cl := range append(append([]*shardClosure{}, a.comps...), a.seams...) {
		for _, obj := range cl.order {
			acc := cl.objs[obj]
			acc.class = a.classes.classify(acc.info)
		}
	}
}

// resolveShared parses and resolves every `shared shard-shared` entry.
// An entry that resolves to nothing in the loaded packages is a
// configuration error; one that resolves but is never touched by an
// audited closure is a stale finding (checkShardShared).
func (a *shardAnalysis) resolveShared(c *progCtx) error {
	for _, v := range c.pol.Shared(RuleShardShared) {
		class, spec, _ := strings.Cut(v, ":")
		e := &classEntry{class: class, spec: spec}
		switch specDots(spec) {
		case 0: // package
			pkg := c.prog.pkgByRel(spec)
			if pkg == nil {
				return fmt.Errorf("shared entry %q: package %s is not among the loaded packages", v, spec)
			}
			e.pos = pkg.Files[0].Pos()
			if a.classes.byPkg[spec] != nil {
				return fmt.Errorf("duplicate shared classification for %q", spec)
			}
			a.classes.byPkg[spec] = e
		case 1: // type or package variable
			dot := strings.LastIndex(spec, ".")
			pkg := c.prog.pkgByRel(spec[:dot])
			if pkg == nil {
				return fmt.Errorf("shared entry %q: package %s is not among the loaded packages", v, spec[:dot])
			}
			obj := pkg.Types.Scope().Lookup(spec[dot+1:])
			if obj == nil {
				return fmt.Errorf("shared entry %q: no %s in package %s", v, spec[dot+1:], spec[:dot])
			}
			e.pos = obj.Pos()
			if a.classes.byType[spec] != nil {
				return fmt.Errorf("duplicate shared classification for %q", spec)
			}
			a.classes.byType[spec] = e
		case 2: // field
			dot := strings.LastIndex(spec, ".")
			named, _, err := c.resolveNamed(spec[:dot])
			if err != nil {
				return fmt.Errorf("shared entry %q: %w", v, err)
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return fmt.Errorf("shared entry %q: %s is not a struct type", v, spec[:dot])
			}
			var f *types.Var
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == spec[dot+1:] {
					f = st.Field(i)
				}
			}
			if f == nil {
				return fmt.Errorf("shared entry %q: %s has no field %s", v, spec[:dot], spec[dot+1:])
			}
			e.pos = f.Pos()
			if a.classes.byField[spec] != nil {
				return fmt.Errorf("duplicate shared classification for %q", spec)
			}
			a.classes.byField[spec] = e
		default:
			return fmt.Errorf("shared entry %q: spec %q is not pkg, pkg.Type or pkg.Type.Field", v, spec)
		}
		a.classes.entries = append(a.classes.entries, e)
	}
	return nil
}

// resolveSeam resolves one `seams shard-footprint` spec: a func-typed
// struct field ("pkg.Type.Field") yields a port, a function or method
// spec yields the seam function.
func (c *progCtx) resolveSeam(spec string) (*types.Var, *types.Func, error) {
	if specDots(spec) == 2 {
		dot := strings.LastIndex(spec, ".")
		named, _, err := c.resolveNamed(spec[:dot])
		if err == nil {
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if f.Name() != spec[dot+1:] {
						continue
					}
					if _, ok := f.Type().Underlying().(*types.Signature); !ok {
						return nil, nil, fmt.Errorf("seam %q: field %s is not func-typed", spec, f.Name())
					}
					return f, nil, nil
				}
			}
		}
	}
	fn, err := c.resolveFunc(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("seam %q: %w", spec, err)
	}
	return nil, fn, nil
}

// tickAndHintMethods returns the component's closure roots: its Tick
// method plus any wake-hint methods, in that order.
func tickAndHintMethods(named *types.Named) []*types.Func {
	var out []*types.Func
	want := append([]string{"Tick"}, hintMethodNames...)
	for _, name := range want {
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				out = append(out, m)
			}
		}
	}
	return out
}

// walkClosure BFS-walks the call graph from rootFn into cl, stopping
// at declared seam functions and recording every port dispatch.
// Multiple roots share cl.nodes, so a helper reached from both Tick
// and NextWake is recorded once.
func (a *shardAnalysis) walkClosure(cl *shardClosure, rootFn *types.Func) error {
	root := a.graph.byObj[rootFn]
	if root == nil {
		return fmt.Errorf("%s root %s has no body in the loaded packages", cl.kind, funcDisplay(rootFn))
	}
	cl.roots = append(cl.roots, root.spec())
	if cl.nodes[root] {
		return nil
	}
	cl.nodes[root] = true
	paths := map[*funcNode]string{root: funcDisplay(rootFn)}
	queue := []*funcNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		path := paths[n]
		cl.recordNode(a, n, path)
		for _, callee := range n.calleeList {
			if spec, ok := a.seamFuncs[callee]; ok {
				cl.addSeamCall(seamUse{spec: spec, pos: n.callPos[callee], path: path})
				continue
			}
			for _, m := range a.graph.calleeNodes(callee) {
				if cl.nodes[m] {
					continue
				}
				cl.nodes[m] = true
				paths[m] = path + " -> " + funcDisplay(m.fn)
				queue = append(queue, m)
			}
		}
		for _, dc := range n.dynCalls {
			oi, ok := objInfoOf(dc.field, a.owners, a.mod)
			if !ok {
				continue
			}
			use := portUse{key: oi.key, pos: dc.pos, path: path}
			switch {
			case a.seamPorts[dc.field] != "":
				cl.addPort(&cl.ports, use)
			case oi.owner != nil && a.compTypes[oi.owner] != "":
				cl.addPort(&cl.undecl, use)
			default:
				// A hook outside the partition components (fault
				// injection, VM walk callbacks): out of shard scope, but
				// listed in the shard map so the hole is visible.
				cl.addPort(&cl.hooks, use)
			}
		}
	}
	return nil
}

// addPort appends use to list unless the port was already recorded.
func (cl *shardClosure) addPort(list *[]portUse, use portUse) {
	for _, p := range *list {
		if p.key == use.key {
			return
		}
	}
	*list = append(*list, use)
}

// addSeamCall records the first crossing into each seam function.
func (cl *shardClosure) addSeamCall(use seamUse) {
	for _, s := range cl.seamCalls {
		if s.spec == use.spec {
			return
		}
	}
	cl.seamCalls = append(cl.seamCalls, use)
}

// recordNode folds one node's object accesses into the closure, in a
// deterministic first-position order.
func (cl *shardClosure) recordNode(a *shardAnalysis, n *funcNode, path string) {
	var objs []types.Object
	minPos := make(map[types.Object]token.Pos)
	add := func(obj types.Object, poss []token.Pos) {
		if len(poss) == 0 {
			return
		}
		if q, seen := minPos[obj]; !seen {
			minPos[obj] = poss[0]
			objs = append(objs, obj)
		} else if poss[0] < q {
			minPos[obj] = poss[0]
		}
	}
	for obj, poss := range n.reads {
		add(obj, poss)
	}
	for obj, poss := range n.writes {
		add(obj, poss)
	}
	sort.Slice(objs, func(i, j int) bool { return minPos[objs[i]] < minPos[objs[j]] })
	for _, obj := range objs {
		oi, ok := objInfoOf(obj, a.owners, a.mod)
		if !ok {
			continue
		}
		acc := cl.objs[obj]
		if acc == nil {
			acc = &objAccess{info: oi}
			cl.objs[obj] = acc
			cl.order = append(cl.order, obj)
		}
		if poss := n.reads[obj]; len(poss) > 0 {
			if acc.reads == 0 {
				acc.firstRead = site{pos: poss[0], path: path}
			}
			acc.reads += len(poss)
		}
		if poss := n.writes[obj]; len(poss) > 0 {
			if acc.writes == 0 {
				acc.firstWrite = site{pos: poss[0], path: path}
			}
			acc.writes += len(poss)
		}
		for _, p := range n.nonAccum[obj] {
			acc.nonAccum = append(acc.nonAccum, site{pos: p, path: path})
		}
	}
}

// --- shard-footprint ---------------------------------------------------

func checkShardFootprint(c *progCtx) error {
	a, err := c.shardAnalysis()
	if err != nil {
		return fmt.Errorf("shard-footprint: %w", err)
	}
	if !a.enabled {
		return nil
	}
	for _, cl := range a.comps {
		for _, obj := range cl.order {
			acc := cl.objs[obj]
			oi := acc.info
			if oi.owner == nil || oi.owner == cl.ownType {
				continue
			}
			otherSpec, isComp := a.compTypes[oi.owner]
			if !isComp {
				continue
			}
			s := acc.first()
			c.emitPos(s.pos, RuleShardFootprint,
				fmt.Sprintf("%s tick reaches %s, state of partition component %s; cross the partition boundary through a declared seam (`seams shard-footprint`) (via %s)",
					cl.name, oi.key, otherSpec, s.path))
		}
		for _, p := range cl.undecl {
			c.emitPos(p.pos, RuleShardFootprint,
				fmt.Sprintf("%s tick dispatches through port %s, which is not in `seams shard-footprint`; declare the seam so the partition plan can buffer it (via %s)",
					cl.name, p.key, p.path))
		}
	}
	return nil
}

// --- shard-shared ------------------------------------------------------

func checkShardShared(c *progCtx) error {
	a, err := c.shardAnalysis()
	if err != nil {
		return fmt.Errorf("shard-shared: %w", err)
	}
	if !a.enabled {
		return nil
	}
	for _, cl := range append(append([]*shardClosure{}, a.comps...), a.seams...) {
		for _, obj := range cl.order {
			acc := cl.objs[obj]
			oi := acc.info
			if oi.owner != nil {
				if _, isComp := a.compTypes[oi.owner]; isComp {
					continue // component state: shard-footprint's territory
				}
			}
			if acc.class == nil {
				if a.written[obj] {
					s := acc.first()
					c.emitPos(s.pos, RuleShardShared,
						fmt.Sprintf("shared mutable %s is reachable from %s %s but has no classification in `shared shard-shared` (via %s)",
							oi.key, cl.kind, cl.name, s.path))
				}
				continue
			}
			if cl.kind != "component" {
				continue // seams run at barriers: any declared class is fine
			}
			switch acc.class.class {
			case "commutative":
				for _, s := range acc.nonAccum {
					c.emitPos(s.pos, RuleShardShared,
						fmt.Sprintf("non-accumulative write to commutative %s from %s tick; only ++/--/+=/-=/|= merge across partitions (via %s)",
							oi.key, cl.name, s.path))
				}
			case "barrier-exchange":
				s := acc.first()
				c.emitPos(s.pos, RuleShardShared,
					fmt.Sprintf("%s is classified barrier-exchange but %s tick touches it mid-cycle; only seam functions may (via %s)",
						oi.key, cl.name, s.path))
			case "unsafe":
				s := acc.first()
				c.emitPos(s.pos, RuleShardShared,
					fmt.Sprintf("%s is classified unsafe for partition parallelism but %s tick reaches it (via %s)",
						oi.key, cl.name, s.path))
			}
		}
	}
	for _, e := range a.classes.entries {
		if !e.used {
			c.emitPos(e.pos, RuleShardShared,
				fmt.Sprintf("`shared shard-shared` classifies %s as %s but no audited closure touches it; drop the stale entry", e.spec, e.class))
		}
	}
	return nil
}

// --- tick-phase-order --------------------------------------------------

// checkTickPhaseOrder audits the engine's per-cycle phase sequence
// declared as `funcs tick-phase-order = <driver> <phase>...`:
//
//   - the driver must call the declared phases in the declared order
//     (the partition barrier schedule will replay exactly this order);
//   - every Tick-named method the driver calls directly on a
//     module-internal type must be a declared phase;
//   - a declared phase the driver never calls is stale;
//   - unclassified shared mutable state written by a later phase and
//     read by an earlier one is a backward cross-phase dataflow: under
//     per-phase barriers the read would observe the previous cycle's
//     value only if that is the modeled intent, so it must be
//     classified (or restructured) before the seam is built.
func checkTickPhaseOrder(c *progCtx) error {
	specs := c.pol.Funcs(RuleTickPhaseOrder)
	if len(specs) == 0 {
		return nil
	}
	if len(specs) < 2 {
		return fmt.Errorf("tick-phase-order: `funcs tick-phase-order` needs a driver followed by at least one phase")
	}
	a, err := c.shardAnalysis()
	if err != nil {
		return fmt.Errorf("tick-phase-order: %w", err)
	}
	g := a.graph
	driverSpec, phaseSpecs := specs[0], specs[1:]
	driverFn, err := c.resolveFunc(driverSpec)
	if err != nil {
		return fmt.Errorf("tick-phase-order: %w", err)
	}
	driver := g.byObj[driverFn]
	if driver == nil {
		return fmt.Errorf("tick-phase-order: driver %s has no body in the loaded packages", driverSpec)
	}

	declared := make(map[*types.Func]string, len(phaseSpecs))
	var phaseFns []*types.Func
	for _, spec := range phaseSpecs {
		fn, err := c.resolveFunc(spec)
		if err != nil {
			return fmt.Errorf("tick-phase-order: %w", err)
		}
		declared[fn] = spec
		phaseFns = append(phaseFns, fn)
	}

	// (a) declared order vs the driver's first-call order; (c) stale
	// declared phases.
	lastPos := token.NoPos
	lastSpec := ""
	for i, fn := range phaseFns {
		pos, called := driver.callPos[fn]
		if !called {
			c.emitPos(fn.Pos(), RuleTickPhaseOrder,
				fmt.Sprintf("lint.policy declares %s as a phase of %s but the driver never calls it; drop the stale entry", phaseSpecs[i], driverSpec))
			continue
		}
		if lastPos.IsValid() && pos < lastPos {
			c.emitPos(pos, RuleTickPhaseOrder,
				fmt.Sprintf("%s runs before %s in %s, contradicting the declared phase order in `funcs tick-phase-order`", phaseSpecs[i], lastSpec, driverSpec))
		}
		if pos > lastPos {
			lastPos, lastSpec = pos, phaseSpecs[i]
		}
	}

	// (b) Tick-named direct callees on module types must be declared.
	for _, callee := range driver.calleeList {
		if callee.Name() != "Tick" || declared[callee] != "" {
			continue
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		rel, internal := internalRel(c.prog.Mod, named.Obj().Pkg().Path())
		if !internal {
			continue
		}
		c.emitPos(driver.callPos[callee], RuleTickPhaseOrder,
			fmt.Sprintf("%s ticks %s.%s outside the declared phase order; add it to `funcs tick-phase-order`", driverSpec, rel, funcDisplay(callee)))
	}

	// (d) backward cross-phase dataflow over unclassified shared
	// mutable objects: phase closures in declared order, a later
	// phase's write feeding an earlier phase's read.
	var closures []*shardClosure
	for i, fn := range phaseFns {
		cl := newShardClosure(phaseSpecs[i], "phase", nil)
		if err := a.walkClosure(cl, fn); err != nil {
			return fmt.Errorf("tick-phase-order: %w", err)
		}
		closures = append(closures, cl)
	}
	for j := 1; j < len(closures); j++ {
		writer := closures[j]
		for _, obj := range writer.order {
			wAcc := writer.objs[obj]
			if wAcc.writes == 0 {
				continue
			}
			oi := wAcc.info
			if oi.owner != nil {
				if _, isComp := a.compTypes[oi.owner]; isComp {
					continue
				}
			}
			if a.classes.lookup(oi) != nil {
				continue
			}
			for i := 0; i < j; i++ {
				rAcc := closures[i].objs[obj]
				if rAcc == nil || rAcc.reads == 0 {
					continue
				}
				c.emitPos(wAcc.firstWrite.pos, RuleTickPhaseOrder,
					fmt.Sprintf("phase %s writes unclassified %s that earlier phase %s reads; a per-phase barrier would reorder this backward dataflow — classify it in `shared shard-shared` or restructure (via %s)",
						writer.name, oi.key, closures[i].name, wAcc.firstWrite.path))
				break
			}
		}
	}
	return nil
}
