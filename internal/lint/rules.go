package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Rule names, as spelled in -rules, lint.policy and ignore directives.
const (
	// RuleMapRange flags `for ... := range m` over a map in a
	// simulation-core package: Go randomizes map iteration order, so any
	// order-dependent use breaks run-to-run reproducibility. The
	// collect-keys-then-sort idiom (the loop only appends keys to a
	// slice that the same block later sorts) is recognized as clean.
	RuleMapRange = "nondet-map-range"
	// RuleWallclock flags time.Now/time.Since/time.Until calls and
	// math/rand imports in simulation-core packages. Simulated time is
	// sim.Cycle and randomness is the seeded xorshift in internal/sim;
	// wall-clock reads belong to the engine's progress/ETA layer, which
	// the policy allowlists.
	RuleWallclock = "no-wallclock"
	// RuleLayering flags module-internal imports not permitted by the
	// package DAG declared in lint.policy.
	RuleLayering = "import-layering"
	// RuleCtx flags context.Background()/context.TODO() calls inside
	// functions that already receive a context.Context: resetting the
	// chain detaches callees from cancellation below RunContext.
	RuleCtx = "ctx-propagation"
	// RuleGoroutine flags go statements inside cycle-level model
	// packages; concurrency belongs to the experiment engine.
	RuleGoroutine = "goroutine-in-core"
	// RuleConfigLive flags exported parameter-struct fields that no
	// simulator package ever reads (module-wide, over the use graph):
	// a paper knob plumbed into internal/config but never wired into
	// the model is a silent modeling-fidelity bug. See liveness.go.
	RuleConfigLive = "config-liveness"
	// RuleMetricsLive flags counter fields that are never written from
	// a simulator package (dead) or written but never read from the
	// reporting path (unreported). See liveness.go.
	RuleMetricsLive = "metrics-liveness"
	// RuleUnits flags mixed-unit arithmetic between expressions whose
	// units are known from //nubaunit: annotations. See units.go.
	RuleUnits = "unit-consistency"
	// RuleDeprecatedAPI flags calls to deprecated functions of the module
	// root package (those whose doc comment carries a "Deprecated:"
	// paragraph). The policy scopes it to cmd/*: the CLIs must use the
	// unified nuba.Run surface, while tests keep the compatibility
	// wrappers exercised.
	RuleDeprecatedAPI = "deprecated-api"
	// RuleHintPurity flags side effects (field or package-variable
	// writes, channel operations, goroutine starts) and unanalyzable
	// external calls in the wake-hint methods listed in
	// `funcs hint-purity` or anything they transitively call. The
	// hybrid engine's idle-skip is only cycle-exact if hints are pure
	// observations. See purity.go.
	RuleHintPurity = "hint-purity"
	// RuleEngineContract flags types the engine ticks that are missing
	// from `structs engine-contract` or missing a wake hint method, and
	// stale policy entries the engine no longer ticks. See ownership.go.
	RuleEngineContract = "engine-contract"
	// RulePartitionIsolation flags writes to partition-owned component
	// state (`structs partition-isolation`) from outside the owning
	// package, unless the writing function is a declared seam
	// (`writers partition-isolation`). See ownership.go.
	RulePartitionIsolation = "partition-isolation"
	// RuleFaultContainment flags module-internal imports of the
	// fault-injection harness (`writers fault-containment`) from packages
	// outside the sanctioned importer set (`readers fault-containment`).
	// The harness is test infrastructure: only the experiment pool — and
	// _test.go files, which the linter never loads — may reach it, so
	// injection hooks cannot leak into production simulation paths.
	RuleFaultContainment = "fault-containment"
	// RuleShardFootprint flags a partition component tick (the Tick and
	// wake-hint methods of `structs shard-footprint` types, plus
	// everything they transitively call) that reaches another partition
	// component's state, or dispatches through a func-typed port of its
	// own component that is not declared in `seams shard-footprint`.
	// Declared seams stop the traversal: they are where the future
	// partition-parallel engine will exchange work at barriers. See
	// shardsafety.go.
	RuleShardFootprint = "shard-footprint"
	// RuleShardShared flags shared mutable state reachable from a
	// partition tick that carries no classification in
	// `shared shard-shared`, classified state touched in ways its class
	// forbids (a barrier-exchange or unsafe object read or written
	// mid-tick, a commutative counter written non-accumulatively), and
	// stale classifications matching nothing the analysis can see. See
	// shardsafety.go.
	RuleShardShared = "shard-shared"
	// RuleTickPhaseOrder audits the engine's per-cycle phase sequence
	// (`funcs tick-phase-order`: the driver followed by its phase
	// methods in declared order): the driver must call the phases in
	// that order, every Tick the driver calls must be declared, stale
	// declared phases are findings, and unclassified shared state
	// written by a later phase and read by an earlier one — a backward
	// cross-phase dataflow that a partition barrier would reorder — is
	// flagged. See shardsafety.go.
	RuleTickPhaseOrder = "tick-phase-order"
	// RuleDirective reports malformed //nubalint:ignore comments and
	// nubaunit annotations. It is always on: a directive that silently
	// fails to parse would hide real findings.
	RuleDirective = "directive"
)

// AllRules lists the selectable rules in documentation order.
func AllRules() []string {
	return []string{
		RuleMapRange, RuleWallclock, RuleLayering, RuleCtx, RuleGoroutine,
		RuleConfigLive, RuleMetricsLive, RuleUnits, RuleDeprecatedAPI,
		RuleHintPurity, RuleEngineContract, RulePartitionIsolation,
		RuleFaultContainment, RuleShardFootprint, RuleShardShared,
		RuleTickPhaseOrder,
	}
}

// Severity levels carried on diagnostics (the -json "severity" field).
// Every rule currently gates CI, so every finding is an error; the
// mapping exists so tooling has a stable field to key on.
const SeverityError = "error"

// severityOf returns the severity for a rule's findings.
func severityOf(rule string) string {
	return SeverityError
}

// knownRule reports whether name is a selectable rule.
func knownRule(name string) bool {
	for _, r := range AllRules() {
		if r == name {
			return true
		}
	}
	return false
}

// ruleFuncs maps each per-package rule to its checker. The module-wide
// rules (config-liveness, metrics-liveness) live in progRuleFuncs and
// unit-consistency is dispatched separately because it needs the
// module-wide annotation table (see Run).
var ruleFuncs = map[string]func(*pkgCtx){
	RuleMapRange:         checkMapRange,
	RuleWallclock:        checkWallclock,
	RuleLayering:         checkLayering,
	RuleCtx:              checkCtx,
	RuleGoroutine:        checkGoroutine,
	RuleDeprecatedAPI:    checkDeprecatedAPI,
	RuleFaultContainment: checkFaultContainment,
}

// progRuleFuncs maps each module-wide rule to its checker; these run
// once over the whole program, after the per-package rules.
var progRuleFuncs = map[string]func(*progCtx) error{
	RuleConfigLive:         checkConfigLiveness,
	RuleMetricsLive:        checkMetricsLiveness,
	RuleHintPurity:         checkHintPurity,
	RuleEngineContract:     checkEngineContract,
	RulePartitionIsolation: checkPartitionIsolation,
	RuleShardFootprint:     checkShardFootprint,
	RuleShardShared:        checkShardShared,
	RuleTickPhaseOrder:     checkTickPhaseOrder,
}

// emitFunc reports a diagnostic at a token position, applying
// directive suppression (bound in Run).
type emitFunc func(pos token.Pos, rule, msg string)

// pkgCtx bundles what every per-package rule needs for one package.
type pkgCtx struct {
	prog    *Program
	pol     *Policy
	pkg     *Package
	emitPos emitFunc
	// deprecated is the module-wide deprecated root-API set, computed
	// once in Run and shared by every package's deprecated-api check.
	deprecated map[string]bool
}

// --- nondet-map-range ------------------------------------------------

func checkMapRange(c *pkgCtx) {
	if !c.pol.InScope(RuleMapRange, c.pkg.RelName()) {
		return
	}
	for _, f := range c.pkg.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := c.pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isSortedKeyCollection(c.pkg.Info, rs, parents) {
				return true
			}
			c.emitPos(rs.For, RuleMapRange,
				"range over map has nondeterministic iteration order; iterate sorted keys or add //nubalint:ignore with a reason")
			return true
		})
	}
}

// buildParents records each node's parent, so a statement can find its
// enclosing block.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isSortedKeyCollection recognizes the one sanctioned map-range shape:
// the loop body only appends the key to a slice, and a later statement
// of the same enclosing block sorts that slice (sort.Strings, sort.Ints,
// sort.Float64s, sort.Slice, sort.SliceStable, slices.Sort, or
// slices.SortFunc). Deleting the sort call makes the range a finding
// again, so the idiom cannot silently rot.
func isSortedKeyCollection(info *types.Info, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || objOf(info, arg0) == nil || objOf(info, arg0) != objOf(info, dst) {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	if arg1, ok := call.Args[1].(*ast.Ident); !ok || objOf(info, arg1) == nil || objOf(info, arg1) != objOf(info, key) {
		return false
	}

	block, ok := parents[rs].(*ast.BlockStmt)
	if !ok {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rs) {
			after = true
			continue
		}
		if after && sortsSlice(info, stmt, objOf(info, dst)) {
			return true
		}
	}
	return false
}

// sortsSlice reports whether stmt is a sort/slices call whose first
// argument is the variable obj.
func sortsSlice(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	expr, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	pkg, name := pkgFuncCall(info, call)
	switch pkg {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable":
		default:
			return false
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
		default:
			return false
		}
	default:
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && obj != nil && objOf(info, arg) == obj
}

// objOf resolves an identifier to its object, whether it is a use or a
// definition site.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgFuncCall returns (package import path's base spelling, function
// name) for calls of the form pkg.Func(...), resolving pkg through the
// type info so shadowed identifiers do not fool it. It returns "" for
// anything else.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// --- no-wallclock ----------------------------------------------------

func checkWallclock(c *pkgCtx) {
	if !c.pol.InScope(RuleWallclock, c.pkg.RelName()) {
		return
	}
	for _, f := range c.pkg.Files {
		relFile := c.prog.RelFile(f.Pos())
		if c.pol.Allowed(RuleWallclock, relFile, c.pkg.RelName()) {
			continue
		}
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				c.emitPos(imp.Pos(), RuleWallclock,
					"simulation-core package imports "+strings.Trim(imp.Path.Value, `"`)+"; use the seeded internal/sim RNG")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFuncCall(c.pkg.Info, call)
			if pkg != "time" {
				return true
			}
			switch name {
			case "Now", "Since", "Until":
				c.emitPos(call.Pos(), RuleWallclock,
					fmt.Sprintf("time.%s in simulation-core package; wall-clock reads belong to the allowlisted progress layer", name))
			}
			return true
		})
	}
}

// --- import-layering -------------------------------------------------

func checkLayering(c *pkgCtx) {
	if !c.pol.InScope(RuleLayering, c.pkg.RelName()) {
		return
	}
	allowed, declared := c.pol.LayerFor(c.pkg.RelName())
	for _, f := range c.pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			rel, internal := internalRel(c.prog.Mod, path)
			if !internal {
				continue
			}
			switch {
			case !declared:
				c.emitPos(imp.Pos(), RuleLayering,
					fmt.Sprintf("package %s has no layer entry in lint.policy but imports %s", c.pkg.RelName(), rel))
			case !allowed[rel]:
				c.emitPos(imp.Pos(), RuleLayering,
					fmt.Sprintf("package %s may not import %s (allowed: %s)", c.pkg.RelName(), rel, allowedList(allowed)))
			}
		}
	}
}

// internalRel maps an import path to its policy spelling ("." for the
// module root) when it is module-internal.
func internalRel(mod Module, path string) (string, bool) {
	if path == mod.Path {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, mod.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

// allowedList renders an allowed-import set for a diagnostic.
func allowedList(allowed map[string]bool) string {
	if len(allowed) == 0 {
		return "none"
	}
	list := make([]string, 0, len(allowed))
	for k := range allowed {
		list = append(list, k)
	}
	sort.Strings(list)
	return strings.Join(list, " ")
}

// --- fault-containment -----------------------------------------------

// checkFaultContainment flags imports of the protected fault-injection
// packages (`writers fault-containment`) from packages outside the
// sanctioned importer set (`readers fault-containment`). The protected
// packages may import each other. _test.go files are exempt by
// construction: the loader never parses them (see goSources), so tests
// anywhere in the module can arm faults freely.
func checkFaultContainment(c *pkgCtx) {
	if !c.pol.InScope(RuleFaultContainment, c.pkg.RelName()) {
		return
	}
	protected := c.pol.Writers(RuleFaultContainment)
	if len(protected) == 0 {
		return
	}
	sanctioned := c.pol.Readers(RuleFaultContainment)
	rel := c.pkg.RelName()
	if matchAnyPkg(protected, rel) || matchAnyPkg(sanctioned, rel) {
		return
	}
	for _, f := range c.pkg.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			impRel, internal := internalRel(c.prog.Mod, p)
			if !internal || !matchAnyPkg(protected, impRel) {
				continue
			}
			c.emitPos(imp.Pos(), RuleFaultContainment,
				fmt.Sprintf("package %s imports fault-injection harness %s; only %s and _test.go files may (readers fault-containment in lint.policy)",
					rel, impRel, strings.Join(sanctioned, " ")))
		}
	}
}

// matchAnyPkg reports whether any policy pattern matches relName.
func matchAnyPkg(patterns []string, relName string) bool {
	for _, pat := range patterns {
		if matchPkg(pat, relName) {
			return true
		}
	}
	return false
}

// --- ctx-propagation -------------------------------------------------

func checkCtx(c *pkgCtx) {
	if !c.pol.InScope(RuleCtx, c.pkg.RelName()) {
		return
	}
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil || !hasCtxParam(c.pkg.Info.Defs[fn.Name]) {
					return true
				}
				body = fn.Body
			case *ast.FuncLit:
				if !hasCtxParamType(c.pkg.Info.TypeOf(fn)) {
					return true
				}
				body = fn.Body
			default:
				return true
			}
			scanCtxBody(c, body)
			return true
		})
	}
}

// scanCtxBody flags context.Background/TODO calls inside the body of a
// ctx-receiving function. Nested function literals that receive their
// own context are skipped — they are scanned on their own when the
// inspection reaches them.
func scanCtxBody(c *pkgCtx, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && hasCtxParamType(c.pkg.Info.TypeOf(lit)) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := pkgFuncCall(c.pkg.Info, call)
		if pkg == "context" && (name == "Background" || name == "TODO") {
			c.emitPos(call.Pos(), RuleCtx,
				fmt.Sprintf("function receives a context.Context but calls context.%s(); propagate the caller's ctx", name))
		}
		return true
	})
}

// hasCtxParam reports whether obj is a function whose signature has a
// context.Context parameter.
func hasCtxParam(obj types.Object) bool {
	if obj == nil {
		return false
	}
	return hasCtxParamType(obj.Type())
}

func hasCtxParamType(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// --- deprecated-api --------------------------------------------------

// deprecatedRootFuncs collects the exported functions of the module's
// root package whose doc comment contains a "Deprecated:" paragraph (the
// godoc convention). The root package must be among the loaded targets;
// when it is not (a narrowed lint invocation), the set is empty and the
// rule finds nothing.
func deprecatedRootFuncs(prog *Program) map[string]bool {
	out := make(map[string]bool)
	for _, pkg := range prog.Pkgs {
		if pkg.RelName() != "." {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || fn.Doc == nil || !fn.Name.IsExported() {
					continue
				}
				if strings.Contains(fn.Doc.Text(), "Deprecated:") {
					out[fn.Name.Name] = true
				}
			}
		}
	}
	return out
}

// checkDeprecatedAPI flags calls from in-scope packages to deprecated
// root-package entry points. Resolution goes through the type info, so a
// local identifier shadowing the package name does not fool it, and only
// the module's own API counts.
func checkDeprecatedAPI(c *pkgCtx) {
	if !c.pol.InScope(RuleDeprecatedAPI, c.pkg.RelName()) {
		return
	}
	deprecated := c.deprecated
	if len(deprecated) == 0 {
		return
	}
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFuncCall(c.pkg.Info, call)
			if pkg == c.prog.Mod.Path && deprecated[name] {
				base := path.Base(pkg)
				c.emitPos(call.Pos(), RuleDeprecatedAPI,
					fmt.Sprintf("call to deprecated %s.%s; use the unified entry point %s.Run (with Run options)", base, name, base))
			}
			return true
		})
	}
}

// --- goroutine-in-core -----------------------------------------------

func checkGoroutine(c *pkgCtx) {
	if !c.pol.InScope(RuleGoroutine, c.pkg.RelName()) {
		return
	}
	for _, f := range c.pkg.Files {
		// Per-file exemptions (`allow goroutine-in-core = <file>`) carve
		// out the partition-parallel engine's worker pool, the one
		// sanctioned concurrency seam inside the cycle-level model.
		if c.pol.Allowed(RuleGoroutine, c.prog.RelFile(f.Pos()), c.pkg.RelName()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				c.emitPos(g.Go, RuleGoroutine,
					"go statement in cycle-level model package; concurrency belongs to the experiment engine")
			}
			return true
		})
	}
}
