package lint

import (
	"os"
	"strings"
	"testing"
)

// TestRegenGolden rewrites testdata/golden.txt from the analyzer's
// current fixture output. It is skipped unless REGEN is set:
//
//	REGEN=1 go test ./internal/lint -run TestRegenGolden
//
// Inspect the diff before committing — the golden file is the contract
// for every rule's exact diagnostic text.
func TestRegenGolden(t *testing.T) {
	if os.Getenv("REGEN") == "" {
		t.Skip("set REGEN=1 to rewrite testdata/golden.txt")
	}
	prog, pol := loadFixture(t)
	diags, err := Run(prog, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	if err := os.WriteFile("testdata/golden.txt", []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}
