package lint

import (
	"strings"
	"testing"
)

// These tests lock the use graph's indirect call edges on the fixture's
// dispatch package (DESIGN.md §7): interface calls recorded as abstract
// callees and over-approximated to every same-name declared method,
// method values, deferred and go calls, and generic instantiations
// normalized to their declared origin. The purity analysis walks these
// edges, so a dropped edge is a silently unsound hint-purity rule.

// dispatchGraph builds the fixture use graph and returns a lookup by
// node spec ("pkg.Func" / "pkg.Type.Method").
func dispatchGraph(t *testing.T) (*useGraph, func(spec string) *funcNode) {
	t.Helper()
	prog, _ := loadFixture(t)
	g := buildUseGraph(prog)
	return g, func(spec string) *funcNode {
		t.Helper()
		for _, n := range g.nodes {
			if n.fn != nil && n.spec() == spec {
				return n
			}
		}
		t.Fatalf("use graph has no node %s", spec)
		return nil
	}
}

// calleeSpecs renders a node's callees (through the dispatch
// over-approximation) as sorted-free, source-ordered display strings.
func calleeSpecs(g *useGraph, n *funcNode) []string {
	var out []string
	for _, callee := range n.calleeList {
		for _, target := range g.calleeNodes(callee) {
			out = append(out, target.spec())
		}
	}
	return out
}

func TestUseGraphInterfaceDispatch(t *testing.T) {
	g, find := dispatchGraph(t)
	n := find("dispatch.CallIface")

	var abstract bool
	for _, callee := range n.calleeList {
		if isAbstract(callee) && callee.Name() == "Do" {
			abstract = true
		}
	}
	if !abstract {
		t.Fatal("CallIface records no abstract Doer.Do callee")
	}
	// The over-approximation must expand the abstract method to every
	// declared method of the same name, module-wide.
	targets := strings.Join(calleeSpecs(g, n), " ")
	for _, want := range []string{"dispatch.A.Do", "dispatch.B.Do"} {
		if !strings.Contains(targets, want) {
			t.Errorf("interface dispatch misses %s (got: %s)", want, targets)
		}
	}
}

func TestUseGraphMethodValueEdge(t *testing.T) {
	g, find := dispatchGraph(t)
	// a.Do as a method value is a reference, not a call — the graph
	// must record the edge anyway: the value can be invoked later.
	targets := strings.Join(calleeSpecs(g, find("dispatch.MethodValue")), " ")
	if !strings.Contains(targets, "dispatch.A.Do") {
		t.Errorf("method value edge to A.Do missing (got: %s)", targets)
	}
}

func TestUseGraphDeferAndGoEdges(t *testing.T) {
	g, find := dispatchGraph(t)
	n := find("dispatch.DeferredAndGo")
	targets := strings.Join(calleeSpecs(g, n), " ")
	for _, want := range []string{"dispatch.A.Do", "dispatch.B.Do"} {
		if !strings.Contains(targets, want) {
			t.Errorf("defer/go edge to %s missing (got: %s)", want, targets)
		}
	}
	// The go statement itself is a side effect the purity analysis
	// must see.
	var goEffect bool
	for _, e := range n.effects {
		if strings.Contains(e.desc, "goroutine") {
			goEffect = true
		}
	}
	if !goEffect {
		t.Error("go statement recorded no effect")
	}
}

func TestUseGraphGenericOriginNormalized(t *testing.T) {
	g, find := dispatchGraph(t)
	// UseBox calls Get on Box[int]; the recorded callee must be the
	// declared origin Box[T].Get — i.e. resolvable to a graph node, not
	// a dangling synthetic instantiation object.
	targets := strings.Join(calleeSpecs(g, find("dispatch.UseBox")), " ")
	if !strings.Contains(targets, "dispatch.Box.Get") {
		t.Errorf("generic call not normalized to declared origin (got: %s)", targets)
	}
}
