package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkNubalint measures a full analyzer pass — all sixteen rules
// over the real module with the real policy — excluding the one-time
// parse/type-check (Load), which is amortized across rules in the CLI
// too. This is the `make lint` inner loop; the module-wide use graph
// and shard analysis are built once per Run and shared by every rule
// that needs them, so the benchmark catches a rule accidentally
// rebuilding either.
func BenchmarkNubalint(b *testing.B) {
	mod, err := FindModule("../..")
	if err != nil {
		b.Fatalf("FindModule: %v", err)
	}
	pol, err := ParsePolicy(filepath.Join(mod.Dir, "lint.policy"))
	if err != nil {
		b.Fatalf("ParsePolicy: %v", err)
	}
	prog, err := Load(mod, []string{"./..."})
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := Run(prog, pol, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo not lint-clean: %d findings", len(diags))
		}
	}
}

// BenchmarkShardMap measures partition-plan emission alone: the shard
// analysis (component closures, classification, phase walk) plus JSON
// encoding, on a pre-loaded module.
func BenchmarkShardMap(b *testing.B) {
	mod, err := FindModule("../..")
	if err != nil {
		b.Fatalf("FindModule: %v", err)
	}
	pol, err := ParsePolicy(filepath.Join(mod.Dir, "lint.policy"))
	if err != nil {
		b.Fatalf("ParsePolicy: %v", err)
	}
	prog, err := Load(mod, []string{"./..."})
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ShardMapJSON(prog, pol); err != nil {
			b.Fatal(err)
		}
	}
}
