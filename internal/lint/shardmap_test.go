package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadRepo loads the real module with the real committed lint.policy —
// the same pair TestRepoLintsClean checks.
func loadRepo(t *testing.T) (*Program, *Policy) {
	t.Helper()
	mod, err := FindModule("../..")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	pol, err := ParsePolicy(filepath.Join(mod.Dir, "lint.policy"))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	prog, err := Load(mod, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return prog, pol
}

// TestShardMapMatchesCommitted locks docs/shardmap.json to the
// analyzer's current output: the committed partition plan must be
// byte-identical to `nubalint -shardmap ./...`. Regenerate with
//
//	REGEN=1 go test ./internal/lint -run TestShardMapMatchesCommitted
//
// and inspect the diff — a footprint object appearing or changing class
// is a semantic change to the partition-parallel plan, not noise.
func TestShardMapMatchesCommitted(t *testing.T) {
	prog, pol := loadRepo(t)
	got, err := ShardMapJSON(prog, pol)
	if err != nil {
		t.Fatalf("ShardMapJSON: %v", err)
	}
	path := filepath.Join("..", "..", "docs", "shardmap.json")
	if os.Getenv("REGEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read committed map: %v (set REGEN=1 to write it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("docs/shardmap.json is stale: the partition plan drifted from the code.\nRegenerate with `make shardmap` (or REGEN=1 go test ./internal/lint -run TestShardMapMatchesCommitted) and review the diff.")
	}
}

// TestParallelGroupingGuard pins the stale-shardmap guard on the real
// repo: the engine's parallelGrouping manifest must be extracted from
// internal/core, and checkParallelGrouping must fail — naming the
// component — in both drift directions (the engine grouping an unproven
// type; a proven component the engine does not group).
func TestParallelGroupingGuard(t *testing.T) {
	prog, pol := loadRepo(t)
	grouping, _, ok := parallelGroupingManifest(prog)
	if !ok {
		t.Fatal("parallelGrouping manifest not found in internal/core")
	}
	comps := pol.Structs(RuleShardFootprint)
	if len(grouping) == 0 || len(grouping) != len(comps) {
		t.Fatalf("manifest %v does not cover the policy's shard components %v", grouping, comps)
	}

	mkAnalysis := func(names ...string) *shardAnalysis {
		a := &shardAnalysis{}
		for _, n := range names {
			a.comps = append(a.comps, newShardClosure(n, "component", nil))
		}
		return a
	}
	// Matching sets: the guard must pass (this is the real repo's state).
	if err := checkParallelGrouping(prog, mkAnalysis(grouping...)); err != nil {
		t.Errorf("guard fails on a matching grouping: %v", err)
	}
	// The engine groups a type the analysis no longer proves.
	missing := grouping[len(grouping)-1]
	err := checkParallelGrouping(prog, mkAnalysis(grouping[:len(grouping)-1]...))
	if err == nil || !strings.Contains(err.Error(), missing) {
		t.Errorf("guard missed an unproven grouped type; want error naming %q, got %v", missing, err)
	}
	// The analysis proves a component the engine does not group.
	extra := "internal/fake.Widget"
	err = checkParallelGrouping(prog, mkAnalysis(append(append([]string{}, grouping...), extra)...))
	if err == nil || !strings.Contains(err.Error(), extra) {
		t.Errorf("guard missed an ungrouped component; want error naming %q, got %v", extra, err)
	}
}

// TestShardMapJSON checks the map's structure on the fixture module:
// every declared component appears with its tick-and-hint roots, the
// footprint carries the policy's classifications (field-level entries
// overriding type-level ones), declared ports list their installed
// targets, and the phases section reproduces the declared order.
func TestShardMapJSON(t *testing.T) {
	prog, pol := loadFixture(t)
	out, err := ShardMapJSON(prog, pol)
	if err != nil {
		t.Fatalf("ShardMapJSON: %v", err)
	}
	var m ShardMap
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if m.Schema != "nuba-shardmap/v1" {
		t.Errorf("schema = %q", m.Schema)
	}
	if len(m.Components) != 2 || m.Components[0].Type != "shardcomp.Core" || m.Components[1].Type != "shardcomp.Bank" {
		t.Fatalf("components = %+v, want Core then Bank in policy order", m.Components)
	}
	core := m.Components[0]
	if len(core.Roots) != 2 || core.Roots[0] != "shardcomp.Core.Tick" || core.Roots[1] != "shardcomp.Core.NextWake" {
		t.Errorf("Core roots = %v", core.Roots)
	}
	classes := make(map[string]string)
	for _, f := range core.Footprint {
		classes[f.Owner+"/"+f.Class] = f.Class
		for _, fl := range f.Fields {
			if fl.Site == "" || fl.Path == "" {
				t.Errorf("footprint field %s.%s has no evidence site/path", f.Owner, fl.Field)
			}
		}
	}
	for _, want := range []string{
		"shardcomp.Core/own",
		"shardstate.Local/partition",
		"shardstate.Tally/commutative",
		"shardstate.Tally/partition", // field-level Note override splits the group
		"shardstate.Mailbox/barrier-exchange",
		"shardstate.Reg/unclassified",
		"shardcomp.Bank/other-partition",
	} {
		if _, ok := classes[want]; !ok {
			t.Errorf("Core footprint missing %s (have %v)", want, classes)
		}
	}
	if len(core.Ports) == 0 || core.Ports[0].Name != "shardcomp.Core.Send" {
		t.Errorf("Core ports = %+v, want declared Send port first", core.Ports)
	}
	var sendTargets []string
	for _, s := range m.Seams {
		if s.Seam == "shardcomp.Core.Send" {
			sendTargets = s.Targets
		}
	}
	if len(sendTargets) != 1 || sendTargets[0] != "sharddrv.Engine.push" {
		t.Errorf("Send targets = %v, want the engine's push method", sendTargets)
	}
	if m.Phases == nil || m.Phases.Driver != "sharddrv.Engine.step" {
		t.Fatalf("phases = %+v", m.Phases)
	}
	wantOrder := []string{"shardcomp.Bank.Tick", "shardcomp.Core.Tick", "sharddrv.Idle.Tick"}
	if len(m.Phases.Order) != len(wantOrder) {
		t.Fatalf("phase order = %v", m.Phases.Order)
	}
	for i, p := range wantOrder {
		if m.Phases.Order[i] != p {
			t.Errorf("phase[%d] = %q, want %q", i, m.Phases.Order[i], p)
		}
	}
	// Registry is written by Core's phase and read by Bank's: it is
	// unclassified, so it must surface in the cross-phase section.
	var crossObjs []string
	for _, c := range m.Phases.CrossPhase {
		crossObjs = append(crossObjs, c.Object)
	}
	if len(crossObjs) != 1 || crossObjs[0] != "shardstate.Reg.Pending" {
		t.Errorf("cross-phase objects = %v, want exactly shardstate.Reg.Pending", crossObjs)
	}
	// Determinism: a second run over a fresh load must be byte-identical.
	prog2, pol2 := loadFixture(t)
	out2, err := ShardMapJSON(prog2, pol2)
	if err != nil {
		t.Fatalf("ShardMapJSON (second run): %v", err)
	}
	if !bytes.Equal(out, out2) {
		t.Error("ShardMapJSON is not deterministic across loads")
	}
}

// TestShardMapRequiresComponents pins the error path: without any
// `structs shard-footprint` entries there is no partition plan to emit.
func TestShardMapRequiresComponents(t *testing.T) {
	prog, _ := loadFixture(t)
	pol, err := ParsePolicyData("layer shardcomp =\n", "test.policy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShardMapJSON(prog, pol); err == nil {
		t.Error("ShardMapJSON succeeded with no declared components")
	}
}
