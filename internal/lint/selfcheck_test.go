package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoLintsClean runs the real analyzer, with the real committed
// lint.policy, over the real module — the same invocation as
// `go run ./cmd/nubalint ./...` — under all sixteen rules. The repo
// must stay finding-free: a new unsorted map range on the report path,
// a stray time.Now in a model package, an import edge outside the DAG,
// a config knob no simulator package reads, a Stats counter nothing
// writes or reports, an expression mixing //nubaunit: dimensions, an
// impure wake hint, a ticked component outside the engine contract, a
// foreign write to partition-owned state, a non-pool import of the
// fault-injection harness, a partition tick escaping its shard
// footprint, unclassified shared state on a tick path or a phase-order
// drift fails this test (and with it `make check` and CI).
func TestRepoLintsClean(t *testing.T) {
	if n := len(AllRules()); n != 16 {
		t.Fatalf("AllRules() has %d rules, want 16; update this test and the docs", n)
	}
	mod, err := FindModule("../..")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	pol, err := ParsePolicy(filepath.Join(mod.Dir, "lint.policy"))
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	prog, err := Load(mod, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing part of the module", len(prog.Pkgs))
	}
	diags, err := Run(prog, pol, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %s", d)
	}
}
