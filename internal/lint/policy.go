package lint

import (
	"fmt"
	"os"
	"path"
	"strings"
)

// Policy is the parsed lint.policy file: the package layering DAG, the
// package scope of each rule, and per-rule allowlists.
//
// The file is line-based; '#' starts a comment. Three directives exist,
// all of the form "<verb> <subject> = <values...>":
//
//	layer <pkg> = <allowed internal imports...>
//	    Declares the module-internal packages <pkg> may import. Packages
//	    are module-relative directories ("internal/core"); "." names the
//	    module root package. <pkg> may use a '*' glob ("cmd/*"). A
//	    package that imports a module-internal package without a
//	    matching layer entry, or one not in its allowed set, is an
//	    import-layering violation.
//
//	scope <rule> = <pkgs...>
//	    Restricts <rule> to the listed packages ('*' = every package).
//	    A rule with no scope line applies everywhere.
//
//	allow <rule> = <files-or-pkgs...>
//	    Exempts whole files (module-relative paths, '*' globs allowed)
//	    or packages from <rule>. This is the coarse escape hatch for
//	    designated layers (e.g. the engine's progress/clock helper for
//	    no-wallclock); single sites use //nubalint:ignore instead.
//
// The module-wide liveness rules add three more directives of the same
// shape (see liveness.go):
//
//	structs <rule> = <pkg.Type...>
//	    Names the parameter/counter structs the rule audits, as
//	    module-relative package dot type ("internal/config.Config").
//
//	readers <rule> = <pkgs-or-files...>
//	writers <rule> = <pkgs-or-files...>
//	    Name the packages (or single files, e.g.
//	    "internal/metrics/chart.go") whose code — including everything
//	    transitively called from it — counts as a legitimate read
//	    (resp. write) of the audited fields. partition-isolation's
//	    writers additionally accept function specs ("pkg.Func" or
//	    "pkg.Type.Method"), naming individual seam functions rather
//	    than whole files.
//
// The wake-hint contract rules (purity.go, ownership.go) add one more:
//
//	funcs <rule> = <pkg.Func-or-pkg.Type.Method...>
//	    Names individual functions or methods, as module-relative
//	    package dot name ("internal/sim.Link.NextReady",
//	    "internal/core.GPU.nextWake"). hint-purity audits these and
//	    everything they transitively call for side effects.
//	    tick-phase-order instead reads a driver spec followed by its
//	    phase methods in declared order ("internal/core.GPU.step
//	    internal/vm.System.Tick ...").
//
// The shard-safety rules (shardsafety.go) add two more:
//
//	seams <rule> = <pkg.Type.Field-or-func-spec...>
//	    Declares the partition seam: func-typed ports
//	    ("internal/smcore.SM.Send") and seam functions
//	    ("internal/core.GPU.drainMigQueue" or "internal/core.moveXbars")
//	    where a partition tick legitimately hands work across the
//	    partition boundary. Component footprint traversal stops at a
//	    declared seam; the crossing is recorded in the shard map.
//
//	shared <rule> = <class>:<spec...>
//	    Classifies shared state for the partition-parallel plan. <class>
//	    is one of partition, commutative, barrier-exchange, message or
//	    unsafe; <spec> is a package ("internal/metrics"), a type
//	    ("internal/sim.Link") or a field ("internal/vm.TLB.entries"),
//	    most specific match winning. shard-shared requires every shared
//	    mutable object reachable from a tick to carry a classification.
type Policy struct {
	layers  map[string][]string // pkg pattern -> allowed internal imports
	scopes  map[string][]string // rule -> pkg patterns
	allows  map[string][]string // rule -> file/pkg patterns
	structs map[string][]string // rule -> pkg.Type specs
	readers map[string][]string // rule -> pkg/file patterns
	writers map[string][]string // rule -> pkg/file patterns
	funcs   map[string][]string // rule -> pkg.Func / pkg.Type.Method specs
	seams   map[string][]string // rule -> seam port/function specs
	shared  map[string][]string // rule -> class:spec classifications
}

// ParsePolicy reads and parses a policy file.
func ParsePolicy(file string) (*Policy, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return ParsePolicyData(string(data), file)
}

// ParsePolicyData parses policy text; name is used in error messages.
func ParsePolicyData(src, name string) (*Policy, error) {
	p := &Policy{
		layers:  make(map[string][]string),
		scopes:  make(map[string][]string),
		allows:  make(map[string][]string),
		structs: make(map[string][]string),
		readers: make(map[string][]string),
		writers: make(map[string][]string),
		funcs:   make(map[string][]string),
		seams:   make(map[string][]string),
		shared:  make(map[string][]string),
	}
	for i, line := range strings.Split(src, "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		subject, values, ok := strings.Cut(rest, "=")
		if !ok {
			return nil, fmt.Errorf("%s:%d: missing '=' in %q", name, i+1, line)
		}
		subject = strings.TrimSpace(subject)
		if subject == "" {
			return nil, fmt.Errorf("%s:%d: missing subject in %q", name, i+1, line)
		}
		vals := strings.Fields(values)
		switch verb {
		case "layer":
			if _, dup := p.layers[subject]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate layer entry for %q", name, i+1, subject)
			}
			p.layers[subject] = vals
		case "scope":
			if !knownRule(subject) {
				return nil, fmt.Errorf("%s:%d: scope for unknown rule %q", name, i+1, subject)
			}
			p.scopes[subject] = append(p.scopes[subject], vals...)
		case "allow":
			if !knownRule(subject) {
				return nil, fmt.Errorf("%s:%d: allow for unknown rule %q", name, i+1, subject)
			}
			p.allows[subject] = append(p.allows[subject], vals...)
		case "structs", "readers", "writers", "funcs", "seams", "shared":
			if !knownRule(subject) {
				return nil, fmt.Errorf("%s:%d: %s for unknown rule %q", name, i+1, verb, subject)
			}
			if verb == "shared" {
				for _, v := range vals {
					class, spec, ok := strings.Cut(v, ":")
					if !ok || spec == "" {
						return nil, fmt.Errorf("%s:%d: shared entry %q is not class:spec", name, i+1, v)
					}
					if !knownSharedClass(class) {
						return nil, fmt.Errorf("%s:%d: unknown shared class %q in %q (want partition/commutative/barrier-exchange/message/unsafe)", name, i+1, class, v)
					}
				}
			}
			m := map[string]map[string][]string{
				"structs": p.structs, "readers": p.readers, "writers": p.writers,
				"funcs": p.funcs, "seams": p.seams, "shared": p.shared,
			}[verb]
			m[subject] = append(m[subject], vals...)
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q (want layer/scope/allow/structs/readers/writers/funcs/seams/shared)", name, i+1, verb)
		}
	}
	return p, nil
}

// matchPkg reports whether the policy pattern matches the package
// spelled relName ("." for the module root).
func matchPkg(pattern, relName string) bool {
	if pattern == "*" {
		return true
	}
	if strings.ContainsAny(pattern, "*?[") {
		ok, err := path.Match(pattern, relName)
		return err == nil && ok
	}
	return pattern == relName
}

// InScope reports whether rule applies to the package relName.
func (p *Policy) InScope(rule, relName string) bool {
	pats, ok := p.scopes[rule]
	if !ok {
		return true // no scope line: the rule applies everywhere
	}
	for _, pat := range pats {
		if matchPkg(pat, relName) {
			return true
		}
	}
	return false
}

// LayerFor returns the set of module-relative import targets ("." for
// the root package) that relName may import, and whether any layer
// entry matched at all. When several entries match (an exact entry plus
// a glob, say), their allowed sets union.
func (p *Policy) LayerFor(relName string) (allowed map[string]bool, declared bool) {
	allowed = make(map[string]bool)
	for pat, vals := range p.layers {
		if !matchPkg(pat, relName) {
			continue
		}
		declared = true
		for _, v := range vals {
			allowed[v] = true
		}
	}
	return allowed, declared
}

// Structs returns the pkg.Type specs audited by a liveness rule.
func (p *Policy) Structs(rule string) []string { return p.structs[rule] }

// Readers returns the package/file patterns whose code (and its
// transitive callees) counts as reading the rule's audited fields.
func (p *Policy) Readers(rule string) []string { return p.readers[rule] }

// Writers returns the package/file patterns whose code (and its
// transitive callees) counts as writing the rule's audited fields.
func (p *Policy) Writers(rule string) []string { return p.writers[rule] }

// Funcs returns the function specs ("pkg.Func" or "pkg.Type.Method")
// a rule audits.
func (p *Policy) Funcs(rule string) []string { return p.funcs[rule] }

// Seams returns the declared seam specs (func-typed ports as
// "pkg.Type.Field", seam functions as "pkg.Func"/"pkg.Type.Method")
// for a shard-safety rule.
func (p *Policy) Seams(rule string) []string { return p.seams[rule] }

// Shared returns the class:spec shared-state classifications for a
// shard-safety rule. Each entry's class is already validated by the
// parser.
func (p *Policy) Shared(rule string) []string { return p.shared[rule] }

// knownSharedClass reports whether class is a valid shared-state
// classification (see shardsafety.go for semantics).
func knownSharedClass(class string) bool {
	switch class {
	case "partition", "commutative", "barrier-exchange", "message", "unsafe":
		return true
	}
	return false
}

// Allowed reports whether rule exempts the given module-relative file
// (or its package relName) via an allow entry.
func (p *Policy) Allowed(rule, relFile, relName string) bool {
	for _, pat := range p.allows[rule] {
		if matchPkg(pat, relFile) || matchPkg(pat, relName) {
			return true
		}
	}
	return false
}
