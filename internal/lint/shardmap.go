package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// The shard map: `nubalint -shardmap` renders the shard-safety
// analysis (shardsafety.go) as deterministic JSON, committed under
// docs/ so CI can fail on drift. The map is the design artifact the
// partition-parallel engine will be built against: per component, what
// its tick closure touches and through which seams work leaves; per
// seam, what the barrier-side code touches; per engine phase, the
// declared order and any cross-phase traffic on attention-worthy
// state.

// ShardMap is the JSON document (schema nuba-shardmap/v1).
type ShardMap struct {
	Schema     string           `json:"schema"`
	Components []ShardComponent `json:"components"`
	Seams      []ShardSeam      `json:"seams"`
	Phases     *ShardPhases     `json:"phases,omitempty"`
}

// ShardComponent is one partition component's tick-closure footprint.
type ShardComponent struct {
	Type  string   `json:"type"`
	Roots []string `json:"roots"`
	// Footprint groups the touched objects by owner, in first-touch
	// order.
	Footprint []ShardFoot `json:"footprint"`
	// Ports are the declared seam ports the closure dispatches through.
	Ports []ShardCrossing `json:"ports,omitempty"`
	// Seams are the declared seam functions the closure calls into.
	Seams []ShardCrossing `json:"seams,omitempty"`
	// Hooks are dispatches through func fields outside the partition
	// components (fault injection, walk callbacks): not traversed, but
	// listed so the coverage hole is visible.
	Hooks []ShardCrossing `json:"hooks,omitempty"`
}

// ShardFoot is one owner group of a closure footprint.
type ShardFoot struct {
	// Owner is "pkg.Type" for fields, "pkg.<var>" for package
	// variables, "pkg.(anon)" for fields of unnamed structs.
	Owner string `json:"owner"`
	// Class is the effective classification: "own" (the component's own
	// state), "other-partition" (a finding), a declared class, derived
	// "read-only", or "unclassified" (a finding when mutable).
	Class  string `json:"class"`
	Reads  int    `json:"reads"`
	Writes int    `json:"writes"`
	// Fields details the individual objects for the classes that carry
	// proof obligations (other-partition, commutative, barrier-exchange,
	// unsafe, unclassified); bulk-safe classes stay aggregated.
	Fields []ShardField `json:"fields,omitempty"`
}

// ShardField is one object's evidence inside a detailed owner group.
type ShardField struct {
	Field  string `json:"field"`
	Reads  int    `json:"reads"`
	Writes int    `json:"writes"`
	Site   string `json:"site"`
	Path   string `json:"path"`
}

// ShardCrossing is one seam/port/hook crossing with evidence.
type ShardCrossing struct {
	Name string `json:"name"`
	Site string `json:"site"`
	Path string `json:"path"`
}

// ShardSeam is one declared seam: a port with the functions installed
// into it, or a seam function with its own barrier-side footprint.
type ShardSeam struct {
	Seam      string      `json:"seam"`
	Kind      string      `json:"kind"` // "port" or "func"
	Targets   []string    `json:"targets,omitempty"`
	Footprint []ShardFoot `json:"footprint,omitempty"`
}

// ShardPhases is the engine's declared per-cycle phase order plus the
// cross-phase traffic worth a human look: unsafe, barrier-exchange or
// unclassified objects touched by two or more phases with at least one
// write.
type ShardPhases struct {
	Driver     string       `json:"driver"`
	Order      []string     `json:"order"`
	CrossPhase []CrossPhase `json:"crossPhase,omitempty"`
}

// CrossPhase is one multi-phase object.
type CrossPhase struct {
	Object  string   `json:"object"`
	Class   string   `json:"class"`
	Readers []string `json:"readers,omitempty"`
	Writers []string `json:"writers"`
	Site    string   `json:"site"`
}

// ShardMapJSON builds the shard map for the loaded program under the
// policy and renders it as indented JSON (with a trailing newline, the
// committed-file convention).
func ShardMapJSON(prog *Program, pol *Policy) ([]byte, error) {
	c := &progCtx{prog: prog, pol: pol}
	a, err := c.shardAnalysis()
	if err != nil {
		return nil, fmt.Errorf("shardmap: %w", err)
	}
	if !a.enabled {
		return nil, fmt.Errorf("shardmap: no `structs shard-footprint` entries in the policy")
	}
	if err := checkParallelGrouping(prog, a); err != nil {
		return nil, fmt.Errorf("shardmap: %w", err)
	}
	m := &ShardMap{Schema: "nuba-shardmap/v1", Components: []ShardComponent{}, Seams: []ShardSeam{}}
	for _, cl := range a.comps {
		m.Components = append(m.Components, ShardComponent{
			Type:      cl.name,
			Roots:     cl.roots,
			Footprint: a.footprint(prog, cl),
			Ports:     crossingsOf(prog, cl.ports),
			Seams:     seamCrossingsOf(prog, cl.seamCalls),
			Hooks:     crossingsOf(prog, cl.hooks),
		})
	}
	for _, spec := range a.portOrder {
		var port *types.Var
		for f, s := range a.seamPorts {
			if s == spec {
				port = f
			}
		}
		var targets []string
		for _, n := range a.graph.fieldTargets[port] {
			targets = append(targets, n.spec())
		}
		m.Seams = append(m.Seams, ShardSeam{Seam: spec, Kind: "port", Targets: targets})
	}
	for _, cl := range a.seams {
		m.Seams = append(m.Seams, ShardSeam{Seam: cl.name, Kind: "func", Footprint: a.footprint(prog, cl)})
	}
	if phases, err := a.phasesSection(c); err != nil {
		return nil, fmt.Errorf("shardmap: %w", err)
	} else {
		m.Phases = phases
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// checkParallelGrouping is the stale-shardmap guard for the runtime:
// the partition-parallel engine declares the component types it groups
// onto workers in a `parallelGrouping` manifest (internal/core), and
// that declaration must match the analyzed shard components exactly —
// in both directions. An engine grouping a type the analysis has not
// proven partition-safe, or a proven component the engine does not
// group, fails map generation (and therefore `make shardmap` and the
// committed-map drift test) naming the component, before the stale
// JSON can be committed. No manifest (the engine deleted) disables the
// check; the footprint analysis itself still governs.
func checkParallelGrouping(prog *Program, a *shardAnalysis) error {
	grouping, pos, ok := parallelGroupingManifest(prog)
	if !ok {
		return nil
	}
	analyzed := make(map[string]bool, len(a.comps))
	for _, cl := range a.comps {
		analyzed[cl.name] = true
	}
	declared := make(map[string]bool, len(grouping))
	for _, name := range grouping {
		declared[name] = true
		if !analyzed[name] {
			return fmt.Errorf("%s: parallel engine groups %q, which is not a proven shard component (structs shard-footprint in lint.policy)",
				siteString(prog, pos), name)
		}
	}
	for _, cl := range a.comps {
		if !declared[cl.name] {
			return fmt.Errorf("%s: shard component %q is missing from the parallel engine's partition grouping (parallelGrouping in internal/core)",
				siteString(prog, pos), cl.name)
		}
	}
	return nil
}

// parallelGroupingManifest extracts the engine's declared grouping: the
// string elements of `var parallelGrouping = []string{...}` in
// internal/core. Reported ok only when the declaration exists with a
// literal initializer.
func parallelGroupingManifest(prog *Program) ([]string, token.Pos, bool) {
	pkg := prog.pkgByRel("internal/core")
	if pkg == nil {
		return nil, token.NoPos, false
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "parallelGrouping" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						return nil, name.Pos(), false
					}
					var out []string
					for _, elt := range lit.Elts {
						if bl, ok := elt.(*ast.BasicLit); ok && bl.Kind == token.STRING {
							if s, err := strconv.Unquote(bl.Value); err == nil {
								out = append(out, s)
							}
						}
					}
					return out, name.Pos(), true
				}
			}
		}
	}
	return nil, token.NoPos, false
}

// effectiveClass names the class the checks actually applied to acc
// inside cl.
func (a *shardAnalysis) effectiveClass(cl *shardClosure, acc *objAccess) string {
	oi := acc.info
	if oi.owner != nil {
		if _, isComp := a.compTypes[oi.owner]; isComp {
			if oi.owner == cl.ownType {
				return "own"
			}
			if cl.kind == "component" {
				return "other-partition"
			}
			return "component"
		}
	}
	if acc.class != nil {
		return acc.class.class
	}
	if !a.written[acc.info.obj] {
		return "read-only"
	}
	return "unclassified"
}

// detailedClass reports whether a class carries per-field evidence in
// the map.
func detailedClass(class string) bool {
	switch class {
	case "other-partition", "commutative", "barrier-exchange", "unsafe", "unclassified":
		return true
	}
	return false
}

// footprint renders cl's object accesses grouped by (owner, class) in
// first-touch order.
func (a *shardAnalysis) footprint(prog *Program, cl *shardClosure) []ShardFoot {
	var out []ShardFoot
	index := make(map[string]int)
	for _, obj := range cl.order {
		acc := cl.objs[obj]
		oi := acc.info
		owner := oi.key // package variables group under their own key
		field := oi.obj.Name()
		if oi.owner != nil {
			owner = oi.ownerSpec
		} else if oi.obj.(*types.Var).IsField() {
			owner = oi.pkgRel + ".(anon)"
		}
		class := a.effectiveClass(cl, acc)
		gk := owner + "\x00" + class
		i, ok := index[gk]
		if !ok {
			i = len(out)
			index[gk] = i
			out = append(out, ShardFoot{Owner: owner, Class: class})
		}
		out[i].Reads += acc.reads
		out[i].Writes += acc.writes
		if detailedClass(class) {
			s := acc.first()
			out[i].Fields = append(out[i].Fields, ShardField{
				Field: field, Reads: acc.reads, Writes: acc.writes,
				Site: siteString(prog, s.pos), Path: s.path,
			})
		}
	}
	return out
}

// siteString renders a position as the map's "file:line" evidence.
func siteString(prog *Program, pos token.Pos) string {
	posn := prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", prog.RelFile(pos), posn.Line)
}

func crossingsOf(prog *Program, uses []portUse) []ShardCrossing {
	var out []ShardCrossing
	for _, u := range uses {
		out = append(out, ShardCrossing{Name: u.key, Site: siteString(prog, u.pos), Path: u.path})
	}
	return out
}

func seamCrossingsOf(prog *Program, uses []seamUse) []ShardCrossing {
	var out []ShardCrossing
	for _, u := range uses {
		out = append(out, ShardCrossing{Name: u.spec, Site: siteString(prog, u.pos), Path: u.path})
	}
	return out
}

// phasesSection walks the declared engine phases and reports the
// cross-phase traffic on unsafe, barrier-exchange and unclassified
// objects. Returns nil (no section) when the policy declares no phase
// order.
func (a *shardAnalysis) phasesSection(c *progCtx) (*ShardPhases, error) {
	specs := c.pol.Funcs(RuleTickPhaseOrder)
	if len(specs) < 2 {
		return nil, nil
	}
	driverSpec, phaseSpecs := specs[0], specs[1:]
	out := &ShardPhases{Driver: driverSpec, Order: phaseSpecs}
	var closures []*shardClosure
	for _, spec := range phaseSpecs {
		fn, err := c.resolveFunc(spec)
		if err != nil {
			return nil, err
		}
		cl := newShardClosure(spec, "phase", nil)
		if err := a.walkClosure(cl, fn); err != nil {
			return nil, err
		}
		closures = append(closures, cl)
	}
	seen := make(map[types.Object]bool)
	for _, cl := range closures {
		for _, obj := range cl.order {
			if seen[obj] {
				continue
			}
			seen[obj] = true
			acc := cl.objs[obj]
			oi := acc.info
			if oi.owner != nil {
				if _, isComp := a.compTypes[oi.owner]; isComp {
					continue
				}
			}
			class := "unclassified"
			if e := a.classes.lookup(oi); e != nil {
				class = e.class
			}
			switch class {
			case "unsafe", "barrier-exchange", "unclassified":
			default:
				continue
			}
			var readers, writers []string
			touched, writes := 0, 0
			var first site
			for _, pcl := range closures {
				pa := pcl.objs[obj]
				if pa == nil {
					continue
				}
				touched++
				if first.pos == 0 {
					first = pa.first()
				}
				if pa.reads > 0 {
					readers = append(readers, pcl.name)
				}
				if pa.writes > 0 {
					writers = append(writers, pcl.name)
					writes++
				}
			}
			if touched < 2 || writes == 0 {
				continue
			}
			out.CrossPhase = append(out.CrossPhase, CrossPhase{
				Object: oi.key, Class: class, Readers: readers, Writers: writers,
				Site: siteString(c.prog, first.pos),
			})
		}
	}
	return out, nil
}
