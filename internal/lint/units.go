package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// unit-consistency: a lightweight dimensional checker. Config/metrics
// struct fields, consts and package-level vars carry a
//
//	//nubaunit: <unit>
//
// annotation (doc comment or same-line comment). The unit grammar is
//
//	unit = atom { ("/" | "*") atom }
//	atom = identifier | "1"
//
// so "cycles", "bytes", "bytes/cycle", "GB/s", "pages" and "1/cycle"
// all parse; atoms are singularized ("cycles" ≡ "cycle") and compose
// into exponent vectors ("bytes/cycle" = {byte:1, cycle:-1}).
//
// Propagation is intraprocedural: `x := expr` gives the local x the
// unit of expr, `*` and `/` compose exponent vectors, unary +/- and
// conversions pass units through, and everything unannotated is
// unit-free (it never constrains). A finding is a `+`, `-`, comparison
// or assignment whose two sides carry *different known* units — mixing
// bytes/cycle with GB/s, or a cycle count with a byte count.

// unitVal is an exponent vector over base dimensions: bytes/cycle is
// {"byte": 1, "cycle": -1}. A nil unitVal means "unit-free".
type unitVal map[string]int

// parseUnit parses the annotation grammar above.
func parseUnit(s string) (unitVal, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty unit")
	}
	u := make(unitVal)
	sign := 1
	atom := func(tok string) error {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return fmt.Errorf("empty atom in unit %q", s)
		}
		if tok == "1" {
			return nil // dimensionless placeholder, e.g. "1/cycle"
		}
		for _, r := range tok {
			if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				return fmt.Errorf("bad atom %q in unit %q", tok, s)
			}
		}
		u[singular(tok)] += sign
		return nil
	}
	start := 0
	for i, r := range s {
		if r != '/' && r != '*' {
			continue
		}
		if err := atom(s[start:i]); err != nil {
			return nil, err
		}
		if r == '/' {
			sign = -1
		} else {
			// '*' keeps the running sign: a/b*c means a/(b) * c with c
			// in the numerator again.
			sign = 1
		}
		start = i + len(string(r))
	}
	if err := atom(s[start:]); err != nil {
		return nil, err
	}
	for k, v := range u {
		if v == 0 {
			delete(u, k)
		}
	}
	return u, nil
}

// singular folds plural atom spellings onto one dimension name:
// "cycles" ≡ "cycle", "bytes" ≡ "byte". Short atoms ("s", "GB", "ns")
// are left alone.
func singular(tok string) string {
	if len(tok) > 2 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") {
		return tok[:len(tok)-1]
	}
	return tok
}

func (u unitVal) equal(v unitVal) bool {
	if len(u) != len(v) {
		return false
	}
	for k, e := range u {
		if v[k] != e {
			return false
		}
	}
	return true
}

// String renders the vector canonically: positive exponents joined by
// '*', then '/' for each negative one ("byte/cycle", "GB/s").
func (u unitVal) String() string {
	if len(u) == 0 {
		return "1"
	}
	keys := make([]string, 0, len(u))
	for k := range u {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var num, den []string
	for _, k := range keys {
		for i := 0; i < u[k]; i++ {
			num = append(num, k)
		}
		for i := 0; i < -u[k]; i++ {
			den = append(den, k)
		}
	}
	s := strings.Join(num, "*")
	if s == "" {
		s = "1"
	}
	for _, d := range den {
		s += "/" + d
	}
	return s
}

// mul returns u*v (exponent sum); invert gives 1/u.
func (u unitVal) mul(v unitVal) unitVal {
	r := make(unitVal, len(u)+len(v))
	for k, e := range u {
		r[k] += e
	}
	for k, e := range v {
		r[k] += e
	}
	for k, e := range r {
		if e == 0 {
			delete(r, k)
		}
	}
	return r
}

func (u unitVal) invert() unitVal {
	r := make(unitVal, len(u))
	for k, e := range u {
		r[k] = -e
	}
	return r
}

// unitAnnotationPrefix introduces a unit annotation; both "//nubaunit:"
// and "// nubaunit:" spellings are accepted.
const unitAnnotationPrefix = "nubaunit:"

// collectUnits scans every loaded package for nubaunit annotations on
// struct fields, consts and package-level vars and returns the
// object→unit table. Malformed annotations are reported through emit
// under the always-on directive rule: an annotation that silently
// parses to nothing would check nothing.
func collectUnits(prog *Program, emit emitFunc) map[types.Object]unitVal {
	ann := make(map[types.Object]unitVal)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			bind := func(names []*ast.Ident, doc, line *ast.CommentGroup) {
				u, ok := unitFromComments(doc, line, emit)
				if !ok {
					return
				}
				for _, name := range names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						ann[obj] = u
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.StructType:
					for _, field := range x.Fields.List {
						bind(field.Names, field.Doc, field.Comment)
					}
				case *ast.GenDecl:
					if x.Tok != token.CONST && x.Tok != token.VAR {
						return true
					}
					for _, spec := range x.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							bind(vs.Names, vs.Doc, vs.Comment)
						}
					}
				}
				return true
			})
		}
	}
	return ann
}

// unitFromComments extracts the first nubaunit annotation from the doc
// comment or the same-line trailing comment of a declaration.
func unitFromComments(doc, line *ast.CommentGroup, emit emitFunc) (unitVal, bool) {
	for _, cg := range []*ast.CommentGroup{doc, line} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, unitAnnotationPrefix)
			if !ok {
				continue
			}
			u, err := parseUnit(rest)
			if err != nil {
				emit(c.Pos(), RuleDirective, "malformed nubaunit annotation: "+err.Error())
				return nil, false
			}
			return u, true
		}
	}
	return nil, false
}

// --- the checker ------------------------------------------------------

// checkUnits runs the dimensional checker over one package's function
// bodies.
func checkUnits(c *pkgCtx, ann map[types.Object]unitVal) {
	if !c.pol.InScope(RuleUnits, c.pkg.RelName()) {
		return
	}
	for _, f := range c.pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkUnitsBody(c, ann, fn.Body)
		}
	}
}

func checkUnitsBody(c *pkgCtx, ann map[types.Object]unitVal, body *ast.BlockStmt) {
	info := c.pkg.Info

	// Pass 1: bind locals. `x := expr` (and `x = expr` re-binds) give x
	// the unit of expr; ast.Inspect visits assignments in source order,
	// so straight-line chains propagate.
	env := make(map[types.Object]unitVal)
	var unitOf func(e ast.Expr) unitVal
	unitOf = func(e ast.Expr) unitVal {
		switch x := e.(type) {
		case *ast.ParenExpr:
			return unitOf(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.SUB || x.Op == token.ADD {
				return unitOf(x.X)
			}
			return nil
		case *ast.Ident:
			obj := objOf(info, x)
			if obj == nil {
				return nil
			}
			if u, ok := ann[obj]; ok {
				return u
			}
			return env[obj]
		case *ast.SelectorExpr:
			if obj := objOf(info, x.Sel); obj != nil {
				return ann[obj]
			}
			return nil
		case *ast.BinaryExpr:
			u1, u2 := unitOf(x.X), unitOf(x.Y)
			switch x.Op {
			case token.MUL:
				switch {
				case u1 != nil && u2 != nil:
					return u1.mul(u2)
				case u1 != nil:
					return u1 // unit-free operand acts as a scalar
				default:
					return u2
				}
			case token.QUO:
				switch {
				case u1 != nil && u2 != nil:
					return u1.mul(u2.invert())
				case u1 != nil:
					return u1
				case u2 != nil:
					return u2.invert()
				default:
					return nil
				}
			case token.ADD, token.SUB:
				if u1 != nil {
					return u1
				}
				return u2
			}
			return nil
		case *ast.CallExpr:
			// A conversion T(x) keeps x's unit; other calls are free.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				return unitOf(x.Args[0])
			}
			return nil
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(info, id)
			if obj == nil {
				continue
			}
			if _, annotated := ann[obj]; annotated {
				continue // annotated objects keep their declared unit
			}
			if u := unitOf(as.Rhs[i]); u != nil {
				env[obj] = u
			}
		}
		return true
	})

	// Pass 2: each binary +,-,comparison node is visited exactly once;
	// operand units are computed purely, so nested mismatches are
	// reported at their own node and never twice.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB,
				token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			u1, u2 := unitOf(x.X), unitOf(x.Y)
			if u1 != nil && u2 != nil && !u1.equal(u2) {
				c.emitPos(x.OpPos, RuleUnits,
					fmt.Sprintf("mixed units in '%s': %s vs %s", x.Op, u1, u2))
			}
		case *ast.AssignStmt:
			check := func(lhs, rhs ast.Expr) {
				var lu unitVal
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					if obj := objOf(info, l.Sel); obj != nil {
						lu = ann[obj]
					}
				case *ast.Ident:
					if obj := objOf(info, l); obj != nil {
						lu = ann[obj]
					}
				}
				if lu == nil {
					return
				}
				if ru := unitOf(rhs); ru != nil && !ru.equal(lu) {
					c.emitPos(x.TokPos, RuleUnits,
						fmt.Sprintf("assignment mixes units: %s := %s", lu, ru))
				}
			}
			switch x.Tok {
			case token.ASSIGN, token.ADD_ASSIGN, token.SUB_ASSIGN:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						check(x.Lhs[i], x.Rhs[i])
					}
				}
			}
		}
		return true
	})
}
