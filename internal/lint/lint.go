package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, in vet style: file:line:col: rule: message.
// File is module-relative so output is stable across checkouts.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Run analyzes the program's packages under the policy with the given
// rules (nil or empty = all) and returns the findings sorted by file,
// line and column. Malformed //nubalint:ignore directives are always
// reported, whatever the rule selection.
func Run(prog *Program, pol *Policy, rules []string) ([]Diagnostic, error) {
	if len(rules) == 0 {
		rules = AllRules()
	}
	for _, r := range rules {
		if !knownRule(r) {
			return nil, fmt.Errorf("lint: unknown rule %q (have %v)", r, AllRules())
		}
	}

	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		// Index the package's suppression directives first; a malformed
		// directive is itself a finding.
		indexes := make(map[string]*directiveIndex) // by module-relative file
		rawEmit := func(pos token.Pos, rule, msg string) {
			posn := prog.Fset.Position(pos)
			diags = append(diags, Diagnostic{
				File: prog.RelFile(pos), Line: posn.Line, Col: posn.Column,
				Rule: rule, Message: msg,
			})
		}
		for _, f := range pkg.Files {
			indexes[prog.RelFile(f.Pos())] = collectDirectives(prog.Fset, f, rawEmit)
		}

		c := &pkgCtx{
			prog: prog,
			pol:  pol,
			pkg:  pkg,
			emitPos: func(pos token.Pos, rule, msg string) {
				rel := prog.RelFile(pos)
				line := prog.Fset.Position(pos).Line
				if idx, ok := indexes[rel]; ok && idx.suppresses(rule, line) {
					return
				}
				rawEmit(pos, rule, msg)
			},
		}
		for _, r := range rules {
			ruleFuncs[r](c)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}
