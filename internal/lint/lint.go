package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, in vet style: file:line:col: rule: message.
// File is module-relative so output is stable across checkouts.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Run analyzes the program's packages under the policy with the given
// rules (nil or empty = all) and returns the findings sorted by
// (file, line, col, rule). Malformed //nubalint:ignore directives and
// nubaunit annotations are always reported, whatever the rule
// selection.
//
// Per-package rules (nondet-map-range, no-wallclock, import-layering,
// ctx-propagation, goroutine-in-core, unit-consistency) run package by
// package; the liveness rules then run once over the module-wide use
// graph (see usegraph.go), so a config knob read only from a package
// the analysis never loaded still counts as dead.
func Run(prog *Program, pol *Policy, rules []string) ([]Diagnostic, error) {
	if len(rules) == 0 {
		rules = AllRules()
	}
	selected := make(map[string]bool, len(rules))
	for _, r := range rules {
		if !knownRule(r) {
			return nil, fmt.Errorf("lint: unknown rule %q (have %v)", r, AllRules())
		}
		selected[r] = true
	}

	// Index every file's suppression directives up front — module-wide
	// rules emit into files of packages other than the one being
	// walked, and a malformed directive is itself a finding.
	var diags []Diagnostic
	rawEmit := func(pos token.Pos, rule, msg string) {
		posn := prog.Fset.Position(pos)
		diags = append(diags, Diagnostic{
			File: prog.RelFile(pos), Line: posn.Line, Col: posn.Column,
			Rule: rule, Severity: severityOf(rule), Message: msg,
		})
	}
	indexes := make(map[string]*directiveIndex) // by module-relative file
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			indexes[prog.RelFile(f.Pos())] = collectDirectives(prog.Fset, f, rawEmit)
		}
	}
	emit := emitFunc(func(pos token.Pos, rule, msg string) {
		rel := prog.RelFile(pos)
		line := prog.Fset.Position(pos).Line
		if idx, ok := indexes[rel]; ok && idx.suppresses(rule, line) {
			return
		}
		rawEmit(pos, rule, msg)
	})

	// The unit annotation table is built unconditionally: a malformed
	// annotation must surface even when unit-consistency is deselected.
	units := collectUnits(prog, emit)

	// Module-wide facts shared by every package's checkers, computed
	// once: the deprecated root-API set.
	deprecated := deprecatedRootFuncs(prog)

	for _, pkg := range prog.Pkgs {
		c := &pkgCtx{prog: prog, pol: pol, pkg: pkg, emitPos: emit, deprecated: deprecated}
		for _, r := range rules {
			if fn, ok := ruleFuncs[r]; ok {
				fn(c)
			}
		}
		if selected[RuleUnits] {
			checkUnits(c, units)
		}
	}

	pc := &progCtx{prog: prog, pol: pol, emitPos: emit}
	for _, r := range rules {
		if fn, ok := progRuleFuncs[r]; ok {
			if err := fn(pc); err != nil {
				return nil, err
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}
