// Package lint implements nubalint, the repo's stdlib-only static
// analyzer. It loads and type-checks every package in the module with
// go/parser + go/types (no x/tools dependency) and enforces the
// simulator's determinism and layering invariants:
//
//	nondet-map-range    no unordered map iteration in simulation-core code
//	no-wallclock        no time.Now/time.Since/math/rand in simulation-core code
//	import-layering     the package DAG declared in lint.policy holds
//	ctx-propagation     ctx-receiving functions never reset the context chain
//	goroutine-in-core   no go statements inside cycle-level model packages
//	config-liveness     every audited config knob is read by the simulator
//	metrics-liveness    every counter is written by the model and reported
//	unit-consistency    nubaunit dimensional analysis over annotated values
//	deprecated-api      scoped packages never call deprecated root functions
//	hint-purity         declared wake hints are transitively side-effect-free
//	engine-contract     every ticked component is declared and exposes a hint
//	partition-isolation partition-owned fields accept only sanctioned writers
//	fault-containment   the fault harness is importable only from the pool
//	shard-footprint     component ticks stay inside their declared seams
//	shard-shared        reachable shared mutables carry a classification
//	tick-phase-order    the engine phase sequence matches the declaration
//
// Which packages each rule covers, which files are allowlisted, and the
// allowed import edges all come from a committed policy file (see
// policy.go). Individual findings can be suppressed in place with a
//
//	//nubalint:ignore <rule> <reason>
//
// directive on the flagged line or the line above it (see directives.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module locates a Go module on disk.
type Module struct {
	// Path is the module path declared in go.mod.
	Path string
	// Dir is the absolute path of the module root.
	Dir string
}

// FindModule walks up from dir to the nearest go.mod and returns the
// enclosing module.
func FindModule(dir string) (Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return Module{}, err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePath(data)
			if path == "" {
				return Module{}, fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return Module{Path: path, Dir: d}, nil
		}
		if filepath.Dir(d) == d {
			return Module{}, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Rel is the module-relative directory ("" for the root package).
	Rel string
	// ImportPath is the full import path.
	ImportPath string
	// Dir is the absolute directory.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info hold the type-check results.
	Types *types.Package
	Info  *types.Info
}

// RelName is Rel with "" spelled "." (the policy-file spelling of the
// root package).
func (p *Package) RelName() string {
	if p.Rel == "" {
		return "."
	}
	return p.Rel
}

// Program is a loaded module ready for analysis.
type Program struct {
	Fset *token.FileSet
	Mod  Module
	// Pkgs are the target packages, sorted by Rel.
	Pkgs []*Package
}

// pkgByRel returns the loaded package with the given policy-style
// rel-name ("." for the root), or nil.
func (p *Program) pkgByRel(rel string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.RelName() == rel {
			return pkg
		}
	}
	return nil
}

// RelFile returns pos's file path relative to the module root.
func (p *Program) RelFile(pos token.Pos) string {
	f := p.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(p.Mod.Dir, f); err == nil {
		return filepath.ToSlash(rel)
	}
	return f
}

// loader parses and type-checks packages on demand. Module-internal
// import paths resolve by directory under the module root; everything
// else goes to the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	mod     Module
	std     types.ImporterFrom
	pkgs    map[string]*Package // by module-relative dir
	loading map[string]bool     // cycle detection
}

func newLoader(mod Module) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		mod:     mod,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.mod.Dir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.relOf(path); ok {
		p, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// relOf maps a module-internal import path to its module-relative
// directory.
func (l *loader) relOf(path string) (string, bool) {
	if path == l.mod.Path {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.mod.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

// load parses and type-checks the package in the module-relative
// directory rel, caching the result.
func (l *loader) load(rel string) (*Package, error) {
	if p, ok := l.pkgs[rel]; ok {
		return p, nil
	}
	if l.loading[rel] {
		return nil, fmt.Errorf("import cycle through %q", filepath.Join(l.mod.Path, rel))
	}
	l.loading[rel] = true
	defer delete(l.loading, rel)

	dir := filepath.Join(l.mod.Dir, filepath.FromSlash(rel))
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	importPath := l.mod.Path
	if rel != "" {
		importPath = l.mod.Path + "/" + rel
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	p := &Package{Rel: rel, ImportPath: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[rel] = p
	return p, nil
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Load parses and type-checks the module packages matching the given
// patterns. Patterns follow the go tool's shape: "./..." loads every
// package, "./x/..." a subtree, "./x" (or "x") a single package, and "."
// the root package. Directories named testdata, hidden directories, and
// nested modules are never traversed.
func Load(mod Module, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := packageDirs(mod.Dir)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, rel := range all {
			if matchPattern(pat, rel) {
				want[rel] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}

	l := newLoader(mod)
	prog := &Program{Fset: l.fset, Mod: mod}
	var rels []string
	for rel := range want {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		p, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, p)
	}
	return prog, nil
}

// matchPattern reports whether the module-relative package dir rel
// matches a go-tool-style pattern.
func matchPattern(pat, rel string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	switch {
	case pat == "..." || pat == "":
		return true
	case strings.HasSuffix(pat, "/..."):
		prefix := strings.TrimSuffix(pat, "/...")
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	case pat == ".":
		return rel == ""
	default:
		return rel == pat
	}
}

// packageDirs walks the module and returns every module-relative
// directory containing non-test Go sources.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module.
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		names, err := goSources(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			dirs = append(dirs, filepath.ToSlash(rel))
		}
		return nil
	})
	return dirs, err
}
