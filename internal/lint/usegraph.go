package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide use graph behind the liveness rules:
// one node per declared function or method (plus one synthetic node per
// package for package-level variable initializers), edges for every
// function reference, and per-node read/write sets over struct fields
// and consts. Per-package syntactic rules cannot see whether a
// declaration is ever used across the module; the graph can, which is
// what config-liveness and metrics-liveness need.

// accessKind classifies how an identifier touches its object.
type accessKind int

const (
	accessRead accessKind = iota
	accessWrite
	accessReadWrite
)

// effect is one side effect observed in a function body: a write to a
// struct field or package-level variable, a store through a pointer,
// slice or map, a channel operation, or a goroutine start. The purity
// analysis (purity.go) treats any effect in the transitive call closure
// of a wake hint as a finding.
type effect struct {
	pos  token.Pos
	desc string
}

// dynCall is one call through a func-typed struct field or package
// variable — the callback-port dispatch the static call edges cannot
// follow. The shard-safety analysis resolves it through fieldTargets
// (declared seam ports stop the traversal instead).
type dynCall struct {
	field *types.Var
	pos   token.Pos
}

// fieldAssign records a function value being installed into a
// func-typed field or package variable: a method value
// (`ch.Respond = g.memRespond`), a factory call returning a closure
// (`s.Send = g.nubaSend(id, part)` — the closure body is scanned into
// the factory's node), or a function literal (whose body is scanned
// into the assigning node, marked lit).
type fieldAssign struct {
	field  *types.Var
	target *types.Func // nil when lit
	lit    bool
}

// funcNode is one node of the use graph.
type funcNode struct {
	pkg  *Package
	file string      // module-relative declaring file
	fn   *types.Func // nil for package-init pseudo-nodes

	calls map[*types.Func]bool // referenced functions and methods
	// calleeList holds the same set in first-reference source order, so
	// interprocedural traversals that report call paths stay
	// deterministic without sorting at query time.
	calleeList []*types.Func
	callPos    map[*types.Func]token.Pos // first reference site per callee
	reads      map[types.Object][]token.Pos
	writes     map[types.Object][]token.Pos
	// nonAccum holds the subset of writes that are NOT commutative
	// accumulation (++, --, +=, -=, |=) applied directly to the object:
	// plain overwrites, other compound ops, direct address-taking and
	// composite-literal initialization. Writes that reach the object
	// through an index or pointer dereference mutate an element, not the
	// cell itself, and are not recorded here. shard-shared uses this to
	// police the `commutative` classification (shardsafety.go).
	nonAccum map[types.Object][]token.Pos
	dynCalls []dynCall // calls through func-typed fields, in source order
	// fieldAssigns records func values installed into func-typed fields,
	// in source order; buildUseGraph folds them into fieldTargets.
	fieldAssigns []fieldAssign
	effects      []effect // side effects, in source order
}

func newFuncNode(pkg *Package, file string) *funcNode {
	return &funcNode{
		pkg:      pkg,
		file:     file,
		calls:    make(map[*types.Func]bool),
		callPos:  make(map[*types.Func]token.Pos),
		reads:    make(map[types.Object][]token.Pos),
		writes:   make(map[types.Object][]token.Pos),
		nonAccum: make(map[types.Object][]token.Pos),
	}
}

// useGraph is the module-wide defs/uses graph.
type useGraph struct {
	prog  *Program
	byObj map[*types.Func]*funcNode
	nodes []*funcNode // every node, including package-init pseudo-nodes
	// methodsByName indexes every declared method by name, the basis of
	// the interface-dispatch over-approximation in calleeNodes.
	methodsByName map[string][]*types.Func
	// fieldTargets maps each func-typed field (or package variable) to
	// the nodes whose code may run when it is invoked: the bodies of
	// assigned method values and closure factories, or the assigning
	// node itself for function literals. Deterministic: built from the
	// nodes in declaration order.
	fieldTargets map[*types.Var][]*funcNode
}

// buildUseGraph scans every loaded package once.
func buildUseGraph(prog *Program) *useGraph {
	g := &useGraph{
		prog:          prog,
		byObj:         make(map[*types.Func]*funcNode),
		methodsByName: make(map[string][]*types.Func),
	}
	for _, pkg := range prog.Pkgs {
		var initNode *funcNode // lazy: many packages have no var initializers
		for _, f := range pkg.Files {
			file := prog.RelFile(f.Pos())
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if fn == nil {
						continue
					}
					n := newFuncNode(pkg, file)
					n.fn = fn
					g.byObj[fn] = n
					g.nodes = append(g.nodes, n)
					if d.Recv != nil {
						g.methodsByName[fn.Name()] = append(g.methodsByName[fn.Name()], fn)
					}
					if d.Body != nil {
						scanBody(pkg.Info, n, d.Body)
					}
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							if initNode == nil {
								initNode = newFuncNode(pkg, file)
								g.nodes = append(g.nodes, initNode)
							}
							scanBody(pkg.Info, initNode, v)
						}
					}
				}
			}
		}
	}
	g.fieldTargets = make(map[*types.Var][]*funcNode)
	for _, n := range g.nodes {
		for _, fa := range n.fieldAssigns {
			t := n
			if !fa.lit {
				t = g.byObj[fa.target]
			}
			if t == nil {
				continue
			}
			dup := false
			for _, e := range g.fieldTargets[fa.field] {
				if e == t {
					dup = true
					break
				}
			}
			if !dup {
				g.fieldTargets[fa.field] = append(g.fieldTargets[fa.field], t)
			}
		}
	}
	return g
}

// scanBody records the calls, field/const reads, field writes and side
// effects of one function body (or package-level initializer
// expression) into n.
func scanBody(info *types.Info, n *funcNode, root ast.Node) {
	// Pass 1: mark the identifiers that sit in write position, so the
	// generic pass below can classify everything else as a read. The
	// same pass records side effects for the purity analysis: channel
	// operations, goroutine starts, and any assignment whose target is
	// state that outlives the call.
	kinds := make(map[*ast.Ident]accessKind)
	// nonAcc marks write sites that are NOT commutative accumulation;
	// see funcNode.nonAccum.
	nonAcc := make(map[*ast.Ident]bool)
	mark := func(e ast.Expr, k accessKind) {
		if id := lvalueIdent(e); id != nil {
			kinds[id] = k
		}
	}
	markWrite := func(e ast.Expr) {
		mark(e, accessWrite)
		if desc, ok := writeEffect(info, e); ok {
			n.effects = append(n.effects, effect{pos: e.Pos(), desc: desc})
		}
	}
	ast.Inspect(root, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			// Plain and compound assignment both count as writes only:
			// a counter that is merely `+=`-bumped has not been read by
			// the reporting path.
			accum := x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN ||
				x.Tok == token.OR_ASSIGN
			for _, lhs := range x.Lhs {
				markWrite(lhs)
				if id, direct := lvalueInfo(lhs); id != nil && direct && !accum {
					nonAcc[id] = true
				}
			}
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					recordFieldAssign(info, n, x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.IncDecStmt:
			markWrite(x.X) // ++/-- is commutative accumulation: not nonAcc
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				// Taking the address may lead to either access.
				mark(x.X, accessReadWrite)
				if id, direct := lvalueInfo(x.X); id != nil && direct {
					nonAcc[id] = true
				}
			} else if x.Op == token.ARROW {
				n.effects = append(n.effects, effect{pos: x.Pos(), desc: "receives from a channel"})
			}
		case *ast.SendStmt:
			n.effects = append(n.effects, effect{pos: x.Arrow, desc: "sends on a channel"})
		case *ast.SelectStmt:
			n.effects = append(n.effects, effect{pos: x.Select, desc: "selects on channels"})
		case *ast.GoStmt:
			n.effects = append(n.effects, effect{pos: x.Go, desc: "starts a goroutine"})
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				switch obj := objOf(info, fun).(type) {
				case *types.Builtin:
					if obj.Name() == "close" {
						n.effects = append(n.effects, effect{pos: x.Pos(), desc: "closes a channel"})
					}
				case *types.Var:
					recordDynCall(n, obj, fun.Pos())
				}
			case *ast.SelectorExpr:
				if v, ok := objOf(info, fun.Sel).(*types.Var); ok {
					recordDynCall(n, v, fun.Sel.Pos())
				}
			}
		case *ast.CompositeLit:
			// Struct-literal keys initialize (write) their fields.
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						kinds[id] = accessWrite
						nonAcc[id] = true
						recordFieldAssign(info, n, kv.Key, kv.Value)
					}
				}
			}
		}
		return true
	})

	// Pass 2: resolve every identifier.
	ast.Inspect(root, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		switch obj := objOf(info, id).(type) {
		case *types.Func:
			// Instantiated generics resolve to synthetic objects; fold
			// them onto the declared origin so graph lookups match.
			obj = obj.Origin()
			if !n.calls[obj] {
				n.calls[obj] = true
				n.calleeList = append(n.calleeList, obj)
				n.callPos[obj] = id.Pos()
			}
		case *types.Var:
			obj = obj.Origin()
			if !obj.IsField() && !isPkgLevel(obj) {
				return true
			}
			switch kinds[id] {
			case accessWrite:
				n.writes[obj] = append(n.writes[obj], id.Pos())
			case accessReadWrite:
				n.writes[obj] = append(n.writes[obj], id.Pos())
				n.reads[obj] = append(n.reads[obj], id.Pos())
			default:
				n.reads[obj] = append(n.reads[obj], id.Pos())
			}
			if nonAcc[id] && kinds[id] != accessRead {
				n.nonAccum[obj] = append(n.nonAccum[obj], id.Pos())
			}
		case *types.Const:
			n.reads[obj] = append(n.reads[obj], id.Pos())
		}
		return true
	})
}

// recordDynCall records a call through v if it is a func-typed struct
// field or package variable — a callback-port dispatch.
func recordDynCall(n *funcNode, v *types.Var, pos token.Pos) {
	v = v.Origin()
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return
	}
	if !v.IsField() && !isPkgLevel(v) {
		return
	}
	n.dynCalls = append(n.dynCalls, dynCall{field: v, pos: pos})
}

// recordFieldAssign records rhs being installed into lhs when lhs is a
// func-typed field or package variable written directly (not through an
// index or dereference). The recorded target is the function whose body
// may run on dispatch: the literal's enclosing node (lit), the factory
// whose returned closure was scanned into its node, or the bound method.
func recordFieldAssign(info *types.Info, n *funcNode, lhs, rhs ast.Expr) {
	id, direct := lvalueInfo(lhs)
	if id == nil || !direct {
		return
	}
	v, ok := objOf(info, id).(*types.Var)
	if !ok {
		return
	}
	v = v.Origin()
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return
	}
	if !v.IsField() && !isPkgLevel(v) {
		return
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.FuncLit:
		n.fieldAssigns = append(n.fieldAssigns, fieldAssign{field: v, lit: true})
	case *ast.CallExpr:
		if fn := calleeFunc(info, r.Fun); fn != nil {
			n.fieldAssigns = append(n.fieldAssigns, fieldAssign{field: v, target: fn})
		}
	default:
		if fn := calleeFunc(info, rhs); fn != nil {
			n.fieldAssigns = append(n.fieldAssigns, fieldAssign{field: v, target: fn})
		}
	}
}

// calleeFunc resolves an expression to the declared function or method
// it names, or nil.
func calleeFunc(info *types.Info, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := objOf(info, x).(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := objOf(info, x.Sel).(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// lvalueIdent finds the identifier an assignment target binds: the
// selector's field for `x.F = v` (and `x.F[i] = v`, `*x.F = v`), the
// identifier itself for `x = v`. Blank and unresolvable targets yield
// nil.
func lvalueIdent(e ast.Expr) *ast.Ident {
	id, _ := lvalueInfo(e)
	return id
}

// lvalueInfo is lvalueIdent plus directness: direct is false when the
// path to the identifier crosses an index or dereference — the write
// then mutates an element behind the object, not the cell itself.
func lvalueInfo(e ast.Expr) (id *ast.Ident, direct bool) {
	direct = true
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			direct = false
			e = x.X
		case *ast.StarExpr:
			direct = false
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel, direct
		case *ast.Ident:
			return x, direct
		default:
			return nil, false
		}
	}
}

// writeEffect classifies an assignment target as a side effect: a
// write to a struct field or package-level variable, or a store
// through a pointer, slice or map reached from a local — all state
// that outlives the call. Plain writes to local variables (including
// elements of local value arrays) are pure and yield no effect.
func writeEffect(info *types.Info, e ast.Expr) (desc string, ok bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			return "writes through a pointer", true
		case *ast.IndexExpr:
			switch info.TypeOf(x.X).Underlying().(type) {
			case *types.Map:
				return "writes a map element", true
			case *types.Slice, *types.Pointer:
				return "writes a slice element", true
			}
			e = x.X // value array: keep unwrapping toward the base
		case *ast.SelectorExpr:
			switch obj := objOf(info, x.Sel).(type) {
			case *types.Var:
				if obj.IsField() {
					return "writes field " + obj.Name(), true
				}
				if isPkgLevel(obj) {
					return "writes package variable " + obj.Name(), true
				}
			}
			return "", false
		case *ast.Ident:
			if obj, k := objOf(info, x).(*types.Var); k && isPkgLevel(obj) {
				return "writes package variable " + obj.Name(), true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// spec renders the node's function as a policy-style spec
// ("internal/sim.Link.NextReady", "internal/core.New"); package-init
// pseudo-nodes render as "<pkg>.<init>".
func (n *funcNode) spec() string {
	if n.fn == nil {
		return n.pkg.RelName() + ".<init>"
	}
	return n.pkg.RelName() + "." + funcDisplay(n.fn)
}

// funcDisplay renders "Type.Method" for methods and "Func" otherwise.
func funcDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// isAbstract reports whether fn is an interface method — a callee with
// no body of its own in the graph.
func isAbstract(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// calleeNodes resolves a call edge to the graph nodes it may reach:
// the callee's own node for a static call, or — for an interface
// method, which has no body — every declared method with the same
// name anywhere in the module (the dispatch over-approximation;
// DESIGN.md §7). The over-approximation is safe in both directions
// the rules care about: liveness cannot miss a real read through an
// interface, and purity cannot miss a real effect behind one.
func (g *useGraph) calleeNodes(fn *types.Func) []*funcNode {
	if n := g.byObj[fn]; n != nil {
		return []*funcNode{n}
	}
	if !isAbstract(fn) {
		return nil // declared outside the module
	}
	var out []*funcNode
	for _, m := range g.methodsByName[fn.Name()] {
		if n := g.byObj[m]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// matchesRole reports whether the node's declaring package or file
// matches one of the policy patterns (package rel-names like
// "internal/core", file paths like "internal/metrics/chart.go"; both
// may glob).
func (n *funcNode) matchesRole(patterns []string) bool {
	for _, pat := range patterns {
		if matchPkg(pat, n.pkg.RelName()) || matchPkg(pat, n.file) {
			return true
		}
	}
	return false
}

// reachableFrom returns the set of nodes reachable along call edges
// from any node whose package or declaring file matches the patterns.
// The matching roots themselves are included.
func (g *useGraph) reachableFrom(patterns []string) map[*funcNode]bool {
	reach := make(map[*funcNode]bool)
	var queue []*funcNode
	for _, n := range g.nodes {
		if n.matchesRole(patterns) {
			reach[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for callee := range n.calls {
			for _, m := range g.calleeNodes(callee) {
				if reach[m] {
					continue
				}
				reach[m] = true
				queue = append(queue, m)
			}
		}
	}
	return reach
}

// hasRead reports whether obj is read inside any node of the set.
func (g *useGraph) hasRead(obj types.Object, within map[*funcNode]bool) bool {
	for n := range within {
		if len(n.reads[obj]) > 0 {
			return true
		}
	}
	return false
}

// hasWrite reports whether obj is written inside any node of the set.
func (g *useGraph) hasWrite(obj types.Object, within map[*funcNode]bool) bool {
	for n := range within {
		if len(n.writes[obj]) > 0 {
			return true
		}
	}
	return false
}
