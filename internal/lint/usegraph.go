package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the module-wide use graph behind the liveness rules:
// one node per declared function or method (plus one synthetic node per
// package for package-level variable initializers), edges for every
// function reference, and per-node read/write sets over struct fields
// and consts. Per-package syntactic rules cannot see whether a
// declaration is ever used across the module; the graph can, which is
// what config-liveness and metrics-liveness need.

// accessKind classifies how an identifier touches its object.
type accessKind int

const (
	accessRead accessKind = iota
	accessWrite
	accessReadWrite
)

// funcNode is one node of the use graph.
type funcNode struct {
	pkg  *Package
	file string // module-relative declaring file

	calls  map[*types.Func]bool // referenced functions and methods
	reads  map[types.Object][]token.Pos
	writes map[types.Object][]token.Pos
}

func newFuncNode(pkg *Package, file string) *funcNode {
	return &funcNode{
		pkg:    pkg,
		file:   file,
		calls:  make(map[*types.Func]bool),
		reads:  make(map[types.Object][]token.Pos),
		writes: make(map[types.Object][]token.Pos),
	}
}

// useGraph is the module-wide defs/uses graph.
type useGraph struct {
	prog  *Program
	byObj map[*types.Func]*funcNode
	nodes []*funcNode // every node, including package-init pseudo-nodes
}

// buildUseGraph scans every loaded package once.
func buildUseGraph(prog *Program) *useGraph {
	g := &useGraph{prog: prog, byObj: make(map[*types.Func]*funcNode)}
	for _, pkg := range prog.Pkgs {
		var initNode *funcNode // lazy: many packages have no var initializers
		for _, f := range pkg.Files {
			file := prog.RelFile(f.Pos())
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if fn == nil {
						continue
					}
					n := newFuncNode(pkg, file)
					g.byObj[fn] = n
					g.nodes = append(g.nodes, n)
					if d.Body != nil {
						scanBody(pkg.Info, n, d.Body)
					}
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							if initNode == nil {
								initNode = newFuncNode(pkg, file)
								g.nodes = append(g.nodes, initNode)
							}
							scanBody(pkg.Info, initNode, v)
						}
					}
				}
			}
		}
	}
	return g
}

// scanBody records the calls, field/const reads and field writes of one
// function body (or package-level initializer expression) into n.
func scanBody(info *types.Info, n *funcNode, root ast.Node) {
	// Pass 1: mark the identifiers that sit in write position, so the
	// generic pass below can classify everything else as a read.
	kinds := make(map[*ast.Ident]accessKind)
	mark := func(e ast.Expr, k accessKind) {
		if id := lvalueIdent(e); id != nil {
			kinds[id] = k
		}
	}
	ast.Inspect(root, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			// Plain and compound assignment both count as writes only:
			// a counter that is merely `+=`-bumped has not been read by
			// the reporting path.
			for _, lhs := range x.Lhs {
				mark(lhs, accessWrite)
			}
		case *ast.IncDecStmt:
			mark(x.X, accessWrite)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				// Taking the address may lead to either access.
				mark(x.X, accessReadWrite)
			}
		case *ast.CompositeLit:
			// Struct-literal keys initialize (write) their fields.
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						kinds[id] = accessWrite
					}
				}
			}
		}
		return true
	})

	// Pass 2: resolve every identifier.
	ast.Inspect(root, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		switch obj := objOf(info, id).(type) {
		case *types.Func:
			n.calls[obj] = true
		case *types.Var:
			if !obj.IsField() {
				return true
			}
			switch kinds[id] {
			case accessWrite:
				n.writes[obj] = append(n.writes[obj], id.Pos())
			case accessReadWrite:
				n.writes[obj] = append(n.writes[obj], id.Pos())
				n.reads[obj] = append(n.reads[obj], id.Pos())
			default:
				n.reads[obj] = append(n.reads[obj], id.Pos())
			}
		case *types.Const:
			n.reads[obj] = append(n.reads[obj], id.Pos())
		}
		return true
	})
}

// lvalueIdent finds the identifier an assignment target binds: the
// selector's field for `x.F = v` (and `x.F[i] = v`, `*x.F = v`), the
// identifier itself for `x = v`. Blank and unresolvable targets yield
// nil.
func lvalueIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// matchesRole reports whether the node's declaring package or file
// matches one of the policy patterns (package rel-names like
// "internal/core", file paths like "internal/metrics/chart.go"; both
// may glob).
func (n *funcNode) matchesRole(patterns []string) bool {
	for _, pat := range patterns {
		if matchPkg(pat, n.pkg.RelName()) || matchPkg(pat, n.file) {
			return true
		}
	}
	return false
}

// reachableFrom returns the set of nodes reachable along call edges
// from any node whose package or declaring file matches the patterns.
// The matching roots themselves are included.
func (g *useGraph) reachableFrom(patterns []string) map[*funcNode]bool {
	reach := make(map[*funcNode]bool)
	var queue []*funcNode
	for _, n := range g.nodes {
		if n.matchesRole(patterns) {
			reach[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for callee := range n.calls {
			m := g.byObj[callee]
			if m == nil || reach[m] {
				continue
			}
			reach[m] = true
			queue = append(queue, m)
		}
	}
	return reach
}

// hasRead reports whether obj is read inside any node of the set.
func (g *useGraph) hasRead(obj types.Object, within map[*funcNode]bool) bool {
	for n := range within {
		if len(n.reads[obj]) > 0 {
			return true
		}
	}
	return false
}

// hasWrite reports whether obj is written inside any node of the set.
func (g *useGraph) hasWrite(obj types.Object, within map[*funcNode]bool) bool {
	for n := range within {
		if len(n.writes[obj]) > 0 {
			return true
		}
	}
	return false
}
