package lint

import (
	"fmt"
	"go/types"
	"strings"
)

// hint-purity: the hybrid engine's idle-skip decisions are sound only
// if every wake hint is a pure observation — a hint that mutates state,
// touches a channel or starts a goroutine would make the hint scan
// itself a simulation event, and the fast-forwarded window would no
// longer replay identically under the naive engine. The rule audits
// the functions listed in `funcs hint-purity` and everything they
// transitively call (over the use graph, with interface calls
// over-approximated to every same-name method) and reports:
//
//   - any side effect in the closure: field or package-variable
//     writes, stores through pointers/slices/maps, channel sends,
//     receives, closes or selects, and goroutine starts;
//   - any call that leaves the module (stdlib or external), whose
//     effects the analysis cannot see.
//
// Findings point at the offending statement and carry the hint root
// plus the call path that reaches it, so a violation deep in a helper
// is still a one-line fix away.

// resolveFunc maps a policy func spec — "pkg.Func" or
// "pkg.Type.Method", with the package module-relative — to its
// *types.Func. The spec's package must be among the loaded packages.
func (c *progCtx) resolveFunc(spec string) (*types.Func, error) {
	tail := spec
	prefix := ""
	if i := strings.LastIndexByte(spec, '/'); i >= 0 {
		prefix, tail = spec[:i+1], spec[i+1:]
	}
	parts := strings.Split(tail, ".")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("func spec %q is not of the form pkg.Func or pkg.Type.Method", spec)
	}
	pkgRel := prefix + parts[0]
	if pkgRel == "" {
		pkgRel = "."
	}
	for _, pkg := range c.prog.Pkgs {
		if pkg.RelName() != pkgRel {
			continue
		}
		obj := pkg.Types.Scope().Lookup(parts[1])
		if obj == nil {
			return nil, fmt.Errorf("func spec %q: no %s in package %s", spec, parts[1], pkgRel)
		}
		if len(parts) == 2 {
			fn, ok := obj.(*types.Func)
			if !ok {
				return nil, fmt.Errorf("func spec %q: %s is not a function", spec, parts[1])
			}
			return fn, nil
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil, fmt.Errorf("func spec %q: %s is not a named type", spec, parts[1])
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == parts[2] {
				return m, nil
			}
		}
		return nil, fmt.Errorf("func spec %q: type %s has no method %s", spec, parts[1], parts[2])
	}
	return nil, fmt.Errorf("func spec %q: package %s is not among the loaded packages", spec, pkgRel)
}

// checkHintPurity walks the transitive call closure of each declared
// wake hint and reports every side effect and every unanalyzable
// external call it contains.
func checkHintPurity(c *progCtx) error {
	specs := c.pol.Funcs(RuleHintPurity)
	if len(specs) == 0 {
		return nil
	}
	g := c.useGraph()
	for _, spec := range specs {
		fn, err := c.resolveFunc(spec)
		if err != nil {
			return fmt.Errorf("hint-purity: %w", err)
		}
		root := g.byObj[fn]
		if root == nil {
			return fmt.Errorf("hint-purity: %s has no body in the loaded packages", spec)
		}
		// BFS in deterministic order: calleeList preserves source
		// order, so the recorded path to each node is stable.
		paths := map[*funcNode]string{root: funcDisplay(fn)}
		queue := []*funcNode{root}
		externSeen := map[*types.Func]bool{}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, eff := range n.effects {
				if n == root {
					c.emitPos(eff.pos, RuleHintPurity,
						fmt.Sprintf("wake hint %s must be side-effect-free but %s", spec, eff.desc))
				} else {
					c.emitPos(eff.pos, RuleHintPurity,
						fmt.Sprintf("wake hint %s must be side-effect-free but %s (reached via %s)", spec, eff.desc, paths[n]))
				}
			}
			for _, callee := range n.calleeList {
				nodes := g.calleeNodes(callee)
				if len(nodes) == 0 {
					// A callee with no module body: flag calls that
					// leave the module, whose effects are invisible to
					// the analysis.
					if pkg := callee.Pkg(); pkg != nil && !externSeen[callee] {
						externSeen[callee] = true
						c.emitPos(n.callPos[callee], RuleHintPurity,
							fmt.Sprintf("wake hint %s calls %s.%s, outside the module; its effects cannot be verified (reached via %s)",
								spec, pkg.Path(), callee.Name(), paths[n]))
					}
					continue
				}
				for _, m := range nodes {
					if _, seen := paths[m]; seen {
						continue
					}
					paths[m] = paths[n] + " -> " + funcDisplay(m.fn)
					queue = append(queue, m)
				}
			}
		}
	}
	return nil
}
