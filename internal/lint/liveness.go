package lint

import (
	"fmt"
	"go/types"
	"strings"
)

// Module-wide liveness rules. Both run over the use graph built in
// usegraph.go rather than per package:
//
//   - config-liveness: every exported field of the parameter structs
//     listed in `structs config-liveness` must be read by code in — or
//     transitively called from — the `readers config-liveness`
//     packages. A knob that is only written by defaults (or read by
//     nothing but tests, which nubalint never loads) is a finding.
//
//   - metrics-liveness: every exported counter field of the structs
//     listed in `structs metrics-liveness` must be written from the
//     `writers metrics-liveness` packages (a never-incremented counter
//     is "dead") and read from the `readers metrics-liveness` reporting
//     path (a never-reported counter is "unreported"). The two
//     failures are distinct findings.
//
// "Transitively called from" means the reachability closure over the
// use graph's call edges: a read inside config's own NoCPortBytes
// helper counts because internal/noc calls the helper, while a read
// that only tests can reach does not.

// progCtx bundles what a module-wide rule needs: the loaded program,
// policy, lazily built use graph, and the suppression-aware emitter.
type progCtx struct {
	prog    *Program
	pol     *Policy
	emitPos emitFunc

	graph *useGraph
	// shard caches the shard-safety analysis (shardsafety.go), built
	// once and shared by the three shard rules and -shardmap.
	shard    *shardAnalysis
	shardErr error
}

func (c *progCtx) useGraph() *useGraph {
	if c.graph == nil {
		c.graph = buildUseGraph(c.prog)
	}
	return c.graph
}

// resolveStruct maps a policy struct spec "internal/config.Config" (or
// ".Result" for the module root) to its *types.Struct. The spec's
// package must be among the loaded packages.
func (c *progCtx) resolveStruct(spec string) (*types.Struct, error) {
	dot := strings.LastIndex(spec, ".")
	if dot < 0 {
		return nil, fmt.Errorf("struct spec %q is not of the form pkg.Type", spec)
	}
	pkgRel, typeName := spec[:dot], spec[dot+1:]
	if pkgRel == "" {
		pkgRel = "."
	}
	for _, pkg := range c.prog.Pkgs {
		if pkg.RelName() != pkgRel {
			continue
		}
		obj := pkg.Types.Scope().Lookup(typeName)
		if obj == nil {
			return nil, fmt.Errorf("struct spec %q: no type %s in package %s", spec, typeName, pkgRel)
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("struct spec %q: %s is not a struct type", spec, typeName)
		}
		return st, nil
	}
	return nil, fmt.Errorf("struct spec %q: package %s is not among the loaded packages", spec, pkgRel)
}

// --- config-liveness --------------------------------------------------

func checkConfigLiveness(c *progCtx) error {
	specs := c.pol.Structs(RuleConfigLive)
	if len(specs) == 0 {
		return nil
	}
	readers := c.pol.Readers(RuleConfigLive)
	g := c.useGraph()
	reach := g.reachableFrom(readers)
	for _, spec := range specs {
		st, err := c.resolveStruct(spec)
		if err != nil {
			return fmt.Errorf("config-liveness: %w", err)
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			if !g.hasRead(f, reach) {
				c.emitPos(f.Pos(), RuleConfigLive,
					fmt.Sprintf("config knob %s.%s is never read by a simulator package (readers: %s); wire it into the model or delete it",
						spec, f.Name(), strings.Join(readers, " ")))
			}
		}
	}
	return nil
}

// --- metrics-liveness -------------------------------------------------

func checkMetricsLiveness(c *progCtx) error {
	specs := c.pol.Structs(RuleMetricsLive)
	if len(specs) == 0 {
		return nil
	}
	g := c.useGraph()
	writeReach := g.reachableFrom(c.pol.Writers(RuleMetricsLive))
	readReach := g.reachableFrom(c.pol.Readers(RuleMetricsLive))
	for _, spec := range specs {
		st, err := c.resolveStruct(spec)
		if err != nil {
			return fmt.Errorf("metrics-liveness: %w", err)
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			switch {
			case !g.hasWrite(f, writeReach):
				c.emitPos(f.Pos(), RuleMetricsLive,
					fmt.Sprintf("counter %s.%s is never written by a simulator package (dead counter); increment it or remove it",
						spec, f.Name()))
			case !g.hasRead(f, readReach):
				c.emitPos(f.Pos(), RuleMetricsLive,
					fmt.Sprintf("counter %s.%s is written but never read by the reporting path (unreported counter); report it or remove it",
						spec, f.Name()))
			}
		}
	}
	return nil
}
