// Package metrics collects the statistics the NUBA paper reports: IPC,
// perceived memory bandwidth (replies/cycle), L1 miss breakdowns into
// local vs. remote vs. replicated accesses, LLC hit rates, NoC traffic and
// page-sharing histograms (Figure 3).
package metrics

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Stats aggregates the counters of one simulation run. Components hold a
// pointer to the run's Stats and bump fields directly; everything is a
// plain int64/float64 so there is no synchronization. Under the serial
// engines a run has exactly one Stats; the partition-parallel engine
// gives each partition its own shard (each still written by a single
// goroutine) and folds them with Add, which is exact because every
// counter is integer accumulation.
type Stats struct {
	// Cycles is the total simulated core cycles.
	// nubaunit: cycles
	Cycles int64
	// Instructions is the number of warp instructions executed
	// (one warp instruction counts once, not 32 times).
	Instructions int64
	// ThreadInstructions counts per-thread instructions (warp size times
	// active lanes), the unit the paper's "1 billion instructions" uses.
	ThreadInstructions int64

	// L1Accesses / L1Hits / L1Misses count line-granularity L1 lookups.
	L1Accesses int64
	L1Hits     int64
	L1Misses   int64

	// Breakdown of L1 misses by where they were serviced (Figure 9).
	LocalAccesses      int64 // serviced by a local LLC slice / channel
	RemoteAccesses     int64 // crossed the inter-partition NoC
	ReplicatedAccesses int64 // serviced through a local replica (subset of Local)

	// LLCAccesses / LLCHits / LLCMisses count LLC tag lookups.
	LLCAccesses int64
	LLCHits     int64
	LLCMisses   int64

	// Replies is the number of data replies delivered to SMs; Replies per
	// cycle is the paper's "perceived bandwidth" metric (Figure 8).
	Replies int64

	// DRAMReads / DRAMWrites count 128 B DRAM data bursts.
	DRAMReads  int64
	DRAMWrites int64
	// DRAMRowHits / DRAMRowMisses classify bank activity.
	DRAMRowHits   int64
	DRAMRowMisses int64

	// NoCFlits is the total serialization cycles consumed on NoC ports;
	// NoCBytes the payload bytes; both feed the NoC energy model.
	NoCFlits int64 // nubaunit: cycles
	NoCBytes int64 // nubaunit: bytes
	// LocalLinkBytes is traffic on NUBA point-to-point links (not NoC).
	// nubaunit: bytes
	LocalLinkBytes int64

	// CoherenceInvalidations counts SM-side UBA cross-partition
	// invalidations; CoherenceTraffic their bytes.
	CoherenceInvalidations int64
	CoherenceTraffic       int64 // nubaunit: bytes

	// PageFaults is the number of first-touch page faults taken;
	// PageMigrations counts pages moved by the migration policy;
	// PageReplicas counts page-granularity replicas created (§7.6).
	PageFaults     int64
	PageMigrations int64
	PageReplicas   int64

	// TLBAccesses/TLBMisses for the L1 TLB; L2TLBAccesses/L2TLBMisses for
	// the shared second-level TLB; PageWalks completed walks.
	TLBAccesses   int64
	TLBMisses     int64
	L2TLBAccesses int64
	L2TLBMisses   int64
	PageWalks     int64

	// MDRDecisions counts epoch evaluations; MDREpochsReplicating those
	// that chose replication.
	MDRDecisions         int64
	MDREpochsReplicating int64

	// MemLatencySum/MemLatencyCount give average round-trip latency of L1
	// misses in cycles.
	MemLatencySum   int64 // nubaunit: cycles
	MemLatencyCount int64

	// Energy in nanojoules, filled by the energy model at the end of a run.
	NoCEnergyNJ    float64 // nubaunit: nJ
	DRAMEnergyNJ   float64 // nubaunit: nJ
	CoreEnergyNJ   float64 // nubaunit: nJ
	LLCEnergyNJ    float64 // nubaunit: nJ
	StaticEnergyNJ float64 // nubaunit: nJ
}

// Add accumulates o into s field by field (int64 counters and float64
// energy terms alike). It is the commutative merge the shard map
// classifies metrics state under: folding per-partition shards in any
// order yields the same totals, bit-exactly for the integer counters
// (the float64 energy fields are filled once at end of run, after
// folding, so they never mix partial sums).
func (s *Stats) Add(o *Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(f.Int() + ov.Field(i).Int())
		case reflect.Float64:
			f.SetFloat(f.Float() + ov.Field(i).Float())
		}
	}
}

// IPC returns warp instructions per cycle across the whole GPU.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// RepliesPerCycle returns the perceived memory bandwidth metric of
// Figure 8: data replies delivered to SMs per core cycle.
func (s *Stats) RepliesPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Replies) / float64(s.Cycles)
}

// L1MissRate returns misses per L1 access.
func (s *Stats) L1MissRate() float64 {
	if s.L1Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.L1Accesses)
}

// LLCHitRate returns hits per LLC access.
func (s *Stats) LLCHitRate() float64 {
	if s.LLCAccesses == 0 {
		return 0
	}
	return float64(s.LLCHits) / float64(s.LLCAccesses)
}

// LocalFraction returns the fraction of serviced L1 misses that stayed
// within their partition (Figure 9's "local" share).
func (s *Stats) LocalFraction() float64 {
	t := s.LocalAccesses + s.RemoteAccesses
	if t == 0 {
		return 0
	}
	return float64(s.LocalAccesses) / float64(t)
}

// AvgMemLatency returns the mean L1-miss round-trip latency in cycles.
func (s *Stats) AvgMemLatency() float64 {
	if s.MemLatencyCount == 0 {
		return 0
	}
	return float64(s.MemLatencySum) / float64(s.MemLatencyCount)
}

// TotalEnergyNJ returns the sum of all energy components.
func (s *Stats) TotalEnergyNJ() float64 {
	return s.NoCEnergyNJ + s.DRAMEnergyNJ + s.CoreEnergyNJ + s.LLCEnergyNJ + s.StaticEnergyNJ
}

// String formats the headline statistics on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d ipc=%.3f replies/cyc=%.3f l1miss=%.3f llchit=%.3f local=%.3f",
		s.Cycles, s.IPC(), s.RepliesPerCycle(), s.L1MissRate(), s.LLCHitRate(), s.LocalFraction())
}

// SharingHistogram records, for each memory page, how many distinct SMs
// accessed it — the raw data behind Figure 3.
type SharingHistogram struct {
	pageSMs map[uint64]map[int]struct{}
}

// NewSharingHistogram returns an empty histogram.
func NewSharingHistogram() *SharingHistogram {
	return &SharingHistogram{pageSMs: make(map[uint64]map[int]struct{})}
}

// Touch records that sm accessed page (a virtual page number).
func (h *SharingHistogram) Touch(page uint64, sm int) {
	set, ok := h.pageSMs[page]
	if !ok {
		set = make(map[int]struct{}, 2)
		h.pageSMs[page] = set
	}
	set[sm] = struct{}{}
}

// Merge folds o's page→sharer sets into h. Set union is commutative
// and idempotent, so merging per-partition shards in any order yields
// the same histogram the serial engines build in place.
func (h *SharingHistogram) Merge(o *SharingHistogram) {
	//nubalint:ignore nondet-map-range order-independent merge (set union commutes)
	for page, set := range o.pageSMs {
		dst, ok := h.pageSMs[page]
		if !ok {
			dst = make(map[int]struct{}, len(set))
			h.pageSMs[page] = dst
		}
		//nubalint:ignore nondet-map-range order-independent merge (set union commutes)
		for sm := range set {
			dst[sm] = struct{}{}
		}
	}
}

// Pages returns the number of distinct pages touched.
func (h *SharingHistogram) Pages() int { return len(h.pageSMs) }

// Buckets classifies pages by sharer count into the paper's Figure 3
// buckets: 1, 2–10, 11–25, 26–64 SMs. Fractions sum to 1 over touched pages.
func (h *SharingHistogram) Buckets() (one, twoTo10, elevenTo25, over25 float64) {
	n := len(h.pageSMs)
	if n == 0 {
		return 0, 0, 0, 0
	}
	var c1, c2, c3, c4 int
	//nubalint:ignore nondet-map-range order-independent aggregation (bucket counts commute)
	for _, set := range h.pageSMs {
		switch k := len(set); {
		case k <= 1:
			c1++
		case k <= 10:
			c2++
		case k <= 25:
			c3++
		default:
			c4++
		}
	}
	f := 1.0 / float64(n)
	return float64(c1) * f, float64(c2) * f, float64(c3) * f, float64(c4) * f
}

// SharedFraction returns the fraction of pages accessed by more than one SM.
func (h *SharingHistogram) SharedFraction() float64 {
	one, _, _, _ := h.Buckets()
	if h.Pages() == 0 {
		return 0
	}
	return 1 - one
}

// MaxSharers returns the largest sharer count observed.
func (h *SharingHistogram) MaxSharers() int {
	m := 0
	//nubalint:ignore nondet-map-range order-independent aggregation (max commutes)
	for _, set := range h.pageSMs {
		if len(set) > m {
			m = len(set)
		}
	}
	return m
}

// Table is a minimal fixed-width text table used by the experiment harness
// to print paper-style result rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// HarmonicMeanSpeedup implements the paper's averaging methodology:
// average speedup is the harmonic mean of per-benchmark speedups, reported
// as a percentage improvement.
func HarmonicMeanSpeedup(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	var inv float64
	for _, s := range speedups {
		if s <= 0 {
			return 0
		}
		inv += 1 / s
	}
	return float64(len(speedups)) / inv
}

// SortedKeys returns map keys in sorted order, for deterministic printing.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
