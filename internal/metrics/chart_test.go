package metrics

import (
	"strings"
	"testing"
)

// A flat series used to divide by a zero y range, turning every axis
// label into NaN; it must instead sit on the middle row with the
// constant labeled.
func TestLineChartFlatSeries(t *testing.T) {
	c := LineChart{Title: "flat", Width: 16, Height: 5}
	for i := 0; i < 8; i++ {
		c.Add(float64(i*1000), 0.9981)
	}
	out := c.String()
	if strings.Contains(out, "NaN") {
		t.Fatalf("flat series rendered NaN labels:\n%s", out)
	}
	if got := strings.Count(out, "0.9981"); got != 3 {
		t.Fatalf("want the constant on all 3 axis ticks, got %d:\n%s", got, out)
	}
	lines := strings.Split(out, "\n")
	// Title, then 5 grid rows; the dots must all be on the middle row.
	for i, row := range lines[1 : 1+5] {
		hasDot := strings.Contains(row, "*")
		if wantDot := i == 2; hasDot != wantDot {
			t.Fatalf("row %d: dot=%v, want %v:\n%s", i, hasDot, wantDot, out)
		}
	}
}

func TestLineChartSingleSample(t *testing.T) {
	c := LineChart{Height: 4}
	c.Add(5, 42)
	out := c.String()
	if strings.Contains(out, "NaN") || !strings.Contains(out, "42") {
		t.Fatalf("single sample mis-rendered:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	c := LineChart{Title: "empty"}
	if got := c.String(); got != "empty (no data)\n" {
		t.Fatalf("empty chart = %q", got)
	}
}

func TestLineChartSlope(t *testing.T) {
	c := LineChart{Width: 10, Height: 5}
	for i := 0; i <= 10; i++ {
		c.Add(float64(i), float64(i))
	}
	out := c.String()
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[4]
	// Max y (10) top-right, min y (0) bottom-left; labels on both.
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") || !strings.Contains(top, "10") {
		t.Fatalf("top row wrong: %q\n%s", top, out)
	}
	if !strings.Contains(bottom, "|*") || !strings.Contains(bottom, "0") {
		t.Fatalf("bottom row wrong: %q\n%s", bottom, out)
	}
}
