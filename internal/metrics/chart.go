package metrics

import (
	"fmt"
	"math"
	"strings"
)

// DetailTable renders the single-run deep-dive table: the secondary
// counters that the headline Stats.String line omits — per-thread
// instruction counts, the L1/TLB hit breakdowns, NoC serialization and
// UBA coherence traffic. Every Stats counter must be consumed by a
// reporting surface (metrics-liveness in lint.policy); this table is
// that surface for the counters below.
func DetailTable(s *Stats) string {
	t := &Table{Header: []string{"counter", "value", "note"}}
	row := func(name string, v int64, note string) {
		t.AddRow(name, fmt.Sprintf("%d", v), note)
	}
	rate := func(part, whole int64) string {
		if whole == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(part)/float64(whole))
	}
	row("thread_instructions", s.ThreadInstructions, "per-lane instruction count")
	row("l1_hits", s.L1Hits, "hit rate "+rate(s.L1Hits, s.L1Accesses))
	row("llc_misses", s.LLCMisses, "miss rate "+rate(s.LLCMisses, s.LLCAccesses))
	row("noc_flits", s.NoCFlits, "port serialization cycles")
	row("coherence_invalidations", s.CoherenceInvalidations, "UBA cross-partition invalidations")
	row("coherence_traffic_bytes", s.CoherenceTraffic, "invalidation payload bytes")
	row("l1_tlb_accesses", s.TLBAccesses, "miss rate "+rate(s.TLBMisses, s.TLBAccesses))
	row("l1_tlb_misses", s.TLBMisses, "")
	row("l2_tlb_accesses", s.L2TLBAccesses, "miss rate "+rate(s.L2TLBMisses, s.L2TLBAccesses))
	row("l2_tlb_misses", s.L2TLBMisses, "")
	return t.String()
}

// BarChart renders a horizontal ASCII bar chart, the terminal stand-in
// for the paper's figures. Negative values extend left of the axis.
type BarChart struct {
	Title string
	// Width is the maximum bar length in characters (default 40).
	Width  int
	labels []string
	values []float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.values) == 0 {
		return c.Title + " (no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var maxAbs float64
	labelW := 0
	for i, v := range c.values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, v := range c.values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		bar := strings.Repeat("#", n)
		if v < 0 {
			fmt.Fprintf(&b, "%-*s -|%s %.1f\n", labelW, c.labels[i], bar, v)
		} else {
			fmt.Fprintf(&b, "%-*s  |%s %.1f\n", labelW, c.labels[i], bar, v)
		}
	}
	return b.String()
}
