package metrics

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart, the terminal stand-in
// for the paper's figures. Negative values extend left of the axis.
type BarChart struct {
	Title string
	// Width is the maximum bar length in characters (default 40).
	Width  int
	labels []string
	values []float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.values) == 0 {
		return c.Title + " (no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var maxAbs float64
	labelW := 0
	for i, v := range c.values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, v := range c.values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		bar := strings.Repeat("#", n)
		if v < 0 {
			fmt.Fprintf(&b, "%-*s -|%s %.1f\n", labelW, c.labels[i], bar, v)
		} else {
			fmt.Fprintf(&b, "%-*s  |%s %.1f\n", labelW, c.labels[i], bar, v)
		}
	}
	return b.String()
}
