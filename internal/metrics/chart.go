package metrics

import (
	"fmt"
	"math"
	"strings"
)

// DetailTable renders the single-run deep-dive table: the secondary
// counters that the headline Stats.String line omits — per-thread
// instruction counts, the L1/TLB hit breakdowns, NoC serialization and
// UBA coherence traffic. Every Stats counter must be consumed by a
// reporting surface (metrics-liveness in lint.policy); this table is
// that surface for the counters below.
func DetailTable(s *Stats) string {
	t := &Table{Header: []string{"counter", "value", "note"}}
	row := func(name string, v int64, note string) {
		t.AddRow(name, fmt.Sprintf("%d", v), note)
	}
	rate := func(part, whole int64) string {
		if whole == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(part)/float64(whole))
	}
	row("thread_instructions", s.ThreadInstructions, "per-lane instruction count")
	row("l1_hits", s.L1Hits, "hit rate "+rate(s.L1Hits, s.L1Accesses))
	row("llc_misses", s.LLCMisses, "miss rate "+rate(s.LLCMisses, s.LLCAccesses))
	row("noc_flits", s.NoCFlits, "port serialization cycles")
	row("coherence_invalidations", s.CoherenceInvalidations, "UBA cross-partition invalidations")
	row("coherence_traffic_bytes", s.CoherenceTraffic, "invalidation payload bytes")
	row("l1_tlb_accesses", s.TLBAccesses, "miss rate "+rate(s.TLBMisses, s.TLBAccesses))
	row("l1_tlb_misses", s.TLBMisses, "")
	row("l2_tlb_accesses", s.L2TLBAccesses, "miss rate "+rate(s.L2TLBMisses, s.L2TLBAccesses))
	row("l2_tlb_misses", s.L2TLBMisses, "")
	return t.String()
}

// LineChart renders an ASCII time series: samples are bucketed into
// Width columns by x and drawn as one dot per column at the scaled mean
// y. It is the terminal stand-in for the paper's over-time figures
// (e.g. the Fig. 9-style NPB curve from an epoch trace).
type LineChart struct {
	Title string
	// Width and Height are the plot area in characters (default 64x10).
	Width, Height int
	xs, ys        []float64
}

// Add appends one (x, y) sample. Samples need not arrive ordered.
func (c *LineChart) Add(x, y float64) {
	c.xs = append(c.xs, x)
	c.ys = append(c.ys, y)
}

// String renders the chart. A flat series (max y == min y, including
// all samples equal or a single sample) is drawn on the middle row with
// the constant labeled on every axis tick — scaling by the zero range
// would otherwise turn every row label into NaN.
func (c *LineChart) String() string {
	if len(c.xs) == 0 {
		return c.Title + " (no data)\n"
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 10
	}
	minX, maxX := c.xs[0], c.xs[0]
	minY, maxY := c.ys[0], c.ys[0]
	for i := range c.xs {
		minX, maxX = math.Min(minX, c.xs[i]), math.Max(maxX, c.xs[i])
		minY, maxY = math.Min(minY, c.ys[i]), math.Max(maxY, c.ys[i])
	}
	// Bucket samples into columns (mean y per column).
	sum := make([]float64, w)
	cnt := make([]int, w)
	for i, x := range c.xs {
		col := 0
		if maxX > minX {
			col = int((x - minX) / (maxX - minX) * float64(w-1))
		}
		sum[col] += c.ys[i]
		cnt[col]++
	}
	// rowOf maps a y value to a grid row (0 = top). The flat-series
	// guard: with a zero y range every value sits on the middle row.
	rowOf := func(v float64) int {
		if maxY == minY {
			return h / 2
		}
		r := int(math.Round((maxY - v) / (maxY - minY) * float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r > h-1 {
			r = h - 1
		}
		return r
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for col := 0; col < w; col++ {
		if cnt[col] == 0 {
			continue
		}
		grid[rowOf(sum[col]/float64(cnt[col]))][col] = '*'
	}
	// labelOf gives each row's axis value; for a flat series that is
	// the constant itself, not a divided-by-zero artifact.
	labelOf := func(r int) float64 {
		if maxY == minY {
			return minY
		}
		return maxY - (maxY-minY)*float64(r)/float64(h-1)
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for r := 0; r < h; r++ {
		label := ""
		if r == 0 || r == h-1 || r == h/2 {
			label = fmt.Sprintf("%.4g", labelOf(r))
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", w/2, minX, w-w/2, maxX)
	return b.String()
}

// BarChart renders a horizontal ASCII bar chart, the terminal stand-in
// for the paper's figures. Negative values extend left of the axis.
type BarChart struct {
	Title string
	// Width is the maximum bar length in characters (default 40).
	Width  int
	labels []string
	values []float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.values) == 0 {
		return c.Title + " (no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var maxAbs float64
	labelW := 0
	for i, v := range c.values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for i, v := range c.values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		bar := strings.Repeat("#", n)
		if v < 0 {
			fmt.Fprintf(&b, "%-*s -|%s %.1f\n", labelW, c.labels[i], bar, v)
		} else {
			fmt.Fprintf(&b, "%-*s  |%s %.1f\n", labelW, c.labels[i], bar, v)
		}
	}
	return b.String()
}
