package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestStatsDerived(t *testing.T) {
	s := &Stats{
		Cycles:       1000,
		Instructions: 2500,
		Replies:      400,
		L1Accesses:   100, L1Misses: 25,
		LLCAccesses: 50, LLCHits: 30,
		LocalAccesses: 60, RemoteAccesses: 40,
		MemLatencySum: 5000, MemLatencyCount: 10,
	}
	if got := s.IPC(); got != 2.5 {
		t.Fatalf("IPC=%v", got)
	}
	if got := s.RepliesPerCycle(); got != 0.4 {
		t.Fatalf("replies/cyc=%v", got)
	}
	if got := s.L1MissRate(); got != 0.25 {
		t.Fatalf("l1miss=%v", got)
	}
	if got := s.LLCHitRate(); got != 0.6 {
		t.Fatalf("llchit=%v", got)
	}
	if got := s.LocalFraction(); got != 0.6 {
		t.Fatalf("local=%v", got)
	}
	if got := s.AvgMemLatency(); got != 500 {
		t.Fatalf("lat=%v", got)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	s := &Stats{}
	for _, v := range []float64{s.IPC(), s.RepliesPerCycle(), s.L1MissRate(),
		s.LLCHitRate(), s.LocalFraction(), s.AvgMemLatency()} {
		if v != 0 {
			t.Fatalf("zero stats produced %v", v)
		}
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSharingHistogramBuckets(t *testing.T) {
	h := NewSharingHistogram()
	// Page 0: 1 SM. Page 1: 5 SMs. Page 2: 20 SMs. Page 3: 40 SMs.
	h.Touch(0, 0)
	h.Touch(0, 0) // duplicate touch: still one sharer
	for sm := 0; sm < 5; sm++ {
		h.Touch(1, sm)
	}
	for sm := 0; sm < 20; sm++ {
		h.Touch(2, sm)
	}
	for sm := 0; sm < 40; sm++ {
		h.Touch(3, sm)
	}
	one, two, eleven, over := h.Buckets()
	if one != 0.25 || two != 0.25 || eleven != 0.25 || over != 0.25 {
		t.Fatalf("buckets %v %v %v %v", one, two, eleven, over)
	}
	if h.SharedFraction() != 0.75 {
		t.Fatalf("shared %v", h.SharedFraction())
	}
	if h.MaxSharers() != 40 {
		t.Fatalf("max %d", h.MaxSharers())
	}
	if h.Pages() != 4 {
		t.Fatalf("pages %d", h.Pages())
	}
}

func TestSharingHistogramEmpty(t *testing.T) {
	h := NewSharingHistogram()
	if h.SharedFraction() != 0 || h.MaxSharers() != 0 || h.Pages() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHarmonicMeanSpeedup(t *testing.T) {
	// HM of {2, 2} is 2.
	if got := HarmonicMeanSpeedup([]float64{2, 2}); got != 2 {
		t.Fatalf("HM=%v", got)
	}
	// HM of {1, 2} is 4/3.
	if got := HarmonicMeanSpeedup([]float64{1, 2}); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("HM=%v", got)
	}
	// HM <= arithmetic mean always.
	vals := []float64{0.5, 1.3, 2.7, 0.9}
	hm := HarmonicMeanSpeedup(vals)
	var am float64
	for _, v := range vals {
		am += v
	}
	am /= float64(len(vals))
	if hm > am {
		t.Fatalf("HM %v > AM %v", hm, am)
	}
	if HarmonicMeanSpeedup(nil) != 0 {
		t.Fatal("empty HM not 0")
	}
	if HarmonicMeanSpeedup([]float64{0}) != 0 {
		t.Fatal("non-positive speedup should yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"A", "LongHeader"}}
	tab.AddRow("x", "1")
	tab.AddRow("longcell", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "LongHeader") {
		t.Fatal("header missing")
	}
	// Columns aligned: all lines equal length.
	for _, l := range lines[1:] {
		if len(l) > len(lines[0])+2 {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("keys %v", ks)
	}
}

func TestTotalEnergy(t *testing.T) {
	s := &Stats{NoCEnergyNJ: 1, DRAMEnergyNJ: 2, CoreEnergyNJ: 3, LLCEnergyNJ: 4, StaticEnergyNJ: 5}
	if s.TotalEnergyNJ() != 15 {
		t.Fatalf("total %v", s.TotalEnergyNJ())
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "demo", Width: 10}
	c.Add("aa", 10)
	c.Add("b", -5)
	out := c.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "##########") {
		t.Fatalf("chart:\n%s", out)
	}
	if !strings.Contains(out, "-|#####") {
		t.Fatalf("negative bar missing:\n%s", out)
	}
	empty := &BarChart{}
	if !strings.Contains(empty.String(), "no data") {
		t.Fatal("empty chart")
	}
	zero := &BarChart{}
	zero.Add("z", 0)
	_ = zero.String() // must not divide by zero
}
