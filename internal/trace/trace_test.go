package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func newTestTracer() (*Tracer, *bytes.Buffer, *bytes.Buffer) {
	var series, chrome bytes.Buffer
	t := New(Options{EpochCycles: 1000, Series: &series, Chrome: &chrome}, 1.4)
	return t, &series, &chrome
}

func TestOptionsEnabled(t *testing.T) {
	if (Options{}).Enabled() {
		t.Fatal("zero Options must be disabled")
	}
	if !(Options{Series: &bytes.Buffer{}}).Enabled() || !(Options{Chrome: &bytes.Buffer{}}).Enabled() {
		t.Fatal("either sink alone must enable tracing")
	}
}

func TestDefaults(t *testing.T) {
	tr := New(Options{Series: &bytes.Buffer{}}, 0)
	if tr.EpochCycles() != 20000 {
		t.Fatalf("default epoch = %d, want 20000", tr.EpochCycles())
	}
}

// The NDJSON byte stream is a documented contract (docs/OBSERVABILITY.md):
// field order and float precision are pinned.
func TestSeriesExactBytes(t *testing.T) {
	tr, series, _ := newTestTracer()
	tr.Begin(Meta{Bench: "BP", Config: "NUBA", Partitions: 2})
	tr.EpochSample(EpochSample{
		Epoch: 1, Cycle: 1000, Cycles: 1000,
		NPB: 0.5, PartBalance: []float64{0.5, 1},
		LMROcc: 1.25, NoCOcc: 3, NoCUtil: 0.25, NoCBytes: 4096,
		LLCHitRate: 0.75, LLCMissRate: 0.25, RepHitRate: 0.1,
		RepliesPerCycle: 2, LocalFrac: 0.9,
		DRAMGroupBusy: []float64{0.5, 0.25},
		HaveMDR:       true, MDRReplicating: true,
	})
	tr.MDRDecision(MDRDecision{
		Cycle: 1000, Epoch: 1, Replicating: true, Next: false,
		PredNoRepBPC: 10, PredFullRepBPC: 9.5, ObservedBPC: 8, ApplyAt: 1116,
	})
	tr.MDRDecision(MDRDecision{Cycle: 2000, Epoch: 2, Replicating: false, Next: false, Held: true, ObservedBPC: 1})
	tr.KernelSpan("gemm", 1, 0, 500)
	tr.PageMigration(700, 42, 0, 1)
	tr.PageReplication(800, 43, 1)
	tr.ReplicaCollapse(900, 43)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	want := strings.Join([]string{
		`{"type":"meta","schema":"nuba-trace/1","bench":"BP","config":"NUBA","partitions":2,"epoch_cycles":1000,"core_ghz":1.400000}`,
		`{"type":"epoch","epoch":1,"cycle":1000,"cycles":1000,"npb":0.500000,"part_balance":[0.500000,1.000000],"lmr_occ":1.250000,"rmr_occ":0.000000,"noc_occ":3,"noc_util":0.250000,"noc_bytes":4096,"llc_hit_rate":0.750000,"llc_miss_rate":0.250000,"rep_hit_rate":0.100000,"replies_per_cycle":2.000000,"local_frac":0.900000,"dram_group_busy":[0.500000,0.250000],"mdr_replicating":true}`,
		`{"type":"mdr","cycle":1000,"epoch":1,"decision":"no-rep","held":false,"pred_norep_bpc":10.000000,"pred_fullrep_bpc":9.500000,"apply_at":1116,"observed_bpc":8.000000}`,
		`{"type":"mdr","cycle":2000,"epoch":2,"decision":"no-rep","held":true,"observed_bpc":1.000000}`,
		`{"type":"kernel","name":"gemm","seq":1,"cycle":0,"end_cycle":500}`,
		`{"type":"migration","cycle":700,"vpn":42,"from":0,"to":1}`,
		`{"type":"page_replication","cycle":800,"vpn":43,"part":1}`,
		`{"type":"collapse","cycle":900,"vpn":43}`,
	}, "\n") + "\n"
	if got := series.String(); got != want {
		t.Errorf("series stream mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestChromeValidTraceEvents(t *testing.T) {
	tr, _, chrome := newTestTracer()
	tr.Begin(Meta{Bench: "BP", Config: "NUBA", Partitions: 2})
	tr.KernelSpan("gemm", 1, 0, 1400) // 1 µs at 1.4 GHz
	tr.EpochSample(EpochSample{Epoch: 1, Cycle: 1000, Cycles: 1000, NPB: 1})
	tr.MDRDecision(MDRDecision{Cycle: 1000, Epoch: 1, Replicating: true, Next: true,
		PredNoRepBPC: 1, PredFullRepBPC: 2, ObservedBPC: 1, ApplyAt: 1116})
	tr.PageMigration(500, 7, 0, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatalf("chrome sink is not a JSON array: %v\n%s", err, chrome.String())
	}
	phases := map[string]int{}
	for _, ev := range events {
		for _, k := range []string{"name", "ph", "pid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		phases[ev["ph"].(string)]++
	}
	// 4 metadata, 1 kernel span + 1 MDR span, 2 counters, 1 instant.
	if phases["M"] != 4 || phases["X"] != 2 || phases["C"] != 2 || phases["i"] != 1 {
		t.Fatalf("phase counts = %v", phases)
	}
	// The kernel span: 1400 cycles at 1.4 GHz = 1.000 µs.
	for _, ev := range events {
		if ev["name"] == "kernel gemm" {
			if ev["dur"] != 1.0 {
				t.Fatalf("kernel dur = %v, want 1.0 µs", ev["dur"])
			}
		}
	}
}

func TestChromeEmptyIsValidArray(t *testing.T) {
	var chrome bytes.Buffer
	tr := New(Options{Chrome: &chrome}, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty chrome sink = %q (err %v), want []", chrome.String(), err)
	}
}

type failWriter struct{ err error }

func (w failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestWriteErrorSurfacedByClose(t *testing.T) {
	sinkErr := errors.New("disk full")
	tr := New(Options{Series: failWriter{sinkErr}}, 1)
	tr.Begin(Meta{})
	tr.KernelSpan("k", 1, 0, 1) // must not panic after the error
	if err := tr.Close(); !errors.Is(err, sinkErr) {
		t.Fatalf("Close() = %v, want %v", err, sinkErr)
	}
}

func TestNonFiniteFloatsDegradeToZero(t *testing.T) {
	tr, series, _ := newTestTracer()
	tr.EpochSample(EpochSample{Epoch: 1, Cycle: 1, Cycles: 1, NPB: math.NaN(), LLCHitRate: math.Inf(1)})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(series.String()), &v); err != nil {
		t.Fatalf("non-finite input broke the JSON: %v\n%s", err, series.String())
	}
	if v["npb"] != 0.0 || v["llc_hit_rate"] != 0.0 {
		t.Fatalf("non-finite values = %v / %v, want 0", v["npb"], v["llc_hit_rate"])
	}
}
