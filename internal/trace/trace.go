// Package trace is the simulator's observability layer: epoch-resolution
// time series of the mechanisms the paper's Figures 9-11 reason about
// (NPB, LMR/RMR occupancy, NoC utilization, LLC hit/miss/replication
// rates, MDR decisions with predicted vs. observed bandwidth, DRAM
// bank-group busy fractions) plus a Chrome trace_event export of coarse
// spans (kernel launches, MDR epochs, page migrations) loadable in
// Perfetto or chrome://tracing.
//
// The emitted schema is a documented contract: docs/OBSERVABILITY.md
// specifies every event type, field and unit, and the repo's trace tests
// assert that everything emitted here appears there. Field order is
// pinned by hand-rolled JSON (never encoding/json over a map) and floats
// are formatted at fixed precision, so for a given (Config, Benchmark)
// the byte stream is identical across runs and worker counts.
//
// Tracing is strictly passive: every value derives from simulated state
// (cycle counts, component counters), never from the wall clock, so an
// attached tracer cannot perturb the simulation. With no tracer attached
// the core pays one nil check per cycle.
package trace

import (
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/nuba-gpu/nuba/internal/sim"
)

// SchemaVersion identifies the emitted schema; it is the first field of
// the NDJSON meta record and changes only with docs/OBSERVABILITY.md.
const SchemaVersion = "nuba-trace/1"

// Options configure the sinks of one traced run. A nil writer disables
// that sink; both nil means tracing is off.
type Options struct {
	// EpochCycles is the sampling interval of the time series in core
	// cycles. Zero or negative selects the configuration's MDR epoch
	// (the natural resolution of the paper's temporal mechanisms).
	EpochCycles sim.Cycle
	// Series receives the NDJSON epoch time series (one JSON object per
	// line; see docs/OBSERVABILITY.md).
	Series io.Writer
	// Chrome receives a Chrome trace_event JSON array of coarse spans,
	// loadable in Perfetto or chrome://tracing.
	Chrome io.Writer
}

// Enabled reports whether the options select any sink.
func (o Options) Enabled() bool { return o.Series != nil || o.Chrome != nil }

// Tracer writes trace events to the configured sinks. The core calls its
// emit methods from the cycle loop; all state is derived from simulated
// time, so emission is deterministic. Tracer is not safe for concurrent
// use — each simulated System owns at most one.
type Tracer struct {
	epoch  sim.Cycle
	ghz    float64
	series io.Writer
	chrome io.Writer

	chromeEvents int
	lastMDREnd   sim.Cycle // start of the MDR epoch span being accumulated
	err          error     // first sink write error; surfaced by Close
}

// New returns a tracer over the given sinks. coreGHz converts cycles to
// the microseconds of the Chrome timeline. An EpochCycles of zero or
// less falls back to 20000 (the paper's MDR epoch).
func New(o Options, coreGHz float64) *Tracer {
	if o.EpochCycles <= 0 {
		o.EpochCycles = 20000
	}
	if coreGHz <= 0 {
		coreGHz = 1
	}
	return &Tracer{epoch: o.EpochCycles, ghz: coreGHz, series: o.Series, chrome: o.Chrome}
}

// EpochCycles returns the sampling interval.
func (t *Tracer) EpochCycles() sim.Cycle { return t.epoch }

// Close finishes the Chrome JSON array and returns the first write error
// encountered on either sink.
func (t *Tracer) Close() error {
	if t.chrome != nil && t.err == nil {
		if t.chromeEvents == 0 {
			t.write(t.chrome, "[]\n")
		} else {
			t.write(t.chrome, "\n]\n")
		}
	}
	return t.err
}

func (t *Tracer) write(w io.Writer, s string) {
	if t.err != nil {
		return
	}
	if _, err := io.WriteString(w, s); err != nil {
		t.err = err
	}
}

func (t *Tracer) emitSeries(r *rec) {
	if t.series == nil {
		return
	}
	t.write(t.series, r.close()+"\n")
}

func (t *Tracer) emitChrome(r *rec) {
	if t.chrome == nil {
		return
	}
	sep := ",\n"
	if t.chromeEvents == 0 {
		sep = "[\n"
	}
	t.chromeEvents++
	t.write(t.chrome, sep+r.close())
}

// us converts a core-cycle timestamp to Chrome-timeline microseconds.
func (t *Tracer) us(c sim.Cycle) float64 { return float64(c) / (t.ghz * 1000) }

// Meta identifies the traced run; emitted once, first.
type Meta struct {
	Bench      string // benchmark abbreviation (or a caller-chosen label)
	Config     string // Config.Name()
	Partitions int
}

// Begin emits the stream headers: the NDJSON meta record and the Chrome
// process/thread naming metadata. Call once, before any other event.
func (t *Tracer) Begin(m Meta) {
	r := newRec()
	r.str("type", "meta")
	r.str("schema", SchemaVersion)
	r.str("bench", m.Bench)
	r.str("config", m.Config)
	r.int("partitions", int64(m.Partitions))
	r.int("epoch_cycles", t.epoch)
	r.f6("core_ghz", t.ghz)
	t.emitSeries(r)

	t.chromeMeta("process_name", -1, "nubasim "+m.Bench+" on "+m.Config)
	t.chromeMeta("thread_name", tidKernels, "kernels")
	t.chromeMeta("thread_name", tidMDR, "MDR epochs")
	t.chromeMeta("thread_name", tidPlacement, "page placement")
}

// Chrome thread IDs: one lane per span family.
const (
	tidKernels   = 0
	tidMDR       = 1
	tidPlacement = 2
)

func (t *Tracer) chromeMeta(name string, tid int, value string) {
	r := newRec()
	r.str("name", name)
	r.str("ph", "M")
	r.int("pid", 0)
	if tid >= 0 {
		r.int("tid", int64(tid))
	}
	r.obj("args", func(a *rec) { a.str("name", value) })
	t.emitChrome(r)
}

// EpochSample is one sample of the epoch time series. Counters are
// deltas over the sampled window (Cycles long, shorter than EpochCycles
// only for the final partial sample); occupancies are instantaneous at
// the sample boundary.
type EpochSample struct {
	Epoch  int64     // 1-based sample ordinal
	Cycle  sim.Cycle // sample boundary (end of the window)
	Cycles int64     // window length in cycles

	NPB         float64   // Normalized Page Balance, Equation 1
	PartBalance []float64 // per-partition P_i / max P_j (NPB components)

	LMROcc float64 // mean LMR queue depth per LLC slice
	RMROcc float64 // mean RMR queue depth per LLC slice

	NoCOcc   int64   // messages buffered at crossbar inputs
	NoCUtil  float64 // fraction of nominal aggregate injection bandwidth
	NoCBytes int64   // payload bytes accepted by the NoC this window

	LLCHitRate      float64 // LLC hits / accesses this window
	LLCMissRate     float64
	RepHitRate      float64 // replica-served / (local+remote) accesses
	RepliesPerCycle float64 // data replies to SMs per cycle
	LocalFrac       float64 // local / (local+remote) accesses

	DRAMGroupBusy []float64 // per-bank-group data-bus busy fraction

	HaveMDR        bool // MDR controller active (gates MDRReplicating)
	MDRReplicating bool // replication active at the sample boundary
}

// EpochSample emits one time-series sample, plus Chrome counter tracks
// for NPB and perceived bandwidth.
func (t *Tracer) EpochSample(s EpochSample) {
	r := newRec()
	r.str("type", "epoch")
	r.int("epoch", s.Epoch)
	r.int("cycle", s.Cycle)
	r.int("cycles", s.Cycles)
	r.f6("npb", s.NPB)
	r.arrF6("part_balance", s.PartBalance)
	r.f6("lmr_occ", s.LMROcc)
	r.f6("rmr_occ", s.RMROcc)
	r.int("noc_occ", s.NoCOcc)
	r.f6("noc_util", s.NoCUtil)
	r.int("noc_bytes", s.NoCBytes)
	r.f6("llc_hit_rate", s.LLCHitRate)
	r.f6("llc_miss_rate", s.LLCMissRate)
	r.f6("rep_hit_rate", s.RepHitRate)
	r.f6("replies_per_cycle", s.RepliesPerCycle)
	r.f6("local_frac", s.LocalFrac)
	r.arrF6("dram_group_busy", s.DRAMGroupBusy)
	if s.HaveMDR {
		r.bool("mdr_replicating", s.MDRReplicating)
	}
	t.emitSeries(r)

	t.counter(s.Cycle, "npb", s.NPB)
	t.counter(s.Cycle, "replies_per_cycle", s.RepliesPerCycle)
}

func (t *Tracer) counter(now sim.Cycle, name string, v float64) {
	r := newRec()
	r.str("name", name)
	r.str("ph", "C")
	r.int("pid", 0)
	r.f3("ts", t.us(now))
	r.obj("args", func(a *rec) { a.f6(name, v) })
	t.emitChrome(r)
}

// MDRDecision records one epoch-boundary evaluation of the MDR
// controller: the two model predictions, the bandwidth actually
// observed over the ending epoch, and the decision taken.
type MDRDecision struct {
	Cycle       sim.Cycle // epoch boundary
	Epoch       int64     // decision ordinal (1-based)
	Replicating bool      // mode that ruled the ending epoch
	Next        bool      // decision for the next epoch
	Held        bool      // too few profile samples: prior decision kept

	PredNoRepBPC   float64   // ModelNoRep output, bytes/cycle (valid unless Held)
	PredFullRepBPC float64   // ModelFullRep output, bytes/cycle (valid unless Held)
	ObservedBPC    float64   // measured reply bandwidth of the ending epoch
	ApplyAt        sim.Cycle // cycle Next takes effect (valid unless Held)
}

// MDRDecision emits the decision record and closes the ending epoch's
// span on the Chrome MDR lane.
func (t *Tracer) MDRDecision(d MDRDecision) {
	r := newRec()
	r.str("type", "mdr")
	r.int("cycle", d.Cycle)
	r.int("epoch", d.Epoch)
	r.str("decision", decisionName(d.Next))
	r.bool("held", d.Held)
	if !d.Held {
		r.f6("pred_norep_bpc", d.PredNoRepBPC)
		r.f6("pred_fullrep_bpc", d.PredFullRepBPC)
		r.int("apply_at", d.ApplyAt)
	}
	r.f6("observed_bpc", d.ObservedBPC)
	t.emitSeries(r)

	c := newRec()
	c.str("name", "MDR epoch ("+decisionName(d.Replicating)+")")
	c.str("cat", "mdr")
	c.str("ph", "X")
	c.int("pid", 0)
	c.int("tid", tidMDR)
	c.f3("ts", t.us(t.lastMDREnd))
	c.f3("dur", t.us(d.Cycle)-t.us(t.lastMDREnd))
	c.obj("args", func(a *rec) {
		a.str("decision", decisionName(d.Next))
		a.bool("held", d.Held)
		a.f6("pred_norep_bpc", d.PredNoRepBPC)
		a.f6("pred_fullrep_bpc", d.PredFullRepBPC)
		a.f6("observed_bpc", d.ObservedBPC)
	})
	t.emitChrome(c)
	t.lastMDREnd = d.Cycle
}

func decisionName(replicate bool) string {
	if replicate {
		return "replicate"
	}
	return "no-rep"
}

// KernelSpan records one completed kernel launch (including its
// kernel-boundary coherence flush).
func (t *Tracer) KernelSpan(name string, seq int, start, end sim.Cycle) {
	r := newRec()
	r.str("type", "kernel")
	r.str("name", name)
	r.int("seq", int64(seq))
	r.int("cycle", start)
	r.int("end_cycle", end)
	t.emitSeries(r)

	c := newRec()
	c.str("name", "kernel "+name)
	c.str("cat", "kernel")
	c.str("ph", "X")
	c.int("pid", 0)
	c.int("tid", tidKernels)
	c.f3("ts", t.us(start))
	c.f3("dur", t.us(end)-t.us(start))
	c.obj("args", func(a *rec) { a.int("seq", int64(seq)) })
	t.emitChrome(c)
}

// PageMigration records the migration policy rehoming a page.
func (t *Tracer) PageMigration(now sim.Cycle, vpn uint64, from, to int) {
	r := newRec()
	r.str("type", "migration")
	r.int("cycle", now)
	r.uint("vpn", vpn)
	r.int("from", int64(from))
	r.int("to", int64(to))
	t.emitSeries(r)
	t.placementInstant(now, "migrate page", func(a *rec) {
		a.uint("vpn", vpn)
		a.int("from", int64(from))
		a.int("to", int64(to))
	})
}

// PageReplication records the page-replication policy granting a
// partition its own copy of a page.
func (t *Tracer) PageReplication(now sim.Cycle, vpn uint64, part int) {
	r := newRec()
	r.str("type", "page_replication")
	r.int("cycle", now)
	r.uint("vpn", vpn)
	r.int("part", int64(part))
	t.emitSeries(r)
	t.placementInstant(now, "replicate page", func(a *rec) {
		a.uint("vpn", vpn)
		a.int("part", int64(part))
	})
}

// ReplicaCollapse records a store collapsing every replica of a page.
func (t *Tracer) ReplicaCollapse(now sim.Cycle, vpn uint64) {
	r := newRec()
	r.str("type", "collapse")
	r.int("cycle", now)
	r.uint("vpn", vpn)
	t.emitSeries(r)
	t.placementInstant(now, "collapse replicas", func(a *rec) { a.uint("vpn", vpn) })
}

func (t *Tracer) placementInstant(now sim.Cycle, name string, args func(*rec)) {
	r := newRec()
	r.str("name", name)
	r.str("cat", "placement")
	r.str("ph", "i")
	r.str("s", "t")
	r.int("pid", 0)
	r.int("tid", tidPlacement)
	r.f3("ts", t.us(now))
	r.obj("args", args)
	t.emitChrome(r)
}

// rec builds one JSON object with hand-ordered fields, pinning the
// emitted byte stream to the documented schema.
type rec struct {
	b     strings.Builder
	first bool
}

func newRec() *rec {
	r := &rec{first: true}
	r.b.WriteByte('{')
	return r
}

func (r *rec) key(k string) {
	if r.first {
		r.first = false
	} else {
		r.b.WriteByte(',')
	}
	r.b.WriteByte('"')
	r.b.WriteString(k)
	r.b.WriteString(`":`)
}

func (r *rec) str(k, v string)       { r.key(k); r.b.WriteString(strconv.Quote(v)) }
func (r *rec) int(k string, v int64) { r.key(k); r.b.WriteString(strconv.FormatInt(v, 10)) }
func (r *rec) uint(k string, v uint64) {
	r.key(k)
	r.b.WriteString(strconv.FormatUint(v, 10))
}
func (r *rec) f6(k string, v float64) { r.key(k); r.b.WriteString(fmtFloat(v, 6)) }
func (r *rec) f3(k string, v float64) { r.key(k); r.b.WriteString(fmtFloat(v, 3)) }
func (r *rec) bool(k string, v bool) {
	r.key(k)
	r.b.WriteString(strconv.FormatBool(v))
}

func (r *rec) arrF6(k string, vs []float64) {
	r.key(k)
	r.b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			r.b.WriteByte(',')
		}
		r.b.WriteString(fmtFloat(v, 6))
	}
	r.b.WriteByte(']')
}

func (r *rec) obj(k string, fill func(*rec)) {
	r.key(k)
	sub := newRec()
	fill(sub)
	r.b.WriteString(sub.close())
}

func (r *rec) close() string {
	r.b.WriteByte('}')
	return r.b.String()
}

// fmtFloat renders a float at fixed precision; non-finite values (which
// a correct probe never produces) degrade to 0 rather than break the
// JSON.
func fmtFloat(v float64, prec int) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}
