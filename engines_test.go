package nuba

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/nuba-gpu/nuba/internal/core"
	"github.com/nuba-gpu/nuba/internal/trace"
)

// The tentpole guarantee of the idle-skip engine: the hybrid engine is
// byte-identical to the serial naive reference. Two tests split the
// guarantee so the whole thing fits a `go test ./...` budget:
//
//   - TestEnginesByteIdenticalAcrossSuite covers every benchmark in the
//     Table 2 suite under a hard cycle cap. Cycle-exact engines must
//     agree on the complete machine state at every cycle, so agreement
//     over the first 256 Ki cycles of all 29 workloads — stats, streamed
//     epoch traces and the capped-or-drained outcome itself — is checked
//     without paying for the multi-hundred-M-cycle tails some workloads
//     grow at the test's 0.125 scale (NW alone exceeds the 80 M-cycle
//     safety limit there).
//   - TestEnginesByteIdenticalFullRuns runs a cheap subset to natural
//     completion through the public RunSuite path, covering the
//     kernel-boundary flush, the final drain and the finished NDJSON +
//     Chrome trace streams that a capped run never reaches.
//
// Any hint that is not conservative shows up as a diverging counter, a
// diverging trace byte, or one engine draining where the other hits the
// cap.

// cappedCapture is everything observable from one capped engine run.
type cappedCapture struct {
	report  string
	series  []byte
	outcome string // "drained" or the run error text
}

// runCapped executes b on cfg under engine e, tolerating (and recording)
// the MaxCycles error a capped run ends in. It drives internal/core
// directly because the public Run returns no Result for a capped run,
// while the cross-engine comparison needs the stats snapshot either way.
func runCapped(t *testing.T, cfg Config, b Benchmark, e Engine) cappedCapture {
	return runCappedWorkers(t, cfg, b, e, 0)
}

// runCappedWorkers is runCapped with EngineParallel's worker count
// pinned (0 = one worker per partition; other engines ignore it).
func runCappedWorkers(t *testing.T, cfg Config, b Benchmark, e Engine, workers int) cappedCapture {
	t.Helper()
	g, err := core.New(cfg)
	if err != nil {
		t.Fatalf("%s: %v", b.Abbr, err)
	}
	g.SetEngine(e)
	g.SetPartitionWorkers(workers)
	var series bytes.Buffer
	tr := trace.New(trace.Options{Series: &series, EpochCycles: 10_000}, cfg.CoreClockGHz)
	tr.Begin(trace.Meta{Bench: b.Abbr, Config: cfg.Name(), Partitions: cfg.NumPartitions()})
	g.AttachTracer(tr)
	launches, err := b.Build(g.NewBuffer)
	if err != nil {
		t.Fatalf("%s: build: %v", b.Abbr, err)
	}
	outcome := "drained"
	if err := g.RunProgramContext(context.Background(), launches); err != nil {
		if !strings.Contains(err.Error(), "exceeded MaxCycles") {
			t.Fatalf("%s: %v engine: unexpected error: %v", b.Abbr, e, err)
		}
		outcome = err.Error()
	}
	st := g.Stats()
	return cappedCapture{
		// The full counter struct plus the rendered deep-dive table is
		// the "report": every byte the CLIs derive their output from.
		report:  fmt.Sprintf("%+v\n%s", *st, DetailTable(st)),
		series:  series.Bytes(),
		outcome: outcome,
	}
}

func TestEnginesByteIdenticalAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; runs every benchmark twice")
	}
	cfg := NUBAConfig().Scale(0.125)
	// A multiple of both the 64-cycle batch and MemClockDiv, far enough
	// to reach steady state on every workload yet bounded in wall time.
	cfg.MaxCycles = 256 * 1024

	var drained, capped int
	for _, b := range Suite() {
		naive := runCapped(t, cfg, b, EngineNaive)
		hybrid := runCapped(t, cfg, b, EngineHybrid)
		if naive.outcome != hybrid.outcome {
			t.Errorf("%s: outcomes diverge\nnaive:  %s\nhybrid: %s", b.Abbr, naive.outcome, hybrid.outcome)
		}
		if naive.report != hybrid.report {
			t.Errorf("%s: reports diverge between engines\nnaive:  %s\nhybrid: %s",
				b.Abbr, naive.report, hybrid.report)
		}
		if !bytes.Equal(naive.series, hybrid.series) {
			t.Errorf("%s: NDJSON epoch traces diverge between engines", b.Abbr)
		}
		if len(naive.series) == 0 {
			t.Errorf("%s: empty trace — comparison is vacuous", b.Abbr)
		}
		if naive.outcome == "drained" {
			drained++
		} else {
			capped++
		}
	}
	// The suite must exercise both endings: full drains (flush + final
	// quiescence) and cap hits (clamped batch, error path).
	if drained == 0 || capped == 0 {
		t.Errorf("unbalanced coverage: %d drained, %d capped — adjust MaxCycles", drained, capped)
	}
}

// TestSanitizeSuite is the dynamic half of the wake-hint-contract proof
// (the static half is nubalint's hint-purity/engine-contract rules):
// every Table 2 benchmark runs under EngineSanitize with the same cap as
// TestEnginesByteIdenticalAcrossSuite, so every idle window the hint
// scan claims across the whole suite is stepped cycle-by-cycle and
// cross-checked against per-component state signatures. A single
// unsound hint fails the run with a cycle/component diagnostic
// (runCapped tolerates only the MaxCycles cap), and the clean runs must
// stay byte-identical to the hybrid engine they are vouching for.
func TestSanitizeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; runs every benchmark twice")
	}
	cfg := NUBAConfig().Scale(0.125)
	cfg.MaxCycles = 256 * 1024
	for _, b := range Suite() {
		san := runCapped(t, cfg, b, EngineSanitize)
		hybrid := runCapped(t, cfg, b, EngineHybrid)
		if san.outcome != hybrid.outcome {
			t.Errorf("%s: outcomes diverge\nsanitize: %s\nhybrid:   %s", b.Abbr, san.outcome, hybrid.outcome)
		}
		if san.report != hybrid.report {
			t.Errorf("%s: reports diverge between engines\nsanitize: %s\nhybrid:   %s",
				b.Abbr, san.report, hybrid.report)
		}
		if !bytes.Equal(san.series, hybrid.series) {
			t.Errorf("%s: NDJSON epoch traces diverge between engines", b.Abbr)
		}
	}
}

// TestParallelEngineByteIdenticalAcrossSuite extends the cross-engine
// byte-identity guarantee to the partition-parallel engine at every
// interesting worker count: 1 (the inline degenerate — barrier schedule,
// no goroutines), 2 (partitions split across a real worker plus the
// coordinator, exercising the exchange queues and the VM gate across
// goroutines) and NumPartitions (maximum fan-out, one worker per
// partition). Each must match the serial naive reference byte for byte
// — counters, rendered report and streamed NDJSON trace — on all 29
// capped benchmarks. The barrier/exchange paths this walks are also run
// under the race detector (`make race` / CI), which is what makes
// "deterministic" here a checked claim rather than a hope.
func TestParallelEngineByteIdenticalAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; runs every benchmark four times")
	}
	cfg := NUBAConfig().Scale(0.125)
	cfg.MaxCycles = 256 * 1024
	workerCounts := []int{1, 2, cfg.NumPartitions()}
	for _, b := range Suite() {
		naive := runCapped(t, cfg, b, EngineNaive)
		if len(naive.series) == 0 {
			t.Errorf("%s: empty trace — comparison is vacuous", b.Abbr)
		}
		for _, w := range workerCounts {
			par := runCappedWorkers(t, cfg, b, EngineParallel, w)
			if naive.outcome != par.outcome {
				t.Errorf("%s: outcomes diverge at %d workers\nnaive:    %s\nparallel: %s",
					b.Abbr, w, naive.outcome, par.outcome)
			}
			if naive.report != par.report {
				t.Errorf("%s: reports diverge at %d workers\nnaive:    %s\nparallel: %s",
					b.Abbr, w, naive.report, par.report)
			}
			if !bytes.Equal(naive.series, par.series) {
				t.Errorf("%s: NDJSON epoch traces diverge at %d workers", b.Abbr, w)
			}
		}
	}
}

// fullRunSubset is one representative per cheap workload class, kept
// under ~1 s each so both engines complete naturally in test budget:
// wavelet stencil, irregular tree, decomposition, RNN, CNN, matvec.
var fullRunSubset = []string{"DWT2D", "BH", "LEU", "GRU", "SN", "MVT"}

func TestEnginesByteIdenticalFullRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; runs the subset twice to completion")
	}
	cfg := NUBAConfig().Scale(0.125)
	benches := make([]Benchmark, 0, len(fullRunSubset))
	for _, abbr := range fullRunSubset {
		b, err := BenchmarkByAbbr(abbr)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, b)
	}

	type capture struct {
		report string
		series []byte
		chrome []byte
	}
	runAll := func(e Engine, extra ...RunOption) []capture {
		t.Helper()
		type sinks struct{ series, chrome bytes.Buffer }
		byIdx := make([]sinks, len(benches))
		opts := append([]RunOption{
			WithEngine(e),
			WithBenchTrace(func(b Benchmark) *TraceOptions {
				for i := range benches {
					if benches[i].Abbr == b.Abbr {
						return &TraceOptions{Series: &byIdx[i].series, Chrome: &byIdx[i].chrome}
					}
				}
				t.Errorf("unknown benchmark %s", b.Abbr)
				return nil
			}),
		}, extra...)
		results, err := RunSuite(context.Background(), cfg, benches, opts...)
		if err != nil {
			t.Fatalf("%v engine: %v", e, err)
		}
		caps := make([]capture, len(benches))
		for i, res := range results {
			caps[i] = capture{
				report: fmt.Sprintf("%+v\n%s", *res.Stats, DetailTable(res.Stats)),
				series: byIdx[i].series.Bytes(),
				chrome: byIdx[i].chrome.Bytes(),
			}
		}
		return caps
	}

	naive := runAll(EngineNaive)
	hybrid := runAll(EngineHybrid)
	// The parallel engine goes through the public RunSuite path too, at
	// full fan-out, covering the kernel-boundary flush, the final drain
	// and the finished Chrome trace stream a capped run never reaches.
	parallel := runAll(EngineParallel, WithPartitionWorkers(0))
	compare := func(name string, got []capture) {
		for i, b := range benches {
			if naive[i].report != got[i].report {
				t.Errorf("%s: reports diverge between engines\nnaive: %s\n%s: %s",
					b.Abbr, naive[i].report, name, got[i].report)
			}
			if !bytes.Equal(naive[i].series, got[i].series) {
				t.Errorf("%s: NDJSON epoch traces diverge between naive and %s", b.Abbr, name)
			}
			if !bytes.Equal(naive[i].chrome, got[i].chrome) {
				t.Errorf("%s: Chrome traces diverge between naive and %s", b.Abbr, name)
			}
			if len(naive[i].series) == 0 || len(naive[i].chrome) == 0 {
				t.Errorf("%s: empty trace — comparison is vacuous", b.Abbr)
			}
		}
	}
	compare("hybrid", hybrid)
	compare("parallel", parallel)
}
