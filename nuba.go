// Package nuba is a cycle-level GPU memory-system simulator reproducing
// "NUBA: Non-Uniform Bandwidth GPUs" (Zhao, Jahre, Tang, Zhang, Eeckhout;
// ASPLOS 2023).
//
// It models three GPU system architectures — the conventional memory-side
// Uniform Bandwidth Architecture (UBA), the SM-side UBA of the A100, and
// the paper's Non-Uniform Bandwidth Architecture (NUBA) — together with
// the full software/compiler/architecture stack NUBA needs: the
// Local-And-Balanced (LAB) page placement policy in the GPU driver,
// compile-time read-only data-flow analysis over a PTX-like kernel IR,
// and Model-Driven Replication (MDR) of read-only shared cache lines.
//
// Quick start:
//
//	bench, _ := nuba.BenchmarkByAbbr("SGEMM")
//	res, err := nuba.Run(context.Background(), nuba.NUBAConfig(), bench)
//	if err != nil { ... }
//	fmt.Println(res.Stats.IPC(), res.Stats.RepliesPerCycle())
//
// The three headline configurations are Baseline() (memory-side UBA),
// SMSideConfig() and NUBAConfig(); Config methods (WithNoC, Scale,
// WithPartition, ...) derive every sensitivity point in the paper's
// evaluation. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-versus-measured results.
package nuba

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"github.com/nuba-gpu/nuba/internal/config"
	"github.com/nuba-gpu/nuba/internal/core"
	"github.com/nuba-gpu/nuba/internal/energy"
	"github.com/nuba-gpu/nuba/internal/kir"
	"github.com/nuba-gpu/nuba/internal/metrics"
	"github.com/nuba-gpu/nuba/internal/trace"
	"github.com/nuba-gpu/nuba/internal/workload"
)

// Re-exported core types. These aliases are the supported public surface;
// the internal packages they point at may reorganize freely.
type (
	// Config describes a simulated GPU system (Table 1 plus policies).
	Config = config.Config
	// Arch selects the GPU system architecture.
	Arch = config.Arch
	// PlacementPolicy selects the driver's page placement policy.
	PlacementPolicy = config.PlacementPolicy
	// ReplicationPolicy selects the cache-line replication policy.
	ReplicationPolicy = config.ReplicationPolicy
	// AddressMapping selects the physical address mapping policy.
	AddressMapping = config.AddressMapping
	// Stats holds the measured statistics of one run.
	Stats = metrics.Stats
	// Benchmark is one entry of the Table 2 workload suite.
	Benchmark = workload.Benchmark
	// System is an assembled GPU ready to run kernels.
	System = core.GPU
	// Kernel is a compiled kernel in the PTX-like IR.
	Kernel = kir.Kernel
	// Launch binds a kernel to a grid and buffers.
	Launch = kir.Launch
	// Binding places one buffer parameter in the virtual address space.
	Binding = kir.Binding
	// EnergyBreakdown is the per-component energy of a run.
	EnergyBreakdown = energy.Breakdown
	// SharingHistogram is the Figure 3 page-sharing data of a run.
	SharingHistogram = metrics.SharingHistogram
	// TraceOptions select the observability sinks of a traced run: an
	// NDJSON epoch time series and/or a Chrome trace_event JSON export.
	// The emitted schema is documented in docs/OBSERVABILITY.md.
	TraceOptions = trace.Options
	// LineChart is the ASCII time-series chart (for plotting epoch
	// traces, e.g. NPB over time).
	LineChart = metrics.LineChart
	// HangError is the error a watchdog-armed run fails with when the
	// machine stops making forward progress; its Report field carries
	// the structured diagnosis (see docs/ROBUSTNESS.md).
	HangError = core.HangError
	// HangReport names the stuck components, their queue depths and
	// their last wake hints at hang-detection time.
	HangReport = core.HangReport
	// ComponentState is one stuck component within a HangReport.
	ComponentState = core.ComponentState
)

// Architectures.
const (
	UBAMem    = config.UBAMem
	UBASMSide = config.UBASMSide
	NUBA      = config.NUBA
)

// Page placement policies (Section 4).
const (
	FirstTouch      = config.FirstTouch
	RoundRobin      = config.RoundRobin
	LAB             = config.LAB
	Migration       = config.Migration
	PageReplication = config.PageReplication
)

// Replication policies (Section 5).
const (
	NoRep   = config.NoRep
	FullRep = config.FullRep
	MDR     = config.MDR
)

// Address mappings (Section 2).
const (
	FixedChannel = config.FixedChannel
	PAE          = config.PAE
)

// Baseline returns the Table 1 memory-side UBA GPU.
func Baseline() Config { return config.Baseline() }

// NUBAConfig returns the paper's NUBA GPU: 32 partitions of {2 SMs,
// 2 LLC slices, 1 memory channel} with LAB placement and MDR replication.
func NUBAConfig() Config { return config.NUBABaseline() }

// SMSideConfig returns the SM-side UBA (A100-style) GPU.
func SMSideConfig() Config { return config.SMSideBaseline() }

// MCMConfig returns the Figure 16 four-module MCM GPU of the given
// architecture.
func MCMConfig(a Arch) Config { return config.MCM(a) }

// NewSystem assembles a GPU for the configuration.
func NewSystem(cfg Config) (*System, error) { return core.New(cfg) }

// Suite returns the full 29-benchmark Table 2 suite.
func Suite() []Benchmark { return workload.Suite() }

// LowSharing returns the low-sharing half of the suite.
func LowSharing() []Benchmark { return workload.LowSharing() }

// HighSharing returns the high-sharing half of the suite.
func HighSharing() []Benchmark { return workload.HighSharing() }

// BenchmarkByAbbr looks a benchmark up by its Table 2 abbreviation
// (e.g. "SGEMM", "BICG").
func BenchmarkByAbbr(abbr string) (Benchmark, error) { return workload.ByAbbr(abbr) }

// ParseKernel compiles kernel assembly (see internal/kir for the grammar)
// and runs the read-only data-flow analysis.
func ParseKernel(src string) (*Kernel, error) {
	k, err := kir.Parse(src)
	if err != nil {
		return nil, err
	}
	kir.AnalyzeReadOnly(k)
	return k, nil
}

// Result bundles everything measured in one run.
type Result struct {
	// Stats are the hardware counters (IPC, bandwidth, breakdowns).
	Stats *Stats
	// Energy is the modeled energy breakdown.
	Energy EnergyBreakdown
	// Sharing is the page-sharing histogram.
	Sharing *SharingHistogram
	// System is the GPU the run executed on, for deeper inspection.
	System *System
}

// IPC is shorthand for Stats.IPC.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// Engine selects the cycle-loop strategy of a run. All engines are
// cycle-exact — reports and traces are byte-identical — and differ only
// in wall-clock speed; EngineNaive is the serial reference kept as an
// escape hatch and as the oracle the cross-engine tests compare against.
type Engine = core.Engine

// Cycle-loop engines.
const (
	// EngineHybrid is the default idle-skip engine: components report
	// wake-up hints and the clock fast-forwards over proven-idle gaps.
	EngineHybrid = core.EngineHybrid
	// EngineNaive ticks every component every cycle.
	EngineNaive = core.EngineNaive
	// EngineSanitize is the hybrid engine's soundness checker: instead
	// of skipping a claimed-idle window it steps through it, comparing
	// per-component state signatures and run statistics after every
	// cycle, and fails the run on the first unsound wake hint. Clean
	// runs are byte-identical to the other engines but much slower —
	// a verification tool, not a production engine.
	EngineSanitize = core.EngineSanitize
	// EngineParallel simulates partitions on separate goroutines,
	// synchronizing at the phase barriers of the serial tick order, with
	// cross-partition traffic exchanged only at the NoC barriers. Results
	// are byte-identical to the other engines at every worker count (see
	// docs/PARALLEL.md); configurations without an exploitable partition
	// structure fall back to the hybrid loop. Tune with
	// WithPartitionWorkers.
	EngineParallel = core.EngineParallel
)

// ParseEngine parses a -engine flag value (one of EngineNames).
func ParseEngine(s string) (Engine, error) { return core.ParseEngine(s) }

// EngineNames returns the flag spellings of every engine, default first.
func EngineNames() []string { return core.EngineNames() }

// EngineUsage returns -engine flag help text listing every engine with
// a one-line description, for CLIs to pass to flag.String.
func EngineUsage() string { return core.EngineUsage() }

// RunOption configures a Run or RunSuite call.
type RunOption func(*runConfig)

// runConfig is the merged option set of one Run/RunSuite call. It folds
// what used to be TraceOptions plumbing and the RunOptions struct into a
// single type behind functional options.
type runConfig struct {
	trace       *TraceOptions
	traceFor    func(b Benchmark) *TraceOptions
	launches    func(sys *System) ([]*Launch, error)
	workers     int
	progress    func(RunEvent)
	engine      Engine
	partWorkers int
	watchdog    WatchdogOptions
	arm         func(sys *System) error
}

// WithTrace attaches observability sinks to a single run: the NDJSON
// epoch time series and/or Chrome trace selected by topts (schema in
// docs/OBSERVABILITY.md). A nil topts — or one with no sink — runs
// untraced; tracing is passive, so the simulated cycles are identical
// either way. The caller owns the sink writers; the run finishes the
// streams but does not close files. For RunSuite use WithBenchTrace,
// which hands each concurrent run its own writers.
func WithTrace(topts *TraceOptions) RunOption {
	return func(rc *runConfig) { rc.trace = topts }
}

// WithBenchTrace attaches per-benchmark observability sinks to a
// RunSuite batch: f is consulted once per benchmark before its run
// starts and may return that run's trace sinks (nil keeps the run
// untraced). It is called concurrently from the worker pool, so it must
// be safe for concurrent use and must hand each run its own writers.
// Per-run traces are byte-identical for any worker count: each
// simulation is deterministic in isolation and never shares a sink.
func WithBenchTrace(f func(b Benchmark) *TraceOptions) RunOption {
	return func(rc *runConfig) { rc.traceFor = f }
}

// WithLaunches replaces the benchmark's kernels with caller-constructed
// launches (the low-level entry point for custom kernels). The build
// function binds buffers through sys.NewBuffer; the Benchmark argument
// of Run then only labels the run (an empty one reads "custom").
func WithLaunches(build func(sys *System) ([]*Launch, error)) RunOption {
	return func(rc *runConfig) { rc.launches = build }
}

// WithWorkers sets the number of simulations RunSuite runs concurrently.
// Zero or negative selects runtime.GOMAXPROCS(0). Single runs ignore it.
func WithWorkers(n int) RunOption {
	return func(rc *runConfig) { rc.workers = n }
}

// WithProgress installs a per-completed-run callback for RunSuite. Calls
// are serialized (never concurrent) but arrive in completion order,
// which under more than one worker need not be input order.
func WithProgress(f func(RunEvent)) RunOption {
	return func(rc *runConfig) { rc.progress = f }
}

// WithEngine selects the cycle-loop engine (default EngineHybrid). Both
// engines produce byte-identical results; EngineNaive is the serial
// reference escape hatch.
func WithEngine(e Engine) RunOption {
	return func(rc *runConfig) { rc.engine = e }
}

// WithPartitionWorkers sets EngineParallel's goroutine count: 0 (the
// default) uses one worker per partition, 1 runs the barrier schedule
// inline, and values above the partition count are clamped to it. Like
// the engine choice itself it is an execution knob, never a simulation
// parameter: results are byte-identical at every worker count, and the
// setting lives outside Config so all worker counts share config
// fingerprints (the experiment engine's memo key). Other engines ignore
// it. Speedup over the serial engines additionally needs GOMAXPROCS >=
// the worker count; see the tuning guide in docs/PARALLEL.md for how
// this knob composes with RunSuite's WithWorkers pool.
func WithPartitionWorkers(n int) RunOption {
	return func(rc *runConfig) { rc.partWorkers = n }
}

// WatchdogOptions configures the forward-progress watchdog of a run.
// The zero value disables both limits.
type WatchdogOptions struct {
	// NoProgressCycles fails the run with a *HangError once no
	// component state signature changes for that many simulated cycles
	// while work is outstanding. The watchdog reads only the pure
	// per-component signatures the sanitizer engine reads, so arming it
	// never perturbs the simulation: results stay byte-identical with
	// the watchdog on or off. <= 0 disables.
	NoProgressCycles int64
	// WallClock bounds the run's host-side duration; on expiry the run
	// fails with a *HangError whose report captures the pending
	// components at abort time (reason "wall-clock-budget"). Unlike
	// NoProgressCycles this also trips on genuinely slow runs — it is a
	// budget, not a hang proof. <= 0 disables.
	WallClock time.Duration
}

// WithWatchdog arms the forward-progress watchdog (see WatchdogOptions
// and docs/ROBUSTNESS.md). Watchdog settings deliberately live outside
// Config so guarded and unguarded runs share config fingerprints and
// simulate identically.
func WithWatchdog(w WatchdogOptions) RunOption {
	return func(rc *runConfig) { rc.watchdog = w }
}

// WithArm installs a pre-run hook called after the system is assembled
// and before any kernel launches, with the fully wired System. It is
// the seam the fault-injection harness (internal/fault) arms faults
// through; tests can use it for any pre-run system surgery. An error
// aborts the run.
func WithArm(arm func(sys *System) error) RunOption {
	return func(rc *runConfig) { rc.arm = arm }
}

// apply folds opts into a runConfig.
func apply(opts []RunOption) runConfig {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	return rc
}

// workerCount returns the effective RunSuite worker-pool size.
func (rc *runConfig) workerCount() int {
	if rc.workers > 0 {
		return rc.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run is the single entry point for one simulation: it assembles a GPU
// for cfg, executes the benchmark's kernels to completion and returns
// the measured result. A long simulation stops promptly once ctx is
// canceled and returns an error wrapping ctx.Err(). Options select
// tracing (WithTrace), caller-constructed launches (WithLaunches) and
// the cycle-loop engine (WithEngine); batch-only options are ignored.
func Run(ctx context.Context, cfg Config, b Benchmark, opts ...RunOption) (*Result, error) {
	rc := apply(opts)
	return runOne(ctx, cfg, b, &rc)
}

// runOne executes one simulation under an already-merged option set.
func runOne(ctx context.Context, cfg Config, b Benchmark, rc *runConfig) (*Result, error) {
	build := rc.launches
	label := b.Abbr
	if build == nil {
		build = func(g *System) ([]*Launch, error) { return b.Build(g.NewBuffer) }
	} else if label == "" {
		label = "custom"
	}
	topts := rc.trace
	if topts == nil && rc.traceFor != nil {
		topts = rc.traceFor(b)
	}
	return execute(ctx, cfg, build, topts, label, rc)
}

// PanicError is the error a run fails with when the simulator panics (a
// model invariant blown mid-run). Run recovers the panic so one bad job
// cannot take down a whole sweep process; the original panic value and
// goroutine stack ride along for diagnosis.
type PanicError struct {
	// Label identifies the run ("MVT", "custom", ...).
	Label string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (runtime/debug.Stack).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("nuba: panic in run %s: %v", e.Label, e.Value)
}

// errWallClockBudget is the cancel cause installed by
// WatchdogOptions.WallClock, distinguishing budget expiry from caller
// cancellation.
var errWallClockBudget = errors.New("nuba: watchdog wall-clock budget exceeded")

// RunContext runs b on cfg under a context.
//
// Deprecated: RunContext is the pre-unification spelling; call [Run],
// which has the same signature and behavior.
func RunContext(ctx context.Context, cfg Config, b Benchmark) (*Result, error) {
	return Run(ctx, cfg, b)
}

// RunTraced runs b on cfg with tracing attached.
//
// Deprecated: Call [Run] with [WithTrace].
func RunTraced(ctx context.Context, cfg Config, b Benchmark, topts *TraceOptions) (*Result, error) {
	return Run(ctx, cfg, b, WithTrace(topts))
}

// RunLaunches runs caller-constructed launches on a fresh system.
//
// Deprecated: Call [Run] with [WithLaunches] (and a zero Benchmark).
func RunLaunches(cfg Config, build func(sys *System) ([]*Launch, error)) (*Result, error) {
	return Run(context.Background(), cfg, Benchmark{}, WithLaunches(build))
}

// RunLaunchesContext is RunLaunches under a context.
//
// Deprecated: Call [Run] with [WithLaunches] (and a zero Benchmark).
func RunLaunchesContext(ctx context.Context, cfg Config, build func(sys *System) ([]*Launch, error)) (*Result, error) {
	return Run(ctx, cfg, Benchmark{}, WithLaunches(build))
}

// execute is the single execution path behind every Run* entry point:
// assemble a system, attach tracing when requested, build the launches
// into the address space, run them under the context and bundle the
// measurements. Trace sinks, the engine choice and the watchdog
// deliberately live outside Config so traced/untraced, hybrid/naive and
// guarded/unguarded runs share config fingerprints (the experiment
// engine's memo key) and simulate identically. A simulator panic is
// recovered into a *PanicError so one bad run cannot take down a whole
// sweep process.
func execute(ctx context.Context, cfg Config, build func(sys *System) ([]*Launch, error), topts *TraceOptions, label string, rc *runConfig) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Label: label, Value: r, Stack: debug.Stack()}
		}
	}()
	g, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	g.SetEngine(rc.engine)
	g.SetPartitionWorkers(rc.partWorkers)
	if rc.watchdog.NoProgressCycles > 0 {
		g.SetWatchdog(rc.watchdog.NoProgressCycles)
	}
	if rc.watchdog.WallClock > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, rc.watchdog.WallClock, errWallClockBudget)
		defer cancel()
	}
	if rc.arm != nil {
		if err := rc.arm(g); err != nil {
			return nil, fmt.Errorf("nuba: arm hook: %w", err)
		}
	}
	var tr *trace.Tracer
	if topts != nil && topts.Enabled() {
		o := *topts
		if o.EpochCycles <= 0 {
			o.EpochCycles = cfg.MDREpoch
		}
		tr = trace.New(o, cfg.CoreClockGHz)
		tr.Begin(trace.Meta{Bench: label, Config: cfg.Name(), Partitions: cfg.NumPartitions()})
		g.AttachTracer(tr)
	}
	launches, err := build(g)
	if err != nil {
		return nil, err
	}
	runErr := g.RunProgramContext(ctx, launches)
	if tr != nil {
		if cerr := tr.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("trace sink: %w", cerr)
		}
	}
	if runErr != nil {
		if errors.Is(runErr, context.DeadlineExceeded) && context.Cause(ctx) == errWallClockBudget {
			rep := g.CaptureHang("wall-clock-budget", 0, 0)
			return nil, &HangError{Report: rep}
		}
		return nil, runErr
	}
	bd := g.EnergyBreakdown(energy.DefaultParams())
	return &Result{Stats: g.Stats(), Energy: bd, Sharing: g.Sharing(), System: g}, nil
}

// RunEvent describes one completed run within a RunSuite batch, for
// progress reporting.
type RunEvent struct {
	// Benchmark is the completed benchmark's abbreviation; Config the
	// configuration's Name().
	Benchmark string
	Config    string
	// Index is the benchmark's position in the input slice; Done the
	// number of runs completed so far; Total the batch size.
	Index, Done, Total int
	// Result is the completed run's measurement.
	Result *Result
	// Elapsed is the wall-clock time since the batch started.
	Elapsed time.Duration
}

// RunSuite runs every benchmark on cfg across a worker pool and returns
// the results in benchmark order (independent of completion order). Each
// run uses its own freshly assembled System, and the simulator holds no
// mutable global state, so results are identical to running the
// benchmarks serially. The first error cancels the remaining runs and is
// returned; a canceled ctx surfaces as an error wrapping ctx.Err().
// Options select the pool size (WithWorkers), a completion callback
// (WithProgress), per-benchmark trace sinks (WithBenchTrace) and the
// cycle-loop engine (WithEngine); WithTrace and WithLaunches are
// single-run options and are rejected here, since a shared sink or a
// shared launch builder cannot label concurrent runs apart.
func RunSuite(ctx context.Context, cfg Config, benchmarks []Benchmark, opts ...RunOption) ([]*Result, error) {
	rc := apply(opts)
	if rc.trace != nil {
		return nil, fmt.Errorf("nuba: WithTrace is a single-run option; use WithBenchTrace so each concurrent run gets its own writers")
	}
	if rc.launches != nil {
		return nil, fmt.Errorf("nuba: WithLaunches is a single-run option; call Run per custom-kernel system")
	}
	results := make([]*Result, len(benchmarks))
	if len(benchmarks) == 0 {
		return results, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	idx := make(chan int)
	workers := rc.workerCount()
	if workers > len(benchmarks) {
		workers = len(benchmarks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := runOne(ctx, cfg, benchmarks[i], &rc)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s on %s: %w", benchmarks[i].Abbr, cfg.Name(), err)
						cancel()
					}
					mu.Unlock()
					continue
				}
				results[i] = res
				done++
				if rc.progress != nil {
					rc.progress(RunEvent{
						Benchmark: benchmarks[i].Abbr,
						Config:    cfg.Name(),
						Index:     i, Done: done, Total: len(benchmarks),
						Result:  res,
						Elapsed: time.Since(start),
					})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range benchmarks {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// NoCPowerW converts a run's NoC energy into average NoC power in
// watts, given the run's cycle count and the core clock in GHz. It is
// the public face of the internal energy model's power conversion, so
// CLIs and examples need not import sim internals.
func NoCPowerW(bd EnergyBreakdown, cycles int64, coreClockGHz float64) float64 {
	return energy.NoCPowerW(bd, cycles, coreClockGHz)
}

// DetailTable renders the single-run deep-dive counter table (L1/TLB
// hit breakdowns, NoC serialization, coherence traffic) for CLIs that
// want more than the headline Stats line.
func DetailTable(s *Stats) string { return metrics.DetailTable(s) }

// Speedup returns a.IPC()/b.IPC() — but since runs execute identical work,
// it uses the inverse cycle ratio, the paper's speedup definition.
func Speedup(candidate, baseline *Result) float64 {
	if candidate.Stats.Cycles == 0 {
		return 0
	}
	return float64(baseline.Stats.Cycles) / float64(candidate.Stats.Cycles)
}
